//! FPGA device models.

/// A Xilinx FPGA part, with the calibrated clock the paper's engine
/// achieves on it and the part's resource capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpgaDevice {
    /// Virtex-4 xc4vlx40 (ISE 9.1i): 84 MHz minor-cycle clock (§V.C).
    Virtex4Lx40,
    /// Virtex-5 xc5vlx50t (ISE 9.1i): 105 MHz minor-cycle clock (§V.C).
    Virtex5Lx50t,
    /// Virtex-2 Pro (the device A-Ports reports on, for context).
    Virtex2Pro,
    /// Virtex-4 xc4vlx160 — a larger part of the same family, used for
    /// the §VI multi-core (multi-instance) projection.
    Virtex4Lx160,
}

impl FpgaDevice {
    /// The devices the paper evaluates on, in table order.
    pub const PAPER: [FpgaDevice; 2] = [FpgaDevice::Virtex4Lx40, FpgaDevice::Virtex5Lx50t];

    /// Marketing/part name.
    pub fn name(self) -> &'static str {
        match self {
            FpgaDevice::Virtex4Lx40 => "Virtex-4 (xc4vlx40)",
            FpgaDevice::Virtex5Lx50t => "Virtex-5 (xc5vlx50t)",
            FpgaDevice::Virtex2Pro => "Virtex-2 Pro",
            FpgaDevice::Virtex4Lx160 => "Virtex-4 (xc4vlx160)",
        }
    }

    /// Short column label as used in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            FpgaDevice::Virtex4Lx40 => "Virtex 4",
            FpgaDevice::Virtex5Lx50t => "Virtex 5",
            FpgaDevice::Virtex2Pro => "Virtex 2Pro",
            FpgaDevice::Virtex4Lx160 => "Virtex 4 LX160",
        }
    }

    /// Calibrated minor-cycle clock of the ReSim engine on this device,
    /// in MHz. These are the paper's measured synthesis results, used as
    /// model constants (see DESIGN.md).
    pub fn minor_cycle_mhz(self) -> f64 {
        match self {
            FpgaDevice::Virtex4Lx40 => 84.0,
            FpgaDevice::Virtex5Lx50t => 105.0,
            // Scaled from the Virtex-4 figure by the typical V2Pro/V4
            // speed-grade gap; used only for the A-Ports context row.
            FpgaDevice::Virtex2Pro => 60.0,
            // Same fabric generation as the lx40.
            FpgaDevice::Virtex4Lx160 => 84.0,
        }
    }

    /// Logic capacity in slices.
    ///
    /// Note Virtex-5 slices are larger (four 6-LUTs) than Virtex-4
    /// slices (two 4-LUTs); fitting computations stay within one family.
    pub fn slices(self) -> u64 {
        match self {
            FpgaDevice::Virtex4Lx40 => 18_432,
            FpgaDevice::Virtex5Lx50t => 7_200,
            FpgaDevice::Virtex2Pro => 13_696, // xc2vp30
            FpgaDevice::Virtex4Lx160 => 67_584,
        }
    }

    /// Block RAM capacity (18 Kb-equivalent blocks).
    pub fn brams(self) -> u64 {
        match self {
            FpgaDevice::Virtex4Lx40 => 96,
            FpgaDevice::Virtex5Lx50t => 120, // 60 x 36Kb = 120 x 18Kb
            FpgaDevice::Virtex2Pro => 136,
            FpgaDevice::Virtex4Lx160 => 288,
        }
    }
}

impl std::fmt::Display for FpgaDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frequencies() {
        assert_eq!(FpgaDevice::Virtex4Lx40.minor_cycle_mhz(), 84.0);
        assert_eq!(FpgaDevice::Virtex5Lx50t.minor_cycle_mhz(), 105.0);
        // The exact 1.25x ratio visible throughout Table 1.
        let ratio =
            FpgaDevice::Virtex5Lx50t.minor_cycle_mhz() / FpgaDevice::Virtex4Lx40.minor_cycle_mhz();
        assert!((ratio - 1.25).abs() < 1e-12);
    }

    #[test]
    fn names_and_capacity() {
        assert!(FpgaDevice::Virtex4Lx40.name().contains("xc4vlx40"));
        assert!(FpgaDevice::Virtex4Lx40.slices() > 12_273, "paper design fits");
    }
}
