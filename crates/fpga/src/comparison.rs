//! The simulator-comparison datapoints of Table 2.
//!
//! The paper compares ReSim against software simulators (PTLsim,
//! `sim-outorder`, GEMS) and hardware simulators (FAST, A-Ports) using
//! *their published numbers* (mostly as collected by the FAST paper).
//! We cannot rerun proprietary simulators either, so the same literature
//! constants are encoded here with provenance tags; ReSim rows are
//! computed by this repository's engine + throughput model, and an
//! honestly *measured* host-software row can be added from the Criterion
//! benchmarks.

/// Where a Table 2 number comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Reported in the cited literature (the paper's own practice).
    Reported,
    /// Computed by this repository's engine + device model.
    Computed,
    /// Measured on the host running this repository's software engine.
    Measured,
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Provenance::Reported => "reported",
            Provenance::Computed => "computed",
            Provenance::Measured => "measured",
        })
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatorEntry {
    /// Simulator name.
    pub name: &'static str,
    /// ISA / configuration notes as given in the table.
    pub isa: &'static str,
    /// Simulation speed in MIPS (Muops for FAST, as the paper scales).
    pub speed_mips: f64,
    /// Number provenance.
    pub provenance: Provenance,
}

/// The literature rows of Table 2 (everything except the ReSim rows).
pub fn literature_rows() -> Vec<SimulatorEntry> {
    vec![
        SimulatorEntry {
            name: "PTLsim",
            isa: "x86-64",
            speed_mips: 0.27,
            provenance: Provenance::Reported,
        },
        SimulatorEntry {
            name: "sim-outorder",
            isa: "PISA",
            speed_mips: 0.30,
            provenance: Provenance::Reported,
        },
        SimulatorEntry {
            name: "GEMS",
            isa: "Sparc",
            speed_mips: 0.07,
            provenance: Provenance::Reported,
        },
        SimulatorEntry {
            name: "FAST",
            isa: "x86, gshare BP",
            speed_mips: 1.2,
            provenance: Provenance::Reported,
        },
        SimulatorEntry {
            name: "FAST",
            isa: "x86, perfect BP",
            speed_mips: 2.79,
            provenance: Provenance::Reported,
        },
        SimulatorEntry {
            name: "A-Ports",
            isa: "MIPS subset, 4-wide",
            speed_mips: 4.70,
            provenance: Provenance::Reported,
        },
    ]
}

/// The per-benchmark FAST column of Table 1 (right): simulated Muops/s
/// with perfect branch prediction, as the paper scales them from x86
/// MIPS.
pub fn fast_table1_column() -> [(&'static str, f64); 5] {
    [
        ("gzip", 2.95),
        ("bzip2", 3.51),
        ("parser", 2.82),
        ("vortex", 2.19),
        ("vpr", 2.48),
    ]
}

/// FAST's 4-wide area on Virtex-4, for the Table 4 comparison
/// ("29230 Slices and 172 BRAMs ... 2.4 times and 24 times larger").
pub const FAST_AREA_SLICES: f64 = 29_230.0;
/// See [`FAST_AREA_SLICES`].
pub const FAST_AREA_BRAMS: u64 = 172;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_literature_values() {
        let rows = literature_rows();
        assert_eq!(rows.len(), 6);
        let find = |n: &str, isa: &str| {
            rows.iter()
                .find(|r| r.name == n && r.isa == isa)
                .unwrap()
                .speed_mips
        };
        assert_eq!(find("PTLsim", "x86-64"), 0.27);
        assert_eq!(find("sim-outorder", "PISA"), 0.30);
        assert_eq!(find("GEMS", "Sparc"), 0.07);
        assert_eq!(find("FAST", "x86, perfect BP"), 2.79);
        assert_eq!(find("A-Ports", "MIPS subset, 4-wide"), 4.70);
        assert!(rows.iter().all(|r| r.provenance == Provenance::Reported));
    }

    #[test]
    fn fast_column_average_matches_paper() {
        let avg: f64 =
            fast_table1_column().iter().map(|(_, v)| v).sum::<f64>() / 5.0;
        assert!((avg - 2.79).abs() < 0.01, "Table 1 reports 2.79 average");
    }
}
