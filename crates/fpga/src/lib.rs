//! # resim-fpga
//!
//! FPGA device, frequency, area and trace-bandwidth models for ReSim
//! (Fytraki & Pnevmatikatos, DATE 2009).
//!
//! The paper implements the engine on Xilinx Virtex-4 (xc4vlx40) and
//! Virtex-5 (xc5vlx50t) parts with Xilinx ISE 9.1i, reaching minor-cycle
//! clocks of 84 MHz and 105 MHz (§V.C). We cannot synthesise hardware, so
//! this crate *models* the device instead (the substitution is detailed in
//! DESIGN.md):
//!
//! * [`FpgaDevice`] — calibrated minor-cycle frequencies and resource
//!   capacities;
//! * [`ThroughputModel`] — turns an engine run's statistics into simulated
//!   MIPS exactly the way the hardware's numbers arise:
//!   `MIPS = f_minor / minor_cycles_per_major × IPC` (Tables 1–3);
//! * [`AreaModel`] — a per-structure area estimator calibrated against
//!   Table 4 (slices / LUTs / BRAMs, with first-order scaling in the
//!   configuration parameters), plus multi-instance fitting (§VI);
//! * [`TraceLink`] — trace-delivery bandwidth models for the Table 3
//!   analysis (Gigabit Ethernet vs. tightly-coupled CPU–FPGA buses);
//! * [`comparison`] — the literature datapoints of Table 2 (FAST,
//!   A-Ports, PTLsim, GEMS, `sim-outorder`) with provenance tags.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod bandwidth;
pub mod comparison;
mod device;
mod throughput;

pub use area::{parallel_fetch_ablation, AreaEstimate, AreaModel, FetchAblation, StageArea};
pub use bandwidth::{effective_mips, TraceLink};
pub use device::FpgaDevice;
pub use throughput::{SimulationSpeed, ThroughputModel};
