//! Trace-delivery bandwidth models — the paper's Table 3 analysis.
//!
//! "While this throughput (1.1 Gbps) exceeds the available bandwidth of
//! regular Gigabit Ethernet network, tightly coupled CPU–FPGA systems —
//! such as the DRC board — are available and use busses that offer
//! substantially higher I/O bandwidth" (§V). [`TraceLink`] models those
//! options and [`effective_mips`] computes the delivered simulation speed
//! when the link, not the engine, is the bottleneck.

/// A host-to-FPGA trace delivery channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceLink {
    /// Regular Gigabit Ethernet (1 Gb/s line rate).
    GigabitEthernet,
    /// DRC-style HyperTransport socket module (the platform FAST uses);
    /// ~12.8 Gb/s usable.
    DrcHyperTransport,
    /// PCI Express ×4 gen1 (~8 Gb/s usable).
    PcieX4Gen1,
    /// Traces pre-loaded in on-board memory: effectively unlimited.
    OnBoardMemory,
}

impl TraceLink {
    /// All modelled links.
    pub const ALL: [TraceLink; 4] = [
        TraceLink::GigabitEthernet,
        TraceLink::DrcHyperTransport,
        TraceLink::PcieX4Gen1,
        TraceLink::OnBoardMemory,
    ];

    /// Usable payload bandwidth in bits per second.
    pub fn bits_per_sec(self) -> f64 {
        match self {
            TraceLink::GigabitEthernet => 1.0e9,
            TraceLink::DrcHyperTransport => 12.8e9,
            TraceLink::PcieX4Gen1 => 8.0e9,
            TraceLink::OnBoardMemory => f64::INFINITY,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceLink::GigabitEthernet => "Gigabit Ethernet",
            TraceLink::DrcHyperTransport => "DRC HyperTransport",
            TraceLink::PcieX4Gen1 => "PCIe x4 gen1",
            TraceLink::OnBoardMemory => "on-board memory",
        }
    }
}

impl std::fmt::Display for TraceLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The simulation speed actually delivered when the engine wants
/// `engine_mips` (including wrong-path records) and every record costs
/// `bits_per_instruction` on `link`.
///
/// Returns MIPS (possibly link-limited).
pub fn effective_mips(engine_mips: f64, bits_per_instruction: f64, link: TraceLink) -> f64 {
    assert!(bits_per_instruction > 0.0, "records cannot be free");
    let link_mips = link.bits_per_sec() / bits_per_instruction / 1e6;
    engine_mips.min(link_mips)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gige_throttles_the_paper_demand() {
        // Table 3: ~25.5 MIPS at ~43.4 bits/instr = ~1.1 Gb/s demand,
        // which "exceeds the available bandwidth of regular Gigabit
        // Ethernet".
        let demand_gbps = 25.51 * 43.44 / 1000.0;
        assert!(demand_gbps > 1.0, "paper demand is {demand_gbps:.2} Gb/s");
        let got = effective_mips(25.51, 43.44, TraceLink::GigabitEthernet);
        assert!(got < 25.51, "GigE must throttle");
        assert!((got - 1000.0 / 43.44).abs() < 0.1);
    }

    #[test]
    fn drc_bus_sustains_full_speed() {
        let got = effective_mips(25.51, 43.44, TraceLink::DrcHyperTransport);
        assert_eq!(got, 25.51);
    }

    #[test]
    fn on_board_memory_never_limits() {
        let got = effective_mips(1e6, 64.0, TraceLink::OnBoardMemory);
        assert_eq!(got, 1e6);
    }

    #[test]
    #[should_panic(expected = "records cannot be free")]
    fn zero_bits_rejected() {
        effective_mips(1.0, 0.0, TraceLink::GigabitEthernet);
    }
}
