//! Parametric FPGA area model, calibrated against the paper's Table 4.
//!
//! Table 4 breaks the 4-wide reference design on a Virtex-4 (xc4vlx40)
//! into per-stage/per-structure percentages of 12 273 slices, 17 175
//! 4-input LUTs and 7 BRAMs, with BRAMs used only by the Branch Predictor
//! (71 %) and the I-cache tags (29 %). This module reproduces those
//! numbers exactly at the calibration point and extrapolates to other
//! configurations with documented first-order scaling laws (storage
//! scales with entry count, per-way logic with width, tag arrays with
//! set × way count). The paper notes the caches are tag-only — "we need
//! to provide only the hit/miss indication" — so a perfect-memory
//! configuration spends no cache area at all.
//!
//! Also here: the §IV parallel-fetch ablation (a 4-wide parallel fetch
//! unit measured 4× the cost of the serial one and 22 % slower — the
//! observation that motivated the whole serial minor-cycle design) and
//! multi-instance fitting (§VI: "it is possible to fit multiple ReSim
//! instances in a single FPGA").

use crate::device::FpgaDevice;
use resim_bpred::DirectionConfig;
use resim_core::EngineConfig;
use resim_mem::MemorySystemConfig;

/// Calibration anchors from Table 4 (percent of total, paper order).
/// (name, slices %, LUTs %, BRAM blocks).
const TABLE4: [(&str, f64, f64, u64); 12] = [
    ("fetch", 25.0, 23.0, 0),
    ("disp", 9.0, 5.0, 0),
    ("issue", 5.0, 7.0, 0),
    ("lsq", 14.0, 19.0, 0),
    ("wb", 3.0, 4.0, 0),
    ("cmt", 2.0, 2.0, 0),
    ("RT", 3.0, 4.0, 0),
    ("RB", 13.0, 14.0, 0),
    ("LSQ", 6.0, 4.0, 0),
    ("BP", 2.0, 2.0, 5),
    ("D-C", 17.0, 15.0, 0),
    ("I-C", 1.0, 1.0, 2),
];

/// Total resources of the calibration design (Table 4, last column).
const TABLE4_SLICES: f64 = 12_273.0;
const TABLE4_LUTS: f64 = 17_175.0;

/// Resource usage of one stage or structure.
#[derive(Debug, Clone, PartialEq)]
pub struct StageArea {
    /// Structure name as in Table 4.
    pub name: &'static str,
    /// Estimated slices.
    pub slices: f64,
    /// Estimated 4-input LUTs.
    pub luts: f64,
    /// Estimated 18 Kb BRAM blocks.
    pub brams: u64,
}

/// A complete area estimate for one engine instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaEstimate {
    stages: Vec<StageArea>,
}

impl AreaEstimate {
    /// Per-structure breakdown, in Table 4 order.
    pub fn stages(&self) -> &[StageArea] {
        &self.stages
    }

    /// Total slices.
    pub fn total_slices(&self) -> f64 {
        self.stages.iter().map(|s| s.slices).sum()
    }

    /// Total LUTs.
    pub fn total_luts(&self) -> f64 {
        self.stages.iter().map(|s| s.luts).sum()
    }

    /// Total BRAM blocks.
    pub fn total_brams(&self) -> u64 {
        self.stages.iter().map(|s| s.brams).sum()
    }

    /// Percentage share of `name` in total slices.
    pub fn slice_percent(&self, name: &str) -> f64 {
        let total = self.total_slices();
        if total == 0.0 {
            return 0.0;
        }
        self.stages
            .iter()
            .find(|s| s.name == name)
            .map_or(0.0, |s| 100.0 * s.slices / total)
    }

    /// How many instances of this design fit on `device` (the §VI
    /// multi-core argument).
    pub fn instances_on(&self, device: FpgaDevice) -> u64 {
        let by_slices = (device.slices() as f64 / self.total_slices()).floor() as u64;
        let brams = self.total_brams();
        let by_brams = device.brams().checked_div(brams).unwrap_or(u64::MAX);
        by_slices.min(by_brams)
    }
}

/// The calibrated, parametric area estimator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AreaModel;

impl AreaModel {
    /// Creates the model.
    pub fn new() -> Self {
        Self
    }

    /// The configuration Table 4 measures: the paper's 4-wide reference
    /// machine with the 32 KB L1 caches attached.
    pub fn calibration_config() -> EngineConfig {
        EngineConfig {
            memory: MemorySystemConfig::l1_32k(),
            ..EngineConfig::paper_4wide()
        }
    }

    /// Estimates the per-structure area of `config`.
    ///
    /// At [`AreaModel::calibration_config`] this returns Table 4's
    /// absolute numbers exactly; elsewhere each structure scales with
    /// its governing parameters (first-order models, documented inline).
    ///
    /// The six per-stage logic rows (`fetch` … `cmt`) are charged only
    /// when the configuration's pipeline description maps a stage row
    /// onto them (its *area keys*): an organization without, say, a
    /// bookkeeping writeback row spends no `wb` logic. The storage
    /// structures (RT/RB/LSQ/BP and the caches) exist regardless of the
    /// minor-cycle organization and are always charged. All three
    /// built-ins carry all six keys, so their estimates equal the
    /// original closed-world model.
    pub fn estimate(&self, config: &EngineConfig) -> AreaEstimate {
        let cal = Self::calibration_config();
        let w = config.width as f64 / cal.width as f64;
        let ifq = config.ifq_size as f64 / cal.ifq_size as f64;
        let rb = config.rb_size as f64 / cal.rb_size as f64;
        let lsq = config.lsq_size as f64 / cal.lsq_size as f64;
        let fus = (config.fus.alus + config.fus.mults + config.fus.divs) as f64
            / (cal.fus.alus + cal.fus.mults + cal.fus.divs) as f64;
        let area_keys = config.pipeline.area_keys();

        let stages = TABLE4
            .iter()
            .map(|&(name, s_pct, l_pct, brams)| {
                let is_stage_logic = resim_core::STAGE_AREA_KEYS.contains(&name);
                if is_stage_logic && !area_keys.contains(&name) {
                    return StageArea {
                        name,
                        slices: 0.0,
                        luts: 0.0,
                        brams: 0,
                    };
                }
                let scale = self.scale_of(name, config, w, ifq, rb, lsq, fus);
                let brams_scaled = self.brams_of(name, config, brams);
                StageArea {
                    name,
                    slices: s_pct / 100.0 * TABLE4_SLICES * scale,
                    luts: l_pct / 100.0 * TABLE4_LUTS * scale,
                    brams: brams_scaled,
                }
            })
            .collect();
        AreaEstimate { stages }
    }

    /// First-order slice/LUT scaling of each structure.
    #[allow(clippy::too_many_arguments)]
    fn scale_of(
        &self,
        name: &str,
        config: &EngineConfig,
        w: f64,
        ifq: f64,
        rb: f64,
        lsq: f64,
        fus: f64,
    ) -> f64 {
        let cal = Self::calibration_config();
        match name {
            // Fetch logic scales with width, its IFQ storage with depth.
            "fetch" => 0.6 * w + 0.4 * ifq,
            // Dispatch and the decouple buffer are per-way logic.
            "disp" => w,
            // Select logic grows with width and the FU count.
            "issue" => 0.5 * w + 0.5 * fus,
            // The lsq_refresh CAM compares every load against every
            // older store: entries × width effects.
            "lsq" => 0.5 * lsq + 0.5 * (lsq * w).sqrt(),
            // Writeback/commit are per-way multiplexing.
            "wb" | "cmt" => w,
            // The rename table is a fixed 64-entry map; its read/write
            // port count follows width.
            "RT" => 0.4 + 0.6 * w,
            // RB storage dominates; ports add a width term.
            "RB" => 0.7 * rb + 0.3 * rb * w,
            // LSQ payload storage.
            "LSQ" => lsq,
            // Predictor slice logic follows the RAS and BTB control
            // (tables live in BRAM).
            "BP" => {
                let ras = config.predictor.ras_entries as f64 / cal.predictor.ras_entries as f64;
                0.5 + 0.5 * ras
            }
            // Tag-only caches: distributed-RAM tag arrays scale with
            // set × way count; a perfect memory system has no caches.
            "D-C" | "I-C" => match config.memory {
                MemorySystemConfig::Perfect { .. } => 0.0,
                MemorySystemConfig::Split { l1i, l1d } => {
                    let c = if name == "D-C" { l1d } else { l1i };
                    let (cal_i, cal_d) = match Self::calibration_config().memory {
                        MemorySystemConfig::Split { l1i, l1d } => (l1i, l1d),
                        MemorySystemConfig::Perfect { .. } => unreachable!("calibration has caches"),
                    };
                    let cal_c = if name == "D-C" { cal_d } else { cal_i };
                    (c.sets() * c.associativity) as f64
                        / (cal_c.sets() * cal_c.associativity) as f64
                }
            },
            _ => 1.0,
        }
    }

    /// BRAM scaling: predictor tables and I-cache tags.
    fn brams_of(&self, name: &str, config: &EngineConfig, cal_brams: u64) -> u64 {
        match name {
            "BP" => {
                // Calibrated: the paper's PHT-4096 + BTB-512 + RAS uses 5
                // blocks; scale with total predictor table bits.
                let bits = |cfg: &resim_bpred::PredictorConfig| -> f64 {
                    let dir_bits = match cfg.direction {
                        DirectionConfig::TwoLevel(t) => {
                            (t.l2_size as f64) * t.counter_bits as f64
                                + t.l1_size as f64 * t.history_bits as f64
                        }
                        DirectionConfig::Bimodal { size } => size as f64 * 2.0,
                        _ => 0.0,
                    };
                    // BTB entry: ~21-bit tag + 32-bit target.
                    dir_bits + cfg.btb.entries as f64 * 53.0 + cfg.ras_entries as f64 * 32.0
                };
                let cal = Self::calibration_config();
                let ratio = bits(&config.predictor) / bits(&cal.predictor);
                (cal_brams as f64 * ratio).ceil() as u64
            }
            "I-C" => match config.memory {
                MemorySystemConfig::Perfect { .. } => 0,
                MemorySystemConfig::Split { l1i, .. } => {
                    let cal_sets_ways = 64.0 * 8.0;
                    let ratio = (l1i.sets() * l1i.associativity) as f64 / cal_sets_ways;
                    (cal_brams as f64 * ratio).ceil() as u64
                }
            },
            _ => cal_brams,
        }
    }
}

/// The §IV parallel-fetch ablation: what an N-way *parallel* engine
/// front end would cost relative to the serial one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchAblation {
    /// Area multiple of the parallel unit over the serial unit.
    pub area_ratio: f64,
    /// Clock-frequency multiple (below 1.0: parallel is slower).
    pub freq_ratio: f64,
}

/// Models the measured §IV data point — "besides the four-fold increase
/// in cost, the unit was also 22 % slower than fetching a single
/// instruction" — and extrapolates to other widths (cost grows with the
/// port count, frequency degrades with mux depth ~ log₂ N).
pub fn parallel_fetch_ablation(width: usize) -> FetchAblation {
    assert!(width >= 1, "width must be at least 1");
    let n = width as f64;
    FetchAblation {
        area_ratio: n,
        freq_ratio: 1.0 - 0.22 * (n.log2() / 4f64.log2()).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_point_reproduces_table4() {
        let est = AreaModel::new().estimate(&AreaModel::calibration_config());
        assert!((est.total_slices() - TABLE4_SLICES).abs() < 1.0);
        assert!((est.total_luts() - TABLE4_LUTS).abs() < 1.0);
        assert_eq!(est.total_brams(), 7);
        // Spot-check the headline percentages.
        assert!((est.slice_percent("fetch") - 25.0).abs() < 0.1);
        assert!((est.slice_percent("D-C") - 17.0).abs() < 0.1);
        assert!((est.slice_percent("RB") - 13.0).abs() < 0.1);
        let bp = est.stages().iter().find(|s| s.name == "BP").unwrap();
        assert_eq!(bp.brams, 5);
    }

    #[test]
    fn perfect_memory_drops_cache_area() {
        let est = AreaModel::new().estimate(&EngineConfig::paper_4wide());
        assert_eq!(est.slice_percent("D-C"), 0.0);
        let ic = est.stages().iter().find(|s| s.name == "I-C").unwrap();
        assert_eq!(ic.brams, 0);
        assert!(est.total_slices() < TABLE4_SLICES);
    }

    #[test]
    fn area_monotone_in_structure_sizes() {
        let base = AreaModel::new().estimate(&AreaModel::calibration_config());
        let bigger = EngineConfig {
            rb_size: 64,
            lsq_size: 32,
            ifq_size: 32,
            ..AreaModel::calibration_config()
        };
        let big = AreaModel::new().estimate(&bigger);
        assert!(big.total_slices() > base.total_slices());
    }

    #[test]
    fn width_scales_per_way_logic() {
        let cal = AreaModel::calibration_config();
        let w8 = EngineConfig {
            width: 8,
            mem_read_ports: 2,
            ..cal.clone()
        };
        let a4 = AreaModel::new().estimate(&cal);
        let a8 = AreaModel::new().estimate(&w8);
        let pick = |e: &AreaEstimate, n: &str| {
            e.stages().iter().find(|s| s.name == n).unwrap().slices
        };
        assert!((pick(&a8, "wb") / pick(&a4, "wb") - 2.0).abs() < 1e-9);
        assert!(pick(&a8, "fetch") > pick(&a4, "fetch"));
    }

    #[test]
    fn custom_descriptions_pay_only_their_stage_logic() {
        use resim_core::{PipelineDescription, SlotExpr, StageRow};
        // A two-row organization touching only fetch and commit logic.
        let skeleton = PipelineDescription::new(
            "skeleton",
            true,
            false,
            vec![
                StageRow::per_way("Fetch", "F", SlotExpr::new(1, 0, 0)),
                StageRow::per_way("Commit", "C", SlotExpr::new(1, 0, 1)),
            ],
        );
        let config = EngineConfig {
            pipeline: skeleton,
            ..AreaModel::calibration_config()
        };
        let est = AreaModel::new().estimate(&config);
        let full = AreaModel::new().estimate(&AreaModel::calibration_config());
        for gone in ["disp", "issue", "lsq", "wb"] {
            assert_eq!(est.slice_percent(gone), 0.0, "{gone} logic must vanish");
        }
        // Stage logic shrinks; storage structures are untouched.
        assert!(est.total_slices() < full.total_slices());
        let pick = |e: &AreaEstimate, n: &str| e.stages().iter().find(|s| s.name == n).unwrap().slices;
        assert_eq!(pick(&est, "RB"), pick(&full, "RB"));
        assert_eq!(pick(&est, "BP"), pick(&full, "BP"));
        assert!(pick(&est, "fetch") > 0.0);
    }

    #[test]
    fn paper_design_fits_multiple_times_without_caches() {
        // §VI: "ReSim is also very small ... possible to fit multiple
        // ReSim instances in a single FPGA".
        let est = AreaModel::new().estimate(&EngineConfig::paper_4wide());
        assert!(est.instances_on(FpgaDevice::Virtex4Lx40) >= 1);
    }

    #[test]
    fn fast_area_comparison_shape() {
        // §V.C: FAST's 4-wide configuration is 29 230 slices and 172
        // BRAMs — "2.4 times and 24 times larger" than ReSim.
        let est = AreaModel::new().estimate(&AreaModel::calibration_config());
        let slice_ratio = 29_230.0 / est.total_slices();
        let bram_ratio = 172.0 / est.total_brams() as f64;
        assert!((slice_ratio - 2.4).abs() < 0.1);
        assert!((bram_ratio - 24.0).abs() < 1.0);
    }

    #[test]
    fn ablation_matches_measured_point() {
        let a = parallel_fetch_ablation(4);
        assert_eq!(a.area_ratio, 4.0);
        assert!((a.freq_ratio - 0.78).abs() < 1e-9);
        let serial = parallel_fetch_ablation(1);
        assert_eq!(serial.freq_ratio, 1.0);
    }
}
