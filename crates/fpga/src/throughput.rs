//! Simulation-throughput model: from engine statistics to simulated MIPS.
//!
//! The hardware engine retires one simulated cycle per major cycle, and a
//! major cycle costs a fixed number of minor cycles (the pipeline
//! organization's latency). Its simulation speed is therefore
//!
//! ```text
//! major-cycle rate = f_minor / minor_cycles_per_major
//! MIPS             = major-cycle rate × IPC
//! ```
//!
//! which is exactly how the paper's Table 1 numbers arise (observe the
//! constant ×1.25 between the Virtex-4 and Virtex-5 columns — the clock
//! ratio). Table 3's "throughput including mis-speculated instructions"
//! replaces IPC with trace records processed per cycle, and the trace
//! bandwidth demand is that rate times bits-per-instruction.

use crate::device::FpgaDevice;
use resim_core::{EngineConfig, SimStats};
use resim_trace::TraceStats;

/// Simulated-speed figures for one run on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationSpeed {
    /// Major-cycle (simulated-cycle) rate in MHz.
    pub major_cycle_mhz: f64,
    /// Correct-path simulation speed in MIPS (Table 1).
    pub mips: f64,
    /// Speed including wrong-path records (Table 3).
    pub mips_including_wrong_path: f64,
    /// Trace bandwidth demand in MByte/s (Table 3), if trace statistics
    /// were supplied.
    pub trace_mbytes_per_sec: Option<f64>,
    /// Average trace bits per instruction, if supplied.
    pub bits_per_instruction: Option<f64>,
}

/// Computes simulated speeds from engine results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputModel {
    device: FpgaDevice,
}

impl ThroughputModel {
    /// A model for `device`.
    pub fn new(device: FpgaDevice) -> Self {
        Self { device }
    }

    /// The modelled device.
    pub fn device(self) -> FpgaDevice {
        self.device
    }

    /// The engine's major-cycle rate for `config`, in MHz.
    pub fn major_cycle_mhz(self, config: &EngineConfig) -> f64 {
        self.device.minor_cycle_mhz() / config.minor_cycles_per_major() as f64
    }

    /// Converts a run's statistics into simulated speed.
    ///
    /// Pass the encoded trace's [`TraceStats`] to also obtain the
    /// Table 3 bandwidth columns.
    pub fn speed(
        self,
        config: &EngineConfig,
        stats: &SimStats,
        trace: Option<&TraceStats>,
    ) -> SimulationSpeed {
        let major_mhz = self.major_cycle_mhz(config);
        let mips = major_mhz * stats.ipc();
        let mips_wp = major_mhz * stats.processed_per_cycle();
        let bits = trace.map(|t| t.bits_per_instruction());
        let mbytes = bits.map(|b| mips_wp * 1e6 * b / 8.0 / 1e6);
        SimulationSpeed {
            major_cycle_mhz: major_mhz,
            mips,
            mips_including_wrong_path: mips_wp,
            trace_mbytes_per_sec: mbytes,
            bits_per_instruction: bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resim_core::PipelineOrganization;

    fn stats(cycles: u64, committed: u64, wrong: u64) -> SimStats {
        SimStats {
            cycles,
            committed,
            wrong_path_fetched: wrong,
            ..SimStats::default()
        }
    }

    #[test]
    fn paper_4wide_major_rate() {
        // N+3 = 7 minor cycles at 84 / 105 MHz -> 12 / 15 M major/s.
        let cfg = EngineConfig::paper_4wide();
        let v4 = ThroughputModel::new(FpgaDevice::Virtex4Lx40).major_cycle_mhz(&cfg);
        let v5 = ThroughputModel::new(FpgaDevice::Virtex5Lx50t).major_cycle_mhz(&cfg);
        assert!((v4 - 12.0).abs() < 1e-9);
        assert!((v5 - 15.0).abs() < 1e-9);
    }

    #[test]
    fn mips_is_rate_times_ipc() {
        // IPC 2.0 on the 4-wide machine: 24 MIPS on V4 — squarely in
        // Table 1's 20–28 MIPS band.
        let cfg = EngineConfig::paper_4wide();
        let m = ThroughputModel::new(FpgaDevice::Virtex4Lx40);
        let s = m.speed(&cfg, &stats(1000, 2000, 0), None);
        assert!((s.mips - 24.0).abs() < 1e-9);
        assert_eq!(s.trace_mbytes_per_sec, None);
    }

    #[test]
    fn v5_is_exactly_25_percent_faster() {
        let cfg = EngineConfig::paper_4wide();
        let st = stats(1000, 1940, 110);
        let v4 = ThroughputModel::new(FpgaDevice::Virtex4Lx40).speed(&cfg, &st, None);
        let v5 = ThroughputModel::new(FpgaDevice::Virtex5Lx50t).speed(&cfg, &st, None);
        assert!((v5.mips / v4.mips - 1.25).abs() < 1e-12);
    }

    #[test]
    fn wrong_path_raises_processed_rate() {
        let cfg = EngineConfig::paper_4wide();
        let m = ThroughputModel::new(FpgaDevice::Virtex4Lx40);
        let s = m.speed(&cfg, &stats(1000, 2000, 200), None);
        assert!(s.mips_including_wrong_path > s.mips);
        let ratio = s.mips_including_wrong_path / s.mips;
        assert!((ratio - 1.1).abs() < 1e-9, "10% wrong-path overhead");
    }

    #[test]
    fn two_wide_improved_matches_table1_band() {
        // Table 1 right: N+4 = 6 minor cycles, 84 MHz -> 14 M major/s;
        // an IPC of 1.46 gives gzip's 20.44 MIPS.
        let cfg = EngineConfig::paper_2wide_cached();
        assert_eq!(cfg.pipeline, PipelineOrganization::ImprovedSerial.description());
        let m = ThroughputModel::new(FpgaDevice::Virtex4Lx40);
        let s = m.speed(&cfg, &stats(10_000, 14_600, 0), None);
        assert!((s.mips - 20.44).abs() < 0.01);
    }

    #[test]
    fn bandwidth_columns_from_trace_stats() {
        use resim_trace::{OpClass, OtherRecord, Trace, TraceRecord};
        let t: Trace = (0..100u32)
            .map(|i| {
                TraceRecord::Other(OtherRecord {
                    pc: i * 4,
                    class: OpClass::IntAlu,
                    dest: None,
                    src1: None,
                    src2: None,
                    wrong_path: false,
                })
            })
            .collect();
        let ts = t.stats();
        let cfg = EngineConfig::paper_4wide();
        let m = ThroughputModel::new(FpgaDevice::Virtex4Lx40);
        let s = m.speed(&cfg, &stats(100, 100, 0), Some(&ts));
        let bits = s.bits_per_instruction.unwrap();
        let expect = s.mips_including_wrong_path * bits / 8.0;
        assert!((s.trace_mbytes_per_sec.unwrap() - expect).abs() < 1e-9);
    }
}
