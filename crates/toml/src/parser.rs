//! The recursive-descent parser for the supported TOML subset.

use crate::error::Error;
use crate::value::{Spanned, Table, Value};
use std::collections::HashSet;

pub(crate) fn parse(input: &str) -> Result<Table, Error> {
    let mut p = Parser::new(input);
    let mut root = Table::new(0);
    // Path of the table currently receiving `key = value` pairs.
    let mut current: Vec<Spanned<String>> = Vec::new();
    // Explicitly defined `[headers]`, to reject duplicates.
    let mut defined: HashSet<String> = HashSet::new();

    loop {
        p.skip_trivia();
        let Some(c) = p.peek() else { break };
        if c == '[' {
            current = p.header(&mut root, &mut defined)?;
        } else {
            let line = p.line;
            let key = p.key()?;
            p.skip_ws();
            if p.peek() == Some('.') {
                return Err(Error::new(line, "dotted keys are not supported"));
            }
            if p.peek() != Some('=') {
                return Err(Error::new(line, format!("expected `=` after key {:?}", key.value)));
            }
            p.bump();
            p.skip_ws();
            let value = p.value()?;
            p.end_of_line()?;
            navigate(&mut root, &current)?.insert(key, value)?;
        }
    }
    Ok(root)
}

/// Walks `path` from `root`, creating implicit tables and descending into
/// the last element of arrays of tables, TOML-style.
fn navigate<'t>(mut table: &'t mut Table, path: &[Spanned<String>]) -> Result<&'t mut Table, Error> {
    for seg in path {
        if table.get(&seg.value).is_none() {
            let sub = Value::Table(Table::new(seg.line));
            table.insert(seg.clone(), Spanned::new(sub, seg.line))?;
        }
        let entry = table.get_mut(&seg.value).expect("just ensured");
        table = match &mut entry.value {
            Value::Table(sub) => sub,
            Value::Array(items) => match items.last_mut() {
                Some(Spanned {
                    value: Value::Table(sub),
                    ..
                }) => sub,
                _ => {
                    return Err(seg.error(format!(
                        "key {:?} is a plain array, not an array of tables",
                        seg.value
                    )))
                }
            },
            _ => {
                return Err(seg.error(format!(
                    "key {:?} is a value, not a table",
                    seg.value
                )))
            }
        };
    }
    Ok(table)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Parser {
    fn new(input: &str) -> Self {
        Self {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skips spaces and tabs.
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r')) {
            self.bump();
        }
    }

    /// Skips whitespace, comments and newlines.
    fn skip_trivia(&mut self) {
        loop {
            self.skip_ws();
            match self.peek() {
                Some('\n') => {
                    self.bump();
                }
                Some('#') => {
                    while !matches!(self.peek(), None | Some('\n')) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    /// Consumes trailing whitespace and an optional comment, then a
    /// newline or end of input.
    fn end_of_line(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.peek() == Some('#') {
            while !matches!(self.peek(), None | Some('\n')) {
                self.bump();
            }
        }
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(Error::new(
                self.line,
                format!("unexpected {c:?} after value (one `key = value` per line)"),
            )),
        }
    }

    /// Parses a `[header]` or `[[header]]` line and registers the table
    /// it opens; returns the new current path.
    fn header(
        &mut self,
        root: &mut Table,
        defined: &mut HashSet<String>,
    ) -> Result<Vec<Spanned<String>>, Error> {
        let line = self.line;
        self.bump(); // '['
        let is_array = self.peek() == Some('[');
        if is_array {
            self.bump();
        }
        let mut path = Vec::new();
        loop {
            self.skip_ws();
            path.push(self.key()?);
            self.skip_ws();
            match self.peek() {
                Some('.') => {
                    self.bump();
                }
                Some(']') => {
                    self.bump();
                    break;
                }
                _ => return Err(Error::new(line, "expected `.` or `]` in table header")),
            }
        }
        if is_array {
            if self.peek() != Some(']') {
                return Err(Error::new(line, "array-of-tables header must end with `]]`"));
            }
            self.bump();
        }
        self.end_of_line()?;

        let dotted = path
            .iter()
            .map(|s| s.value.as_str())
            .collect::<Vec<_>>()
            .join(".");
        let (last, parents) = path.split_last().expect("header has at least one key");
        let parent = navigate(root, parents)?;
        if is_array {
            // A fresh element opens a fresh header scope beneath it:
            // [a.sub] under the second [[a]] is not a redefinition of
            // [a.sub] under the first.
            let prefix = format!("{dotted}.");
            defined.retain(|d| !d.starts_with(&prefix));
            match parent.get_mut(&last.value) {
                None => {
                    let table = Spanned::new(Value::Table(Table::new(line)), line);
                    let arr = Value::Array(vec![table]);
                    parent.insert(last.clone(), Spanned::new(arr, line))?;
                }
                Some(entry) => match &mut entry.value {
                    Value::Array(items)
                        if matches!(
                            items.last(),
                            Some(Spanned {
                                value: Value::Table(_),
                                ..
                            })
                        ) =>
                    {
                        items.push(Spanned::new(Value::Table(Table::new(line)), line));
                    }
                    _ => {
                        return Err(Error::new(
                            line,
                            format!("[[{dotted}]] conflicts with an earlier definition"),
                        ))
                    }
                },
            }
        } else {
            if !defined.insert(dotted.clone()) {
                return Err(Error::new(line, format!("table [{dotted}] defined twice")));
            }
            match parent.get(&last.value) {
                Some(Spanned {
                    value: Value::Table(_),
                    ..
                }) => {} // re-use the implicitly created table
                Some(Spanned {
                    value: Value::Array(_),
                    ..
                }) => {
                    return Err(Error::new(
                        line,
                        format!("[{dotted}] conflicts with the array of tables [[{dotted}]]"),
                    ));
                }
                Some(_) => {
                    return Err(Error::new(
                        line,
                        format!("[{dotted}] conflicts with an earlier value"),
                    ));
                }
                None => {
                    let seg = Spanned::new(last.value.clone(), line);
                    navigate(parent, std::slice::from_ref(&seg))?;
                }
            }
        }
        Ok(path)
    }

    /// Parses a bare or quoted key.
    fn key(&mut self) -> Result<Spanned<String>, Error> {
        let line = self.line;
        match self.peek() {
            Some('"') | Some('\'') => {
                let v = self.string()?;
                let Value::Str(s) = v.value else { unreachable!() };
                Ok(Spanned::new(s, line))
            }
            Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Spanned::new(s, line))
            }
            Some(c) => Err(Error::new(line, format!("expected a key, found {c:?}"))),
            None => Err(Error::new(line, "expected a key, found end of input")),
        }
    }

    fn value(&mut self) -> Result<Spanned<Value>, Error> {
        let line = self.line;
        match self.peek() {
            Some('"') | Some('\'') => self.string(),
            Some('[') => self.array(),
            Some('{') => Err(Error::new(line, "inline tables are not supported")),
            Some('t') | Some('f') => self.boolean(),
            Some(c) if c.is_ascii_digit() || c == '+' || c == '-' || c == '.' => self.number(),
            Some(c) => Err(Error::new(line, format!("expected a value, found {c:?}"))),
            None => Err(Error::new(line, "expected a value, found end of input")),
        }
    }

    fn string(&mut self) -> Result<Spanned<Value>, Error> {
        let line = self.line;
        let quote = self.bump().expect("caller saw a quote");
        if self.peek() == Some(quote) && self.peek2() == Some(quote) {
            return Err(Error::new(line, "multi-line strings are not supported"));
        }
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => {
                    return Err(Error::new(line, "unterminated string"));
                }
                Some(c) if c == quote => break,
                Some('\\') if quote == '"' => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| {
                                    Error::new(line, "\\u escape needs 4 hex digits")
                                })?;
                            code = code * 16 + d;
                        }
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new(line, "invalid \\u escape"))?,
                        );
                    }
                    Some(c) => {
                        return Err(Error::new(line, format!("unknown escape \\{c}")));
                    }
                    None => return Err(Error::new(line, "unterminated string")),
                },
                Some(c) => s.push(c),
            }
        }
        Ok(Spanned::new(Value::Str(s), line))
    }

    fn array(&mut self) -> Result<Spanned<Value>, Error> {
        let line = self.line;
        self.bump(); // '['
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            match self.peek() {
                None => return Err(Error::new(line, "unterminated array")),
                Some(']') => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            items.push(self.value()?);
            self.skip_trivia();
            match self.peek() {
                Some(',') => {
                    self.bump();
                }
                Some(']') => {
                    self.bump();
                    break;
                }
                _ => {
                    return Err(Error::new(
                        self.line,
                        "expected `,` or `]` after array element",
                    ))
                }
            }
        }
        Ok(Spanned::new(Value::Array(items), line))
    }

    fn boolean(&mut self) -> Result<Spanned<Value>, Error> {
        let line = self.line;
        let word = self.word();
        match word.as_str() {
            "true" => Ok(Spanned::new(Value::Bool(true), line)),
            "false" => Ok(Spanned::new(Value::Bool(false), line)),
            other => Err(Error::new(line, format!("expected a value, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<Spanned<Value>, Error> {
        let line = self.line;
        let token = self.word();
        let clean: String = token.chars().filter(|&c| c != '_').collect();
        let (sign, digits) = match clean.strip_prefix('-') {
            Some(rest) => (-1i64, rest),
            None => (1i64, clean.strip_prefix('+').unwrap_or(&clean)),
        };
        let radix = match digits.get(..2) {
            Some("0x") | Some("0X") => Some(16),
            Some("0o") | Some("0O") => Some(8),
            Some("0b") | Some("0B") => Some(2),
            _ => None,
        };
        if let Some(radix) = radix {
            return i64::from_str_radix(&digits[2..], radix)
                .map(|v| Spanned::new(Value::Int(sign * v), line))
                .map_err(|_| Error::new(line, format!("invalid integer {token:?}")));
        }
        if clean.contains(['.', 'e', 'E']) {
            return clean
                .parse::<f64>()
                .map(|v| Spanned::new(Value::Float(v), line))
                .map_err(|_| Error::new(line, format!("invalid float {token:?}")));
        }
        clean.parse::<i64>().map(|v| Spanned::new(Value::Int(v), line)).map_err(|_| {
            if digits.contains('-') || digits.contains(':') {
                Error::new(line, format!("invalid number {token:?} (dates are not supported)"))
            } else {
                Error::new(line, format!("invalid number {token:?}"))
            }
        })
    }

    /// Consumes a run of token characters (used by numbers and booleans).
    fn word(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '+' | '-' | '.' | ':') {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_elements_reopen_subtable_scope() {
        let doc = parse(
            "[[run]]\n[run.engine]\nx = 1\n[[run]]\n[run.engine]\nx = 2\n",
        )
        .unwrap();
        let runs = doc.table_array("run").unwrap();
        assert_eq!(runs.len(), 2);
        let x = |t: &Table| {
            t.opt_table("engine").unwrap().unwrap().req_usize("x").unwrap()
        };
        assert_eq!(x(runs[0]), 1);
        assert_eq!(x(runs[1]), 2);
        // Within ONE element it is still a duplicate.
        assert!(parse("[[run]]\n[run.engine]\nx = 1\n[run.engine]\ny = 2\n").is_err());
    }

    #[test]
    fn headers_nesting_and_arrays_of_tables() {
        let doc = parse(
            r#"
top = 1
[a]
x = 2
[a.b]
y = 3
[[runs]]
n = 1
[[runs]]
n = 2
[runs-meta]
z = 4
"#,
        )
        .unwrap();
        assert_eq!(doc.req_usize("top").unwrap(), 1);
        let a = doc.opt_table("a").unwrap().unwrap();
        assert_eq!(a.req_usize("x").unwrap(), 2);
        assert_eq!(a.opt_table("b").unwrap().unwrap().req_usize("y").unwrap(), 3);
        let runs = doc.table_array("runs").unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].req_usize("n").unwrap(), 1);
        assert_eq!(runs[1].req_usize("n").unwrap(), 2);
        assert_eq!(runs[1].line(), 9, "array-of-tables entry carries its header line");
    }

    #[test]
    fn numbers_in_all_radixes() {
        let doc = parse(
            "a = 42\nb = -17\nc = 0xFEED_5EED\nd = 0o17\ne = 0b1010\nf = 1_000_000\ng = +5",
        )
        .unwrap();
        assert_eq!(doc.opt_i64("a").unwrap(), Some(42));
        assert_eq!(doc.opt_i64("b").unwrap(), Some(-17));
        assert_eq!(doc.opt_u64("c").unwrap(), Some(0xFEED_5EED));
        assert_eq!(doc.opt_i64("d").unwrap(), Some(0o17));
        assert_eq!(doc.opt_i64("e").unwrap(), Some(0b1010));
        assert_eq!(doc.opt_i64("f").unwrap(), Some(1_000_000));
        assert_eq!(doc.opt_i64("g").unwrap(), Some(5));
    }

    #[test]
    fn floats_and_bools() {
        let doc = parse("a = 0.5\nb = -1.25e2\nc = true\nd = false").unwrap();
        assert_eq!(doc.opt_f64("a").unwrap(), Some(0.5));
        assert_eq!(doc.opt_f64("b").unwrap(), Some(-125.0));
        assert_eq!(doc.opt_bool("c").unwrap(), Some(true));
        assert_eq!(doc.opt_bool("d").unwrap(), Some(false));
    }

    #[test]
    fn strings_with_escapes_and_literals() {
        let doc = parse(r#"a = "tab\there \"q\" A"
b = 'no \escapes'
"quoted key" = 1"#)
        .unwrap();
        assert_eq!(doc.opt_str("a").unwrap(), Some("tab\there \"q\" A"));
        assert_eq!(doc.opt_str("b").unwrap(), Some(r"no \escapes"));
        assert_eq!(doc.opt_i64("quoted key").unwrap(), Some(1));
    }

    #[test]
    fn multiline_arrays_with_comments() {
        let doc = parse(
            "seeds = [\n  1, # first\n  2,\n  3, # trailing comma is fine\n]\nafter = 9",
        )
        .unwrap();
        assert_eq!(doc.opt_u64_array("seeds").unwrap().unwrap(), vec![1, 2, 3]);
        assert_eq!(doc.opt_i64("after").unwrap(), Some(9));
        assert_eq!(doc.key_line("after"), 6);
    }

    #[test]
    fn nested_arrays() {
        let doc = parse("m = [[1, 2], [3]]").unwrap();
        let rows = doc.opt_array("m").unwrap().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(matches!(rows[0].value, Value::Array(ref v) if v.len() == 2));
    }

    #[test]
    fn error_lines_are_exact() {
        assert_eq!(parse("a = 1\nb = ").unwrap_err().line(), 2);
        assert_eq!(parse("a = 1\n\nb = \"open").unwrap_err().line(), 3);
        assert_eq!(parse("a = 1 2").unwrap_err().line(), 1);
        assert_eq!(parse("[t]\nx = 1\n[t]\n").unwrap_err().line(), 3);
        assert_eq!(parse("a = 1\na = 2").unwrap_err().line(), 2);
    }

    #[test]
    fn pointed_rejections_for_unsupported_syntax() {
        assert!(parse("a = {x = 1}").unwrap_err().to_string().contains("inline tables"));
        assert!(parse("a.b = 1").unwrap_err().to_string().contains("dotted keys"));
        assert!(parse("a = \"\"\"x\"\"\"").unwrap_err().to_string().contains("multi-line"));
        assert!(parse("a = 2009-05-01").unwrap_err().to_string().contains("dates"));
    }

    #[test]
    fn header_value_conflicts_are_errors() {
        assert!(parse("a = 1\n[a]\n").is_err());
        assert!(parse("[[a]]\n[a]\nx = 1").is_err(), "array then plain header");
        assert!(parse("a = [1]\n[[a]]\n").is_err(), "plain array then [[a]]");
    }

    #[test]
    fn empty_and_comment_only_documents() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("# just a comment\n\n").unwrap().is_empty());
    }
}
