//! The one error type shared by parsing and schema accessors.

use std::fmt;

/// A line-numbered TOML problem: a syntax error from [`parse`](crate::parse)
/// or a schema error from a [`Table`](crate::Table) accessor.
///
/// Displays as `line N: message`; front ends prefix the file name to get
/// `scenario.toml:N: message`. Line numbers are 1-based; line 0 means the
/// problem is not tied to a single line (e.g. a missing section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    line: u32,
    message: String,
}

impl Error {
    /// Creates an error pinned to a 1-based source line (0 = no line).
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line, or 0 when the error has no single line.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The diagnostic text without the line prefix.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Renders with a file-name prefix: `file.toml:12: message`.
    pub fn display_in(&self, file: &str) -> String {
        if self.line == 0 {
            format!("{file}: {}", self.message)
        } else {
            format!("{file}:{}: {}", self.line, self.message)
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_line() {
        let e = Error::new(12, "unknown key \"widht\"");
        assert_eq!(e.to_string(), "line 12: unknown key \"widht\"");
        assert_eq!(e.display_in("s.toml"), "s.toml:12: unknown key \"widht\"");
        let e = Error::new(0, "missing [engine] section");
        assert_eq!(e.to_string(), "missing [engine] section");
        assert_eq!(e.display_in("s.toml"), "s.toml: missing [engine] section");
    }
}
