//! A minimal, dependency-free JSON reader/writer for ReSim's wire
//! protocol (`resim-serve`), in the same spirit as the TOML reader:
//! just enough of the language, with **byte-offset diagnostics** so a
//! corrupted frame surfaces as a typed error rather than a panic or a
//! misparse.
//!
//! The supported subset:
//!
//! * objects, arrays, strings, booleans, `null`;
//! * integers in `i64` range and floats (anything with `.`/`e`);
//! * string escapes `\" \\ \/ \b \f \n \r \t \uXXXX` (surrogate pairs
//!   included);
//! * strict framing: exactly one value per document, nothing but
//!   whitespace after it, nesting bounded at [`MAX_DEPTH`].
//!
//! Rendering ([`JsonValue::render`]) is compact (no whitespace) and
//! deterministic — object keys render in insertion order — so a
//! rendered value is a stable single protocol line.

use std::fmt;

/// Nesting bound of the parser: deeper documents are rejected rather
/// than recursed into (a corrupt or hostile frame must not overflow
/// the stack).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no fraction or exponent spelled).
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order (duplicates are rejected at
    /// parse time).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks a member up by key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Renders the value as compact JSON (no whitespace, keys in
    /// insertion order). Round-trips through [`parse_json`] except that
    /// non-finite floats render as `null` (JSON has no spelling for
    /// them).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Float(v) => {
                if v.is_finite() {
                    // Always spell a fraction so the value re-parses as
                    // a float.
                    if *v == v.trunc() && v.abs() < 1e15 {
                        out.push_str(&format!("{v:.1}"));
                    } else {
                        out.push_str(&v.to_string());
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => render_json_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_json_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes and quotes `s` into `out` per JSON string rules.
fn render_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: what went wrong and the byte offset it was
/// noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON value from `input` (anything but whitespace
/// after it is an error).
///
/// ```
/// use resim_toml::json::{parse_json, JsonValue};
///
/// let v = parse_json(r#"{"verb":"submit","threads":2}"#).unwrap();
/// assert_eq!(v.get("verb").unwrap().as_str(), Some("submit"));
/// assert_eq!(v.get("threads").unwrap().as_u64(), Some(2));
/// assert!(parse_json("{\"a\":1} trailing").is_err());
/// ```
///
/// # Errors
///
/// A [`JsonError`] carrying the byte offset for syntax problems,
/// duplicate object keys, out-of-range integers, lone surrogates or
/// over-deep nesting.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(p.pos, "trailing data after the value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                self.pos,
                format!("expected {:?}", char::from(b)),
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::new(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.keyword("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(JsonError::new(
                self.pos,
                format!("unexpected byte 0x{c:02x}"),
            )),
            None => Err(JsonError::new(self.pos, "unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(self.pos, format!("expected {word:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(JsonError::new(key_at, format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(JsonError::new(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(JsonError::new(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let at = self.pos;
            match self.peek() {
                None => return Err(JsonError::new(at, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // A high surrogate needs its pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(JsonError::new(at, "invalid surrogate pair"));
                                    }
                                    let code =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(code)
                                        .ok_or_else(|| JsonError::new(at, "invalid code point"))?
                                } else {
                                    return Err(JsonError::new(at, "lone surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| JsonError::new(at, "lone surrogate"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(JsonError::new(at, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(JsonError::new(at, "unescaped control character"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let at = self.pos;
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError::new(at, "truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| JsonError::new(at, "bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError::new(at, "bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_at = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_at {
            return Err(JsonError::new(start, "invalid number"));
        }
        // Leading zeros are rejected like real JSON ("01" is two tokens
        // there, i.e. trailing garbage here).
        if self.pos - digits_at > 1 && self.bytes[digits_at] == b'0' {
            return Err(JsonError::new(start, "leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_at = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_at {
                return Err(JsonError::new(start, "invalid number"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_at = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_at {
                return Err(JsonError::new(start, "invalid number"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| JsonError::new(start, "invalid number"))
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|_| JsonError::new(start, "integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("-42").unwrap(), JsonValue::Int(-42));
        assert_eq!(parse_json("0").unwrap(), JsonValue::Int(0));
        assert_eq!(parse_json("2.5").unwrap(), JsonValue::Float(2.5));
        assert_eq!(parse_json("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(
            parse_json("\"hi\\n\\u0041\"").unwrap(),
            JsonValue::Str("hi\nA".into())
        );
    }

    #[test]
    fn containers_parse_and_accessors_work() {
        let v = parse_json(r#"{"a":[1,2.5,"x"],"b":{"c":null},"d":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_object().unwrap().len(), 3);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse_json("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("😀".into())
        );
        assert!(parse_json("\"\\ud83d\"").is_err(), "lone surrogate");
        assert!(parse_json("\"\\ud83d\\u0041\"").is_err(), "bad pair");
    }

    #[test]
    fn malformed_documents_are_offset_diagnostics() {
        for (input, what) in [
            ("", "end of input"),
            ("{", "expected"),
            ("{\"a\":}", "unexpected"),
            ("[1,]", "unexpected"),
            ("{\"a\":1,\"a\":2}", "duplicate"),
            ("tru", "true"),
            ("\"abc", "unterminated"),
            ("01", "leading zero"),
            ("1.", "invalid number"),
            ("1e", "invalid number"),
            ("9223372036854775808", "out of range"),
            ("{\"a\":1} x", "trailing"),
            ("\"\\q\"", "invalid escape"),
            ("\"\\u12\"", "truncated"),
        ] {
            let err = parse_json(input).unwrap_err();
            assert!(err.to_string().contains(what), "{input:?} → {err}");
        }
        // Over-deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse_json(&deep).unwrap_err().to_string().contains("deep"));
    }

    #[test]
    fn render_round_trips() {
        let v = parse_json(r#"{"a":[1,2.5,"x\n"],"b":{"c":null},"n":-3,"t":true}"#).unwrap();
        let rendered = v.render();
        assert_eq!(parse_json(&rendered).unwrap(), v);
        assert!(!rendered.contains(' '), "compact: {rendered}");
        // Whole floats keep a fraction so they re-parse as floats.
        assert_eq!(JsonValue::Float(2.0).render(), "2.0");
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Str("a\"b\\c\u{1}".into()).render(), "\"a\\\"b\\\\c\\u0001\"");
    }
}
