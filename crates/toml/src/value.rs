//! The parsed document model: spanned values and tables with typed,
//! line-diagnosing accessors.

use crate::error::Error;

/// A value plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub value: T,
    /// 1-based source line of the value (its key's line for pairs).
    pub line: u32,
}

impl<T> Spanned<T> {
    /// Wraps `value` with its source line.
    pub fn new(value: T, line: u32) -> Self {
        Self { value, line }
    }

    /// An [`Error`] pinned to this value's line.
    pub fn error(&self, message: impl Into<String>) -> Error {
        Error::new(self.line, message)
    }
}

/// A TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic or literal string.
    Str(String),
    /// An integer (decimal, `0x`, `0o` or `0b`).
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array; also the representation of an `[[array.of.tables]]`.
    Array(Vec<Spanned<Value>>),
    /// A nested table.
    Table(Table),
}

impl Value {
    /// The value's type name as used in diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// A TOML table: ordered `key = value` entries plus nested tables.
///
/// All typed accessors come in two flavours — `opt_*` returns
/// `Ok(None)` for an absent key, `req_*` turns absence into an
/// [`Error`] — and every type mismatch is reported with the offending
/// line:
///
/// ```
/// let t = resim_toml::parse("width = 4\nname = \"a\"").unwrap();
/// assert_eq!(t.opt_usize("width").unwrap(), Some(4));
/// assert_eq!(t.opt_usize("absent").unwrap(), None);
/// let err = t.req_usize("name").unwrap_err();
/// assert_eq!(err.line(), 2);
/// assert!(err.to_string().contains("expected integer"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    entries: Vec<(Spanned<String>, Spanned<Value>)>,
    /// Line of the `[header]` that opened this table (0 for the root).
    line: u32,
}

impl Table {
    /// Creates an empty table opened at `line` (0 for the root).
    pub fn new(line: u32) -> Self {
        Self {
            entries: Vec::new(),
            line,
        }
    }

    /// The line of this table's `[header]` (0 for the root table).
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Number of direct entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The keys in document order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.value.as_str())
    }

    /// Looks up a direct entry.
    pub fn get(&self, key: &str) -> Option<&Spanned<Value>> {
        self.entries
            .iter()
            .find(|(k, _)| k.value == key)
            .map(|(_, v)| v)
    }

    /// Inserts an entry; used by the parser.
    ///
    /// # Errors
    ///
    /// Rejects duplicate keys with the line of the second definition.
    pub(crate) fn insert(&mut self, key: Spanned<String>, value: Spanned<Value>) -> Result<(), Error> {
        if self.get(&key.value).is_some() {
            return Err(key.error(format!("duplicate key {:?}", key.value)));
        }
        self.entries.push((key, value));
        Ok(())
    }

    pub(crate) fn get_mut(&mut self, key: &str) -> Option<&mut Spanned<Value>> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k.value == key)
            .map(|(_, v)| v)
    }

    /// Errors on any key outside `allowed` — the typo guard every
    /// `from_table` constructor runs before reading its keys.
    pub fn ensure_only(&self, allowed: &[&str]) -> Result<(), Error> {
        for (k, _) in &self.entries {
            if !allowed.contains(&k.value.as_str()) {
                return Err(k.error(format!(
                    "unknown key {:?} (expected one of: {})",
                    k.value,
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// An [`Error`] pinned to this table's header line.
    pub fn error(&self, message: impl Into<String>) -> Error {
        Error::new(self.line, message)
    }

    fn missing(&self, key: &str, what: &str) -> Error {
        self.error(format!("missing required {what} key {key:?}"))
    }

    // --- typed accessors -------------------------------------------------

    /// Optional string.
    pub fn opt_str(&self, key: &str) -> Result<Option<&str>, Error> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match &v.value {
                Value::Str(s) => Ok(Some(s)),
                other => Err(v.error(format!(
                    "key {key:?}: expected string, found {}",
                    other.type_name()
                ))),
            },
        }
    }

    /// Required string.
    pub fn req_str(&self, key: &str) -> Result<&str, Error> {
        self.opt_str(key)?
            .ok_or_else(|| self.missing(key, "string"))
    }

    /// Optional integer.
    pub fn opt_i64(&self, key: &str) -> Result<Option<i64>, Error> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match v.value {
                Value::Int(i) => Ok(Some(i)),
                ref other => Err(v.error(format!(
                    "key {key:?}: expected integer, found {}",
                    other.type_name()
                ))),
            },
        }
    }

    /// Optional non-negative integer as `u64`.
    pub fn opt_u64(&self, key: &str) -> Result<Option<u64>, Error> {
        match self.opt_i64(key)? {
            None => Ok(None),
            Some(i) => u64::try_from(i).map(Some).map_err(|_| {
                self.value_error(key, format!("key {key:?} must be non-negative, got {i}"))
            }),
        }
    }

    /// Required non-negative integer as `u64`.
    pub fn req_u64(&self, key: &str) -> Result<u64, Error> {
        self.opt_u64(key)?
            .ok_or_else(|| self.missing(key, "integer"))
    }

    /// Optional non-negative integer as `usize` (range-checked, so
    /// 32-bit targets diagnose rather than truncate).
    pub fn opt_usize(&self, key: &str) -> Result<Option<usize>, Error> {
        match self.opt_u64(key)? {
            None => Ok(None),
            Some(v) => usize::try_from(v).map(Some).map_err(|_| {
                self.value_error(
                    key,
                    format!("key {key:?}: {v} does not fit in this platform's usize"),
                )
            }),
        }
    }

    /// Required non-negative integer as `usize`.
    pub fn req_usize(&self, key: &str) -> Result<usize, Error> {
        self.opt_usize(key)?
            .ok_or_else(|| self.missing(key, "integer"))
    }

    /// Optional non-negative integer as `u32`.
    pub fn opt_u32(&self, key: &str) -> Result<Option<u32>, Error> {
        match self.opt_u64(key)? {
            None => Ok(None),
            Some(v) => u32::try_from(v).map(Some).map_err(|_| {
                self.value_error(key, format!("key {key:?}: {v} does not fit in 32 bits"))
            }),
        }
    }

    /// Optional float (integers are accepted and widened).
    pub fn opt_f64(&self, key: &str) -> Result<Option<f64>, Error> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match v.value {
                Value::Float(f) => Ok(Some(f)),
                Value::Int(i) => Ok(Some(i as f64)),
                ref other => Err(v.error(format!(
                    "key {key:?}: expected float, found {}",
                    other.type_name()
                ))),
            },
        }
    }

    /// Optional boolean.
    pub fn opt_bool(&self, key: &str) -> Result<Option<bool>, Error> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match v.value {
                Value::Bool(b) => Ok(Some(b)),
                ref other => Err(v.error(format!(
                    "key {key:?}: expected boolean, found {}",
                    other.type_name()
                ))),
            },
        }
    }

    /// Optional raw array.
    pub fn opt_array(&self, key: &str) -> Result<Option<&[Spanned<Value>]>, Error> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match &v.value {
                Value::Array(items) => Ok(Some(items)),
                other => Err(v.error(format!(
                    "key {key:?}: expected array, found {}",
                    other.type_name()
                ))),
            },
        }
    }

    /// Optional array of strings, each with its source line.
    pub fn opt_str_array(&self, key: &str) -> Result<Option<Vec<Spanned<String>>>, Error> {
        let Some(items) = self.opt_array(key)? else {
            return Ok(None);
        };
        items
            .iter()
            .map(|it| match &it.value {
                Value::Str(s) => Ok(Spanned::new(s.clone(), it.line)),
                other => Err(it.error(format!(
                    "key {key:?}: expected an array of strings, found {} element",
                    other.type_name()
                ))),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some)
    }

    /// Optional array of non-negative integers.
    pub fn opt_u64_array(&self, key: &str) -> Result<Option<Vec<u64>>, Error> {
        let Some(items) = self.opt_array(key)? else {
            return Ok(None);
        };
        items
            .iter()
            .map(|it| match it.value {
                Value::Int(i) => u64::try_from(i).map_err(|_| {
                    it.error(format!("key {key:?}: array element must be non-negative"))
                }),
                ref other => Err(it.error(format!(
                    "key {key:?}: expected an array of integers, found {} element",
                    other.type_name()
                ))),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some)
    }

    /// Optional array of non-negative integers as `usize`
    /// (range-checked like [`Table::opt_usize`]).
    pub fn opt_usize_array(&self, key: &str) -> Result<Option<Vec<usize>>, Error> {
        match self.opt_u64_array(key)? {
            None => Ok(None),
            Some(values) => values
                .into_iter()
                .map(|v| {
                    usize::try_from(v).map_err(|_| {
                        self.value_error(
                            key,
                            format!(
                                "key {key:?}: {v} does not fit in this platform's usize"
                            ),
                        )
                    })
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }

    /// Optional nested table.
    pub fn opt_table(&self, key: &str) -> Result<Option<&Table>, Error> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => match &v.value {
                Value::Table(t) => Ok(Some(t)),
                other => Err(v.error(format!(
                    "key {key:?}: expected table, found {}",
                    other.type_name()
                ))),
            },
        }
    }

    /// The tables of an `[[array.of.tables]]` entry, empty when absent.
    ///
    /// A plain (non-table) array under `key` is an error.
    pub fn table_array(&self, key: &str) -> Result<Vec<&Table>, Error> {
        let Some(items) = self.opt_array(key)? else {
            return Ok(Vec::new());
        };
        items
            .iter()
            .map(|it| match &it.value {
                Value::Table(t) => Ok(t),
                other => Err(it.error(format!(
                    "key {key:?}: expected an array of tables, found {} element",
                    other.type_name()
                ))),
            })
            .collect()
    }

    /// Line of the value stored under `key` (the table's line if absent).
    pub fn key_line(&self, key: &str) -> u32 {
        self.get(key).map_or(self.line, |v| v.line)
    }

    fn value_error(&self, key: &str, message: String) -> Error {
        Error::new(self.key_line(key), message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        crate::parse(
            r#"name = "gzip"
width = 4
neg = -3
frac = 0.5
flag = true
seeds = [1, 2, 3]
names = ["a", "b"]
[sub]
x = 1
"#,
        )
        .unwrap()
    }

    #[test]
    fn typed_accessors() {
        let t = table();
        assert_eq!(t.req_str("name").unwrap(), "gzip");
        assert_eq!(t.req_usize("width").unwrap(), 4);
        assert_eq!(t.opt_i64("neg").unwrap(), Some(-3));
        assert_eq!(t.opt_f64("frac").unwrap(), Some(0.5));
        assert_eq!(t.opt_f64("width").unwrap(), Some(4.0), "ints widen");
        assert_eq!(t.opt_bool("flag").unwrap(), Some(true));
        assert_eq!(t.opt_u64_array("seeds").unwrap().unwrap(), vec![1, 2, 3]);
        let names = t.opt_str_array("names").unwrap().unwrap();
        assert_eq!(names[1].value, "b");
        assert_eq!(t.opt_table("sub").unwrap().unwrap().req_usize("x").unwrap(), 1);
    }

    #[test]
    fn absent_keys_are_none_or_missing() {
        let t = table();
        assert_eq!(t.opt_str("absent").unwrap(), None);
        assert_eq!(t.opt_table("absent").unwrap(), None);
        assert!(t.table_array("absent").unwrap().is_empty());
        let err = t.req_str("absent").unwrap_err();
        assert!(err.to_string().contains("missing required"));
    }

    #[test]
    fn type_mismatches_carry_lines() {
        let t = table();
        assert_eq!(t.req_usize("name").unwrap_err().line(), 1);
        assert_eq!(t.req_str("width").unwrap_err().line(), 2);
        assert_eq!(t.opt_u64("neg").unwrap_err().line(), 3);
        assert_eq!(t.opt_bool("frac").unwrap_err().line(), 4);
        assert_eq!(t.opt_array("flag").unwrap_err().line(), 5);
        assert!(t
            .opt_str_array("seeds")
            .unwrap_err()
            .to_string()
            .contains("array of strings"));
    }

    #[test]
    fn ensure_only_flags_typos() {
        let t = table();
        let err = t
            .ensure_only(&["name", "width", "neg", "frac", "flag", "seeds", "sub"])
            .unwrap_err();
        assert_eq!(err.line(), 7);
        assert!(err.to_string().contains("unknown key \"names\""), "{err}");
        assert!(t
            .ensure_only(&["name", "width", "neg", "frac", "flag", "seeds", "names", "sub"])
            .is_ok());
    }

    #[test]
    fn u32_range_is_checked() {
        let t = crate::parse("big = 4294967296").unwrap();
        assert!(t.opt_u32("big").unwrap_err().to_string().contains("32 bits"));
        let t = crate::parse("ok = 4294967295").unwrap();
        assert_eq!(t.opt_u32("ok").unwrap(), Some(u32::MAX));
    }
}
