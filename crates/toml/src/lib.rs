//! # resim-toml
//!
//! A minimal, dependency-free TOML reader for ReSim's declarative
//! scenario files, in the spirit of the offline shims under `vendor/`:
//! just enough of the language for configuration documents, with
//! **line-numbered diagnostics** so a mistyped scenario key surfaces as
//! `scenario.toml:12: unknown key "widht"` rather than a Rust compile
//! error or a silent default.
//!
//! The supported subset (see `docs/guide.md` for the scenario-file
//! reference built on top of it):
//!
//! * `[table]` and `[nested.table]` headers, `[[array.of.tables]]`;
//! * `key = value` pairs with bare (`a-zA-Z0-9_-`) or quoted keys;
//! * basic `"strings"` (with `\n \t \r \\ \" \u00XX` escapes) and
//!   literal `'strings'`;
//! * integers (decimal with `_` separators, `0x`/`0o`/`0b` prefixes),
//!   floats, booleans;
//! * arrays, which may span lines and carry a trailing comma;
//! * `#` comments.
//!
//! Unsupported on purpose (a scenario file needs none of them): dates,
//! multi-line strings, dotted keys and inline tables — each is rejected
//! with a pointed error instead of being misparsed.
//!
//! Every parsed [`Value`] is wrapped in a [`Spanned`] carrying its
//! source line, and every [`Table`] accessor returns an [`Error`]
//! pointing at the offending line, so configuration code built on this
//! crate (the `from_table` constructors across the `resim-*` crates)
//! reports schema problems with the same precision as syntax problems.
//!
//! ## Example
//!
//! ```
//! let doc = resim_toml::parse(r#"
//! [engine]
//! width = 4
//! pipeline = "optimized"
//!
//! [[sweep.config]]
//! name = "a"
//! "#).unwrap();
//!
//! let engine = doc.opt_table("engine").unwrap().expect("engine present");
//! assert_eq!(engine.req_usize("width").unwrap(), 4);
//! assert_eq!(engine.req_str("pipeline").unwrap(), "optimized");
//!
//! let sweep = doc.opt_table("sweep").unwrap().unwrap();
//! assert_eq!(sweep.table_array("config").unwrap().len(), 1);
//!
//! // Errors carry the source line of the offending construct.
//! let err = engine.req_str("width").unwrap_err();
//! assert_eq!(err.line(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod json;
mod parser;
mod value;

pub use error::Error;
pub use value::{Spanned, Table, Value};

/// Parses a TOML document into its root [`Table`].
///
/// # Errors
///
/// Returns a line-numbered [`Error`] on the first syntax problem.
pub fn parse(input: &str) -> Result<Table, Error> {
    parser::parse(input)
}
