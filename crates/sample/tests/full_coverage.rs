//! The sampled subsystem's correctness anchor: a plan covering 100 % of
//! the intervals is not an approximation at all — `run_sampled` must
//! reproduce `Engine::run` **bit-identically** (every `SimStats` field,
//! component counters included), for any workload, seed, interval length
//! and engine configuration.

use proptest::prelude::*;
use resim_core::{Engine, EngineConfig};
use resim_sample::{run_sampled, SamplePlan};
use resim_tracegen::{generate_trace, TraceGenConfig};
use resim_workloads::{SpecBenchmark, Workload};

fn config(cached: bool) -> EngineConfig {
    if cached {
        EngineConfig {
            memory: resim_mem::MemorySystemConfig::l1_32k(),
            ..EngineConfig::paper_4wide()
        }
    } else {
        EngineConfig::paper_4wide()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn full_coverage_plan_is_bit_identical_to_engine_run(
        bench_idx in 0usize..5,
        seed in 0u64..1_000,
        interval in prop_oneof![Just(64u64), Just(500), Just(1_000), Just(9_999)],
        cached in any::<bool>(),
        budget in 2_000usize..12_000,
    ) {
        let benchmark = SpecBenchmark::ALL[bench_idx];
        let trace = generate_trace(
            Workload::spec(benchmark, seed),
            budget,
            &TraceGenConfig::paper(),
        );
        let config = config(cached);

        let full = Engine::new(config.clone()).unwrap().run(trace.source());
        let sampled = run_sampled(&config, trace.source(), &SamplePlan::full_coverage(interval))
            .unwrap();

        prop_assert!(sampled.full_coverage);
        prop_assert_eq!(sampled.sim, full);
        prop_assert_eq!(sampled.records_total, trace.len() as u64);
        prop_assert_eq!(
            sampled.windows.iter().map(|w| w.records).sum::<u64>(),
            trace.len() as u64
        );
    }
}

/// The acceptance-criteria cell: a sampled sweep cell on the paper_4wide
/// configuration reports an IPC whose 95 % confidence interval contains
/// the full run's IPC.
#[test]
fn sampled_ci_contains_full_run_ipc_on_paper_config() {
    let trace = generate_trace(
        Workload::spec(SpecBenchmark::Gzip, 2009),
        80_000,
        &TraceGenConfig::paper(),
    );
    let config = EngineConfig::paper_4wide();
    let full = Engine::new(config.clone()).unwrap().run(trace.source());

    let plan = SamplePlan::systematic(5_000, 1_000, 2);
    let s = run_sampled(&config, trace.source(), &plan).unwrap();
    assert!(s.n_windows() >= 8, "windows: {}", s.n_windows());
    let (lo, hi) = s.ci95();
    assert!(
        s.ci95_contains(full.ipc()),
        "full IPC {:.4} outside sampled 95% CI [{lo:.4}, {hi:.4}]",
        full.ipc()
    );
    assert!(s.relative_error(full.ipc()) < 0.05);
}
