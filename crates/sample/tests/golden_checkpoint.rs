//! Golden vector pinning the `Checkpoint` serialization layout.
//!
//! Resumable sweeps park checkpoints on disk; the byte layout must
//! survive refactors. This test warms a tiny, fully-deterministic
//! configuration, serializes the checkpoint and compares it against a
//! pinned hex string bit for bit (and round-trips it). If the layout
//! changes **deliberately**, bump `CHECKPOINT_VERSION` in
//! `resim-core` and regenerate the vector printed by the failure
//! message.

use resim_bpred::{BtbConfig, DirectionConfig, PredictorConfig};
use resim_core::{Checkpoint, EngineConfig, CHECKPOINT_VERSION};
use resim_mem::{CacheConfig, MemorySystemConfig, Replacement};
use resim_sample::FunctionalWarmer;
use resim_trace::{
    BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OpClass, OtherRecord, TraceRecord,
};

/// A deliberately tiny machine so the golden vector stays readable:
/// 8-counter bimodal predictor, 4×2 BTB, 2-deep RAS, 128 B 2-way caches.
fn tiny_config() -> EngineConfig {
    EngineConfig {
        predictor: PredictorConfig {
            direction: DirectionConfig::Bimodal { size: 8 },
            btb: BtbConfig {
                entries: 8,
                associativity: 2,
            },
            ras_entries: 2,
        },
        memory: MemorySystemConfig::Split {
            l1i: CacheConfig {
                size_bytes: 128,
                block_bytes: 32,
                associativity: 2,
                replacement: Replacement::Lru,
                hit_latency: 1,
                miss_penalty: 10,
            },
            l1d: CacheConfig {
                size_bytes: 128,
                block_bytes: 32,
                associativity: 2,
                replacement: Replacement::Fifo,
                hit_latency: 1,
                miss_penalty: 10,
            },
        },
        ..EngineConfig::paper_4wide()
    }
}

fn warm_checkpoint() -> Checkpoint {
    let mut w = FunctionalWarmer::new(&tiny_config());
    let records = [
        TraceRecord::Branch(BranchRecord {
            pc: 0x100,
            target: 0x200,
            taken: true,
            kind: BranchKind::Call,
            src1: None,
            src2: None,
            wrong_path: false,
        }),
        TraceRecord::Mem(MemRecord {
            pc: 0x200,
            addr: 0x1040,
            size: MemSize::Word,
            kind: MemKind::Load,
            base: None,
            data: None,
            wrong_path: false,
        }),
        TraceRecord::Other(OtherRecord {
            pc: 0x204,
            class: OpClass::IntAlu,
            dest: None,
            src1: None,
            src2: None,
            wrong_path: false,
        }),
        TraceRecord::Branch(BranchRecord {
            pc: 0x208,
            target: 0x104,
            taken: true,
            kind: BranchKind::Return,
            src1: None,
            src2: None,
            wrong_path: false,
        }),
    ];
    for r in &records {
        w.warm_record(r);
    }
    w.checkpoint(records.len() as u64)
}

/// The pinned layout (version 1). Regenerate only on a deliberate,
/// version-bumped layout change.
const GOLDEN_HEX: &str = "5253434b010004000000000000000000\
                          00000800000002020202020202020800\
                          00001000000000020000000100000000\
                          00000000000000000000000000000000\
                          00000000000000000000200000000401\
                          00000001000000000000000000000000\
                          00000000000000000000000000000000\
                          00000200000004010000000000000000\
                          00000000000001040000000400000001\
                          00000001080000000000000001000000\
                          00000000000000000000000000000000\
                          000000157c4a7fb979379e0104000000\
                          41000000010000000100000000000000\
                          00000000000000000000000000000000\
                          0000000001000000157c4a7fb979379e";

fn golden_bytes() -> Vec<u8> {
    let hex: String = GOLDEN_HEX.chars().filter(|c| !c.is_whitespace()).collect();
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("valid hex"))
        .collect()
}

#[test]
fn layout_matches_golden_vector() {
    assert_eq!(CHECKPOINT_VERSION, 1, "layout changed: regenerate the golden vector");
    let bytes = warm_checkpoint().to_bytes();
    let actual: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(
        bytes,
        golden_bytes(),
        "checkpoint layout drifted; actual bytes:\n{actual}"
    );
}

#[test]
fn golden_vector_round_trips_bit_exactly() {
    let ck = Checkpoint::from_bytes(&golden_bytes()).expect("golden vector decodes");
    assert_eq!(ck, warm_checkpoint(), "decoded state matches the warm state");
    assert_eq!(ck.to_bytes(), golden_bytes(), "re-encode is bit-exact");
    assert_eq!(ck.position, 4);
}

#[test]
fn golden_checkpoint_resumes_the_tiny_engine() {
    use resim_core::Engine;
    let ck = Checkpoint::from_bytes(&golden_bytes()).unwrap();
    let engine = Engine::resume_from(tiny_config(), &ck).expect("geometry matches");
    let mut back = engine.snapshot();
    back.position = ck.position;
    assert_eq!(back, ck, "resume/snapshot round-trips the golden state");
}
