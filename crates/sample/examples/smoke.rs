//! CI smoke for sampled simulation: a small gzip trace, a 4-window plan,
//! asserting the sampled 95 % confidence interval contains the full
//! run's IPC and that the 100 %-coverage plan is bit-identical.
//!
//! Run with `cargo run --release -p resim-sample --example smoke`.
//! Exits non-zero (panics) on any violation, so CI can gate on it.

use resim_core::{Engine, EngineConfig};
use resim_sample::{run_sampled, SamplePlan};
use resim_tracegen::{generate_trace, TraceGenConfig};
use resim_workloads::{SpecBenchmark, Workload};

fn main() {
    let trace = generate_trace(
        Workload::spec(SpecBenchmark::Gzip, 2009),
        40_000,
        &TraceGenConfig::paper(),
    );
    let config = EngineConfig::paper_4wide();
    let full = Engine::new(config.clone()).expect("valid config").run(trace.source());

    // 4 sampled windows: detail 1k of every other 5k-record interval.
    let plan = SamplePlan::systematic(5_000, 1_000, 2);
    let s = run_sampled(&config, trace.source(), &plan).expect("valid plan");
    let (lo, hi) = s.ci95();
    println!(
        "sampled IPC {:.4} [{lo:.4}, {hi:.4}] over {} windows ({:.1}% detailed) vs full {:.4}",
        s.mean_ipc(),
        s.n_windows(),
        100.0 * s.detailed_fraction(),
        full.ipc(),
    );
    assert!(s.n_windows() >= 4, "expected >= 4 windows, got {}", s.n_windows());
    assert!(
        s.ci95_contains(full.ipc()),
        "full IPC {:.4} outside sampled CI [{lo:.4}, {hi:.4}]",
        full.ipc()
    );
    assert!(
        s.relative_error(full.ipc()) < 0.05,
        "relative error {:.2}% too high",
        100.0 * s.relative_error(full.ipc())
    );

    // And the exactness anchor: 100% coverage == Engine::run, bit for bit.
    let exact = run_sampled(&config, trace.source(), &SamplePlan::full_coverage(5_000))
        .expect("valid plan");
    assert_eq!(exact.sim, full, "100%-coverage plan must be bit-identical");
    println!("full-coverage plan bit-identical to Engine::run — ok");
}
