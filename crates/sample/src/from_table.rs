//! TOML scenario-file construction of sampling plans.
//!
//! Maps a `[sample]` table from a `resim` scenario file onto
//! [`SamplePlan`]. See `docs/guide.md` for the key reference.

use crate::plan::{SamplePlan, WarmupMode};
use resim_toml::{Error, Table};

impl SamplePlan {
    /// Builds a sampling plan from a `[sample]` table.
    ///
    /// Keys: `interval` (records per interval, required), `detailed`
    /// (detailed-window records, required), `period` (sample every
    /// n-th interval, default 1), `offset` (which interval within the
    /// period, default 0), `warmup` (`"functional"`, the default, or
    /// `"bounded"`) and `warmup_records` (required with — and only
    /// meaningful for — bounded warmup).
    ///
    /// The plan is validated ([`SamplePlan::validate`]), so a table
    /// that parses is a plan [`run_sampled`](crate::run_sampled)
    /// accepts.
    ///
    /// ```
    /// use resim_sample::{SamplePlan, WarmupMode};
    ///
    /// let t = resim_toml::parse(r#"
    /// interval = 4000
    /// detailed = 1000
    /// period = 2
    /// warmup = "bounded"
    /// warmup_records = 500
    /// "#).unwrap();
    /// let plan = SamplePlan::from_table(&t).unwrap();
    /// assert_eq!(plan.warmup, WarmupMode::Bounded(500));
    /// assert!((plan.coverage() - 0.125).abs() < 1e-12);
    /// ```
    ///
    /// # Errors
    ///
    /// A line-numbered [`Error`] for unknown keys, a missing
    /// `interval`/`detailed`, an unknown warmup mode, `warmup_records`
    /// without bounded warmup, or a plan failing validation (e.g. a
    /// detailed window longer than the interval).
    pub fn from_table(t: &Table) -> Result<Self, Error> {
        t.ensure_only(&[
            "interval",
            "detailed",
            "period",
            "offset",
            "warmup",
            "warmup_records",
        ])?;
        let warmup = match t.opt_str("warmup")?.unwrap_or("functional") {
            "functional" => {
                if t.get("warmup_records").is_some() {
                    return Err(Error::new(
                        t.key_line("warmup_records"),
                        "warmup_records only applies to warmup = \"bounded\"",
                    ));
                }
                WarmupMode::Functional
            }
            "bounded" => match t.opt_u64("warmup_records")? {
                Some(n) => WarmupMode::Bounded(n),
                None => {
                    return Err(Error::new(
                        t.key_line("warmup"),
                        "warmup = \"bounded\" requires warmup_records",
                    ))
                }
            },
            other => {
                return Err(Error::new(
                    t.key_line("warmup"),
                    format!("unknown warmup mode {other:?} (expected functional or bounded)"),
                ))
            }
        };
        let plan = SamplePlan {
            interval_records: t.req_u64("interval")?,
            detailed_records: t.req_u64("detailed")?,
            period: t.opt_u64("period")?.unwrap_or(1),
            offset: t.opt_u64("offset")?.unwrap_or(0),
            warmup,
        };
        plan.validate()
            .map_err(|e| Error::new(t.line(), format!("invalid sample plan: {e}")))?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<SamplePlan, Error> {
        SamplePlan::from_table(&resim_toml::parse(s).unwrap())
    }

    #[test]
    fn minimal_plan_is_full_coverage() {
        let p = parse("interval = 1000\ndetailed = 1000").unwrap();
        assert!(p.is_full_coverage());
        assert_eq!(p.warmup, WarmupMode::Functional);
    }

    #[test]
    fn systematic_plan_with_offset() {
        let p = parse("interval = 100\ndetailed = 10\nperiod = 4\noffset = 2").unwrap();
        assert_eq!(p, SamplePlan::systematic(100, 10, 4).with_offset(2));
    }

    #[test]
    fn required_keys_are_reported() {
        assert!(parse("detailed = 10").unwrap_err().to_string().contains("interval"));
        assert!(parse("interval = 10").unwrap_err().to_string().contains("detailed"));
    }

    #[test]
    fn warmup_modes() {
        assert!(parse("interval = 10\ndetailed = 5\nwarmup = \"bounded\"")
            .unwrap_err()
            .to_string()
            .contains("warmup_records"));
        // A present-but-invalid value keeps its precise diagnostic.
        let err = parse("interval = 10\ndetailed = 5\nwarmup = \"bounded\"\nwarmup_records = -1")
            .unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");
        assert_eq!(err.line(), 4);
        assert!(parse("interval = 10\ndetailed = 5\nwarmup_records = 3")
            .unwrap_err()
            .to_string()
            .contains("only applies"));
        assert!(parse("interval = 10\ndetailed = 5\nwarmup = \"oracle\"")
            .unwrap_err()
            .to_string()
            .contains("oracle"));
    }

    #[test]
    fn plan_validation_runs_with_table_context() {
        let err = parse("interval = 10\ndetailed = 20").unwrap_err();
        assert!(err.to_string().contains("exceeds the interval"), "{err}");
        assert!(parse("interval = 10\ndetailed = 5\nperiod = 2\noffset = 2").is_err());
    }

    #[test]
    fn unknown_keys_rejected() {
        let err = parse("interval = 10\ndetailed = 5\nintervall = 2").unwrap_err();
        assert_eq!(err.line(), 3);
    }
}
