//! Sampled-run statistics: per-window IPC and the confidence interval
//! around the mean.

use resim_core::SimStats;

/// One detailed window's measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowStats {
    /// Window ordinal (0-based).
    pub index: u64,
    /// Which trace interval the window opened.
    pub interval: u64,
    /// Trace record offset the window started at.
    pub start_record: u64,
    /// Trace records the window consumed (wrong-path included).
    pub records: u64,
    /// Correct-path instructions the window committed.
    pub committed: u64,
    /// Cycles the window took.
    pub cycles: u64,
}

impl WindowStats {
    /// This window's IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// Everything a sampled run produced.
///
/// The headline estimate is [`SampledStats::mean_ipc`] with a two-sided
/// 95 % confidence interval ([`SampledStats::ci95`]) computed from the
/// per-window IPC sample — SMARTS's estimator. `sim` carries the merged
/// [`SimStats`] of the detailed windows; under a 100 %-coverage plan it is
/// bit-identical to a plain [`Engine::run`](resim_core::Engine::run).
#[derive(Debug, Clone, PartialEq)]
pub struct SampledStats {
    /// Per-window measurements, trace order.
    pub windows: Vec<WindowStats>,
    /// Merged statistics of the detailed windows
    /// (full coverage ⇒ the exact full-run statistics).
    pub sim: SimStats,
    /// All trace records consumed (detailed + warmed + skipped).
    pub records_total: u64,
    /// Records simulated in detail.
    pub records_detailed: u64,
    /// Records consumed record-by-record by the warmup phase. Correct-path
    /// records warm the tables; wrong-path gap records (including residue
    /// dropped at a window boundary that landed inside a tagged block) are
    /// consumed here but leave no warm state.
    pub records_warmed: u64,
    /// Records skipped via the codec fast path.
    pub records_skipped: u64,
    /// Whether the run took the contiguous 100 %-coverage path.
    pub full_coverage: bool,
}

impl SampledStats {
    /// Number of detailed windows measured.
    pub fn n_windows(&self) -> usize {
        self.windows.len()
    }

    /// Mean of the per-window IPCs (the sampled IPC estimate).
    pub fn mean_ipc(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows.iter().map(|w| w.ipc()).sum::<f64>() / self.windows.len() as f64
    }

    /// Unbiased sample variance of the per-window IPCs (0 with < 2
    /// windows).
    pub fn variance(&self) -> f64 {
        let n = self.windows.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_ipc();
        self.windows
            .iter()
            .map(|w| {
                let d = w.ipc() - mean;
                d * d
            })
            .sum::<f64>()
            / (n - 1) as f64
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        (self.variance() / self.windows.len() as f64).sqrt()
    }

    /// Half-width of the two-sided 95 % confidence interval
    /// (Student's t for < 30 windows, 1.96 beyond).
    pub fn ci95_half_width(&self) -> f64 {
        if self.windows.len() < 2 {
            return 0.0;
        }
        t95(self.windows.len() - 1) * self.std_error()
    }

    /// The 95 % confidence interval `(low, high)` around the mean IPC.
    pub fn ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        let m = self.mean_ipc();
        (m - h, m + h)
    }

    /// Whether `ipc` (for example, the full run's) falls inside the 95 %
    /// confidence interval.
    pub fn ci95_contains(&self, ipc: f64) -> bool {
        let (lo, hi) = self.ci95();
        (lo..=hi).contains(&ipc)
    }

    /// Relative error of the sampled estimate against a reference IPC.
    pub fn relative_error(&self, reference_ipc: f64) -> f64 {
        if reference_ipc == 0.0 {
            return 0.0;
        }
        (self.mean_ipc() - reference_ipc).abs() / reference_ipc
    }

    /// Fraction of consumed records that ran in detail.
    pub fn detailed_fraction(&self) -> f64 {
        if self.records_total == 0 {
            return 0.0;
        }
        self.records_detailed as f64 / self.records_total as f64
    }
}

/// Two-sided 95 % Student-t critical value for `df` degrees of freedom
/// (normal approximation from 30 on — the windows of any useful plan are
/// i.i.d. enough for SMARTS's estimator, and so for this table).
fn t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(index: u64, committed: u64, cycles: u64) -> WindowStats {
        WindowStats {
            index,
            interval: index,
            start_record: index * 1000,
            records: committed,
            committed,
            cycles,
        }
    }

    fn stats(windows: Vec<WindowStats>) -> SampledStats {
        SampledStats {
            windows,
            sim: SimStats::default(),
            records_total: 10_000,
            records_detailed: 1_000,
            records_warmed: 9_000,
            records_skipped: 0,
            full_coverage: false,
        }
    }

    #[test]
    fn empty_run_has_zero_estimates() {
        let s = stats(vec![]);
        assert_eq!(s.mean_ipc(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn identical_windows_have_zero_width_interval() {
        let s = stats((0..8).map(|i| window(i, 2_000, 1_000)).collect());
        assert!((s.mean_ipc() - 2.0).abs() < 1e-12);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95(), (2.0, 2.0));
        assert!(s.ci95_contains(2.0));
        assert!(!s.ci95_contains(2.0001));
    }

    #[test]
    fn interval_widens_with_spread_and_narrows_with_count() {
        let spread = stats(vec![window(0, 1_000, 1_000), window(1, 3_000, 1_000)]);
        let tight = stats(vec![window(0, 1_900, 1_000), window(1, 2_100, 1_000)]);
        assert!(spread.ci95_half_width() > tight.ci95_half_width());

        let few = stats((0..4).map(|i| window(i, 2_000 + (i % 2) * 100, 1_000)).collect());
        let many = stats(
            (0..64)
                .map(|i| window(i, 2_000 + (i % 2) * 100, 1_000))
                .collect(),
        );
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn t_table_monotone_toward_normal() {
        assert!(t95(1) > t95(2));
        assert!(t95(29) > t95(30));
        assert_eq!(t95(31), 1.96);
        assert_eq!(t95(0), f64::INFINITY);
    }

    #[test]
    fn relative_error_and_fractions() {
        let s = stats(vec![window(0, 2_100, 1_000), window(1, 2_100, 1_000)]);
        assert!((s.relative_error(2.0) - 0.05).abs() < 1e-12);
        assert!((s.detailed_fraction() - 0.1).abs() < 1e-12);
    }
}
