//! The sampled-simulation driver.

use crate::plan::{PlanError, SamplePlan, WarmupMode};
use crate::stats::{SampledStats, WindowStats};
use crate::warm::FunctionalWarmer;
use resim_core::{Engine, EngineConfig, ResumeError, SimStats, TraceCursor};
use resim_trace::TraceSource;
use std::error::Error;
use std::fmt;

/// Reasons a sampled run cannot start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleError {
    /// The plan is degenerate.
    Plan(PlanError),
    /// The engine configuration is invalid, or a checkpoint/config
    /// geometry mismatch occurred.
    Resume(ResumeError),
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Plan(e) => write!(f, "invalid sample plan: {e}"),
            SampleError::Resume(e) => write!(f, "cannot build sampling engine: {e}"),
        }
    }
}

impl Error for SampleError {}

impl From<PlanError> for SampleError {
    fn from(e: PlanError) -> Self {
        SampleError::Plan(e)
    }
}

impl From<ResumeError> for SampleError {
    fn from(e: ResumeError) -> Self {
        SampleError::Resume(e)
    }
}

/// Runs `source` under `plan` on an engine configured as `config`.
///
/// Two execution paths, chosen by the plan:
///
/// * **100 % coverage** ([`SamplePlan::is_full_coverage`]) — one engine,
///   one [`TraceCursor`], windowed contiguously with
///   [`Engine::run_window`]: the returned `sim` statistics are
///   **bit-identical** to a single [`Engine::run`] over the same source,
///   and every interval still yields a [`WindowStats`] for the CI
///   machinery.
/// * **sampled** — between detailed windows the records are functionally
///   warmed (or skipped, per [`WarmupMode`]); at each sampling point the
///   warm state is sealed into a checkpoint, a detailed engine is built
///   with [`Engine::resume_from`], runs its window to drain, and hands
///   its (further-trained) state back to the warmer. Per-window
///   statistics merge through [`SimStats::merge`].
///
/// # Errors
///
/// [`SampleError`] if the plan fails validation or the configuration is
/// invalid. A well-formed plan over any source never errors mid-run.
pub fn run_sampled<S: TraceSource>(
    config: &EngineConfig,
    source: S,
    plan: &SamplePlan,
) -> Result<SampledStats, SampleError> {
    plan.validate()?;
    if plan.is_full_coverage() {
        run_full_coverage(config, source, plan)
    } else {
        run_checkpointed(config, source, plan)
    }
}

/// The contiguous fast path: no checkpoints, no warmup, exact statistics.
fn run_full_coverage<S: TraceSource>(
    config: &EngineConfig,
    source: S,
    plan: &SamplePlan,
) -> Result<SampledStats, SampleError> {
    let mut engine = Engine::new(config.clone()).map_err(ResumeError::Config)?;
    let mut cursor = TraceCursor::new(source);
    let mut windows: Vec<WindowStats> = Vec::new();
    let mut prev = SimStats::default();
    loop {
        let start = cursor.consumed();
        engine.run_window(&mut cursor, plan.interval_records);
        let taken = cursor.consumed() - start;
        if taken == 0 {
            break;
        }
        let now = engine.stats();
        windows.push(WindowStats {
            index: windows.len() as u64,
            interval: windows.len() as u64,
            start_record: start,
            records: taken,
            committed: now.committed - prev.committed,
            cycles: now.cycles - prev.cycles,
        });
        prev = now;
    }
    let sim = engine.drain(&mut cursor);
    // The drain tail (in-flight work after the last fetched record)
    // belongs to the last window.
    if let Some(last) = windows.last_mut() {
        last.committed += sim.committed - prev.committed;
        last.cycles += sim.cycles - prev.cycles;
    }
    let total = cursor.consumed();
    Ok(SampledStats {
        windows,
        sim,
        records_total: total,
        records_detailed: total,
        records_warmed: 0,
        records_skipped: 0,
        full_coverage: true,
    })
}

/// One-record lookahead over a [`TraceSource`]: the checkpointed runner
/// must see whether a window boundary landed inside a wrong-path block
/// without losing the record it peeked at.
struct Peekable<S: TraceSource> {
    src: S,
    buf: Option<resim_trace::TraceRecord>,
}

impl<S: TraceSource> Peekable<S> {
    fn peek(&mut self) -> Option<&resim_trace::TraceRecord> {
        if self.buf.is_none() {
            self.buf = self.src.next_record();
        }
        self.buf.as_ref()
    }
}

impl<S: TraceSource> TraceSource for Peekable<S> {
    fn next_record(&mut self) -> Option<resim_trace::TraceRecord> {
        self.buf.take().or_else(|| self.src.next_record())
    }

    fn len_hint(&self) -> Option<u64> {
        self.src
            .len_hint()
            .map(|n| n + u64::from(self.buf.is_some()))
    }

    fn skip(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let buffered = u64::from(self.buf.take().is_some());
        buffered + self.src.skip(n - buffered)
    }
}

/// The sampled path: warm/skip the gaps, checkpoint at each sampling
/// point, run detailed windows on resumed engines.
fn run_checkpointed<S: TraceSource>(
    config: &EngineConfig,
    source: S,
    plan: &SamplePlan,
) -> Result<SampledStats, SampleError> {
    let mut source = Peekable { src: source, buf: None };
    let mut warmer = FunctionalWarmer::new(config);
    let mut windows: Vec<WindowStats> = Vec::new();
    let mut merged = SimStats::default();
    let mut position: u64 = 0;
    let (mut detailed, mut warmed, mut skipped) = (0u64, 0u64, 0u64);
    let mut interval = plan.offset;

    while let Some(window_start) = interval.checked_mul(plan.interval_records) {
        // --- the gap up to the next sampling point ---
        // (`saturating_sub` because wrong-path residue, below, can push
        // `position` slightly past a window's nominal start)
        let gap = window_start.saturating_sub(position);
        let (to_skip, to_warm) = match plan.warmup {
            WarmupMode::Functional => (0, gap),
            WarmupMode::Bounded(n) => (gap.saturating_sub(n), gap.min(n)),
        };
        if to_skip > 0 {
            let s = source.skip(to_skip);
            position += s;
            skipped += s;
            if s < to_skip {
                break;
            }
        }
        if to_warm > 0 {
            let w = warmer.warm_from(&mut source, to_warm);
            position += w;
            warmed += w;
            if w < to_warm {
                break;
            }
        }
        // The boundary may have landed inside a wrong-path block; its
        // tagged tail belongs to the branch outside the window, and the
        // engine must never see tagged records with no mispredicted
        // branch in front of them. Feed the residue to the warmer (a
        // no-op for tagged records) and account it as warmup intake.
        while source.peek().is_some_and(|r| r.wrong_path()) {
            let r = source.next_record().expect("peeked above");
            warmer.warm_record(&r);
            position += 1;
            warmed += 1;
        }

        // --- the detailed window ---
        let checkpoint = warmer.checkpoint(position);
        let mut engine = Engine::resume_from(config.clone(), &checkpoint)?;
        let start_record = position;
        let mut window = source.window(plan.detailed_records);
        let stats = engine.run(&mut window);
        let taken = plan.detailed_records - window.remaining();
        if taken == 0 {
            break; // the trace ended exactly at the sampling point
        }
        position += taken;
        detailed += taken;
        merged = merged.merge(&stats);
        windows.push(WindowStats {
            index: windows.len() as u64,
            interval,
            start_record,
            records: taken,
            committed: stats.committed,
            cycles: stats.cycles,
        });
        // Carry the window's training (and wrong-path pollution) forward.
        warmer
            .adopt(&engine.snapshot())
            .expect("engine and warmer share one config");
        if taken < plan.detailed_records {
            break; // the trace ended inside the window
        }
        interval += plan.period;
    }

    Ok(SampledStats {
        windows,
        sim: merged,
        records_total: position,
        records_detailed: detailed,
        records_warmed: warmed,
        records_skipped: skipped,
        full_coverage: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::WarmupMode;
    use resim_trace::Trace;
    use resim_tracegen::{generate_trace, TraceGenConfig};
    use resim_workloads::{SpecBenchmark, Workload};

    fn gzip_trace(n: usize, seed: u64) -> Trace {
        generate_trace(
            Workload::spec(SpecBenchmark::Gzip, seed),
            n,
            &TraceGenConfig::paper(),
        )
    }

    fn cached_config() -> EngineConfig {
        EngineConfig {
            memory: resim_mem::MemorySystemConfig::l1_32k(),
            ..EngineConfig::paper_4wide()
        }
    }

    #[test]
    fn invalid_plan_is_rejected() {
        let trace = gzip_trace(100, 1);
        let err = run_sampled(
            &EngineConfig::paper_4wide(),
            trace.source(),
            &SamplePlan::systematic(0, 1, 1),
        );
        assert!(matches!(err, Err(SampleError::Plan(_))));
    }

    #[test]
    fn full_coverage_matches_engine_run_exactly() {
        let trace = gzip_trace(20_000, 5);
        let config = cached_config();
        let full = Engine::new(config.clone()).unwrap().run(trace.source());
        for interval in [100u64, 1_000, 7_777, 1 << 40] {
            let s = run_sampled(&config, trace.source(), &SamplePlan::full_coverage(interval))
                .unwrap();
            assert!(s.full_coverage);
            assert_eq!(s.sim, full, "interval={interval}");
            assert_eq!(s.records_total, trace.len() as u64);
            assert_eq!(s.records_detailed, s.records_total);
            // Window deltas cover the run exactly.
            assert_eq!(s.windows.iter().map(|w| w.cycles).sum::<u64>(), full.cycles);
            assert_eq!(
                s.windows.iter().map(|w| w.committed).sum::<u64>(),
                full.committed
            );
        }
    }

    #[test]
    fn sampled_run_estimates_full_ipc() {
        let trace = gzip_trace(60_000, 7);
        let config = cached_config();
        let full = Engine::new(config.clone()).unwrap().run(trace.source());
        let plan = SamplePlan::systematic(4_000, 1_000, 2);
        let s = run_sampled(&config, trace.source(), &plan).unwrap();
        assert!(!s.full_coverage);
        assert!(s.n_windows() >= 7, "windows: {}", s.n_windows());
        assert!(s.records_detailed < s.records_total / 3);
        assert_eq!(s.records_skipped, 0, "functional warmup skips nothing");
        assert!(
            s.relative_error(full.ipc()) < 0.05,
            "sampled {} vs full {}",
            s.mean_ipc(),
            full.ipc()
        );
    }

    #[test]
    fn bounded_warmup_skips_and_still_tracks() {
        let trace = gzip_trace(60_000, 7);
        let config = cached_config();
        let full = Engine::new(config.clone()).unwrap().run(trace.source());
        let plan =
            SamplePlan::systematic(6_000, 1_000, 2).with_warmup(WarmupMode::Bounded(4_000));
        let s = run_sampled(&config, trace.source(), &plan).unwrap();
        assert!(s.records_skipped > 0, "bounded warmup must use skip()");
        assert!(
            s.relative_error(full.ipc()) < 0.10,
            "sampled {} vs full {}",
            s.mean_ipc(),
            full.ipc()
        );
    }

    #[test]
    fn accounting_is_conserved() {
        let trace = gzip_trace(30_000, 3);
        let plan =
            SamplePlan::systematic(3_000, 500, 3).with_warmup(WarmupMode::Bounded(1_000));
        let s = run_sampled(&cached_config(), trace.source(), &plan).unwrap();
        assert_eq!(
            s.records_detailed + s.records_warmed + s.records_skipped,
            s.records_total
        );
        assert_eq!(
            s.windows.iter().map(|w| w.records).sum::<u64>(),
            s.records_detailed
        );
        // The merged sim stats agree with the windows.
        assert_eq!(s.sim.committed, s.windows.iter().map(|w| w.committed).sum());
        assert_eq!(s.sim.cycles, s.windows.iter().map(|w| w.cycles).sum());
    }

    #[test]
    fn offset_shifts_the_sampling_grid() {
        let trace = gzip_trace(20_000, 2);
        let base = SamplePlan::systematic(2_000, 400, 4);
        let a = run_sampled(&cached_config(), trace.source(), &base).unwrap();
        let b = run_sampled(&cached_config(), trace.source(), &base.with_offset(1)).unwrap();
        assert_eq!(a.windows[0].start_record, 0);
        assert_eq!(b.windows[0].start_record, 2_000);
        assert_ne!(a.mean_ipc(), b.mean_ipc());
    }

    #[test]
    fn determinism() {
        let trace = gzip_trace(25_000, 9);
        let plan = SamplePlan::systematic(2_500, 600, 2).with_warmup(WarmupMode::Bounded(800));
        let a = run_sampled(&cached_config(), trace.source(), &plan).unwrap();
        let b = run_sampled(&cached_config(), trace.source(), &plan).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_yields_empty_stats() {
        let empty = Trace::new();
        let s = run_sampled(
            &EngineConfig::paper_4wide(),
            empty.source(),
            &SamplePlan::systematic(100, 10, 2),
        )
        .unwrap();
        assert_eq!(s.n_windows(), 0);
        assert_eq!(s.records_total, 0);
        let f = run_sampled(
            &EngineConfig::paper_4wide(),
            empty.source(),
            &SamplePlan::full_coverage(100),
        )
        .unwrap();
        assert_eq!(f.n_windows(), 0);
    }
}
