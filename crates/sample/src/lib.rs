//! # resim-sample
//!
//! SMARTS-style sampled simulation for ReSim (Fytraki & Pnevmatikatos,
//! DATE 2009).
//!
//! ReSim's reason to exist is cheap bulk design-space exploration; the
//! paper accelerates the detailed model with an FPGA, and the classic
//! software-side lever is **statistical sampling**: simulate short
//! detailed windows, keep the long-lived microarchitectural state warm in
//! between with a functional model that is an order of magnitude cheaper
//! per record, and report the mean per-window IPC with a confidence
//! interval (Wunderlich et al., SMARTS, ISCA 2003).
//!
//! The subsystem in this crate:
//!
//! * [`SamplePlan`] — systematic interval sampling: interval length,
//!   detailed-window length, sampling period/offset, and a [`WarmupMode`]
//!   choosing between full functional warming and bounded warming with
//!   codec-level fast-forward
//!   ([`TraceSource::skip`](resim_trace::TraceSource::skip));
//! * [`FunctionalWarmer`] — drives the stats-silent `warm_record` entry
//!   points of `resim-bpred` and `resim-mem` (branch tables, BTB, RAS,
//!   cache tag arrays) with no out-of-order engine at all;
//! * [`Checkpoint`](resim_core::Checkpoint) hand-off — at each sampling
//!   point the warm state seals into a serializable checkpoint, a
//!   detailed engine resumes from it
//!   ([`Engine::resume_from`](resim_core::Engine::resume_from)), and its
//!   post-window state flows back into the warmer;
//! * [`run_sampled`] — the driver, with a contiguous fast path that makes
//!   a 100 %-coverage plan **bit-identical** to
//!   [`Engine::run`](resim_core::Engine::run);
//! * [`SampledStats`] — per-window IPCs, their mean, variance and a
//!   Student-t 95 % confidence interval.
//!
//! `resim-sweep` exposes all of this as a first-class cell execution mode
//! (`CellMode::Sampled`), so scenario grids can trade accuracy for
//! wall-clock per cell.
//!
//! ## Example
//!
//! ```
//! use resim_core::{Engine, EngineConfig};
//! use resim_sample::{run_sampled, SamplePlan};
//! use resim_tracegen::{generate_trace, TraceGenConfig};
//! use resim_workloads::{SpecBenchmark, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = generate_trace(
//!     Workload::spec(SpecBenchmark::Gzip, 2009),
//!     40_000,
//!     &TraceGenConfig::paper(),
//! );
//! let config = EngineConfig::paper_4wide();
//!
//! // Detail 1k of every other 4k-record interval (12.5 % coverage).
//! let plan = SamplePlan::systematic(4_000, 1_000, 2);
//! let sampled = run_sampled(&config, trace.source(), &plan)?;
//!
//! let full = Engine::new(config)?.run(trace.source());
//! let (lo, hi) = sampled.ci95();
//! println!(
//!     "sampled IPC {:.3} [{lo:.3}, {hi:.3}] vs full {:.3} over {} windows",
//!     sampled.mean_ipc(), full.ipc(), sampled.n_windows(),
//! );
//! assert!(sampled.relative_error(full.ipc()) < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod from_table;
mod plan;
mod runner;
mod stats;
mod warm;

pub use plan::{PlanError, SamplePlan, WarmupMode};
pub use runner::{run_sampled, SampleError};
pub use stats::{SampledStats, WindowStats};
pub use warm::FunctionalWarmer;
