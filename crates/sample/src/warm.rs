//! The functional warmer: the cheap mode between detailed windows.
//!
//! Where the timing engine replays every record through a full
//! out-of-order pipeline, the warmer touches only the long-lived
//! microarchitectural state — branch-direction tables, BTB, RAS and cache
//! tag arrays — through the stats-silent `warm_record` entry points of
//! `resim-bpred` and `resim-mem`. There is no IFQ, no reorder buffer, no
//! issue logic and no cycle accounting, which is what makes it an order
//! of magnitude cheaper per record than detailed simulation.

use resim_bpred::BranchPredictor;
use resim_core::{Checkpoint, EngineConfig, ResumeError};
use resim_mem::MemorySystem;
use resim_trace::{TraceRecord, TraceSource};

/// Cold-start functional warm state for one engine configuration.
#[derive(Debug, Clone)]
pub struct FunctionalWarmer {
    predictor: BranchPredictor,
    memory: MemorySystem,
}

impl FunctionalWarmer {
    /// Cold tables for `config`'s predictor and memory system.
    pub fn new(config: &EngineConfig) -> Self {
        Self {
            predictor: BranchPredictor::new(config.predictor),
            memory: MemorySystem::new(config.memory),
        }
    }

    /// A warmer resuming from `checkpoint`'s tables.
    ///
    /// # Errors
    ///
    /// [`ResumeError`] if the checkpoint was taken under a different
    /// predictor/memory geometry.
    pub fn from_checkpoint(
        config: &EngineConfig,
        checkpoint: &Checkpoint,
    ) -> Result<Self, ResumeError> {
        let mut w = Self::new(config);
        w.adopt(checkpoint)?;
        Ok(w)
    }

    /// Replaces the warm state with `checkpoint`'s — used after a
    /// detailed window to carry the window's training (and wrong-path
    /// pollution) forward into the next gap.
    ///
    /// # Errors
    ///
    /// [`ResumeError`] on geometry mismatch.
    pub fn adopt(&mut self, checkpoint: &Checkpoint) -> Result<(), ResumeError> {
        self.predictor.restore_state(&checkpoint.predictor)?;
        self.memory.restore_state(&checkpoint.memory)?;
        Ok(())
    }

    /// Warms one record: branches train the predictor/BTB/RAS, every
    /// record touches the I-cache, memory records touch the D-cache.
    ///
    /// Wrong-path records are ignored — functional warming models the
    /// committed stream; speculative pollution re-enters through the
    /// detailed windows' own wrong-path execution.
    pub fn warm_record(&mut self, record: &TraceRecord) {
        if record.wrong_path() {
            return;
        }
        self.predictor.warm_record(record);
        self.memory.warm_record(record);
    }

    /// Pulls up to `n` records from `source` and warms each; returns how
    /// many were pulled (less than `n` only at end of trace).
    pub fn warm_from(&mut self, source: &mut impl TraceSource, n: u64) -> u64 {
        for pulled in 0..n {
            match source.next_record() {
                Some(r) => self.warm_record(&r),
                None => return pulled,
            }
        }
        n
    }

    /// Seals the current warm state into a [`Checkpoint`] at trace
    /// `position`.
    pub fn checkpoint(&self, position: u64) -> Checkpoint {
        Checkpoint {
            position,
            predictor: self.predictor.state(),
            memory: self.memory.state(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resim_core::Engine;
    use resim_mem::MemorySystemConfig;

    fn cached_config() -> EngineConfig {
        EngineConfig {
            memory: MemorySystemConfig::l1_32k(),
            ..EngineConfig::paper_4wide()
        }
    }

    #[test]
    fn warmer_checkpoint_resumes_an_engine() {
        use resim_trace::{BranchKind, BranchRecord};
        let config = cached_config();
        let mut w = FunctionalWarmer::new(&config);
        for i in 0..200u32 {
            w.warm_record(&TraceRecord::Branch(BranchRecord {
                pc: 0x100 + (i % 16) * 4,
                target: 0x800,
                taken: true,
                kind: BranchKind::Cond,
                src1: None,
                src2: None,
                wrong_path: false,
            }));
        }
        let ck = w.checkpoint(200);
        assert_eq!(ck.position, 200);
        let engine = Engine::resume_from(config.clone(), &ck).expect("geometries match");
        // The resumed engine's snapshot equals the warmer's checkpoint
        // (modulo position, which the engine does not know).
        let mut back = engine.snapshot();
        back.position = 200;
        assert_eq!(back, ck);
        // And a second warmer can adopt it.
        let w2 = FunctionalWarmer::from_checkpoint(&config, &ck).unwrap();
        assert_eq!(w2.checkpoint(200), ck);
    }

    #[test]
    fn wrong_path_records_do_not_warm() {
        use resim_trace::{OpClass, OtherRecord};
        let config = cached_config();
        let mut w = FunctionalWarmer::new(&config);
        let cold = w.checkpoint(0);
        w.warm_record(&TraceRecord::Other(OtherRecord {
            pc: 0x4000,
            class: OpClass::IntAlu,
            dest: None,
            src1: None,
            src2: None,
            wrong_path: true,
        }));
        assert_eq!(w.checkpoint(0), cold);
    }

    #[test]
    fn warm_from_stops_at_end_of_trace() {
        use resim_trace::SliceSource;
        use resim_trace::{OpClass, OtherRecord};
        let records: Vec<TraceRecord> = (0..10u32)
            .map(|i| {
                TraceRecord::Other(OtherRecord {
                    pc: i * 4,
                    class: OpClass::IntAlu,
                    dest: None,
                    src1: None,
                    src2: None,
                    wrong_path: false,
                })
            })
            .collect();
        let mut src = SliceSource::new(&records);
        let mut w = FunctionalWarmer::new(&cached_config());
        assert_eq!(w.warm_from(&mut src, 4), 4);
        assert_eq!(w.warm_from(&mut src, 100), 6);
        assert_eq!(w.warm_from(&mut src, 1), 0);
    }

    #[test]
    fn adopt_rejects_mismatched_geometry() {
        let cached = FunctionalWarmer::new(&cached_config()).checkpoint(0);
        let mut perfect = FunctionalWarmer::new(&EngineConfig::paper_4wide());
        assert!(perfect.adopt(&cached).is_err());
    }
}
