//! Sampling plans: which slices of a trace run in detail.

use std::error::Error;
use std::fmt;

/// How the records between detailed windows are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WarmupMode {
    /// Functionally warm **every** record between windows: branch tables,
    /// BTB/RAS and cache tag arrays track the whole committed stream
    /// (SMARTS's "functional warming" — highest fidelity, no skipping).
    Functional,
    /// Fast-forward with [`TraceSource::skip`](resim_trace::TraceSource::skip)
    /// and functionally warm only the last `n` records before each
    /// detailed window. Cheaper per gap; fidelity rests on `n` covering
    /// the warm state's history depth (predictor histories are short;
    /// cache tags are the binding constraint).
    Bounded(u64),
}

/// A systematic (SMARTS-style) sampling plan over a record stream.
///
/// The trace is divided into consecutive intervals of
/// [`interval_records`](SamplePlan::interval_records). Interval `i` is
/// *sampled* when `i % period == offset`; a sampled interval opens with a
/// detailed window of [`detailed_records`](SamplePlan::detailed_records)
/// cycle-accurate records, and everything else is warmup (per
/// [`WarmupMode`]).
///
/// `coverage = detailed / (interval × period)` is the detailed fraction;
/// a plan with `period == 1` and `detailed == interval` covers 100 % and
/// [`run_sampled`](crate::run_sampled) then reproduces
/// [`Engine::run`](resim_core::Engine::run) bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SamplePlan {
    /// Interval length in trace records.
    pub interval_records: u64,
    /// Detailed-window length at the head of each sampled interval
    /// (≤ `interval_records`).
    pub detailed_records: u64,
    /// Sample every `period`-th interval (≥ 1).
    pub period: u64,
    /// Which interval within each period is sampled (< `period`).
    pub offset: u64,
    /// Treatment of the gap records between detailed windows.
    pub warmup: WarmupMode,
}

impl SamplePlan {
    /// A systematic plan: detail the first `detailed` records of every
    /// `period`-th interval, functionally warming the rest.
    pub fn systematic(interval: u64, detailed: u64, period: u64) -> Self {
        Self {
            interval_records: interval,
            detailed_records: detailed,
            period,
            offset: 0,
            warmup: WarmupMode::Functional,
        }
    }

    /// The 100 %-coverage plan: every interval fully detailed. Runs the
    /// engine contiguously (no checkpoints) and is bit-identical to one
    /// `Engine::run`, while still reporting per-interval window IPCs.
    pub fn full_coverage(interval: u64) -> Self {
        Self::systematic(interval, interval, 1)
    }

    /// Replaces the warmup mode.
    pub fn with_warmup(self, warmup: WarmupMode) -> Self {
        Self { warmup, ..self }
    }

    /// Replaces the sampling offset.
    pub fn with_offset(self, offset: u64) -> Self {
        Self { offset, ..self }
    }

    /// Checks the plan is runnable.
    ///
    /// # Errors
    ///
    /// The first [`PlanError`] found.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.interval_records == 0 {
            return Err(PlanError::ZeroInterval);
        }
        if self.detailed_records == 0 {
            return Err(PlanError::ZeroDetailed);
        }
        if self.detailed_records > self.interval_records {
            return Err(PlanError::DetailedExceedsInterval {
                detailed: self.detailed_records,
                interval: self.interval_records,
            });
        }
        if self.period == 0 {
            return Err(PlanError::ZeroPeriod);
        }
        if self.offset >= self.period {
            return Err(PlanError::OffsetOutOfRange {
                offset: self.offset,
                period: self.period,
            });
        }
        Ok(())
    }

    /// Detailed fraction of the trace this plan simulates cycle-accurately.
    pub fn coverage(&self) -> f64 {
        self.detailed_records as f64 / (self.interval_records * self.period) as f64
    }

    /// Whether every record is detailed (the bit-identical fast path).
    pub fn is_full_coverage(&self) -> bool {
        self.period == 1 && self.detailed_records >= self.interval_records
    }

    /// Whether interval `i` opens with a detailed window.
    pub fn is_sampled(&self, interval: u64) -> bool {
        interval % self.period == self.offset
    }

    /// A compact display name (used by sweep reports):
    /// `u<interval>d<detailed>k<period>[+offset][f|b<n>]`.
    pub fn name(&self) -> String {
        let mut s = format!(
            "u{}d{}k{}",
            self.interval_records, self.detailed_records, self.period
        );
        if self.offset != 0 {
            s.push_str(&format!("+{}", self.offset));
        }
        match self.warmup {
            WarmupMode::Functional => s.push('f'),
            WarmupMode::Bounded(n) => s.push_str(&format!("b{n}")),
        }
        s
    }
}

/// Reasons a [`SamplePlan`] cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// Interval length is zero.
    ZeroInterval,
    /// Detailed-window length is zero.
    ZeroDetailed,
    /// The detailed window is longer than the interval.
    DetailedExceedsInterval {
        /// Requested window length.
        detailed: u64,
        /// Interval length.
        interval: u64,
    },
    /// Sampling period is zero.
    ZeroPeriod,
    /// Offset does not fall inside the period.
    OffsetOutOfRange {
        /// Requested offset.
        offset: u64,
        /// Sampling period.
        period: u64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ZeroInterval => write!(f, "interval length must be non-zero"),
            PlanError::ZeroDetailed => write!(f, "detailed window must be non-zero"),
            PlanError::DetailedExceedsInterval { detailed, interval } => write!(
                f,
                "detailed window ({detailed}) exceeds the interval ({interval})"
            ),
            PlanError::ZeroPeriod => write!(f, "sampling period must be non-zero"),
            PlanError::OffsetOutOfRange { offset, period } => {
                write!(f, "offset {offset} outside period {period}")
            }
        }
    }
}

impl Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systematic_plan_geometry() {
        let p = SamplePlan::systematic(10_000, 1_000, 10);
        assert!(p.validate().is_ok());
        assert!((p.coverage() - 0.01).abs() < 1e-12);
        assert!(!p.is_full_coverage());
        assert!(p.is_sampled(0));
        assert!(!p.is_sampled(1));
        assert!(p.is_sampled(10));
        assert_eq!(p.name(), "u10000d1000k10f");
    }

    #[test]
    fn full_coverage_plan() {
        let p = SamplePlan::full_coverage(5_000);
        assert!(p.validate().is_ok());
        assert!(p.is_full_coverage());
        assert!((p.coverage() - 1.0).abs() < 1e-12);
        for i in 0..20 {
            assert!(p.is_sampled(i));
        }
    }

    #[test]
    fn offset_and_warmup_builders() {
        let p = SamplePlan::systematic(100, 10, 4)
            .with_offset(2)
            .with_warmup(WarmupMode::Bounded(30));
        assert!(p.validate().is_ok());
        assert!(!p.is_sampled(0));
        assert!(p.is_sampled(2));
        assert!(p.is_sampled(6));
        assert_eq!(p.name(), "u100d10k4+2b30");
    }

    #[test]
    fn validation_catches_degenerate_plans() {
        assert_eq!(
            SamplePlan::systematic(0, 1, 1).validate(),
            Err(PlanError::ZeroInterval)
        );
        assert_eq!(
            SamplePlan::systematic(10, 0, 1).validate(),
            Err(PlanError::ZeroDetailed)
        );
        assert!(matches!(
            SamplePlan::systematic(10, 11, 1).validate(),
            Err(PlanError::DetailedExceedsInterval { .. })
        ));
        assert_eq!(
            SamplePlan {
                period: 0,
                ..SamplePlan::systematic(10, 5, 1)
            }
            .validate(),
            Err(PlanError::ZeroPeriod)
        );
        assert!(matches!(
            SamplePlan::systematic(10, 5, 2).with_offset(2).validate(),
            Err(PlanError::OffsetOutOfRange { .. })
        ));
    }
}
