//! The `resim` binary: a thin shell over [`resim_cli::run_cli`].

use std::io::{stderr, stdout};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = resim_cli::run_cli(&args, &mut stdout().lock(), &mut stderr().lock());
    std::process::exit(code);
}
