//! The subcommand implementations.
//!
//! Every command writes to a caller-supplied sink so the golden and
//! round-trip tests drive the exact binary code paths; failures are
//! plain strings already carrying file/line context.

use resim_sweep::ScenarioDoc;
use resim_core::{block_diagram, Engine, EngineConfig, SimStats, SIM_STATS_FIELDS};
use resim_obs::{write_events_jsonl, Counter, MetricsDoc, MetricsRecorder, TraceDoc};
use resim_sample::{run_sampled, SamplePlan};
use resim_serve::{Client, ResultCache, Server};
use resim_session::SessionRecord;
use resim_sweep::{CellMode, StatsMode, SweepProgress, SweepRunner};
use resim_toml::json::JsonValue;
use resim_trace::{
    save_trace_file, FileSource, Trace, TraceFileHeader, TraceSource, TRACE_CONTAINER_VERSION,
    TRACE_LAYOUT_VERSION,
};
use resim_tracegen::{generate_trace, TraceCache, TraceKey};
use std::fmt::Write as _;
use std::fs;
use std::io::Write;
use std::sync::Arc;

pub(crate) type CmdResult = Result<(), String>;

/// Loads and resolves a scenario file, contextualizing every diagnostic
/// with the path.
pub(crate) fn load_scenario(path: &str) -> Result<ScenarioDoc, String> {
    let input =
        fs::read_to_string(path).map_err(|e| format!("cannot read scenario {path:?}: {e}"))?;
    ScenarioDoc::parse_str(&input).map_err(|e| e.display_in(path))
}

fn emit(out: &mut dyn Write, text: &str) -> CmdResult {
    out.write_all(text.as_bytes())
        .map_err(|e| format!("cannot write output: {e}"))
}

/// `resim trace`: generate the scenario's workload trace and write the
/// container.
pub(crate) fn trace(
    scenario_path: &str,
    out_path: Option<&str>,
    budget: Option<usize>,
    seed: Option<u64>,
    layout: Option<u16>,
    out: &mut dyn Write,
) -> CmdResult {
    let mut doc = load_scenario(scenario_path)?;
    if let Some(b) = budget {
        if b == 0 {
            return Err("--budget must be non-zero".to_string());
        }
        doc.workload.budget = b;
    }
    if let Some(s) = seed {
        doc.workload.seed = s;
    }
    let default_path = format!("{}.trace", doc.workload.name);
    let path = out_path
        .or(doc.trace_file.as_deref())
        .unwrap_or(&default_path);

    let trace = doc.generate();
    let encoded = match layout.unwrap_or(TRACE_LAYOUT_VERSION) {
        resim_trace::TRACE_LAYOUT_VERSION => trace.encode(),
        resim_trace::TRACE_LAYOUT_VERSION_V2 => trace.encode_v2(),
        other => return Err(format!("--layout {other} is not supported (supported: 1, 2)")),
    };
    let header = TraceFileHeader::for_trace(
        &encoded,
        doc.workload.name.clone(),
        doc.workload.seed,
        doc.tracegen.fingerprint(),
    )
    .with_correct_records(trace.correct_path_len() as u64);
    save_trace_file(path, &header, &encoded)
        .map_err(|e| format!("cannot write trace {path:?}: {e}"))?;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "wrote {path}: workload \"{}\" (seed {}), tracegen fingerprint {:#018x}",
        doc.workload.name,
        doc.workload.seed,
        doc.tracegen.fingerprint(),
    );
    let _ = writeln!(
        s,
        "  records  {} ({} correct, {} wrong-path; expansion {:.2}x)",
        trace.len(),
        trace.correct_path_len(),
        trace.wrong_path_len(),
        trace.len() as f64 / trace.correct_path_len().max(1) as f64,
    );
    let _ = writeln!(
        s,
        "  encoded  {} bytes, {:.2} bits/instruction",
        header.encoded_len() + encoded.bytes().len(),
        encoded.stats().bits_per_instruction(),
    );
    // The default layout stays silent so existing tooling that parses
    // this banner is unaffected; opting in to v2 is worth a mention.
    if encoded.layout_version() != TRACE_LAYOUT_VERSION {
        let _ = writeln!(
            s,
            "  layout   v{} (delta/run-length body)",
            encoded.layout_version(),
        );
    }
    emit(out, &s)
}

/// Resolves the input trace for `run`/`sample`: an explicit container
/// path (flag or `[trace]` key) is replayed, otherwise the trace is
/// generated in memory.
enum Source {
    File(Box<FileSource<std::io::BufReader<fs::File>>>, String),
    Generated(Trace),
}

fn resolve_source(doc: &ScenarioDoc, trace_flag: Option<&str>) -> Result<Source, String> {
    match doc.trace_path(trace_flag) {
        Some(path) => {
            let src = FileSource::open(path)
                .map_err(|e| format!("cannot replay trace {path:?}: {e}"))?;
            Ok(Source::File(Box::new(src), path.to_string()))
        }
        None => Ok(Source::Generated(doc.generate())),
    }
}

fn describe_source(doc: &ScenarioDoc, source: &Source) -> String {
    match source {
        Source::File(src, path) => {
            let h = src.header();
            let mut s = format!(
                "replaying {path}: {} records of \"{}\" (seed {})\n",
                h.records, h.workload, h.seed
            );
            // Same contract the sweep preloader enforces via the cache
            // key: wrong-path tags are only meaningful when the trace
            // was generated under the scenario's tracegen settings.
            if h.tracegen_fingerprint != doc.tracegen.fingerprint() {
                s.push_str(
                    "warning: trace was generated under a different tracegen configuration \
                     (fingerprint mismatch); wrong-path behaviour may not match this scenario\n",
                );
            }
            // An explicitly pinned [workload] is cross-checked too, so
            // replaying a stale file after editing the scenario does
            // not silently attribute results to the wrong inputs.
            if doc.workload_explicit
                && (h.workload != doc.workload.name
                    || h.seed != doc.workload.seed
                    || h.correct_records != doc.workload.budget as u64)
            {
                let _ = writeln!(
                    s,
                    "warning: trace file is \"{}\" seed {} budget {}, but the scenario's \
                     [workload] says \"{}\" seed {} budget {}",
                    h.workload,
                    h.seed,
                    h.correct_records,
                    doc.workload.name,
                    doc.workload.seed,
                    doc.workload.budget,
                );
            }
            s
        }
        Source::Generated(trace) => format!(
            "generated in memory: {} records of \"{}\" (seed {})\n",
            trace.len(),
            doc.workload.name,
            doc.workload.seed
        ),
    }
}

/// `resim run`: full-detail simulation. With `--profile` the run is
/// executed through the `resim profile` path instead (same simulated
/// statistics — the recorder only observes).
pub(crate) fn run(
    scenario_path: &str,
    trace_flag: Option<&str>,
    profile_flag: bool,
    out: &mut dyn Write,
) -> CmdResult {
    if profile_flag {
        return profile(scenario_path, trace_flag, None, None, None, out);
    }
    let doc = load_scenario(scenario_path)?;
    let stats_mode = doc
        .sweep_stats()
        .map_err(|e| e.display_in(scenario_path))?;
    let mut engine = match stats_mode {
        StatsMode::Full => Engine::new(doc.engine.clone()),
        StatsMode::Lite => Engine::new_lite(doc.engine.clone()),
    }
    .map_err(|e| format!("invalid engine configuration: {e}"))?;
    let source = resolve_source(&doc, trace_flag)?;
    let mut banner = describe_source(&doc, &source);
    if engine.is_stats_lite() {
        banner.push_str(
            "stats mode: lite (occupancy and stage-activity bookkeeping not collected)\n",
        );
    }

    let stats = match source {
        Source::File(mut src, path) => {
            let stats = engine.run(&mut *src);
            if let Some(e) = src.error() {
                return Err(format!("trace {path:?} ended abnormally: {e}"));
            }
            stats
        }
        Source::Generated(trace) => engine.run(trace.source()),
    };

    let mut s = banner;
    s.push_str(&stats.report());
    let activity = if engine.is_stats_lite() {
        "not collected (stats = \"lite\")".to_string()
    } else {
        engine
            .scheduler()
            .activity()
            .into_iter()
            .map(|(stage, ops)| format!("{stage} {ops}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(s, "stage activity (ops): {activity}");
    let _ = writeln!(s, "\nIPC {:.4} over {} cycles", stats.ipc(), stats.cycles);
    emit(out, &s)
}

/// `resim profile`: the `run` simulation with a collecting
/// [`MetricsRecorder`] attached — per-stage wall time, occupancy
/// heatmap, derived rates and the versioned metrics/events exports.
pub(crate) fn profile(
    scenario_path: &str,
    trace_flag: Option<&str>,
    metrics_out: Option<&str>,
    events_out: Option<&str>,
    journal: Option<usize>,
    out: &mut dyn Write,
) -> CmdResult {
    let doc = load_scenario(scenario_path)?;
    // A profile is exactly the bookkeeping lite mode removes: per-stage
    // wall time, occupancy heatmaps, event journals. Refuse rather than
    // print a report of zeros.
    if doc
        .sweep_stats()
        .map_err(|e| e.display_in(scenario_path))?
        == StatsMode::Lite
    {
        return Err(format!(
            "scenario {scenario_path:?} requests stats = \"lite\", but `resim profile` \
             exists to collect the occupancy and per-stage data lite mode disables; \
             remove the stats key (or set stats = \"full\") to profile this scenario"
        ));
    }
    let recorder = match journal {
        Some(cap) => MetricsRecorder::with_journal_capacity(cap),
        None => MetricsRecorder::new(),
    };
    let mut engine = Engine::with_recorder(doc.engine.clone(), recorder)
        .map_err(|e| format!("invalid engine configuration: {e}"))?;
    let source = resolve_source(&doc, trace_flag)?;
    let banner = describe_source(&doc, &source);

    let t0 = std::time::Instant::now();
    let (stats, trace_doc) = match source {
        Source::File(mut src, path) => {
            let stats = engine.run(&mut *src);
            if let Some(e) = src.error() {
                return Err(format!("trace {path:?} ended abnormally: {e}"));
            }
            let trace_doc = TraceDoc {
                source: format!("file {path}"),
                records: stats.trace_records_consumed(),
                cache_hits: 0,
                cache_misses: 0,
                decoded: src.records_decoded(),
                fills: src.batch_fills(),
            };
            (stats, trace_doc)
        }
        Source::Generated(trace) => {
            let stats = engine.run(trace.source());
            let trace_doc = TraceDoc {
                source: format!("generated {}", doc.workload.name),
                records: stats.trace_records_consumed(),
                cache_hits: 0,
                cache_misses: 0,
                decoded: 0,
                fills: 0,
            };
            (stats, trace_doc)
        }
    };
    let wall = t0.elapsed();
    let rec = engine.recorder();

    let mut s = banner;
    s.push_str(&stats.report());
    s.push_str(&stats.utilization_report(
        doc.engine.ifq_size,
        doc.engine.rb_size,
        doc.engine.lsq_size,
    ));
    s.push('\n');
    s.push_str(&rec.render_span_table());
    s.push('\n');
    s.push_str(&rec.occupancy().render([
        doc.engine.ifq_size as u64,
        doc.engine.rb_size as u64,
        doc.engine.lsq_size as u64,
    ]));
    let j = rec.journal();
    let _ = writeln!(
        s,
        "event journal: {} recorded, {} retained, {} dropped (capacity {})",
        j.recorded(),
        j.len(),
        j.dropped(),
        j.capacity(),
    );
    let _ = writeln!(s, "\nIPC {:.4} over {} cycles", stats.ipc(), stats.cycles);

    if metrics_out.is_some() || events_out.is_some() {
        let mut mdoc = MetricsDoc::new(scenario_path, doc.engine.pipeline.name());
        mdoc.cycles = stats.cycles;
        mdoc.wall_ns = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        mdoc.rate("ipc", stats.ipc())
            .rate("processed_per_cycle", stats.processed_per_cycle())
            .rate("wrong_path", stats.wrong_path_fraction())
            .rate("branch_mispredict", stats.mispredict_rate())
            .rate("il1_miss", stats.il1_miss_rate())
            .rate("dl1_miss", stats.dl1_miss_rate());
        mdoc.populate(rec);
        mdoc.trace = trace_doc;
        if let Some(path) = metrics_out {
            fs::write(path, mdoc.to_json())
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            let _ = writeln!(s, "wrote {path}");
        }
        if let Some(path) = events_out {
            fs::write(path, write_events_jsonl(rec.journal()))
                .map_err(|e| format!("cannot write {path:?}: {e}"))?;
            let _ = writeln!(s, "wrote {path}");
        }
    }
    emit(out, &s)
}

/// `resim sample`: SMARTS sampled simulation under the `[sample]` plan.
pub(crate) fn sample(
    scenario_path: &str,
    trace_flag: Option<&str>,
    out: &mut dyn Write,
) -> CmdResult {
    let doc = load_scenario(scenario_path)?;
    let plan = doc
        .sample
        .ok_or_else(|| format!("scenario {scenario_path:?} has no [sample] section"))?;
    let source = resolve_source(&doc, trace_flag)?;
    let banner = describe_source(&doc, &source);

    let sampled = match source {
        Source::File(mut src, path) => {
            let sampled = run_sampled(&doc.engine, &mut *src, &plan)
                .map_err(|e| format!("sampled run failed: {e}"))?;
            if let Some(e) = src.error() {
                return Err(format!("trace {path:?} ended abnormally: {e}"));
            }
            sampled
        }
        Source::Generated(trace) => run_sampled(&doc.engine, trace.source(), &plan)
            .map_err(|e| format!("sampled run failed: {e}"))?,
    };

    let mut s = banner;
    let (lo, hi) = sampled.ci95();
    let _ = writeln!(
        s,
        "plan {}: {} windows, {:.2}% of {} records detailed",
        plan.name(),
        sampled.n_windows(),
        100.0 * sampled.detailed_fraction(),
        sampled.records_total,
    );
    let _ = writeln!(
        s,
        "records detailed {} / warmed {} / skipped {}",
        sampled.records_detailed, sampled.records_warmed, sampled.records_skipped,
    );
    if sampled.full_coverage {
        let _ = writeln!(
            s,
            "IPC {:.4} (exact: 100% coverage is bit-identical to `resim run`)",
            sampled.sim.ipc(),
        );
    } else {
        let _ = writeln!(
            s,
            "IPC {:.4} ± {:.4} (95% CI [{lo:.4}, {hi:.4}])",
            sampled.mean_ipc(),
            sampled.ci95_half_width(),
        );
    }
    emit(out, &s)
}

/// `resim sweep`: run the `[sweep]` grid, preloading any matching trace
/// containers into the cache.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep(
    scenario_path: &str,
    threads: Option<usize>,
    csv: Option<&str>,
    stable_csv: Option<&str>,
    md: Option<&str>,
    trace_file_flags: &[String],
    progress: bool,
    out: &mut dyn Write,
) -> CmdResult {
    let doc = load_scenario(scenario_path)?;
    let scenario = doc
        .sweep_scenario()
        .map_err(|e| e.display_in(scenario_path))?;
    let threads = match threads {
        Some(t) => t,
        None => doc.sweep_threads().map_err(|e| e.display_in(scenario_path))?,
    };

    let mut trace_files = doc
        .sweep_trace_files()
        .map_err(|e| e.display_in(scenario_path))?;
    trace_files.extend(trace_file_flags.iter().cloned());

    let cache = Arc::new(TraceCache::new());
    let mut s = String::new();
    for note in scenario.grid_notes() {
        let _ = writeln!(s, "note: {note}");
    }
    for path in &trace_files {
        let preloaded = preload(&cache, &scenario, path)?;
        if preloaded == 0 {
            let _ = writeln!(
                s,
                "warning: {path} matches no grid cell (workload/seed/budget/tracegen \
                 must all appear in the scenario); it will be regenerated"
            );
        } else {
            let _ = writeln!(s, "preloaded {path} into {preloaded} trace-cache slot(s)");
        }
    }

    let runner = SweepRunner::with_cache(threads, cache);
    let report = if progress {
        // Progress samples may come from worker threads; collect them
        // under a lock and flush into the output in arrival order.
        let lines: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
        let report = runner
            .run_with_progress(&scenario, |p: &SweepProgress| {
                lines
                    .lock()
                    .expect("progress lines poisoned")
                    .push(format!("progress: {} {}/{}", p.phase.label(), p.done, p.total));
            })
            .map_err(|e| format!("invalid scenario: {e}"))?;
        for line in lines.into_inner().expect("progress lines poisoned") {
            let _ = writeln!(s, "{line}");
        }
        report
    } else {
        runner
            .run(&scenario)
            .map_err(|e| format!("invalid scenario: {e}"))?
    };

    s.push_str(&report.to_markdown());
    if let Some(path) = csv {
        fs::write(path, report.to_csv()).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        let _ = writeln!(s, "wrote {path}");
    }
    if let Some(path) = stable_csv {
        fs::write(path, report.to_csv_stable())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        let _ = writeln!(s, "wrote {path}");
    }
    if let Some(path) = md {
        fs::write(path, report.to_markdown())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        let _ = writeln!(s, "wrote {path}");
    }
    emit(out, &s)
}

/// Decodes `path` and inserts it under every grid cell key it can
/// serve; returns how many cache slots were filled.
fn preload(
    cache: &TraceCache,
    scenario: &resim_sweep::Scenario,
    path: &str,
) -> Result<usize, String> {
    let mut src =
        FileSource::open(path).map_err(|e| format!("cannot preload trace {path:?}: {e}"))?;
    let header = src.header().clone();

    // Decide from the header alone before decoding a single record, so
    // a mismatched multi-gigabyte container costs O(header), not a
    // full in-memory decode. An untrusted count that does not even fit
    // in usize cannot match any budget axis.
    let Ok(budget) = usize::try_from(header.correct_records) else {
        return Ok(0);
    };
    let workload_known = scenario.workloads().iter().any(|w| w.name == header.workload);
    let axes_match = workload_known
        && scenario.seed_values().contains(&header.seed)
        && scenario.budget_values().contains(&budget);
    let served: Vec<_> = scenario
        .configs()
        .iter()
        .filter(|p| p.tracegen.fingerprint() == header.tracegen_fingerprint)
        .map(|p| p.tracegen)
        .collect();
    if !axes_match || served.is_empty() {
        return Ok(0);
    }

    let records: Vec<_> = std::iter::from_fn(|| src.next_record()).collect();
    if let Some(e) = src.error() {
        return Err(format!("trace {path:?} ended abnormally: {e}"));
    }
    let trace = Trace::from_records(records);

    let mut inserted = 0;
    for config in served {
        let key = TraceKey {
            workload: header.workload.clone(),
            seed: header.seed,
            n_correct: budget,
            config,
        };
        if cache.get(&key).is_none() {
            cache.insert(key, trace.clone());
            inserted += 1;
        }
    }
    Ok(inserted)
}

/// Runs `source` on `config`, cycle-accurately or under `plan`.
///
/// Sampled runs record/replay the merged detailed-window statistics
/// (`SampledStats::sim`): the full per-window confidence data is a
/// deterministic function of the same inputs, so the merged stats are
/// the right bit-identity witness.
fn execute(
    config: &EngineConfig,
    source: impl TraceSource,
    plan: Option<&SamplePlan>,
) -> Result<SimStats, String> {
    match plan {
        None => {
            let mut engine = Engine::new(config.clone())
                .map_err(|e| format!("invalid engine configuration: {e}"))?;
            Ok(engine.run(source))
        }
        Some(plan) => run_sampled(config, source, plan)
            .map(|sampled| sampled.sim)
            .map_err(|e| format!("sampled run failed: {e}")),
    }
}

/// `resim serve`: run the persistent simulation service until a
/// `shutdown` verb arrives, then print what it served.
pub(crate) fn serve(
    addr: &str,
    cache_dir: Option<&str>,
    threads: Option<usize>,
    out: &mut dyn Write,
) -> CmdResult {
    let cache = match cache_dir {
        Some(dir) => ResultCache::with_dir(dir)
            .map_err(|e| format!("cannot open cache directory {dir:?}: {e}"))?,
        None => ResultCache::in_memory(),
    };
    let preloaded = cache.len();
    let server = Server::bind(addr, cache, threads.unwrap_or(0))
        .map_err(|e| format!("cannot bind {addr:?}: {e}"))?;

    let mut s = String::new();
    let _ = writeln!(s, "resim-serve listening on {}", server.local_addr());
    let _ = match cache_dir {
        Some(dir) => writeln!(s, "  cache    {dir} ({preloaded} entries in memory at start)"),
        None => writeln!(s, "  cache    in-memory only (results do not survive a restart)"),
    };
    emit(out, &s)?;
    // The banner must reach a supervising process (CI polls for it)
    // before run() blocks.
    out.flush().map_err(|e| format!("cannot write output: {e}"))?;

    server.run().map_err(|e| format!("serve loop failed: {e}"))?;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "shut down cleanly: {} requests ({} errors), {} jobs submitted, {} completed",
        server.counter(Counter::ServeRequests),
        server.counter(Counter::ServeErrors),
        server.counter(Counter::ServeJobsSubmitted),
        server.counter(Counter::ServeJobsCompleted),
    );
    let _ = writeln!(
        s,
        "  cells    {} simulated, {} served from memory, {} from disk, {} rejected",
        server.counter(Counter::ServeCellsSimulated),
        server.counter(Counter::ServeCellsMemHits),
        server.counter(Counter::ServeCellsDiskHits),
        server.counter(Counter::ServeCacheRejected),
    );
    let _ = writeln!(s, "  cache    {} entries resident", server.cache().len());
    emit(out, &s)
}

/// Pulls a named integer out of a server response, defaulting to 0 so
/// a rendering change degrades the summary, not the command.
fn response_u64(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

/// `resim submit`: drive a running server over one connection — ping,
/// scenario submission, metrics snapshot and shutdown, in that order,
/// each enabled by its flag.
#[allow(clippy::too_many_arguments)]
pub(crate) fn submit(
    scenario_path: Option<&str>,
    addr: &str,
    progress: bool,
    ping: bool,
    metrics: bool,
    shutdown: bool,
    out: &mut dyn Write,
) -> CmdResult {
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut s = String::new();

    if ping {
        let r = client.ping().map_err(|e| format!("ping failed: {e}"))?;
        let _ = writeln!(s, "{}", r.render());
    }

    if let Some(path) = scenario_path {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read scenario {path:?}: {e}"))?;
        let mut lines: Vec<String> = Vec::new();
        let status = client
            .submit_and_wait(&text, |event| {
                if progress {
                    lines.push(format!(
                        "progress: {} {}/{}",
                        event.get("phase").and_then(JsonValue::as_str).unwrap_or("?"),
                        response_u64(event, "done"),
                        response_u64(event, "total"),
                    ));
                }
            })
            .map_err(|e| format!("submission failed: {e}"))?;
        for line in lines {
            let _ = writeln!(s, "{line}");
        }
        if let Some(job_error) = status.get("job_error").and_then(JsonValue::as_str) {
            emit(out, &s)?;
            return Err(format!("job failed on the server: {job_error}"));
        }
        if let Some(csv) = status.get("csv").and_then(JsonValue::as_str) {
            s.push_str(csv);
        }
        let _ = writeln!(
            s,
            "job {}: {} cells, {} simulated, {} served from memory, {} from disk \
             (fingerprint {})",
            response_u64(&status, "job"),
            response_u64(&status, "cells"),
            response_u64(&status, "simulated"),
            response_u64(&status, "served_mem"),
            response_u64(&status, "served_disk"),
            status
                .get("fingerprint")
                .and_then(JsonValue::as_str)
                .unwrap_or("?"),
        );
    }

    if metrics {
        let r = client.metrics().map_err(|e| format!("metrics failed: {e}"))?;
        let _ = writeln!(s, "{}", r.render());
    }

    if shutdown {
        client.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
        let _ = writeln!(s, "server at {addr} is shutting down");
    }

    emit(out, &s)
}

/// `resim record`: execute the scenario's run (full, sampled, or one
/// sweep cell) and capture every nondeterministic input plus the
/// resulting statistics in an RSSN session file.
pub(crate) fn record(
    scenario_path: &str,
    trace_flag: Option<&str>,
    out_path: Option<&str>,
    cell: Option<usize>,
    out: &mut dyn Write,
) -> CmdResult {
    let scenario_text = fs::read_to_string(scenario_path)
        .map_err(|e| format!("cannot read scenario {scenario_path:?}: {e}"))?;
    let doc = ScenarioDoc::parse_str(&scenario_text).map_err(|e| e.display_in(scenario_path))?;

    let mut rec = SessionRecord {
        tool_version: crate::help::VERSION.to_string(),
        trace_container_version: TRACE_CONTAINER_VERSION,
        trace_layout_version: TRACE_LAYOUT_VERSION,
        scenario_toml: scenario_text,
        ..SessionRecord::default()
    };

    if let Some(n) = cell {
        if trace_flag.is_some() {
            return Err(
                "--cell regenerates the cell's trace; it cannot be combined with --trace"
                    .to_string(),
            );
        }
        let scenario = doc
            .sweep_scenario()
            .map_err(|e| e.display_in(scenario_path))?;
        scenario
            .validate()
            .map_err(|e| format!("invalid scenario: {e}"))?;
        let cells = scenario.cells();
        let Some(cell) = cells.get(n) else {
            return Err(format!(
                "--cell {n} is out of range: the [sweep] grid has {} cells",
                cells.len()
            ));
        };
        let config = &scenario.configs()[cell.config];
        let workload = &scenario.workloads()[cell.workload];
        let trace = generate_trace(workload.instantiate(cell.seed), cell.budget, &config.tracegen);
        rec.engine_fingerprint = config.engine.fingerprint();
        rec.tracegen_fingerprint = config.tracegen.fingerprint();
        rec.workload = workload.name.clone();
        rec.seed = cell.seed;
        rec.budget = cell.budget as u64;
        rec.cell_index = Some(cell.index as u64);
        rec.sample = match scenario.cell_mode(cell) {
            CellMode::Full => None,
            CellMode::Sampled(plan) => Some(plan),
        };
        rec.stats = execute(&config.engine, trace.source(), rec.sample.as_ref())?;
    } else {
        rec.engine_fingerprint = doc.engine.fingerprint();
        rec.sample = doc.sample;
        match resolve_source(&doc, trace_flag)? {
            Source::File(mut src, path) => {
                // The file's header, not the scenario, says what was
                // actually simulated — record it, and embed the whole
                // container so the session replays self-contained.
                let h = src.header().clone();
                rec.tracegen_fingerprint = h.tracegen_fingerprint;
                rec.workload = h.workload;
                rec.seed = h.seed;
                rec.budget = h.correct_records;
                rec.trace_container_version = h.container_version;
                rec.trace_layout_version = h.layout_version;
                rec.stats = execute(&doc.engine, &mut *src, rec.sample.as_ref())?;
                if let Some(e) = src.error() {
                    return Err(format!("trace {path:?} ended abnormally: {e}"));
                }
                rec.embedded_trace = Some(
                    fs::read(&path).map_err(|e| format!("cannot re-read trace {path:?}: {e}"))?,
                );
            }
            Source::Generated(trace) => {
                rec.tracegen_fingerprint = doc.tracegen.fingerprint();
                rec.workload = doc.workload.name.clone();
                rec.seed = doc.workload.seed;
                rec.budget = doc.workload.budget as u64;
                rec.stats = execute(&doc.engine, trace.source(), rec.sample.as_ref())?;
            }
        }
    }

    let default_path = match cell {
        Some(n) => format!("{}-cell{n}.rssn", rec.workload),
        None => format!("{}.rssn", rec.workload),
    };
    let path = out_path.unwrap_or(&default_path);
    rec.save(path).map_err(|e| format!("cannot write session: {e}"))?;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "recorded {path}: workload \"{}\" (seed {}, budget {})",
        rec.workload, rec.seed, rec.budget,
    );
    let mode = match &rec.sample {
        Some(plan) => format!("sampled {}", plan.name()),
        None => "full".to_string(),
    };
    let cell_note = match rec.cell_index {
        Some(i) => format!(", sweep cell {i}"),
        None => String::new(),
    };
    let _ = writeln!(s, "  mode     {mode}{cell_note}");
    let _ = match &rec.embedded_trace {
        Some(bytes) => writeln!(
            s,
            "  trace    embedded ({} bytes, container v{} layout v{})",
            bytes.len(),
            rec.trace_container_version,
            rec.trace_layout_version,
        ),
        None => writeln!(s, "  trace    regenerated at replay"),
    };
    let _ = writeln!(
        s,
        "  engine   fingerprint {:#018x}, tracegen {:#018x}",
        rec.engine_fingerprint, rec.tracegen_fingerprint,
    );
    let _ = writeln!(
        s,
        "  stats    digest {:#018x} ({} fields)",
        rec.stats.digest(),
        SIM_STATS_FIELDS.len(),
    );
    emit(out, &s)
}

/// A fingerprint cross-check failure message, or `Ok`.
fn check_fingerprint(kind: &str, recorded: u64, resolved: u64) -> Result<(), String> {
    if recorded == resolved {
        Ok(())
    } else {
        Err(format!(
            "{kind} fingerprint mismatch: session recorded {recorded:#018x}, scenario resolves \
             to {resolved:#018x} (the {kind} configuration semantics changed since recording; \
             a replay would not re-execute the same machine)"
        ))
    }
}

/// `resim replay`: re-execute a recorded session and diff the resulting
/// statistics field for field against what was recorded.
pub(crate) fn replay(session_path: &str, out: &mut dyn Write) -> CmdResult {
    let rec = SessionRecord::load(session_path).map_err(|e| e.to_string())?;
    let embedded_name = format!("{session_path} (embedded scenario)");
    let doc =
        ScenarioDoc::parse_str(&rec.scenario_toml).map_err(|e| e.display_in(&embedded_name))?;

    let stats = if let Some(cell_index) = rec.cell_index {
        let scenario = doc
            .sweep_scenario()
            .map_err(|e| e.display_in(&embedded_name))?;
        let cells = scenario.cells();
        let n = usize::try_from(cell_index)
            .ok()
            .filter(|n| *n < cells.len())
            .ok_or_else(|| {
                format!(
                    "session records sweep cell {cell_index}, but the embedded scenario's grid \
                     has {} cells",
                    cells.len()
                )
            })?;
        let cell = &cells[n];
        let config = &scenario.configs()[cell.config];
        let workload = &scenario.workloads()[cell.workload];
        check_fingerprint("engine", rec.engine_fingerprint, config.engine.fingerprint())?;
        check_fingerprint(
            "tracegen",
            rec.tracegen_fingerprint,
            config.tracegen.fingerprint(),
        )?;
        if workload.name != rec.workload || cell.seed != rec.seed || cell.budget as u64 != rec.budget
        {
            return Err(format!(
                "session cell {n} resolves to workload \"{}\" seed {} budget {}, but the record \
                 says \"{}\" seed {} budget {}",
                workload.name, cell.seed, cell.budget, rec.workload, rec.seed, rec.budget,
            ));
        }
        let trace = generate_trace(workload.instantiate(cell.seed), cell.budget, &config.tracegen);
        execute(&config.engine, trace.source(), rec.sample.as_ref())?
    } else if let Some(bytes) = &rec.embedded_trace {
        // A self-contained file-frontend session: the engine still has
        // to match, but the trace bytes are authoritative as-is.
        check_fingerprint("engine", rec.engine_fingerprint, doc.engine.fingerprint())?;
        let mut src = FileSource::from_reader(std::io::Cursor::new(bytes.as_slice()))
            .map_err(|e| format!("embedded trace container is invalid: {e}"))?;
        let stats = execute(&doc.engine, &mut src, rec.sample.as_ref())?;
        if let Some(e) = src.error() {
            return Err(format!("embedded trace ended abnormally: {e}"));
        }
        stats
    } else {
        check_fingerprint("engine", rec.engine_fingerprint, doc.engine.fingerprint())?;
        check_fingerprint(
            "tracegen",
            rec.tracegen_fingerprint,
            doc.tracegen.fingerprint(),
        )?;
        if doc.workload.name != rec.workload
            || doc.workload.seed != rec.seed
            || doc.workload.budget as u64 != rec.budget
        {
            return Err(format!(
                "embedded scenario's [workload] is \"{}\" seed {} budget {}, but the record says \
                 \"{}\" seed {} budget {}",
                doc.workload.name,
                doc.workload.seed,
                doc.workload.budget,
                rec.workload,
                rec.seed,
                rec.budget,
            ));
        }
        let trace = doc.generate();
        execute(&doc.engine, trace.source(), rec.sample.as_ref())?
    };

    let mut s = String::new();
    let cell_note = match rec.cell_index {
        Some(i) => format!(", sweep cell {i}"),
        None => String::new(),
    };
    let _ = writeln!(
        s,
        "replaying {session_path}: workload \"{}\" (seed {}, budget {}){cell_note}",
        rec.workload, rec.seed, rec.budget,
    );
    if let Some(plan) = &rec.sample {
        let _ = writeln!(s, "  sampled plan {}", plan.name());
    }
    let diffs = rec.diff_stats(&stats);
    if diffs.is_empty() {
        let _ = writeln!(
            s,
            "SimStats bit-identical: {}/{} fields match (digest {:#018x})",
            SIM_STATS_FIELDS.len(),
            SIM_STATS_FIELDS.len(),
            stats.digest(),
        );
        emit(out, &s)
    } else {
        for d in &diffs {
            let _ = writeln!(s, "  {d}");
        }
        emit(out, &s)?;
        Err(format!(
            "replay DIVERGED from session {session_path:?}: {}/{} fields differ",
            diffs.len(),
            SIM_STATS_FIELDS.len(),
        ))
    }
}

/// `resim describe`: dump the resolved configuration without running.
pub(crate) fn describe(scenario_path: &str, out: &mut dyn Write) -> CmdResult {
    let doc = load_scenario(scenario_path)?;
    let mut s = block_diagram(&doc.engine);
    // The minor-cycle schedule grid (the paper's Figures 2-4, or the
    // scenario's custom [pipeline] laid out the same way).
    if let Ok(schedule) = doc.engine.pipeline.schedule(doc.engine.width) {
        s.push('\n');
        s.push_str(&schedule.render());
    }
    let _ = writeln!(s, "engine fingerprint: {:#018x}", doc.engine.fingerprint());
    let _ = writeln!(
        s,
        "trace generator: wrong-path block {}, synthesis seed {:#x}, fingerprint {:#018x}{}",
        doc.tracegen.wrong_path_len,
        doc.tracegen.seed,
        doc.tracegen.fingerprint(),
        if doc.tracegen.predictor == doc.engine.predictor {
            " (predictor matches engine)"
        } else {
            " (predictor DIFFERS from engine: wrong-path tags may be meaningless)"
        },
    );
    let _ = writeln!(
        s,
        "workload: \"{}\", seed {}, budget {}",
        doc.workload.name, doc.workload.seed, doc.workload.budget,
    );
    if let Some(file) = &doc.trace_file {
        let _ = writeln!(s, "trace file: {file}");
    }
    if let Some(plan) = &doc.sample {
        let _ = writeln!(
            s,
            "sample plan: {} ({:.2}% coverage)",
            plan.name(),
            100.0 * plan.coverage(),
        );
    }
    if doc.has_sweep() {
        let scenario = doc
            .sweep_scenario()
            .map_err(|e| e.display_in(scenario_path))?;
        let _ = writeln!(
            s,
            "sweep grid: {} configs x {} workloads x {} budgets x {} seeds x {} modes = {} cells",
            scenario.configs().len(),
            scenario.workloads().len(),
            scenario.budget_values().len(),
            scenario.seed_values().len(),
            scenario.mode_values().len(),
            scenario.len(),
        );
        for note in scenario.grid_notes() {
            let _ = writeln!(s, "note: {note}");
        }
    }
    emit(out, &s)
}
