//! The five subcommand implementations.
//!
//! Every command writes to a caller-supplied sink so the golden and
//! round-trip tests drive the exact binary code paths; failures are
//! plain strings already carrying file/line context.

use crate::scenario::ScenarioDoc;
use resim_core::{block_diagram, Engine};
use resim_sample::run_sampled;
use resim_sweep::SweepRunner;
use resim_trace::{save_trace_file, FileSource, Trace, TraceFileHeader, TraceSource};
use resim_tracegen::{TraceCache, TraceKey};
use std::fmt::Write as _;
use std::fs;
use std::io::Write;
use std::sync::Arc;

pub(crate) type CmdResult = Result<(), String>;

/// Loads and resolves a scenario file, contextualizing every diagnostic
/// with the path.
pub(crate) fn load_scenario(path: &str) -> Result<ScenarioDoc, String> {
    let input =
        fs::read_to_string(path).map_err(|e| format!("cannot read scenario {path:?}: {e}"))?;
    ScenarioDoc::parse_str(&input).map_err(|e| e.display_in(path))
}

fn emit(out: &mut dyn Write, text: &str) -> CmdResult {
    out.write_all(text.as_bytes())
        .map_err(|e| format!("cannot write output: {e}"))
}

/// `resim trace`: generate the scenario's workload trace and write the
/// container.
pub(crate) fn trace(
    scenario_path: &str,
    out_path: Option<&str>,
    budget: Option<usize>,
    seed: Option<u64>,
    out: &mut dyn Write,
) -> CmdResult {
    let mut doc = load_scenario(scenario_path)?;
    if let Some(b) = budget {
        if b == 0 {
            return Err("--budget must be non-zero".to_string());
        }
        doc.workload.budget = b;
    }
    if let Some(s) = seed {
        doc.workload.seed = s;
    }
    let default_path = format!("{}.trace", doc.workload.name);
    let path = out_path
        .or(doc.trace_file.as_deref())
        .unwrap_or(&default_path);

    let trace = doc.generate();
    let encoded = trace.encode();
    let header = TraceFileHeader::for_trace(
        &encoded,
        doc.workload.name.clone(),
        doc.workload.seed,
        doc.tracegen.fingerprint(),
    )
    .with_correct_records(trace.correct_path_len() as u64);
    save_trace_file(path, &header, &encoded)
        .map_err(|e| format!("cannot write trace {path:?}: {e}"))?;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "wrote {path}: workload \"{}\" (seed {}), tracegen fingerprint {:#018x}",
        doc.workload.name,
        doc.workload.seed,
        doc.tracegen.fingerprint(),
    );
    let _ = writeln!(
        s,
        "  records  {} ({} correct, {} wrong-path; expansion {:.2}x)",
        trace.len(),
        trace.correct_path_len(),
        trace.wrong_path_len(),
        trace.len() as f64 / trace.correct_path_len().max(1) as f64,
    );
    let _ = writeln!(
        s,
        "  encoded  {} bytes, {:.2} bits/instruction",
        header.encoded_len() + encoded.bytes().len(),
        encoded.stats().bits_per_instruction(),
    );
    emit(out, &s)
}

/// Resolves the input trace for `run`/`sample`: an explicit container
/// path (flag or `[trace]` key) is replayed, otherwise the trace is
/// generated in memory.
enum Source {
    File(Box<FileSource<std::io::BufReader<fs::File>>>, String),
    Generated(Trace),
}

fn resolve_source(doc: &ScenarioDoc, trace_flag: Option<&str>) -> Result<Source, String> {
    match doc.trace_path(trace_flag) {
        Some(path) => {
            let src = FileSource::open(path)
                .map_err(|e| format!("cannot replay trace {path:?}: {e}"))?;
            Ok(Source::File(Box::new(src), path.to_string()))
        }
        None => Ok(Source::Generated(doc.generate())),
    }
}

fn describe_source(doc: &ScenarioDoc, source: &Source) -> String {
    match source {
        Source::File(src, path) => {
            let h = src.header();
            let mut s = format!(
                "replaying {path}: {} records of \"{}\" (seed {})\n",
                h.records, h.workload, h.seed
            );
            // Same contract the sweep preloader enforces via the cache
            // key: wrong-path tags are only meaningful when the trace
            // was generated under the scenario's tracegen settings.
            if h.tracegen_fingerprint != doc.tracegen.fingerprint() {
                s.push_str(
                    "warning: trace was generated under a different tracegen configuration \
                     (fingerprint mismatch); wrong-path behaviour may not match this scenario\n",
                );
            }
            // An explicitly pinned [workload] is cross-checked too, so
            // replaying a stale file after editing the scenario does
            // not silently attribute results to the wrong inputs.
            if doc.workload_explicit
                && (h.workload != doc.workload.name
                    || h.seed != doc.workload.seed
                    || h.correct_records != doc.workload.budget as u64)
            {
                let _ = writeln!(
                    s,
                    "warning: trace file is \"{}\" seed {} budget {}, but the scenario's \
                     [workload] says \"{}\" seed {} budget {}",
                    h.workload,
                    h.seed,
                    h.correct_records,
                    doc.workload.name,
                    doc.workload.seed,
                    doc.workload.budget,
                );
            }
            s
        }
        Source::Generated(trace) => format!(
            "generated in memory: {} records of \"{}\" (seed {})\n",
            trace.len(),
            doc.workload.name,
            doc.workload.seed
        ),
    }
}

/// `resim run`: full-detail simulation.
pub(crate) fn run(scenario_path: &str, trace_flag: Option<&str>, out: &mut dyn Write) -> CmdResult {
    let doc = load_scenario(scenario_path)?;
    let mut engine = Engine::new(doc.engine.clone())
        .map_err(|e| format!("invalid engine configuration: {e}"))?;
    let source = resolve_source(&doc, trace_flag)?;
    let banner = describe_source(&doc, &source);

    let stats = match source {
        Source::File(mut src, path) => {
            let stats = engine.run(&mut *src);
            if let Some(e) = src.error() {
                return Err(format!("trace {path:?} ended abnormally: {e}"));
            }
            stats
        }
        Source::Generated(trace) => engine.run(trace.source()),
    };

    let mut s = banner;
    s.push_str(&stats.report());
    let activity = engine
        .scheduler()
        .activity()
        .into_iter()
        .map(|(stage, ops)| format!("{stage} {ops}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(s, "stage activity (ops): {activity}");
    let _ = writeln!(s, "\nIPC {:.4} over {} cycles", stats.ipc(), stats.cycles);
    emit(out, &s)
}

/// `resim sample`: SMARTS sampled simulation under the `[sample]` plan.
pub(crate) fn sample(
    scenario_path: &str,
    trace_flag: Option<&str>,
    out: &mut dyn Write,
) -> CmdResult {
    let doc = load_scenario(scenario_path)?;
    let plan = doc
        .sample
        .ok_or_else(|| format!("scenario {scenario_path:?} has no [sample] section"))?;
    let source = resolve_source(&doc, trace_flag)?;
    let banner = describe_source(&doc, &source);

    let sampled = match source {
        Source::File(mut src, path) => {
            let sampled = run_sampled(&doc.engine, &mut *src, &plan)
                .map_err(|e| format!("sampled run failed: {e}"))?;
            if let Some(e) = src.error() {
                return Err(format!("trace {path:?} ended abnormally: {e}"));
            }
            sampled
        }
        Source::Generated(trace) => run_sampled(&doc.engine, trace.source(), &plan)
            .map_err(|e| format!("sampled run failed: {e}"))?,
    };

    let mut s = banner;
    let (lo, hi) = sampled.ci95();
    let _ = writeln!(
        s,
        "plan {}: {} windows, {:.2}% of {} records detailed",
        plan.name(),
        sampled.n_windows(),
        100.0 * sampled.detailed_fraction(),
        sampled.records_total,
    );
    let _ = writeln!(
        s,
        "records detailed {} / warmed {} / skipped {}",
        sampled.records_detailed, sampled.records_warmed, sampled.records_skipped,
    );
    if sampled.full_coverage {
        let _ = writeln!(
            s,
            "IPC {:.4} (exact: 100% coverage is bit-identical to `resim run`)",
            sampled.sim.ipc(),
        );
    } else {
        let _ = writeln!(
            s,
            "IPC {:.4} ± {:.4} (95% CI [{lo:.4}, {hi:.4}])",
            sampled.mean_ipc(),
            sampled.ci95_half_width(),
        );
    }
    emit(out, &s)
}

/// `resim sweep`: run the `[sweep]` grid, preloading any matching trace
/// containers into the cache.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep(
    scenario_path: &str,
    threads: Option<usize>,
    csv: Option<&str>,
    stable_csv: Option<&str>,
    md: Option<&str>,
    trace_file_flags: &[String],
    out: &mut dyn Write,
) -> CmdResult {
    let doc = load_scenario(scenario_path)?;
    let scenario = doc
        .sweep_scenario()
        .map_err(|e| e.display_in(scenario_path))?;
    let threads = match threads {
        Some(t) => t,
        None => doc.sweep_threads().map_err(|e| e.display_in(scenario_path))?,
    };

    let mut trace_files = doc
        .sweep_trace_files()
        .map_err(|e| e.display_in(scenario_path))?;
    trace_files.extend(trace_file_flags.iter().cloned());

    let cache = Arc::new(TraceCache::new());
    let mut s = String::new();
    for note in scenario.grid_notes() {
        let _ = writeln!(s, "note: {note}");
    }
    for path in &trace_files {
        let preloaded = preload(&cache, &scenario, path)?;
        if preloaded == 0 {
            let _ = writeln!(
                s,
                "warning: {path} matches no grid cell (workload/seed/budget/tracegen \
                 must all appear in the scenario); it will be regenerated"
            );
        } else {
            let _ = writeln!(s, "preloaded {path} into {preloaded} trace-cache slot(s)");
        }
    }

    let report = SweepRunner::with_cache(threads, cache)
        .run(&scenario)
        .map_err(|e| format!("invalid scenario: {e}"))?;

    s.push_str(&report.to_markdown());
    if let Some(path) = csv {
        fs::write(path, report.to_csv()).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        let _ = writeln!(s, "wrote {path}");
    }
    if let Some(path) = stable_csv {
        fs::write(path, report.to_csv_stable())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        let _ = writeln!(s, "wrote {path}");
    }
    if let Some(path) = md {
        fs::write(path, report.to_markdown())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        let _ = writeln!(s, "wrote {path}");
    }
    emit(out, &s)
}

/// Decodes `path` and inserts it under every grid cell key it can
/// serve; returns how many cache slots were filled.
fn preload(
    cache: &TraceCache,
    scenario: &resim_sweep::Scenario,
    path: &str,
) -> Result<usize, String> {
    let mut src =
        FileSource::open(path).map_err(|e| format!("cannot preload trace {path:?}: {e}"))?;
    let header = src.header().clone();

    // Decide from the header alone before decoding a single record, so
    // a mismatched multi-gigabyte container costs O(header), not a
    // full in-memory decode. An untrusted count that does not even fit
    // in usize cannot match any budget axis.
    let Ok(budget) = usize::try_from(header.correct_records) else {
        return Ok(0);
    };
    let workload_known = scenario.workloads().iter().any(|w| w.name == header.workload);
    let axes_match = workload_known
        && scenario.seed_values().contains(&header.seed)
        && scenario.budget_values().contains(&budget);
    let served: Vec<_> = scenario
        .configs()
        .iter()
        .filter(|p| p.tracegen.fingerprint() == header.tracegen_fingerprint)
        .map(|p| p.tracegen)
        .collect();
    if !axes_match || served.is_empty() {
        return Ok(0);
    }

    let records: Vec<_> = std::iter::from_fn(|| src.next_record()).collect();
    if let Some(e) = src.error() {
        return Err(format!("trace {path:?} ended abnormally: {e}"));
    }
    let trace = Trace::from_records(records);

    let mut inserted = 0;
    for config in served {
        let key = TraceKey {
            workload: header.workload.clone(),
            seed: header.seed,
            n_correct: budget,
            config,
        };
        if cache.get(&key).is_none() {
            cache.insert(key, trace.clone());
            inserted += 1;
        }
    }
    Ok(inserted)
}

/// `resim describe`: dump the resolved configuration without running.
pub(crate) fn describe(scenario_path: &str, out: &mut dyn Write) -> CmdResult {
    let doc = load_scenario(scenario_path)?;
    let mut s = block_diagram(&doc.engine);
    // The minor-cycle schedule grid (the paper's Figures 2-4, or the
    // scenario's custom [pipeline] laid out the same way).
    if let Ok(schedule) = doc.engine.pipeline.schedule(doc.engine.width) {
        s.push('\n');
        s.push_str(&schedule.render());
    }
    let _ = writeln!(s, "engine fingerprint: {:#018x}", doc.engine.fingerprint());
    let _ = writeln!(
        s,
        "trace generator: wrong-path block {}, synthesis seed {:#x}, fingerprint {:#018x}{}",
        doc.tracegen.wrong_path_len,
        doc.tracegen.seed,
        doc.tracegen.fingerprint(),
        if doc.tracegen.predictor == doc.engine.predictor {
            " (predictor matches engine)"
        } else {
            " (predictor DIFFERS from engine: wrong-path tags may be meaningless)"
        },
    );
    let _ = writeln!(
        s,
        "workload: \"{}\", seed {}, budget {}",
        doc.workload.name, doc.workload.seed, doc.workload.budget,
    );
    if let Some(file) = &doc.trace_file {
        let _ = writeln!(s, "trace file: {file}");
    }
    if let Some(plan) = &doc.sample {
        let _ = writeln!(
            s,
            "sample plan: {} ({:.2}% coverage)",
            plan.name(),
            100.0 * plan.coverage(),
        );
    }
    if doc.has_sweep() {
        let scenario = doc
            .sweep_scenario()
            .map_err(|e| e.display_in(scenario_path))?;
        let _ = writeln!(
            s,
            "sweep grid: {} configs x {} workloads x {} budgets x {} seeds x {} modes = {} cells",
            scenario.configs().len(),
            scenario.workloads().len(),
            scenario.budget_values().len(),
            scenario.seed_values().len(),
            scenario.mode_values().len(),
            scenario.len(),
        );
        for note in scenario.grid_notes() {
            let _ = writeln!(s, "note: {note}");
        }
    }
    emit(out, &s)
}
