//! Hand-rolled argument parsing for the `resim` binary (no external
//! dependencies, like everything else in this workspace).

/// Where `resim serve` listens and `resim submit` connects when
/// `--addr` is not given (the port is a nod to the paper's year).
pub const DEFAULT_ADDR: &str = "127.0.0.1:20009";

/// A fully parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `resim trace`.
    Trace {
        /// Scenario file path.
        scenario: String,
        /// `--out` override of the output path.
        out: Option<String>,
        /// `--budget` override of the `[workload]` budget.
        budget: Option<usize>,
        /// `--seed` override of the `[workload]` seed.
        seed: Option<u64>,
        /// `--layout` body layout version (default 1).
        layout: Option<u16>,
    },
    /// `resim run`.
    Run {
        /// Scenario file path.
        scenario: String,
        /// `--trace` input container.
        trace: Option<String>,
        /// `--profile` switch: attach a metrics recorder and print the
        /// profiling breakdown.
        profile: bool,
    },
    /// `resim profile`.
    Profile {
        /// Scenario file path.
        scenario: String,
        /// `--trace` input container.
        trace: Option<String>,
        /// `--metrics-out` metrics JSON path.
        metrics_out: Option<String>,
        /// `--events-out` events JSONL path.
        events_out: Option<String>,
        /// `--journal` event-journal capacity override.
        journal: Option<usize>,
    },
    /// `resim sample`.
    Sample {
        /// Scenario file path.
        scenario: String,
        /// `--trace` input container.
        trace: Option<String>,
    },
    /// `resim sweep`.
    Sweep {
        /// Scenario file path.
        scenario: String,
        /// `--threads` override.
        threads: Option<usize>,
        /// `--csv` report path.
        csv: Option<String>,
        /// `--stable-csv` report path (deterministic rendering).
        stable_csv: Option<String>,
        /// `--md` report path.
        md: Option<String>,
        /// `--trace-file` containers to preload (repeatable).
        trace_files: Vec<String>,
        /// `--progress` switch: print per-phase progress lines.
        progress: bool,
    },
    /// `resim describe`.
    Describe {
        /// Scenario file path.
        scenario: String,
    },
    /// `resim record`.
    Record {
        /// Scenario file path.
        scenario: String,
        /// `--trace` input container (embedded into the session).
        trace: Option<String>,
        /// `--out` override of the session path.
        out: Option<String>,
        /// `--cell` sweep-grid cell index to record.
        cell: Option<usize>,
    },
    /// `resim replay`.
    Replay {
        /// Session record path.
        session: String,
    },
    /// `resim serve`.
    Serve {
        /// `--addr` listen address (default `DEFAULT_ADDR`).
        addr: String,
        /// `--cache-dir` on-disk result-cache directory (default:
        /// in-memory only, results do not survive a restart).
        cache_dir: Option<String>,
        /// `--threads` per-job sweep worker-pool size.
        threads: Option<usize>,
    },
    /// `resim submit`.
    Submit {
        /// Scenario file to submit (optional when an action flag is
        /// given).
        scenario: Option<String>,
        /// `--addr` server address (default `DEFAULT_ADDR`).
        addr: String,
        /// `--progress` switch: print streamed progress lines.
        progress: bool,
        /// `--ping` action: probe the server first.
        ping: bool,
        /// `--metrics` action: print the counter snapshot after.
        metrics: bool,
        /// `--shutdown` action: stop the server last.
        shutdown: bool,
    },
    /// `resim help [topic]`, `resim --help`, or `resim <cmd> --help`.
    Help(Option<String>),
    /// `resim --version`.
    Version,
}

/// Parses everything after the program name.
///
/// # Errors
///
/// A usage message (no line numbers — these are command-line, not
/// scenario-file, problems).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(Command::Help(None));
    };
    match cmd {
        "-h" | "--help" | "help" => Ok(Command::Help(it.next().map(str::to_string))),
        "-V" | "--version" => Ok(Command::Version),
        "trace" | "run" | "profile" | "sample" | "sweep" | "serve" | "submit" | "describe"
        | "record" | "replay" => parse_subcommand(cmd, &args[1..]),
        other => Err(format!(
            "unknown command {other:?} (expected trace, run, profile, sample, sweep, \
             serve, submit, describe, record, replay or help)"
        )),
    }
}

fn parse_subcommand(cmd: &str, rest: &[String]) -> Result<Command, String> {
    let mut scenario: Option<String> = None;
    let mut out: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut budget: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut layout: Option<u16> = None;
    let mut cell: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut csv: Option<String> = None;
    let mut stable_csv: Option<String> = None;
    let mut md: Option<String> = None;
    let mut trace_files: Vec<String> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut events_out: Option<String> = None;
    let mut journal: Option<usize> = None;
    let mut profile = false;
    let mut progress = false;
    let mut addr: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut ping = false;
    let mut metrics = false;
    let mut shutdown = false;

    let mut it = rest.iter().map(String::as_str).peekable();
    while let Some(flag) = it.next() {
        // A flag's operand, or a usage error naming the flag.
        macro_rules! value {
            () => {
                it.next()
                    .ok_or_else(|| format!("{flag} requires a value"))?
            };
        }
        match flag {
            "-h" | "--help" => return Ok(Command::Help(Some(cmd.to_string()))),
            // `replay` takes a session file, not a scenario; `-s` is
            // its short form there too. `serve` takes neither — its
            // scenarios arrive over the wire.
            "-s" | "--session" if cmd == "replay" => scenario = Some(value!().to_string()),
            "-s" | "--scenario" if cmd != "replay" && cmd != "serve" => {
                scenario = Some(value!().to_string());
            }
            "-o" | "--out" if cmd == "trace" || cmd == "record" => {
                out = Some(value!().to_string());
            }
            "-t" | "--trace"
                if cmd == "run" || cmd == "profile" || cmd == "sample" || cmd == "record" =>
            {
                trace = Some(value!().to_string());
            }
            "--profile" if cmd == "run" => profile = true,
            "--metrics-out" if cmd == "profile" => metrics_out = Some(value!().to_string()),
            "--events-out" if cmd == "profile" => events_out = Some(value!().to_string()),
            "--journal" if cmd == "profile" => journal = Some(parse_num(flag, value!())?),
            "--progress" if cmd == "sweep" || cmd == "submit" => progress = true,
            "--addr" if cmd == "serve" || cmd == "submit" => addr = Some(value!().to_string()),
            "--cache-dir" if cmd == "serve" => cache_dir = Some(value!().to_string()),
            "--ping" if cmd == "submit" => ping = true,
            "--metrics" if cmd == "submit" => metrics = true,
            "--shutdown" if cmd == "submit" => shutdown = true,
            "--budget" if cmd == "trace" => budget = Some(parse_num(flag, value!())?),
            "--seed" if cmd == "trace" => seed = Some(parse_num(flag, value!())?),
            "--layout" if cmd == "trace" => layout = Some(parse_num(flag, value!())?),
            "--cell" if cmd == "record" => cell = Some(parse_num(flag, value!())?),
            "-j" | "--threads" if cmd == "sweep" || cmd == "serve" => {
                threads = Some(parse_num(flag, value!())?);
            }
            "--csv" if cmd == "sweep" => csv = Some(value!().to_string()),
            "--stable-csv" if cmd == "sweep" => stable_csv = Some(value!().to_string()),
            "--md" if cmd == "sweep" => md = Some(value!().to_string()),
            "--trace-file" if cmd == "sweep" => trace_files.push(value!().to_string()),
            other => return Err(format!("unknown option {other:?} for `resim {cmd}`")),
        }
    }
    // The service commands do not require a scenario file: `serve`
    // never takes one, and `submit` can be a pure action invocation
    // (--ping / --metrics / --shutdown).
    if cmd == "serve" {
        return Ok(Command::Serve {
            addr: addr.unwrap_or_else(|| DEFAULT_ADDR.to_string()),
            cache_dir,
            threads,
        });
    }
    if cmd == "submit" {
        if scenario.is_none() && !ping && !metrics && !shutdown {
            return Err(
                "`resim submit` requires --scenario <FILE>, or at least one of \
                 --ping, --metrics, --shutdown"
                    .to_string(),
            );
        }
        return Ok(Command::Submit {
            scenario,
            addr: addr.unwrap_or_else(|| DEFAULT_ADDR.to_string()),
            progress,
            ping,
            metrics,
            shutdown,
        });
    }
    let scenario = scenario.ok_or_else(|| {
        let key = if cmd == "replay" { "session" } else { "scenario" };
        format!("`resim {cmd}` requires --{key} <FILE>")
    })?;
    Ok(match cmd {
        "trace" => Command::Trace {
            scenario,
            out,
            budget,
            seed,
            layout,
        },
        "run" => Command::Run {
            scenario,
            trace,
            profile,
        },
        "profile" => Command::Profile {
            scenario,
            trace,
            metrics_out,
            events_out,
            journal,
        },
        "sample" => Command::Sample { scenario, trace },
        "sweep" => Command::Sweep {
            scenario,
            threads,
            csv,
            stable_csv,
            md,
            trace_files,
            progress,
        },
        "describe" => Command::Describe { scenario },
        "record" => Command::Record {
            scenario,
            trace,
            out,
            cell,
        },
        "replay" => Command::Replay { session: scenario },
        _ => unreachable!("caller matched the command"),
    })
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid number {value:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse(&owned)
    }

    #[test]
    fn help_and_version() {
        assert_eq!(p(&[]), Ok(Command::Help(None)));
        assert_eq!(p(&["--help"]), Ok(Command::Help(None)));
        assert_eq!(p(&["help", "sweep"]), Ok(Command::Help(Some("sweep".into()))));
        assert_eq!(p(&["run", "--help"]), Ok(Command::Help(Some("run".into()))));
        assert_eq!(p(&["-V"]), Ok(Command::Version));
    }

    #[test]
    fn subcommands_parse() {
        assert_eq!(
            p(&["trace", "-s", "a.toml", "-o", "t.trace", "--budget", "5000", "--seed", "7",
                "--layout", "2"]),
            Ok(Command::Trace {
                scenario: "a.toml".into(),
                out: Some("t.trace".into()),
                budget: Some(5000),
                seed: Some(7),
                layout: Some(2),
            })
        );
        assert_eq!(
            p(&["run", "--scenario", "a.toml", "--trace", "t.trace"]),
            Ok(Command::Run {
                scenario: "a.toml".into(),
                trace: Some("t.trace".into()),
                profile: false,
            })
        );
        assert_eq!(
            p(&["run", "-s", "a.toml", "--profile"]),
            Ok(Command::Run {
                scenario: "a.toml".into(),
                trace: None,
                profile: true,
            })
        );
        assert_eq!(
            p(&["sweep", "-s", "a.toml", "-j", "2", "--stable-csv", "r.csv",
                "--trace-file", "x.trace", "--trace-file", "y.trace"]),
            Ok(Command::Sweep {
                scenario: "a.toml".into(),
                threads: Some(2),
                csv: None,
                stable_csv: Some("r.csv".into()),
                md: None,
                trace_files: vec!["x.trace".into(), "y.trace".into()],
                progress: false,
            })
        );
        assert_eq!(
            p(&["sweep", "-s", "a.toml", "--progress"]),
            Ok(Command::Sweep {
                scenario: "a.toml".into(),
                threads: None,
                csv: None,
                stable_csv: None,
                md: None,
                trace_files: vec![],
                progress: true,
            })
        );
        assert_eq!(
            p(&["describe", "-s", "a.toml"]),
            Ok(Command::Describe { scenario: "a.toml".into() })
        );
    }

    #[test]
    fn profile_parses() {
        assert_eq!(
            p(&["profile", "-s", "a.toml", "-t", "t.trace", "--metrics-out", "m.json",
                "--events-out", "e.jsonl", "--journal", "1024"]),
            Ok(Command::Profile {
                scenario: "a.toml".into(),
                trace: Some("t.trace".into()),
                metrics_out: Some("m.json".into()),
                events_out: Some("e.jsonl".into()),
                journal: Some(1024),
            })
        );
        assert_eq!(
            p(&["profile", "--scenario", "a.toml"]),
            Ok(Command::Profile {
                scenario: "a.toml".into(),
                trace: None,
                metrics_out: None,
                events_out: None,
                journal: None,
            })
        );
        assert!(p(&["profile"]).unwrap_err().contains("--scenario"));
        assert!(p(&["profile", "-s", "a", "--journal", "big"])
            .unwrap_err()
            .contains("invalid number"));
        assert!(p(&["run", "-s", "a", "--metrics-out", "m.json"])
            .unwrap_err()
            .contains("unknown option"));
        assert!(p(&["profile", "-s", "a", "--profile"])
            .unwrap_err()
            .contains("unknown option"));
    }

    #[test]
    fn record_and_replay_parse() {
        assert_eq!(
            p(&["record", "-s", "a.toml", "-t", "x.trace", "-o", "a.rssn", "--cell", "3"]),
            Ok(Command::Record {
                scenario: "a.toml".into(),
                trace: Some("x.trace".into()),
                out: Some("a.rssn".into()),
                cell: Some(3),
            })
        );
        assert_eq!(
            p(&["record", "--scenario", "a.toml"]),
            Ok(Command::Record {
                scenario: "a.toml".into(),
                trace: None,
                out: None,
                cell: None,
            })
        );
        assert_eq!(
            p(&["replay", "--session", "a.rssn"]),
            Ok(Command::Replay { session: "a.rssn".into() })
        );
        assert_eq!(
            p(&["replay", "-s", "a.rssn"]),
            Ok(Command::Replay { session: "a.rssn".into() })
        );
        assert!(p(&["replay"]).unwrap_err().contains("--session"));
        assert!(p(&["replay", "--scenario", "a"]).unwrap_err().contains("unknown option"));
        assert!(p(&["record", "-s", "a", "--cell", "x"]).unwrap_err().contains("invalid number"));
        assert!(p(&["replay", "-s", "a", "--cell", "1"]).unwrap_err().contains("unknown option"));
    }

    #[test]
    fn serve_parses() {
        assert_eq!(
            p(&["serve"]),
            Ok(Command::Serve {
                addr: DEFAULT_ADDR.into(),
                cache_dir: None,
                threads: None,
            })
        );
        assert_eq!(
            p(&["serve", "--addr", "127.0.0.1:0", "--cache-dir", "cache", "-j", "2"]),
            Ok(Command::Serve {
                addr: "127.0.0.1:0".into(),
                cache_dir: Some("cache".into()),
                threads: Some(2),
            })
        );
        // Serve has no scenario: its work arrives over the wire.
        assert!(p(&["serve", "-s", "a.toml"]).unwrap_err().contains("unknown option"));
        assert!(p(&["serve", "--ping"]).unwrap_err().contains("unknown option"));
    }

    #[test]
    fn submit_parses() {
        assert_eq!(
            p(&["submit", "-s", "a.toml"]),
            Ok(Command::Submit {
                scenario: Some("a.toml".into()),
                addr: DEFAULT_ADDR.into(),
                progress: false,
                ping: false,
                metrics: false,
                shutdown: false,
            })
        );
        assert_eq!(
            p(&["submit", "-s", "a.toml", "--addr", "127.0.0.1:7", "--progress",
                "--ping", "--metrics", "--shutdown"]),
            Ok(Command::Submit {
                scenario: Some("a.toml".into()),
                addr: "127.0.0.1:7".into(),
                progress: true,
                ping: true,
                metrics: true,
                shutdown: true,
            })
        );
        // Pure action invocations need no scenario…
        assert_eq!(
            p(&["submit", "--shutdown"]),
            Ok(Command::Submit {
                scenario: None,
                addr: DEFAULT_ADDR.into(),
                progress: false,
                ping: false,
                metrics: false,
                shutdown: true,
            })
        );
        // …but a submit with nothing to do is a usage error.
        assert!(p(&["submit"]).unwrap_err().contains("--scenario"));
        assert!(p(&["submit", "--cache-dir", "x"]).unwrap_err().contains("unknown option"));
    }

    #[test]
    fn usage_errors() {
        assert!(p(&["launch"]).unwrap_err().contains("unknown command"));
        assert!(p(&["run"]).unwrap_err().contains("--scenario"));
        assert!(p(&["run", "-s"]).unwrap_err().contains("requires a value"));
        assert!(p(&["run", "-s", "a.toml", "--csv", "x"]).unwrap_err().contains("unknown option"));
        assert!(p(&["trace", "-s", "a", "--budget", "many"]).unwrap_err().contains("invalid number"));
        assert!(p(&["describe", "-s", "a", "--trace", "t"]).unwrap_err().contains("unknown option"));
    }
}
