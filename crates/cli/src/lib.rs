//! # resim-cli
//!
//! The `resim` command-line driver: the reproduction's analogue of the
//! paper's host tool, which configures the simulated core and feeds it
//! traces over a link (§V.B). Here the link is the file system — a
//! versioned trace container (`resim-trace`'s `FileSource`) — and the
//! configuration surface is a declarative TOML scenario file mapped
//! onto the library types through their `from_table` constructors, so
//! every config mistake is a `file:line:` diagnostic rather than a
//! Rust compile error.
//!
//! Ten subcommands cover the paper's workflows:
//!
//! * `resim trace` — generate a workload trace once, on disk;
//! * `resim run` — full-detail simulation of a trace file or inline
//!   workload;
//! * `resim profile` — the same run with a collecting metrics recorder
//!   attached (`resim-obs`): per-stage wall time, occupancy heatmap,
//!   and versioned metrics-JSON / events-JSONL exports;
//! * `resim sample` — SMARTS sampled simulation with a 95 % CI;
//! * `resim sweep` — bulk design-space grids with CSV/Markdown
//!   reports, replaying trace files instead of regenerating;
//! * `resim serve` — a persistent TCP simulation service
//!   (`resim-serve`) with a content-addressed, restart-surviving
//!   result cache;
//! * `resim submit` — the matching client: send a scenario, stream
//!   progress, print the deterministic CSV report;
//! * `resim describe` — dump the resolved configuration (Figure 1
//!   block diagram included) without running;
//! * `resim record` — execute a run and capture every
//!   nondeterministic input plus the resulting statistics in one RSSN
//!   session file (`resim-session`);
//! * `resim replay` — re-execute a recorded session and diff the
//!   statistics field for field.
//!
//! See `docs/guide.md` for the quickstart and the complete
//! scenario-file reference.
//!
//! The binary is a thin shell over [`run_cli`], which the golden and
//! round-trip tests call directly:
//!
//! ```
//! let mut out = Vec::new();
//! let mut err = Vec::new();
//! let code = resim_cli::run_cli(&["--version".to_string()], &mut out, &mut err);
//! assert_eq!(code, 0);
//! assert!(String::from_utf8(out).unwrap().starts_with("resim "));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
pub mod help;

pub use args::Command;
pub use resim_sweep::{ScenarioDoc, WorkloadSpec};

use std::io::Write;

/// Runs the CLI on `args` (everything after the program name), writing
/// to the given sinks. Returns the process exit code: 0 on success, 1
/// on a runtime failure, 2 on a usage error.
pub fn run_cli(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> i32 {
    let command = match args::parse(args) {
        Ok(c) => c,
        Err(msg) => {
            let _ = writeln!(err, "resim: {msg}");
            let _ = writeln!(err, "run `resim --help` for usage");
            return 2;
        }
    };
    let result = match &command {
        Command::Help(topic) => {
            let text = match topic.as_deref() {
                None => help::MAIN_HELP,
                Some("trace") => help::TRACE_HELP,
                Some("run") => help::RUN_HELP,
                Some("profile") => help::PROFILE_HELP,
                Some("sample") => help::SAMPLE_HELP,
                Some("sweep") => help::SWEEP_HELP,
                Some("serve") => help::SERVE_HELP,
                Some("submit") => help::SUBMIT_HELP,
                Some("describe") => help::DESCRIBE_HELP,
                Some("record") => help::RECORD_HELP,
                Some("replay") => help::REPLAY_HELP,
                Some(other) => {
                    let _ = writeln!(err, "resim: no help for unknown command {other:?}");
                    return 2;
                }
            };
            let _ = out.write_all(text.as_bytes());
            Ok(())
        }
        Command::Version => {
            let _ = writeln!(out, "{}", help::VERSION);
            Ok(())
        }
        Command::Trace {
            scenario,
            out: out_path,
            budget,
            seed,
            layout,
        } => commands::trace(scenario, out_path.as_deref(), *budget, *seed, *layout, out),
        Command::Run {
            scenario,
            trace,
            profile,
        } => commands::run(scenario, trace.as_deref(), *profile, out),
        Command::Profile {
            scenario,
            trace,
            metrics_out,
            events_out,
            journal,
        } => commands::profile(
            scenario,
            trace.as_deref(),
            metrics_out.as_deref(),
            events_out.as_deref(),
            *journal,
            out,
        ),
        Command::Sample { scenario, trace } => commands::sample(scenario, trace.as_deref(), out),
        Command::Sweep {
            scenario,
            threads,
            csv,
            stable_csv,
            md,
            trace_files,
            progress,
        } => commands::sweep(
            scenario,
            *threads,
            csv.as_deref(),
            stable_csv.as_deref(),
            md.as_deref(),
            trace_files,
            *progress,
            out,
        ),
        Command::Serve {
            addr,
            cache_dir,
            threads,
        } => commands::serve(addr, cache_dir.as_deref(), *threads, out),
        Command::Submit {
            scenario,
            addr,
            progress,
            ping,
            metrics,
            shutdown,
        } => commands::submit(
            scenario.as_deref(),
            addr,
            *progress,
            *ping,
            *metrics,
            *shutdown,
            out,
        ),
        Command::Describe { scenario } => commands::describe(scenario, out),
        Command::Record {
            scenario,
            trace,
            out: out_path,
            cell,
        } => commands::record(scenario, trace.as_deref(), out_path.as_deref(), *cell, out),
        Command::Replay { session } => commands::replay(session, out),
    };
    match result {
        Ok(()) => 0,
        Err(msg) => {
            let _ = writeln!(err, "resim: {msg}");
            1
        }
    }
}

/// Convenience for tests and the binary: runs on string slices and
/// returns `(exit code, stdout, stderr)`.
pub fn run_for_test(args: &[&str]) -> (i32, String, String) {
    let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = run_cli(&owned, &mut out, &mut err);
    (
        code,
        String::from_utf8_lossy(&out).into_owned(),
        String::from_utf8_lossy(&err).into_owned(),
    )
}
