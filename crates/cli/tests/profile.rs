//! Integration tests for `resim profile` (and `resim run --profile`,
//! `resim sweep --progress`): the observability surface of PR 8.
//!
//! The profiling contract: attaching the metrics recorder never
//! changes the simulated statistics, so everything `resim run` prints
//! before its stage-activity line reappears byte-identically at the
//! head of the `resim profile` output. Only the span table's wall
//! times are nondeterministic; stripping that one block makes two
//! profile runs comparable line for line.

use resim_cli::run_for_test;
use std::fs;
use std::path::PathBuf;

/// A custom `[pipeline]` scenario with no `[trace]` key: the trace is
/// generated in memory, so `profile` works without any setup.
const FUSED: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/pipelines/fused.toml"
);

/// A per-test scratch directory (no tempfile crate in this workspace).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resim-profile-{test}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Drops the span-table block (header through the following blank
/// line) — the only output whose numbers depend on host wall time.
fn strip_span_table(out: &str) -> String {
    let mut kept = String::new();
    let mut in_table = false;
    for line in out.lines() {
        if line.starts_with("stage wall time") {
            in_table = true;
        }
        if !in_table {
            kept.push_str(line);
            kept.push('\n');
        }
        if in_table && line.is_empty() {
            in_table = false;
        }
    }
    kept
}

#[test]
fn profile_works_on_a_custom_pipeline_scenario() {
    let (code, out, err) = run_for_test(&["profile", "-s", FUSED]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("generated in memory"), "{out}");
    for marker in [
        "# derived rates",
        "util_ifq_peak",
        "stage wall time (engine-side, per stage evaluation):",
        "occupancy heatmap over",
        "event journal:",
        "IPC ",
    ] {
        assert!(out.contains(marker), "missing {marker:?} in:\n{out}");
    }
    // The bounded journal records at least the per-cycle occupancy
    // samples and never silently loses the accounting line.
    assert!(
        out.contains("dropped (capacity 65536)"),
        "default journal capacity line missing:\n{out}"
    );
}

#[test]
fn profile_output_starts_with_the_plain_run_report() {
    let (code, run_out, _) = run_for_test(&["run", "-s", FUSED]);
    assert_eq!(code, 0);
    let (code, profile_out, _) = run_for_test(&["profile", "-s", FUSED]);
    assert_eq!(code, 0);

    // Banner + SimStats::report() are common; `run` then prints its
    // stage-activity line where `profile` starts the utilization table.
    let cut = run_out
        .find("stage activity (ops):")
        .expect("run output lost its stage-activity line");
    assert!(
        profile_out.starts_with(&run_out[..cut]),
        "recorder changed the simulated report:\nrun:\n{run_out}\nprofile:\n{profile_out}"
    );
}

#[test]
fn run_profile_flag_is_the_profile_subcommand() {
    let (code, via_flag, _) = run_for_test(&["run", "-s", FUSED, "--profile"]);
    assert_eq!(code, 0);
    let (code, via_subcommand, _) = run_for_test(&["profile", "-s", FUSED]);
    assert_eq!(code, 0);
    assert_eq!(
        strip_span_table(&via_flag),
        strip_span_table(&via_subcommand),
        "run --profile must match `resim profile` modulo wall times"
    );
}

#[test]
fn profile_exports_versioned_metrics_and_events() {
    let dir = scratch("exports");
    let metrics = dir.join("m.json");
    let events = dir.join("e.jsonl");
    let journal_cap = "4096";

    let (code, out, err) = run_for_test(&[
        "profile",
        "-s",
        FUSED,
        "--journal",
        journal_cap,
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--events-out",
        events.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("dropped (capacity 4096)"), "{out}");
    assert!(out.contains(&format!("wrote {}", metrics.display())), "{out}");
    assert!(out.contains(&format!("wrote {}", events.display())), "{out}");

    let m = fs::read_to_string(&metrics).unwrap();
    assert!(m.starts_with("{\n  \"schema\": \"resim.metrics/1\",\n"), "{m}");
    for key in [
        "\"organization\": \"fused\"",
        "\"rates\"",
        "\"ipc\"",
        "\"counters\"",
        "\"histograms\"",
        "\"spans\"",
        "\"gauges\"",
        "\"journal\"",
        "\"source\": \"generated gzip\"",
    ] {
        assert!(m.contains(key), "metrics JSON missing {key}:\n{m}");
    }
    assert!(m.ends_with("}\n"), "document must end with a newline");

    let e = fs::read_to_string(&events).unwrap();
    let mut lines = e.lines();
    let header = lines.next().unwrap();
    assert!(header.starts_with("{\"schema\":\"resim.events/1\","), "{header}");
    let mut n = 0;
    for line in lines {
        assert!(line.starts_with("{\"cycle\":"), "bad event line: {line}");
        assert!(line.ends_with('}'), "bad event line: {line}");
        n += 1;
    }
    assert!(n > 0, "no events retained");
    assert!(n <= 4096, "journal bound violated: {n} events");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn profile_replays_a_trace_file_and_reports_decode_counters() {
    let dir = scratch("replay");
    let scenario = dir.join("s.toml");
    let trace = dir.join("vpr.trace");
    let metrics = dir.join("m.json");
    fs::write(
        &scenario,
        "[engine]\npreset = \"paper-4wide\"\n\n[workload]\nname = \"vpr\"\nseed = 9\nbudget = 6000\n",
    )
    .unwrap();

    let (code, _, err) = run_for_test(&[
        "trace",
        "-s",
        scenario.to_str().unwrap(),
        "-o",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");

    let (code, out, err) = run_for_test(&[
        "profile",
        "-s",
        scenario.to_str().unwrap(),
        "-t",
        trace.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("replaying"), "{out}");

    // The FileSource decode counters surface in the trace section.
    let m = fs::read_to_string(&metrics).unwrap();
    assert!(m.contains("\"source\": \"file "), "{m}");
    let decoded = m
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"decoded\": "))
        .and_then(|v| v.trim_end_matches(',').parse::<u64>().ok())
        .expect("decoded counter missing");
    assert!(decoded >= 6000, "decoded {decoded} < correct-path budget");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_progress_reports_both_phases() {
    // fused.toml's [sweep]: 1 workload point to generate, then a 2x2
    // grid (widths x pipelines) of simulate cells. -j 1 keeps the
    // sample order deterministic.
    let (code, out, err) = run_for_test(&["sweep", "-s", FUSED, "--progress", "-j", "1"]);
    assert_eq!(code, 0, "stderr: {err}");
    for marker in [
        "progress: tracegen 0/1",
        "progress: tracegen 1/1",
        "progress: simulate 0/4",
        "progress: simulate 4/4",
    ] {
        assert!(out.contains(marker), "missing {marker:?} in:\n{out}");
    }
    // Progress lines precede the report.
    let last_progress = out.rfind("progress: simulate 4/4").unwrap();
    let report = out.find("sweep:").unwrap_or(out.len());
    assert!(last_progress < report || report == out.len(), "{out}");

    // Without the flag, no progress lines at all.
    let (code, quiet, _) = run_for_test(&["sweep", "-s", FUSED, "-j", "1"]);
    assert_eq!(code, 0);
    assert!(!quiet.contains("progress:"), "{quiet}");
}
