//! The CLI fidelity contract:
//!
//! 1. a trace written by `resim trace` and replayed through
//!    [`FileSource`] produces `SimStats` **bit-identical** to
//!    `Engine::run` over the same in-memory generated trace;
//! 2. a TOML-driven `resim sweep` reproduces the **byte-identical**
//!    stable CSV of the equivalent programmatic [`SweepRunner`] grid.

use resim_cli::{run_for_test, ScenarioDoc};
use resim_core::{Engine, EngineConfig};
use resim_sweep::{Scenario, SweepRunner, WorkloadPoint};
use resim_trace::FileSource;
use resim_tracegen::TraceGenConfig;
use resim_workloads::SpecBenchmark;
use std::fs;
use std::path::PathBuf;

/// A per-test scratch directory (no tempfile crate in this workspace).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resim-cli-{test}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

const SCENARIO: &str = r#"
[engine]
preset = "paper-4wide"
rb_size = 32

[workload]
name = "bzip2"
seed = 77
budget = 15000

[sample]
interval = 3000
detailed = 1000
period = 2
"#;

#[test]
fn file_replay_is_bit_identical_to_in_memory_run() {
    let dir = scratch("replay");
    let scenario_path = dir.join("s.toml");
    let trace_path = dir.join("bzip2.trace");
    fs::write(&scenario_path, SCENARIO).unwrap();

    // Write the container through the real CLI path.
    let (code, out, err) = run_for_test(&[
        "trace",
        "-s",
        scenario_path.to_str().unwrap(),
        "-o",
        trace_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("15000 correct"), "{out}");

    // Reference: the same generation, never touching disk.
    let doc = ScenarioDoc::parse_str(SCENARIO).unwrap();
    let trace = doc.generate();
    let reference = Engine::new(doc.engine.clone()).unwrap().run(trace.source());

    // Replay the file.
    let mut src = FileSource::open(&trace_path).unwrap();
    assert_eq!(src.header().workload, "bzip2");
    assert_eq!(src.header().correct_records, 15000);
    assert_eq!(src.header().tracegen_fingerprint, doc.tracegen.fingerprint());
    let replayed = Engine::new(doc.engine.clone()).unwrap().run(&mut src);
    assert!(src.error().is_none());

    assert_eq!(replayed, reference, "SimStats must be bit-identical");

    // And the sampled path sees the identical stream too.
    let plan = doc.sample.unwrap();
    let mut src = FileSource::open(&trace_path).unwrap();
    let from_file = resim_sample::run_sampled(&doc.engine, &mut src, &plan).unwrap();
    let in_memory = resim_sample::run_sampled(&doc.engine, trace.source(), &plan).unwrap();
    assert_eq!(from_file.sim, in_memory.sim);
    assert_eq!(from_file.windows, in_memory.windows);

    fs::remove_dir_all(&dir).unwrap();
}

const SWEEP_SCENARIO: &str = r#"
[sweep]
workloads = ["gzip", "vpr"]
budgets = [8000]
seeds = [2009, 2010]
threads = 2

[[sweep.config]]
name = "cached"
[sweep.config.engine]
preset = "paper-2wide-cached"

[sweep.grid]
rb_sizes = [16, 32]
"#;

/// The same grid, built through the library API only.
fn programmatic_scenario() -> Scenario {
    Scenario::new()
        .config(
            "cached",
            EngineConfig::paper_2wide_cached(),
            // The CLI defaults the generator predictor to the engine's.
            TraceGenConfig {
                predictor: EngineConfig::paper_2wide_cached().predictor,
                ..TraceGenConfig::paper()
            },
        )
        .config_grid(
            EngineConfig::paper_4wide().grid().rb_sizes([16, 32]).build(),
            TraceGenConfig::paper(),
        )
        .workload(WorkloadPoint::spec(SpecBenchmark::Gzip))
        .workload(WorkloadPoint::spec(SpecBenchmark::Vpr))
        .budgets([8000])
        .seeds([2009, 2010])
}

#[test]
fn toml_sweep_matches_programmatic_sweep_byte_for_byte() {
    let dir = scratch("sweep");
    let scenario_path = dir.join("s.toml");
    let csv_path = dir.join("report.csv");
    fs::write(&scenario_path, SWEEP_SCENARIO).unwrap();

    let (code, out, err) = run_for_test(&[
        "sweep",
        "-s",
        scenario_path.to_str().unwrap(),
        "--stable-csv",
        csv_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("12 cells on 2 threads"), "{out}");
    let cli_csv = fs::read_to_string(&csv_path).unwrap();

    let report = SweepRunner::new(2).run(&programmatic_scenario()).unwrap();
    assert_eq!(cli_csv, report.to_csv_stable(), "CSV must be byte-identical");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sweep_replays_preloaded_trace_files() {
    let dir = scratch("preload");
    let scenario_path = dir.join("s.toml");
    let trace_path = dir.join("gzip.trace");
    let csv_path = dir.join("a.csv");
    let csv2_path = dir.join("b.csv");
    let scenario = r#"
[workload]
name = "gzip"
seed = 2009
budget = 6000

[sweep]
workloads = ["gzip"]
budgets = [6000]
seeds = [2009]
threads = 1

[sweep.grid]
rb_sizes = [16, 32]
"#;
    fs::write(&scenario_path, scenario).unwrap();
    let s = scenario_path.to_str().unwrap();

    let (code, _, err) = run_for_test(&["trace", "-s", s, "-o", trace_path.to_str().unwrap()]);
    assert_eq!(code, 0, "stderr: {err}");

    // Once with the file preloaded, once regenerating.
    let (code, out, err) = run_for_test(&[
        "sweep", "-s", s,
        "--trace-file", trace_path.to_str().unwrap(),
        "--stable-csv", csv_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("preloaded"), "{out}");
    assert!(out.contains("traces generated 0, cache hits 1"), "{out}");

    let (code, out, err) =
        run_for_test(&["sweep", "-s", s, "--stable-csv", csv2_path.to_str().unwrap()]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("traces generated 1"), "{out}");

    assert_eq!(
        fs::read_to_string(&csv_path).unwrap(),
        fs::read_to_string(&csv2_path).unwrap(),
        "replaying the file must not change a single byte of the results"
    );

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mismatched_trace_files_fall_back_to_generation() {
    let dir = scratch("mismatch");
    let scenario_path = dir.join("s.toml");
    let trace_path = dir.join("t.trace");
    // Trace written with seed 1...
    fs::write(
        &scenario_path,
        "[workload]\nname = \"gzip\"\nseed = 1\nbudget = 2000\n\n[sweep]\nworkloads = [\"gzip\"]\nbudgets = [2000]\nseeds = [2]\nthreads = 1\n[[sweep.config]]\nname = \"base\"\n",
    )
    .unwrap();
    let s = scenario_path.to_str().unwrap();
    let (code, _, _) = run_for_test(&["trace", "-s", s, "-o", trace_path.to_str().unwrap()]);
    assert_eq!(code, 0);

    // ...cannot serve a sweep over seed 2.
    let (code, out, err) =
        run_for_test(&["sweep", "-s", s, "--trace-file", trace_path.to_str().unwrap()]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("warning"), "{out}");
    assert!(out.contains("traces generated 1"), "{out}");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn describe_reports_the_scheduler_stage_roster() {
    // The stage-graph contract surfaces to the operator: `describe`
    // prints the minor-cycle scheduler's roster in evaluation order.
    let dir = scratch("describe-roster");
    let scenario_path = dir.join("s.toml");
    fs::write(&scenario_path, SCENARIO).unwrap();
    let (code, out, err) = run_for_test(&["describe", "-s", scenario_path.to_str().unwrap()]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(
        out.contains(
            "stage roster: Commit -> Writeback -> Lsq_refresh -> Issue -> Dispatch -> Fetch"
        ),
        "describe must report the stage roster:\n{out}"
    );
    assert!(out.contains("7 minor cycles per simulated cycle"), "{out}");

    // And `run` reports the scheduler's per-stage activity totals.
    let (code, out, err) = run_for_test(&["run", "-s", scenario_path.to_str().unwrap()]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(
        out.contains("stage activity (ops): Commit 15000, Writeback "),
        "run must report per-stage activity (all 15000 committed):\n{out}"
    );
    fs::remove_dir_all(&dir).unwrap();
}
