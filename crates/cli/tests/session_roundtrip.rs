//! The session record/replay contract, end to end through the CLI:
//! `resim record` captures a run, `resim replay` re-executes it and
//! must find every statistics field bit-identical — across generated,
//! file-frontend (v1 and v2 containers), sampled, and sweep-cell runs.

use resim_cli::run_for_test;
use resim_session::SessionRecord;
use std::fs;
use std::path::{Path, PathBuf};

/// A per-test scratch directory (no tempfile crate in this workspace).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resim-session-{test}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn record_and_replay(dir: &Path, scenario: &str, extra: &[&str]) -> (String, String) {
    let scenario_path = dir.join("s.toml");
    let session_path = dir.join("s.rssn");
    fs::write(&scenario_path, scenario).unwrap();
    let mut args = vec![
        "record",
        "-s",
        scenario_path.to_str().unwrap(),
        "-o",
        session_path.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let (code, rec_out, err) = run_for_test(&args);
    assert_eq!(code, 0, "record failed: {err}");

    let (code, out, err) = run_for_test(&["replay", "-s", session_path.to_str().unwrap()]);
    assert_eq!(code, 0, "replay failed: {err}");
    assert!(out.contains("bit-identical"), "{out}");
    (rec_out, out)
}

#[test]
fn generated_run_replays_bit_identically() {
    let dir = scratch("generated");
    let (rec_out, out) = record_and_replay(
        &dir,
        "[workload]\nname = \"gzip\"\nseed = 7\nbudget = 4000\n",
        &[],
    );
    assert!(rec_out.contains("mode     full"), "{rec_out}");
    assert!(rec_out.contains("regenerated at replay"), "{rec_out}");
    assert!(out.contains("42/42 fields match"), "{out}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sampled_run_replays_bit_identically() {
    let dir = scratch("sampled");
    let (rec_out, out) = record_and_replay(
        &dir,
        "[workload]\nname = \"vpr\"\nseed = 3\nbudget = 6000\n\
         [sample]\ninterval = 1000\ndetailed = 400\nperiod = 2\n",
        &[],
    );
    assert!(rec_out.contains("mode     sampled u1000d400k2f"), "{rec_out}");
    assert!(out.contains("sampled plan u1000d400k2f"), "{out}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_frontend_run_embeds_the_container_and_replays() {
    for layout in ["1", "2"] {
        let dir = scratch(&format!("file-v{layout}"));
        let scenario = "[workload]\nname = \"parser\"\nseed = 11\nbudget = 3000\n";
        let scenario_path = dir.join("s.toml");
        let trace_path = dir.join("t.trace");
        fs::write(&scenario_path, scenario).unwrap();
        let (code, _, err) = run_for_test(&[
            "trace",
            "-s",
            scenario_path.to_str().unwrap(),
            "-o",
            trace_path.to_str().unwrap(),
            "--layout",
            layout,
        ]);
        assert_eq!(code, 0, "trace failed: {err}");

        let (rec_out, _) =
            record_and_replay(&dir, scenario, &["-t", trace_path.to_str().unwrap()]);
        assert!(
            rec_out.contains(&format!("layout v{layout}")),
            "layout {layout}: {rec_out}"
        );
        assert!(rec_out.contains("trace    embedded"), "{rec_out}");

        // The session is self-contained: replay works with the trace
        // file gone.
        fs::remove_file(&trace_path).unwrap();
        let session_path = dir.join("s.rssn");
        let (code, out, err) = run_for_test(&["replay", "-s", session_path.to_str().unwrap()]);
        assert_eq!(code, 0, "replay after deleting the trace: {err}");
        assert!(out.contains("bit-identical"), "{out}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn sweep_cell_records_and_replays() {
    let dir = scratch("cell");
    let scenario = "\
[sweep]
workloads = [\"gzip\", \"vpr\"]
budgets = [2500]
seeds = [2009]

[sweep.grid]
rb_sizes = [16, 32]
";
    let (rec_out, out) = record_and_replay(&dir, scenario, &["--cell", "3"]);
    assert!(rec_out.contains("sweep cell 3"), "{rec_out}");
    assert!(out.contains("sweep cell 3"), "{out}");

    // Out-of-range cells are a clean runtime error.
    let scenario_path = dir.join("s.toml");
    let (code, _, err) = run_for_test(&[
        "record",
        "-s",
        scenario_path.to_str().unwrap(),
        "--cell",
        "99",
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("out of range"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tampered_stats_make_replay_diverge() {
    let dir = scratch("diverge");
    let scenario = "[workload]\nname = \"gzip\"\nseed = 5\nbudget = 2000\n";
    record_and_replay(&dir, scenario, &[]);
    let session_path = dir.join("s.rssn");

    // Rewrite the session with one statistics field off by one — the
    // digest is recomputed by save(), so the file itself is valid and
    // the divergence must be caught by re-execution.
    let mut rec = SessionRecord::load(&session_path).unwrap();
    rec.stats.cycles += 1;
    rec.save(&session_path).unwrap();

    let (code, out, err) = run_for_test(&["replay", "-s", session_path.to_str().unwrap()]);
    assert_eq!(code, 1, "divergence must exit non-zero");
    assert!(out.contains("cycles: recorded"), "{out}");
    assert!(err.contains("DIVERGED"), "{err}");
    assert!(err.contains("1/42 fields differ"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fingerprint_drift_is_rejected_before_running() {
    let dir = scratch("drift");
    let scenario = "[workload]\nname = \"gzip\"\nseed = 5\nbudget = 2000\n";
    record_and_replay(&dir, scenario, &[]);
    let session_path = dir.join("s.rssn");

    let mut rec = SessionRecord::load(&session_path).unwrap();
    rec.engine_fingerprint ^= 1;
    rec.save(&session_path).unwrap();

    let (code, _, err) = run_for_test(&["replay", "-s", session_path.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(err.contains("engine fingerprint mismatch"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_session_files_are_typed_errors() {
    let dir = scratch("corrupt");
    let bogus = dir.join("bogus.rssn");
    fs::write(&bogus, b"not a session").unwrap();
    let (code, _, err) = run_for_test(&["replay", "-s", bogus.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(err.contains("bogus.rssn"), "{err}");
    assert!(err.contains("not a session record"), "{err}");

    let missing = dir.join("missing.rssn");
    let (code, _, err) = run_for_test(&["replay", "-s", missing.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(err.contains("missing.rssn"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}
