//! Scenario-file problems must surface as `file:line:` diagnostics on
//! stderr with exit code 1 — the CLI's reason to exist over editing
//! Rust.

use resim_cli::run_for_test;
use std::fs;
use std::path::PathBuf;

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resim-diag-{test}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_on(test: &str, scenario: &str, args: &[&str]) -> (i32, String, String) {
    let dir = scratch(test);
    let path = dir.join("s.toml");
    fs::write(&path, scenario).unwrap();
    let mut full = args.to_vec();
    full.extend(["-s", path.to_str().unwrap()]);
    let result = run_for_test(&full);
    fs::remove_dir_all(&dir).unwrap();
    result
}

#[test]
fn typo_in_key_reports_file_and_line() {
    let (code, out, err) = run_on("typo", "[engine]\nwidth = 4\nwidht = 2\n", &["describe"]);
    assert_eq!(code, 1);
    assert_eq!(out, "");
    assert!(err.contains("s.toml:3:"), "diagnostic must carry file:line — got {err}");
    assert!(err.contains("widht"), "{err}");
}

#[test]
fn structural_config_errors_are_diagnostics_too() {
    let (code, _, err) = run_on("structural", "[engine]\nmem_read_ports = 4\n", &["describe"]);
    assert_eq!(code, 1);
    assert!(err.contains("memory ports"), "{err}");

    let (code, _, err) = run_on(
        "geometry",
        "[engine.predictor]\nkind = \"bimodal\"\nsize = 1000\n",
        &["describe"],
    );
    assert_eq!(code, 1);
    assert!(err.contains("s.toml:3:"), "{err}");
    assert!(err.contains("power of two"), "{err}");
}

#[test]
fn syntax_errors_carry_their_line() {
    let (code, _, err) = run_on("syntax", "[engine]\nwidth = \n", &["run"]);
    assert_eq!(code, 1);
    assert!(err.contains("s.toml:2:"), "{err}");
}

#[test]
fn missing_scenario_file_is_reported() {
    let (code, _, err) = run_for_test(&["run", "-s", "/nonexistent/s.toml"]);
    assert_eq!(code, 1);
    assert!(err.contains("cannot read scenario"), "{err}");
}

#[test]
fn sample_without_plan_is_pointed_out() {
    let (code, _, err) = run_on("noplan", "[engine]\nwidth = 4\n", &["sample"]);
    assert_eq!(code, 1);
    assert!(err.contains("[sample]"), "{err}");
}

#[test]
fn sweep_problems_resolve_lazily_with_context() {
    // `describe` must resolve the sweep and report its problems...
    let (code, _, err) = run_on(
        "badsweep",
        "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [100]\nseeds = [1]\n",
        &["describe"],
    );
    assert_eq!(code, 1);
    assert!(err.contains("at least one configuration"), "{err}");

    // ...while `run` on the same file does not care.
    let (code, _, err) = run_on(
        "badsweep2",
        "[workload]\nbudget = 500\n[sweep]\nworkloads = [\"gzip\"]\nbudgets = [100]\nseeds = [1]\n",
        &["run"],
    );
    assert_eq!(code, 0, "stderr: {err}");
}

#[test]
fn replaying_a_foreign_trace_warns_about_the_fingerprint() {
    let dir = scratch("fingerprint");
    let perfect = dir.join("perfect.toml");
    let twolevel = dir.join("twolevel.toml");
    let trace = dir.join("t.trace");
    fs::write(
        &perfect,
        "[engine.predictor]\nkind = \"perfect\"\n[workload]\nbudget = 2000\n",
    )
    .unwrap();
    fs::write(&twolevel, "[workload]\nbudget = 2000\n").unwrap();

    let (code, _, err) = run_for_test(&[
        "trace", "-s", perfect.to_str().unwrap(), "-o", trace.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");

    // Replaying a perfect-predictor trace on the two-level scenario
    // runs, but says what it is doing.
    let (code, out, err) = run_for_test(&[
        "run", "-s", twolevel.to_str().unwrap(), "--trace", trace.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("fingerprint mismatch"), "{out}");

    // The matching scenario replays without the warning.
    let (code, out, _) = run_for_test(&[
        "run", "-s", perfect.to_str().unwrap(), "--trace", trace.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    assert!(!out.contains("fingerprint mismatch"), "{out}");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replaying_a_stale_trace_warns_on_explicit_workload_mismatch() {
    let dir = scratch("stale");
    let scenario = dir.join("s.toml");
    let engine_only = dir.join("engine-only.toml");
    let trace = dir.join("t.trace");
    fs::write(&scenario, "[workload]\nname = \"gzip\"\nseed = 1\nbudget = 2000\n").unwrap();
    fs::write(&engine_only, "[engine]\nrb_size = 32\n").unwrap();

    // The trace is written with an overridden seed...
    let (code, _, err) = run_for_test(&[
        "trace", "-s", scenario.to_str().unwrap(),
        "--seed", "999",
        "-o", trace.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");

    // ...so replaying it against the scenario's [workload] warns.
    let (code, out, err) = run_for_test(&[
        "run", "-s", scenario.to_str().unwrap(), "--trace", trace.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("seed 999") && out.contains("seed 1"), "{out}");

    // A scenario with no [workload] section replays anything quietly.
    let (code, out, err) = run_for_test(&[
        "run", "-s", engine_only.to_str().unwrap(), "--trace", trace.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(!out.contains("warning"), "{out}");

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replaying_an_alien_file_is_an_error() {
    let dir = scratch("alien");
    let scenario = dir.join("s.toml");
    let bogus = dir.join("bogus.trace");
    fs::write(&scenario, "[workload]\nbudget = 100\n").unwrap();
    fs::write(&bogus, b"ELF!not-a-trace").unwrap();
    let (code, _, err) = run_for_test(&[
        "run",
        "-s",
        scenario.to_str().unwrap(),
        "--trace",
        bogus.to_str().unwrap(),
    ]);
    assert_eq!(code, 1);
    assert!(err.contains("RSTR"), "magic mismatch must be explained: {err}");
    fs::remove_dir_all(&dir).unwrap();
}
