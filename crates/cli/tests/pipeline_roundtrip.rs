//! Declarative `[pipeline]` fidelity: each built-in organization,
//! re-expressed as a literal `[pipeline]` TOML section, must be
//! indistinguishable from the enum path — bit-identical [`SimStats`]
//! and minor-cycle accounting on the golden 10k gzip fixture, and the
//! same schedule grid cells in `resim describe`.

use resim_cli::{run_for_test, ScenarioDoc};
use resim_core::{Engine, EngineConfig, PipelineOrganization};
use std::fs;
use std::path::PathBuf;

/// A per-test scratch directory (no tempfile crate in this workspace).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resim-pipe-{test}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The golden fixture workload (see `crates/core/tests/golden_stats.rs`):
/// gzip, seed 2009, 10 000 correct-path instructions.
const GOLDEN_WORKLOAD: &str = "
[workload]
name = \"gzip\"
seed = 2009
budget = 10000
";

/// Figure 2 (`2N+3`) spelled out literally. Built-in names are
/// reserved, so the declarative twin gets its own name; everything
/// else — rows, labels, formulas — is the built-in's table verbatim.
const SIMPLE_DECL: &str = r#"
[pipeline]
name = "simple-decl"
pipelined = false

[[pipeline.stage]]
name = "Fetch"
slots = "i"
[[pipeline.stage]]
name = "Decouple"
label = "DPL"
slots = "i+1"
[[pipeline.stage]]
name = "Dispatch"
slots = "i+2"
[[pipeline.stage]]
name = "Writeback"
slots = "i"
[[pipeline.stage]]
name = "Lsq_refresh"
label = "LR"
slots = "n"
ways = 1
[[pipeline.stage]]
name = "Issue-1"
label = "I"
slots = "n+1+i"
[[pipeline.stage]]
name = "Issue-2"
label = "E"
slots = "n+2+i"
[[pipeline.stage]]
name = "CacheAccess"
label = "CA"
slots = "n+3+i"
[[pipeline.stage]]
name = "Commit"
slots = "i+2"
"#;

/// Figure 3 (`N+4`).
const IMPROVED_DECL: &str = r#"
[pipeline]
name = "improved-decl"
pipelined = true

[[pipeline.stage]]
name = "Fetch"
slots = "i"
[[pipeline.stage]]
name = "Decouple"
label = "DPL"
slots = "i+1"
[[pipeline.stage]]
name = "Dispatch"
slots = "i+2"
[[pipeline.stage]]
name = "Lsq_refresh"
label = "LR"
slots = "0"
ways = 1
[[pipeline.stage]]
name = "Issue"
slots = "1+i"
[[pipeline.stage]]
name = "CacheAccess"
label = "CA"
slots = "2+i"
[[pipeline.stage]]
name = "Writeback"
slots = "3+i"
[[pipeline.stage]]
name = "Commit"
slots = "i+1"
[[pipeline.stage]]
name = "Bookkeeping"
label = "BK"
slots = "n+3"
ways = 1
"#;

/// Figure 4 (`N+3`), including the bars-loads flag and the truncated
/// cache-access row (ways 1..N share the issue column's ports).
const OPTIMIZED_DECL: &str = r#"
[pipeline]
name = "optimized-decl"
pipelined = true
restrict_first_slot_loads = true

[[pipeline.stage]]
name = "Fetch"
slots = "i"
[[pipeline.stage]]
name = "Decouple"
label = "DPL"
slots = "i+1"
[[pipeline.stage]]
name = "Dispatch"
slots = "i+2"
[[pipeline.stage]]
name = "Lsq_refresh"
label = "LR"
slots = "0"
ways = 1
[[pipeline.stage]]
name = "Issue"
slots = "i"
[[pipeline.stage]]
name = "CacheAccess"
label = "CA"
slots = "i+2"
ways = "n-1"
first_way = 1
[[pipeline.stage]]
name = "Writeback"
slots = "i+3"
[[pipeline.stage]]
name = "Commit"
slots = "i+1"
"#;

fn pairs() -> [(&'static str, PipelineOrganization); 3] {
    [
        (SIMPLE_DECL, PipelineOrganization::SimpleSerial),
        (IMPROVED_DECL, PipelineOrganization::ImprovedSerial),
        (OPTIMIZED_DECL, PipelineOrganization::OptimizedSerial),
    ]
}

#[test]
fn declarative_builtins_are_bit_identical_on_the_golden_fixture() {
    for (decl, org) in pairs() {
        let doc = ScenarioDoc::parse_str(&format!("{decl}{GOLDEN_WORKLOAD}")).unwrap();
        let trace = doc.generate();

        let declarative = Engine::new(doc.engine.clone()).unwrap().run(trace.source());
        let reference_config = EngineConfig {
            pipeline: org.description(),
            ..EngineConfig::paper_4wide()
        };
        let reference = Engine::new(reference_config.clone())
            .unwrap()
            .run(trace.source());

        assert_eq!(
            declarative, reference,
            "{}: SimStats must be bit-identical to the {} enum path",
            doc.engine.pipeline.name(),
            org.name(),
        );

        // Minor-cycle accounting: same per-major cost, same totals.
        let cost = doc.engine.minor_cycles_per_major();
        assert_eq!(cost, org.minor_cycles_per_major(doc.engine.width));
        assert_eq!(declarative.minor_cycles, declarative.cycles * cost);
    }
}

#[test]
fn declarative_builtins_render_the_same_schedule_grid() {
    for (decl, org) in pairs() {
        let doc = ScenarioDoc::parse_str(decl).unwrap();
        for width in [2usize, 4, 8] {
            let custom = doc.engine.pipeline.schedule(width).unwrap();
            let builtin = org.schedule(width);
            // The header names the organization (and the figure for
            // built-ins); every grid line below it must match exactly.
            let custom_render = custom.render();
            let builtin_render = builtin.render();
            let custom_grid: Vec<&str> = custom_render.lines().skip(1).collect();
            let builtin_grid: Vec<&str> = builtin_render.lines().skip(1).collect();
            assert_eq!(
                custom_grid, builtin_grid,
                "{} grid at width {width} differs from {}",
                doc.engine.pipeline.name(),
                org.name(),
            );
            assert_eq!(custom.minor_cycles(), builtin.minor_cycles());
        }
    }
}

#[test]
fn describe_renders_the_declarative_grid() {
    let dir = scratch("describe");
    let path = dir.join("s.toml");
    fs::write(&path, format!("{OPTIMIZED_DECL}{GOLDEN_WORKLOAD}")).unwrap();

    let (code, out, err) = run_for_test(&["describe", "-s", path.to_str().unwrap()]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(
        out.contains("optimized-decl pipeline (custom), 4-wide: 7 minor cycles"),
        "{out}"
    );
    // The grid itself: the shared Lsq_refresh cell and a per-way cell.
    assert!(out.contains("Lsq_refresh"), "{out}");
    assert!(out.contains("engine fingerprint:"), "{out}");
}

#[test]
fn run_end_to_end_matches_between_paths() {
    let dir = scratch("run");
    let decl_path = dir.join("decl.toml");
    let enum_path = dir.join("enum.toml");
    fs::write(&decl_path, format!("{IMPROVED_DECL}{GOLDEN_WORKLOAD}")).unwrap();
    fs::write(
        &enum_path,
        format!("[engine]\npipeline = \"improved\"\n{GOLDEN_WORKLOAD}"),
    )
    .unwrap();

    let (code_a, out_a, err_a) = run_for_test(&["run", "-s", decl_path.to_str().unwrap()]);
    let (code_b, out_b, err_b) = run_for_test(&["run", "-s", enum_path.to_str().unwrap()]);
    assert_eq!(code_a, 0, "stderr: {err_a}");
    assert_eq!(code_b, 0, "stderr: {err_b}");
    assert_eq!(out_a, out_b, "run reports must be identical");
}
