//! Golden tests pinning the `resim` help surface.
//!
//! The texts below are deliberate copies, not references to the
//! `help` module: any change to the CLI surface fails here and forces
//! an explicit re-pin (the same contract as the trace-container hex
//! vectors).

use resim_cli::run_for_test;

#[test]
fn version_is_pinned() {
    let (code, out, err) = run_for_test(&["--version"]);
    assert_eq!((code, err.as_str()), (0, ""));
    assert_eq!(out, "resim 0.1.0\n");
}

#[test]
fn main_help_is_pinned() {
    let expected = "\
resim — trace-driven, reconfigurable ILP processor simulator (DATE 2009)

Subcommands are driven by declarative TOML scenario files; see
docs/guide.md for the quickstart and the full scenario-file reference.

USAGE:
    resim <COMMAND> [OPTIONS]

COMMANDS:
    trace      generate a workload trace and encode it to a file
    run        full-detail simulation of a trace file or inline workload
    profile    instrumented simulation: stage timings, occupancy heatmap,
               metrics/events export
    sample     SMARTS sampled simulation with confidence-bounded IPC
    sweep      scenario-grid execution with CSV/Markdown reports
    serve      persistent simulation service with a content-addressed
               result cache
    submit     send a scenario to a running `resim serve` instance
    describe   dump the resolved engine/memory/predictor configuration
    record     run and capture a replayable RSSN session file
    replay     re-execute a recorded session and diff the statistics
    help       print this help, or a subcommand's with `resim help <cmd>`

OPTIONS:
    -h, --help       print help
    -V, --version    print version
";
    for args in [&["--help"][..], &["-h"], &["help"], &[]] {
        let (code, out, err) = run_for_test(args);
        assert_eq!((code, err.as_str()), (0, ""), "args {args:?}");
        assert_eq!(out, expected, "args {args:?}");
    }
}

#[test]
fn trace_help_is_pinned() {
    let expected = "\
resim trace — generate a workload trace and encode it to a file

Generates the scenario's [workload] through the [tracegen] model
(wrong-path blocks included) and writes a versioned trace container
(magic \"RSTR\") that `resim run`, `resim sample` and `resim sweep`
replay without regenerating.

USAGE:
    resim trace --scenario <FILE> [OPTIONS]

OPTIONS:
    -s, --scenario <FILE>    TOML scenario file (required)
    -o, --out <FILE>         output path (default: [trace] file key,
                             then <workload>.trace)
        --budget <N>         override the [workload] budget key
        --seed <N>           override the [workload] seed key
        --layout <V>         body layout version: 1 (default, the
                             paper's Table 3 codec) or 2 (delta-encoded
                             PCs and run-length-encoded branch bits)
    -h, --help               print help
";
    for args in [&["trace", "--help"][..], &["help", "trace"]] {
        let (code, out, _) = run_for_test(args);
        assert_eq!(code, 0);
        assert_eq!(out, expected, "args {args:?}");
    }
}

#[test]
fn run_help_is_pinned() {
    let expected = "\
resim run — full-detail simulation of a trace file or inline workload

Simulates every record cycle-accurately on the [engine] configuration.
The trace comes from --trace, else from the scenario's [trace] file
key, else it is generated in memory from [workload] and [tracegen].

USAGE:
    resim run --scenario <FILE> [OPTIONS]

OPTIONS:
    -s, --scenario <FILE>    TOML scenario file (required)
    -t, --trace <FILE>       replay this trace container
        --profile            attach a metrics recorder and print the
                             profiling breakdown (see `resim profile`)
    -h, --help               print help
";
    let (code, out, _) = run_for_test(&["run", "--help"]);
    assert_eq!(code, 0);
    assert_eq!(out, expected);
}

#[test]
fn profile_help_is_pinned() {
    let expected = "\
resim profile — instrumented simulation with metrics and events export

Runs the scenario exactly like `resim run`, but with a collecting
metrics recorder attached: per-stage engine wall time, an occupancy
heatmap over IFQ/RB/LSQ, power-of-two throughput histograms, and a
bounded journal of pipeline events (occupancy samples, mispredict
recoveries, misfetches, cache misses). The recorder only observes —
the simulated statistics are bit-identical to `resim run`.

USAGE:
    resim profile --scenario <FILE> [OPTIONS]

OPTIONS:
    -s, --scenario <FILE>     TOML scenario file (required)
    -t, --trace <FILE>        replay this trace container
        --metrics-out <FILE>  write the resim.metrics/1 JSON document
        --events-out <FILE>   write the resim.events/1 JSONL stream
        --journal <N>         event-journal capacity (default 65536;
                              oldest events are dropped past the bound)
    -h, --help                print help
";
    for args in [&["profile", "--help"][..], &["help", "profile"]] {
        let (code, out, _) = run_for_test(args);
        assert_eq!(code, 0);
        assert_eq!(out, expected, "args {args:?}");
    }
}

#[test]
fn sample_help_is_pinned() {
    let expected = "\
resim sample — SMARTS sampled simulation with confidence-bounded IPC

Runs the scenario's [sample] plan: detailed windows at the head of
sampled intervals, functional (or bounded) warmup in between, and a
Student-t 95 % confidence interval over the per-window IPCs. The trace
source is resolved exactly like `resim run`.

USAGE:
    resim sample --scenario <FILE> [OPTIONS]

OPTIONS:
    -s, --scenario <FILE>    TOML scenario file (required)
    -t, --trace <FILE>       replay this trace container
    -h, --help               print help
";
    let (code, out, _) = run_for_test(&["sample", "-h"]);
    assert_eq!(code, 0);
    assert_eq!(out, expected);
}

#[test]
fn sweep_help_is_pinned() {
    let expected = "\
resim sweep — scenario-grid execution with CSV/Markdown reports

Runs the [sweep] grid (configs x workloads x budgets x seeds x modes)
on a deterministic worker pool: per-cell statistics are bit-identical
at any thread count. Trace files whose header matches a grid cell are
replayed instead of regenerated.

USAGE:
    resim sweep --scenario <FILE> [OPTIONS]

OPTIONS:
    -s, --scenario <FILE>      TOML scenario file (required)
    -j, --threads <N>          worker threads (default: [sweep] threads
                               key, then all cores)
        --csv <FILE>           write the per-cell CSV report
        --stable-csv <FILE>    write the deterministic CSV (no wall_us
                               column; byte-identical across runs)
        --md <FILE>            write the Markdown report
        --trace-file <FILE>    preload this trace container into the
                               trace cache (repeatable; also read from
                               the [sweep] trace_files key)
        --progress             print per-phase progress lines (tracegen,
                               then simulate) before the report
    -h, --help                 print help
";
    let (code, out, _) = run_for_test(&["sweep", "--help"]);
    assert_eq!(code, 0);
    assert_eq!(out, expected);
}

#[test]
fn serve_help_is_pinned() {
    let expected = "\
resim serve — persistent simulation service with a result cache

Listens for line-delimited JSON requests over TCP (schema
resim.serve/1; verbs ping, submit, status, wait, metrics, shutdown)
and executes submitted scenarios through the sweep runner. Every
simulated grid cell is stored in a content-addressed result cache
keyed by a platform-stable fingerprint of everything that determines
its statistics; with --cache-dir the cache also spills to checksummed
on-disk entries, so identical cells are answered without simulation
across requests and across server restarts. Jobs execute serially
(exactly-once under concurrent identical submissions); parallelism
lives inside a job. Runs until a shutdown verb arrives, then drains
cleanly. See docs/guide.md for the wire-level reference.

USAGE:
    resim serve [OPTIONS]

OPTIONS:
        --addr <HOST:PORT>    listen address (default 127.0.0.1:20009;
                              port 0 picks a free port)
        --cache-dir <DIR>     persist cache entries here (created if
                              missing; default: in-memory only)
    -j, --threads <N>         per-job sweep worker threads (default:
                              all cores)
    -h, --help                print help
";
    for args in [&["serve", "--help"][..], &["help", "serve"]] {
        let (code, out, _) = run_for_test(args);
        assert_eq!(code, 0);
        assert_eq!(out, expected, "args {args:?}");
    }
}

#[test]
fn submit_help_is_pinned() {
    let expected = "\
resim submit — send a scenario to a running `resim serve` instance

Submits the scenario file's text to the server, waits for the job to
finish, and prints the deterministic per-cell CSV report — bit-identical
to `resim sweep --stable-csv` of the same scenario — plus a summary of
how many cells were simulated versus served from the result cache.
Action flags compose on one connection, executed in order: --ping,
then the submission (if -s is given), then --metrics, then --shutdown;
with an action flag the scenario itself is optional.

USAGE:
    resim submit --scenario <FILE> [OPTIONS]
    resim submit [--ping] [--metrics] [--shutdown]

OPTIONS:
    -s, --scenario <FILE>     TOML scenario file to submit
        --addr <HOST:PORT>    server address (default 127.0.0.1:20009)
        --progress            print streamed progress lines (tracegen,
                              then simulate) before the report
        --ping                probe the server and print its response
        --metrics             print the server's counter snapshot
        --shutdown            ask the server to stop cleanly
    -h, --help                print help
";
    let (code, out, _) = run_for_test(&["submit", "--help"]);
    assert_eq!(code, 0);
    assert_eq!(out, expected);
}

#[test]
fn describe_help_is_pinned() {
    let expected = "\
resim describe — dump the resolved engine/memory/predictor configuration

Resolves the scenario and prints the simulated machine's block diagram
(paper Figure 1) with every structure size, the trace-generator
settings, and — when present — the sample plan and sweep grid shape.
No simulation runs.

USAGE:
    resim describe --scenario <FILE>

OPTIONS:
    -s, --scenario <FILE>    TOML scenario file (required)
    -h, --help               print help
";
    let (code, out, _) = run_for_test(&["describe", "--help"]);
    assert_eq!(code, 0);
    assert_eq!(out, expected);
}

#[test]
fn record_help_is_pinned() {
    let expected = "\
resim record — run and capture a replayable RSSN session file

Executes the scenario's run — full-detail, sampled (when a [sample]
section is present), or one sweep-grid cell with --cell — and writes a
versioned session record (magic \"RSSN\") capturing every
nondeterministic input: engine and tracegen fingerprints, workload,
seed, budget, sample plan, the scenario text itself, the resulting
statistics with a digest, and (for --trace runs) the whole trace
container, so `resim replay` re-executes bit-identically anywhere.

USAGE:
    resim record --scenario <FILE> [OPTIONS]

OPTIONS:
    -s, --scenario <FILE>    TOML scenario file (required)
    -t, --trace <FILE>       run this trace container and embed it in
                             the session (self-contained replay)
    -o, --out <FILE>         session path (default: <workload>.rssn,
                             or <workload>-cell<N>.rssn with --cell)
        --cell <N>           record cell N of the [sweep] grid
    -h, --help               print help
";
    let (code, out, _) = run_for_test(&["record", "--help"]);
    assert_eq!(code, 0);
    assert_eq!(out, expected);
}

#[test]
fn replay_help_is_pinned() {
    let expected = "\
resim replay — re-execute a recorded session and diff the statistics

Loads an RSSN session file, re-parses its embedded scenario,
cross-checks the engine and tracegen fingerprints, re-executes the run
(from the embedded trace container when present, else by regenerating
from the recorded workload/seed/budget), and compares every statistics
field against what was recorded. Exits non-zero on any divergence.

USAGE:
    resim replay --session <FILE>

OPTIONS:
    -s, --session <FILE>    RSSN session file (required)
    -h, --help              print help
";
    let (code, out, _) = run_for_test(&["replay", "-h"]);
    assert_eq!(code, 0);
    assert_eq!(out, expected);
}

#[test]
fn usage_errors_exit_2_without_touching_stdout() {
    for args in [
        &["launch"][..],
        &["run"],
        &["run", "--scenario"],
        &["sweep", "-s", "x.toml", "--bogus"],
        &["replay"],
        &["record", "-s", "x.toml", "--layout", "2"],
        &["submit"],
        &["serve", "-s", "x.toml"],
        &["help", "bogus"],
    ] {
        let (code, out, err) = run_for_test(args);
        assert_eq!(code, 2, "args {args:?}");
        assert_eq!(out, "", "usage errors are stderr-only: {args:?}");
        assert!(err.starts_with("resim: "), "args {args:?}: {err}");
    }
}
