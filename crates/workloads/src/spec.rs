//! Calibrated profiles for the five SPECINT CPU2000 benchmarks of the
//! paper's evaluation (gzip, bzip2, parser, vortex, vpr — train inputs).
//!
//! Calibration targets are the IPCs implied by Table 1 (simulation MIPS ÷
//! major-cycle rate), the wrong-path overheads implied by Table 3 ÷
//! Table 1, and each benchmark's published SPECINT character (instruction
//! mix, code footprint, working set, call depth, branch predictability).
//! The numbers below were tuned against this repository's own engine; the
//! mapping is documented per-benchmark.

use crate::profile::WorkloadProfile;

/// The five SPECINT CPU2000 programs used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecBenchmark {
    /// `164.gzip` — LZ77 compression: streaming memory, small hot loops.
    Gzip,
    /// `256.bzip2` — BWT compression: high ILP, large working set.
    Bzip2,
    /// `197.parser` — link-grammar parser: branchy, pointer-chasing.
    Parser,
    /// `255.vortex` — OO database: call-heavy, large code and data.
    Vortex,
    /// `175.vpr` — FPGA place & route: data-dependent branches.
    Vpr,
}

impl SpecBenchmark {
    /// All five benchmarks in the paper's table order.
    pub const ALL: [SpecBenchmark; 5] = [
        SpecBenchmark::Gzip,
        SpecBenchmark::Bzip2,
        SpecBenchmark::Parser,
        SpecBenchmark::Vortex,
        SpecBenchmark::Vpr,
    ];

    /// The benchmark's display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SpecBenchmark::Gzip => "gzip",
            SpecBenchmark::Bzip2 => "bzip2",
            SpecBenchmark::Parser => "parser",
            SpecBenchmark::Vortex => "vortex",
            SpecBenchmark::Vpr => "vpr",
        }
    }

    /// Looks a benchmark up by its display name (`"gzip"`, `"bzip2"`,
    /// `"parser"`, `"vortex"`, `"vpr"`) — the inverse of
    /// [`SpecBenchmark::name`], used by scenario files and the CLI.
    ///
    /// ```
    /// use resim_workloads::SpecBenchmark;
    ///
    /// assert_eq!(SpecBenchmark::by_name("vpr"), Some(SpecBenchmark::Vpr));
    /// assert_eq!(SpecBenchmark::by_name("mcf"), None);
    /// ```
    pub fn by_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|b| b.name() == name)
    }

    /// The calibrated synthetic profile for this benchmark.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            // gzip: streaming compressor. Tight, small, predictable loops
            // over a window that mostly fits in L1; moderate branch rate.
            SpecBenchmark::Gzip => WorkloadProfile {
                name: "gzip",
                frac_load: 0.20,
                frac_store: 0.09,
                frac_mult: 0.005,
                frac_div: 0.0005,
                frac_nop: 0.01,
                num_blocks: 400,
                block_len_min: 3,
                block_len_max: 8,
                frac_jump: 0.08,
                frac_call: 0.03,
                frac_fallthrough: 0.18,
                frac_loop_branches: 0.55,
                frac_random_branches: 0.005,
                bias_strength: 0.975,
                mean_loop_trips: 55,
                num_functions: 12,
                func_len_blocks: 4,
                dep_distance_mean: 0.50,
                frac_src2: 0.55,
                frac_addr_dep: 0.40,
                working_set_bytes: 48 * 1024,
                frac_seq_access: 0.50,
                frac_stack_access: 0.20,
                seq_stride: 4,
                frac_random_hot: 0.85,
                hot_bytes: 12 * 1024,
            },
            // bzip2: block-sorting compressor. Long predictable loops and
            // wide ILP, but a working set that overflows a 32 KB L1 —
            // which is why its Table 1 ranking flips between the perfect-
            // memory and cached configurations.
            SpecBenchmark::Bzip2 => WorkloadProfile {
                name: "bzip2",
                frac_load: 0.28,
                frac_store: 0.13,
                frac_mult: 0.008,
                frac_div: 0.0005,
                frac_nop: 0.01,
                num_blocks: 500,
                block_len_min: 4,
                block_len_max: 10,
                frac_jump: 0.06,
                frac_call: 0.02,
                frac_fallthrough: 0.22,
                frac_loop_branches: 0.65,
                frac_random_branches: 0.005,
                bias_strength: 0.985,
                mean_loop_trips: 75,
                num_functions: 8,
                func_len_blocks: 4,
                dep_distance_mean: 1.50,
                frac_src2: 0.50,
                frac_addr_dep: 0.60,
                working_set_bytes: 96 * 1024,
                frac_seq_access: 0.55,
                frac_stack_access: 0.10,
                seq_stride: 4,
                frac_random_hot: 0.93,
                hot_bytes: 16 * 1024,
            },
            // parser: link-grammar parsing. Short blocks, lots of
            // data-dependent branches, pointer-chasing list traversal,
            // short dependence chains — the lowest-IPC benchmark.
            SpecBenchmark::Parser => WorkloadProfile {
                name: "parser",
                frac_load: 0.24,
                frac_store: 0.10,
                frac_mult: 0.004,
                frac_div: 0.001,
                frac_nop: 0.01,
                num_blocks: 1500,
                block_len_min: 2,
                block_len_max: 6,
                frac_jump: 0.12,
                frac_call: 0.08,
                frac_fallthrough: 0.20,
                frac_loop_branches: 0.40,
                frac_random_branches: 0.006,
                bias_strength: 0.975,
                mean_loop_trips: 50,
                num_functions: 40,
                func_len_blocks: 4,
                dep_distance_mean: 0.30,
                frac_src2: 0.55,
                frac_addr_dep: 0.72,
                working_set_bytes: 96 * 1024,
                frac_seq_access: 0.30,
                frac_stack_access: 0.30,
                seq_stride: 8,
                frac_random_hot: 0.97,
                hot_bytes: 12 * 1024,
            },
            // vortex: object-oriented database. Very predictable control
            // flow (lowest wrong-path overhead in Table 3), deep call
            // chains, the heaviest memory traffic and the largest code
            // footprint (I-cache pressure) — and the highest trace
            // bits/instruction.
            SpecBenchmark::Vortex => WorkloadProfile {
                name: "vortex",
                frac_load: 0.31,
                frac_store: 0.20,
                frac_mult: 0.003,
                frac_div: 0.0002,
                frac_nop: 0.01,
                num_blocks: 3000,
                block_len_min: 3,
                block_len_max: 8,
                frac_jump: 0.10,
                frac_call: 0.12,
                frac_fallthrough: 0.12,
                frac_loop_branches: 0.30,
                frac_random_branches: 0.001,
                bias_strength: 0.999,
                mean_loop_trips: 150,
                num_functions: 60,
                func_len_blocks: 5,
                dep_distance_mean: 0.50,
                frac_src2: 0.50,
                frac_addr_dep: 0.68,
                working_set_bytes: 128 * 1024,
                frac_seq_access: 0.40,
                frac_stack_access: 0.25,
                seq_stride: 4,
                frac_random_hot: 0.98,
                hot_bytes: 16 * 1024,
            },
            // vpr: placement & routing. Cost-comparison branches driven by
            // data (the highest wrong-path overhead in Table 3), moderate
            // memory behaviour.
            SpecBenchmark::Vpr => WorkloadProfile {
                name: "vpr",
                frac_load: 0.27,
                frac_store: 0.11,
                frac_mult: 0.012,
                frac_div: 0.002,
                frac_nop: 0.01,
                num_blocks: 800,
                block_len_min: 3,
                block_len_max: 8,
                frac_jump: 0.08,
                frac_call: 0.05,
                frac_fallthrough: 0.14,
                frac_loop_branches: 0.42,
                frac_random_branches: 0.010,
                bias_strength: 0.96,
                mean_loop_trips: 25,
                num_functions: 20,
                func_len_blocks: 4,
                dep_distance_mean: 0.35,
                frac_src2: 0.55,
                frac_addr_dep: 0.35,
                working_set_bytes: 48 * 1024,
                frac_seq_access: 0.40,
                frac_stack_access: 0.25,
                seq_stride: 4,
                frac_random_hot: 0.98,
                hot_bytes: 12 * 1024,
            },
        }
    }
}

impl std::fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Workload;
    use resim_trace::Trace;

    #[test]
    fn all_profiles_validate() {
        for b in SpecBenchmark::ALL {
            b.profile().validate();
            assert_eq!(b.profile().name, b.name());
        }
    }

    #[test]
    fn vortex_is_most_memory_heavy() {
        let frac_mem = |b: SpecBenchmark| {
            let recs = Workload::spec(b, 1).generate(40_000);
            recs.iter().filter(|r| r.is_load() || r.is_store()).count() as f64 / 40_000.0
        };
        let vortex = frac_mem(SpecBenchmark::Vortex);
        for b in [SpecBenchmark::Gzip, SpecBenchmark::Bzip2, SpecBenchmark::Vpr] {
            assert!(
                vortex > frac_mem(b),
                "vortex must have the largest memory fraction (vs {b})"
            );
        }
    }

    #[test]
    fn vortex_has_highest_bits_per_instruction() {
        // Table 3 ordering: vortex tops bits/instruction because memory
        // records carry full addresses.
        let bits = |b: SpecBenchmark| {
            let recs = Workload::spec(b, 2).generate(40_000);
            let t: Trace = recs.into_iter().collect();
            t.stats().bits_per_instruction()
        };
        let vortex = bits(SpecBenchmark::Vortex);
        for b in [SpecBenchmark::Gzip, SpecBenchmark::Bzip2] {
            assert!(vortex > bits(b), "vortex bits/instr must exceed {b}");
        }
        // And everything sits in a plausible pre-decoded-trace band.
        for b in SpecBenchmark::ALL {
            let v = bits(b);
            assert!((25.0..60.0).contains(&v), "{b}: {v} bits/instr");
        }
    }

    #[test]
    fn code_footprints_ordered() {
        // vortex has the paper-famous large code footprint.
        let code = |b: SpecBenchmark| Workload::spec(b, 3).cfg().code_bytes();
        assert!(code(SpecBenchmark::Vortex) > code(SpecBenchmark::Gzip));
        assert!(code(SpecBenchmark::Parser) > code(SpecBenchmark::Bzip2));
    }

    #[test]
    fn display_names() {
        assert_eq!(SpecBenchmark::Gzip.to_string(), "gzip");
        assert_eq!(SpecBenchmark::Vpr.to_string(), "vpr");
    }
}
