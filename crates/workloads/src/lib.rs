//! # resim-workloads
//!
//! Calibrated synthetic SPECINT CPU2000 workload models for ReSim
//! (Fytraki & Pnevmatikatos, DATE 2009).
//!
//! The paper evaluates five SPECINT CPU2000 programs — **gzip, bzip2,
//! parser, vortex, vpr** (train inputs) — traced through SimpleScalar.
//! SPEC binaries and SimpleScalar are not redistributable, so this crate
//! synthesises statistically faithful stand-ins: each benchmark is modelled
//! as a randomly generated but *static* control-flow graph
//! ([`StaticCfg`]) whose shape (instruction mix, basic-block lengths,
//! branch behaviour classes, call structure, dependency distances, memory
//! working set and locality) is set by a [`WorkloadProfile`] calibrated so
//! the simulated IPCs land near the IPCs implied by the paper's Table 1
//! (details in `DESIGN.md`).
//!
//! Because the CFG is static, the dynamic stream revisits the same PCs,
//! branch sites and targets, so the I-cache, BTB, RAS and the two-level
//! direction predictor all see realistic reuse — unlike naive
//! i.i.d. instruction synthesis.
//!
//! ## Example
//!
//! ```
//! use resim_workloads::{SpecBenchmark, Workload};
//!
//! let mut w = Workload::spec(SpecBenchmark::Gzip, 42);
//! let stream = w.generate(10_000);
//! assert_eq!(stream.len(), 10_000);
//! let branches = stream.iter().filter(|r| r.is_branch()).count();
//! // gzip-like: a healthy share of the stream is control flow (exact
//! // density varies with which loops the seed makes hot).
//! assert!(branches > 400 && branches < 3_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cfg;
mod generator;
mod profile;
mod spec;

pub use cfg::{BlockId, StaticCfg, Terminator};
pub use generator::Workload;
pub use profile::WorkloadProfile;
pub use spec::SpecBenchmark;
