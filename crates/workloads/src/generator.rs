//! The CFG walker: turns a static CFG into an infinite dynamic
//! correct-path instruction stream.

use crate::cfg::{BlockId, SlotKind, StaticCfg, Terminator};
use crate::profile::WorkloadProfile;
use crate::spec::SpecBenchmark;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// Base address of the synthetic data segment.
const DATA_BASE: u32 = 0x1000_0000;
/// Base of the hot stack page.
const STACK_BASE: u32 = 0x7FFF_F000;
/// Maximum modelled call depth (calls beyond this become plain jumps).
const MAX_CALL_DEPTH: usize = 64;
/// How many recent destination registers feed dependency sampling.
const RECENT_DESTS: usize = 24;

use resim_trace::{
    BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OpClass, OtherRecord, Reg, TraceRecord,
};

/// An infinite, deterministic synthetic instruction stream.
///
/// Construct with [`Workload::new`] (custom profile) or
/// [`Workload::spec`] (calibrated SPECINT model); pull records with
/// [`Workload::generate`], [`Workload::next_record`] or the [`Iterator`]
/// impl.
#[derive(Debug, Clone)]
pub struct Workload {
    cfg: StaticCfg,
    profile: WorkloadProfile,
    rng: SmallRng,
    cur: BlockId,
    /// Pending records of the block being emitted.
    pending: VecDeque<TraceRecord>,
    /// Remaining trips of each active loop back-edge, keyed by block.
    loop_state: HashMap<usize, u32>,
    /// Call stack of return blocks.
    call_stack: Vec<BlockId>,
    /// Ring of recently written registers (dependency sampling pool).
    recent_dests: VecDeque<Reg>,
    /// Round-robin destination allocator state.
    next_dest: u8,
    /// Sequential-stream cursor.
    seq_cursor: u32,
    emitted: u64,
}

impl Workload {
    /// Builds a workload from a custom profile.
    ///
    /// The same `(profile, seed)` pair always produces the identical
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if the profile is inconsistent (see
    /// [`WorkloadProfile::validate`]).
    pub fn new(profile: &WorkloadProfile, seed: u64) -> Self {
        profile.validate();
        let mut build_rng = SmallRng::seed_from_u64(seed);
        let cfg = StaticCfg::build(profile, &mut build_rng);
        Self {
            cfg,
            profile: profile.clone(),
            rng: SmallRng::seed_from_u64(seed ^ 0x5DEE_CE66_D1CE_5EED),
            cur: BlockId(0),
            pending: VecDeque::new(),
            loop_state: HashMap::new(),
            call_stack: Vec::new(),
            recent_dests: VecDeque::new(),
            next_dest: 8,
            seq_cursor: DATA_BASE,
            emitted: 0,
        }
    }

    /// Builds one of the calibrated SPECINT CPU2000 models.
    pub fn spec(benchmark: SpecBenchmark, seed: u64) -> Self {
        Self::new(&benchmark.profile(), seed)
    }

    /// The workload name (profile name).
    pub fn name(&self) -> &str {
        self.profile.name
    }

    /// The synthesised static CFG.
    pub fn cfg(&self) -> &StaticCfg {
        &self.cfg
    }

    /// The profile this workload was built from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Records emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Generates the next `n` records.
    pub fn generate(&mut self, n: usize) -> Vec<TraceRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    /// Produces the next record (the stream never ends).
    pub fn next_record(&mut self) -> TraceRecord {
        loop {
            if let Some(r) = self.pending.pop_front() {
                self.emitted += 1;
                return r;
            }
            self.emit_block();
        }
    }

    /// Emits the current block's records into `pending` and advances.
    fn emit_block(&mut self) {
        let block = self.cur;
        let (start_pc, slots, terminator) = {
            let b = &self.cfg.blocks[block.0];
            (b.start_pc, b.slots.clone(), b.terminator)
        };
        let mut pc = start_pc;
        for slot in &slots {
            let r = self.emit_slot(pc, *slot);
            self.pending.push_back(r);
            pc += 4;
        }
        debug_assert_eq!(pc, self.cfg.blocks[block.0].terminator_pc());
        let next = self.emit_terminator(block, pc, terminator);
        self.cur = next;
    }

    fn emit_slot(&mut self, pc: u32, slot: SlotKind) -> TraceRecord {
        match slot {
            SlotKind::Alu { src2 } => {
                let s1 = self.pick_source();
                let s2 = if src2 { Some(self.pick_source()) } else { None };
                let d = self.alloc_dest();
                TraceRecord::Other(OtherRecord {
                    pc,
                    class: OpClass::IntAlu,
                    dest: Some(d),
                    src1: Some(s1),
                    src2: s2,
                    wrong_path: false,
                })
            }
            SlotKind::Mult => {
                let s1 = self.pick_source();
                let s2 = self.pick_source();
                let d = self.alloc_dest();
                TraceRecord::Other(OtherRecord {
                    pc,
                    class: OpClass::IntMult,
                    dest: Some(d),
                    src1: Some(s1),
                    src2: Some(s2),
                    wrong_path: false,
                })
            }
            SlotKind::Div => {
                let s1 = self.pick_source();
                let s2 = self.pick_source();
                let d = self.alloc_dest();
                TraceRecord::Other(OtherRecord {
                    pc,
                    class: OpClass::IntDiv,
                    dest: Some(d),
                    src1: Some(s1),
                    src2: Some(s2),
                    wrong_path: false,
                })
            }
            SlotKind::Nop => TraceRecord::Other(OtherRecord {
                pc,
                class: OpClass::Nop,
                dest: None,
                src1: None,
                src2: None,
                wrong_path: false,
            }),
            SlotKind::Load => {
                let addr = self.pick_address();
                let base = self.pick_base();
                let d = self.alloc_dest();
                TraceRecord::Mem(MemRecord {
                    pc,
                    addr,
                    size: self.pick_size(),
                    kind: MemKind::Load,
                    base: Some(base),
                    data: Some(d),
                    wrong_path: false,
                })
            }
            SlotKind::Store => {
                let addr = self.pick_address();
                let base = self.pick_base();
                let data = self.pick_source();
                TraceRecord::Mem(MemRecord {
                    pc,
                    addr,
                    size: self.pick_size(),
                    kind: MemKind::Store,
                    base: Some(base),
                    data: Some(data),
                    wrong_path: false,
                })
            }
        }
    }

    /// Emits the terminator record (if any) and returns the next block.
    fn emit_terminator(&mut self, block: BlockId, pc: u32, term: Terminator) -> BlockId {
        let linear = self.cfg.next_linear(block);
        match term {
            Terminator::FallThrough => linear,
            Terminator::Jump { target } => {
                self.push_branch(pc, BranchKind::Jump, true, self.block_pc(target), None);
                target
            }
            Terminator::Call { callee } => {
                if self.call_stack.len() >= MAX_CALL_DEPTH {
                    // Depth cap: degrade to a plain jump (documented model
                    // simplification; keeps the return stack bounded).
                    self.push_branch(pc, BranchKind::Jump, true, self.block_pc(callee), None);
                } else {
                    self.call_stack.push(linear);
                    self.push_branch(pc, BranchKind::Call, true, self.block_pc(callee), None);
                }
                callee
            }
            Terminator::Return => {
                let back = self.call_stack.pop().unwrap_or(BlockId(0));
                let src = Some(Reg::new(31));
                self.push_branch(pc, BranchKind::Return, true, self.block_pc(back), src);
                back
            }
            Terminator::Loop { target, trips } => {
                let remaining = self.loop_state.entry(block.0).or_insert(trips);
                let taken = *remaining > 0;
                if taken {
                    *remaining -= 1;
                } else {
                    // Re-arm for the next loop entry.
                    self.loop_state.remove(&block.0);
                }
                let src = Some(self.pick_source());
                self.push_branch(pc, BranchKind::Cond, taken, self.block_pc(target), src);
                if taken {
                    target
                } else {
                    linear
                }
            }
            Terminator::Biased { target, p_taken } => {
                let taken = self.rng.gen_bool(p_taken);
                let src = Some(self.pick_source());
                self.push_branch(pc, BranchKind::Cond, taken, self.block_pc(target), src);
                if taken {
                    target
                } else {
                    linear
                }
            }
            Terminator::Random { target } => {
                let taken = self.rng.gen_bool(0.5);
                let src = Some(self.pick_source());
                self.push_branch(pc, BranchKind::Cond, taken, self.block_pc(target), src);
                if taken {
                    target
                } else {
                    linear
                }
            }
        }
    }

    fn push_branch(
        &mut self,
        pc: u32,
        kind: BranchKind,
        taken: bool,
        target: u32,
        src1: Option<Reg>,
    ) {
        self.pending.push_back(TraceRecord::Branch(BranchRecord {
            pc,
            target,
            taken,
            kind,
            src1,
            src2: None,
            wrong_path: false,
        }));
    }

    fn block_pc(&self, id: BlockId) -> u32 {
        self.cfg.blocks[id.0].start_pc
    }

    /// Picks a source register at a geometric dependence distance.
    fn pick_source(&mut self) -> Reg {
        if self.recent_dests.is_empty() {
            // Stable, long-lived register (always ready).
            return Reg::new(29);
        }
        let mean = self.profile.dep_distance_mean;
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        let dist = ((-u.ln()) * mean).floor() as usize;
        let idx = dist.min(self.recent_dests.len() - 1);
        self.recent_dests[idx]
    }

    /// Picks a base register for an address: dependent or stable.
    fn pick_base(&mut self) -> Reg {
        if !self.recent_dests.is_empty() && self.rng.gen_bool(self.profile.frac_addr_dep) {
            self.pick_source()
        } else {
            Reg::new(30)
        }
    }

    /// Allocates a destination register and records it as recent.
    fn alloc_dest(&mut self) -> Reg {
        // Walk r8..r27 to avoid the stable pointer/stack registers.
        let d = Reg::new(self.next_dest);
        self.next_dest = if self.next_dest >= 27 { 8 } else { self.next_dest + 1 };
        self.recent_dests.push_front(d);
        self.recent_dests.truncate(RECENT_DESTS);
        d
    }

    fn pick_size(&mut self) -> MemSize {
        let x: f64 = self.rng.gen();
        if x < 0.80 {
            MemSize::Word
        } else if x < 0.92 {
            MemSize::Byte
        } else {
            MemSize::Half
        }
    }

    /// Produces an effective address per the profile's locality model:
    /// a sequential stream, a hot stack page, a hot temporal-locality
    /// subset and a cold scatter over the full working set.
    fn pick_address(&mut self) -> u32 {
        let ws = self.profile.working_set_bytes;
        let x: f64 = self.rng.gen();
        if x < self.profile.frac_seq_access {
            let a = self.seq_cursor;
            self.seq_cursor = DATA_BASE + ((a - DATA_BASE) + self.profile.seq_stride) % ws;
            a & !3
        } else if x < self.profile.frac_seq_access + self.profile.frac_stack_access {
            STACK_BASE + (self.rng.gen_range(0..1024u32) * 4) % 4096
        } else if self.rng.gen_bool(self.profile.frac_random_hot) {
            let hot = self.profile.hot_bytes.max(64);
            DATA_BASE + (self.rng.gen_range(0..hot / 4)) * 4
        } else {
            DATA_BASE + (self.rng.gen_range(0..ws / 4)) * 4
        }
    }
}

impl Iterator for Workload {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        Some(self.next_record())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(records: &[TraceRecord]) -> (f64, f64, f64) {
        let n = records.len() as f64;
        let loads = records.iter().filter(|r| r.is_load()).count() as f64;
        let stores = records.iter().filter(|r| r.is_store()).count() as f64;
        let branches = records.iter().filter(|r| r.is_branch()).count() as f64;
        (loads / n, stores / n, branches / n)
    }

    #[test]
    fn deterministic_stream() {
        let p = WorkloadProfile::generic();
        let a = Workload::new(&p, 11).generate(5_000);
        let b = Workload::new(&p, 11).generate(5_000);
        assert_eq!(a, b);
        let c = Workload::new(&p, 12).generate(5_000);
        assert_ne!(a, c);
    }

    #[test]
    fn mix_tracks_profile() {
        let p = WorkloadProfile::generic();
        let recs = Workload::new(&p, 3).generate(60_000);
        let (l, s, b) = mix(&recs);
        // Slot fractions are diluted by terminators (~1/6 of the stream).
        assert!((l - 0.22 * 0.85).abs() < 0.05, "load fraction {l}");
        assert!((s - 0.10 * 0.85).abs() < 0.04, "store fraction {s}");
        assert!(b > 0.08 && b < 0.25, "branch fraction {b}");
    }

    #[test]
    fn pcs_repeat_code_footprint_is_static() {
        let p = WorkloadProfile::generic();
        let mut w = Workload::new(&p, 4);
        let recs = w.generate(50_000);
        let mut pcs: Vec<u32> = recs.iter().map(|r| r.pc()).collect();
        pcs.sort_unstable();
        pcs.dedup();
        let footprint = (pcs.len() as u32) * 4;
        assert!(
            footprint <= w.cfg().code_bytes(),
            "dynamic footprint {footprint} must fit the static code"
        );
    }

    #[test]
    fn branch_targets_are_stable_per_site() {
        // Every conditional/jump site must always announce the same
        // target, otherwise the BTB could never work.
        let p = WorkloadProfile::generic();
        let recs = Workload::new(&p, 5).generate(80_000);
        let mut site_target: HashMap<u32, u32> = HashMap::new();
        for r in &recs {
            if let TraceRecord::Branch(b) = r {
                if matches!(b.kind, BranchKind::Cond | BranchKind::Jump | BranchKind::Call) {
                    let prev = site_target.insert(b.pc, b.target);
                    if let Some(t) = prev {
                        assert_eq!(t, b.target, "site {:#x} changed target", b.pc);
                    }
                }
            }
        }
    }

    #[test]
    fn calls_and_returns_balance_approximately() {
        let p = WorkloadProfile::generic();
        let recs = Workload::new(&p, 6).generate(100_000);
        let calls = recs
            .iter()
            .filter(
                |r| matches!(r, TraceRecord::Branch(b) if b.kind == BranchKind::Call),
            )
            .count() as i64;
        let rets = recs
            .iter()
            .filter(
                |r| matches!(r, TraceRecord::Branch(b) if b.kind == BranchKind::Return),
            )
            .count() as i64;
        assert!(calls > 0, "profile must exercise calls");
        assert!((calls - rets).abs() <= MAX_CALL_DEPTH as i64 + 1);
    }

    #[test]
    fn addresses_stay_in_modelled_regions() {
        let p = WorkloadProfile::generic();
        let recs = Workload::new(&p, 7).generate(30_000);
        for r in &recs {
            if let TraceRecord::Mem(m) = r {
                let in_data = m.addr >= DATA_BASE && m.addr < DATA_BASE + p.working_set_bytes;
                let in_stack = m.addr >= STACK_BASE && m.addr < STACK_BASE + 4096;
                assert!(in_data || in_stack, "address {:#x} outside model", m.addr);
            }
        }
    }

    #[test]
    fn loops_actually_iterate() {
        // The same loop-branch PC must appear with taken=true multiple
        // times in a row somewhere in the stream.
        let p = WorkloadProfile::generic();
        let recs = Workload::new(&p, 8).generate(50_000);
        let mut max_consecutive = 0u32;
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for r in &recs {
            if let TraceRecord::Branch(b) = r {
                if b.kind == BranchKind::Cond && b.taken && b.target < b.pc {
                    let c = counts.entry(b.pc).or_insert(0);
                    *c += 1;
                    max_consecutive = max_consecutive.max(*c);
                }
            }
        }
        assert!(max_consecutive >= 4, "back-edges should iterate");
    }

    #[test]
    fn iterator_interface() {
        let p = WorkloadProfile::generic();
        let w = Workload::new(&p, 9);
        let v: Vec<_> = w.take(100).collect();
        assert_eq!(v.len(), 100);
    }
}
