//! The knobs of a synthetic workload.

/// Statistical shape of a synthetic benchmark.
///
/// Fractions are of *non-terminator* instruction slots unless noted; block
/// terminators (branches, jumps, calls, returns) are controlled by the
/// `frac_*` terminator fields. The dynamic instruction mix emerges from
/// both together: with a mean block length of `L` slots, roughly
/// `1/(L+1)` of the dynamic stream is control flow.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Display name (e.g. `"gzip"`).
    pub name: &'static str,

    // --- instruction mix (fractions of non-terminator slots) ---
    /// Load fraction.
    pub frac_load: f64,
    /// Store fraction.
    pub frac_store: f64,
    /// Multiply-class fraction.
    pub frac_mult: f64,
    /// Divide-class fraction.
    pub frac_div: f64,
    /// Nop fraction.
    pub frac_nop: f64,

    // --- control structure ---
    /// Number of basic blocks in the main code region (code footprint).
    pub num_blocks: usize,
    /// Minimum slots per block (excluding the terminator).
    pub block_len_min: usize,
    /// Maximum slots per block.
    pub block_len_max: usize,
    /// Of terminators: fraction that are unconditional jumps.
    pub frac_jump: f64,
    /// Of terminators: fraction that are calls into a function region.
    pub frac_call: f64,
    /// Of terminators: fraction with no control transfer at all.
    pub frac_fallthrough: f64,
    /// Of *conditional* terminators: loop back-edges (highly predictable).
    pub frac_loop_branches: f64,
    /// Of conditional terminators: 50/50 random branches (unpredictable).
    pub frac_random_branches: f64,
    /// Taken probability of biased (non-loop, non-random) branches.
    pub bias_strength: f64,
    /// Mean trip count of loop back-edges.
    pub mean_loop_trips: u32,
    /// Number of callable functions.
    pub num_functions: usize,
    /// Blocks per function body.
    pub func_len_blocks: usize,

    // --- data dependencies ---
    /// Mean distance (in instructions) from a source operand to its
    /// producer; smaller means longer serial chains and lower ILP. The
    /// sustainable IPC of an unconstrained machine is roughly
    /// `1 + dep_distance_mean`.
    pub dep_distance_mean: f64,
    /// Fraction of ALU slots with a second source operand.
    pub frac_src2: f64,
    /// Fraction of memory ops whose address base depends on a recent
    /// producer (pointer-chasing pressure).
    pub frac_addr_dep: f64,

    // --- memory behaviour ---
    /// Total data working set in bytes.
    pub working_set_bytes: u32,
    /// Fraction of accesses that walk a sequential stream.
    pub frac_seq_access: f64,
    /// Fraction of accesses that hit a hot 4 KB stack region.
    pub frac_stack_access: f64,
    /// Stride of the sequential stream in bytes.
    pub seq_stride: u32,
    /// Of the remaining (non-sequential, non-stack) accesses: fraction
    /// that stay inside a hot subset of the working set (temporal
    /// locality); the rest scatter across the whole working set.
    pub frac_random_hot: f64,
    /// Size of that hot subset in bytes.
    pub hot_bytes: u32,
}

impl WorkloadProfile {
    /// A neutral, general-purpose integer-code profile.
    pub fn generic() -> Self {
        Self {
            name: "generic",
            frac_load: 0.22,
            frac_store: 0.10,
            frac_mult: 0.015,
            frac_div: 0.002,
            frac_nop: 0.01,
            num_blocks: 600,
            block_len_min: 3,
            block_len_max: 8,
            frac_jump: 0.10,
            frac_call: 0.05,
            frac_fallthrough: 0.15,
            frac_loop_branches: 0.45,
            frac_random_branches: 0.10,
            bias_strength: 0.85,
            mean_loop_trips: 12,
            num_functions: 24,
            func_len_blocks: 5,
            dep_distance_mean: 6.0,
            frac_src2: 0.45,
            frac_addr_dep: 0.25,
            working_set_bytes: 64 * 1024,
            frac_seq_access: 0.45,
            frac_stack_access: 0.25,
            seq_stride: 8,
            frac_random_hot: 0.85,
            hot_bytes: 12 * 1024,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]`, fraction groups exceed
    /// 1, or structural sizes are zero.
    pub fn validate(&self) {
        let fracs = [
            ("frac_load", self.frac_load),
            ("frac_store", self.frac_store),
            ("frac_mult", self.frac_mult),
            ("frac_div", self.frac_div),
            ("frac_nop", self.frac_nop),
            ("frac_jump", self.frac_jump),
            ("frac_call", self.frac_call),
            ("frac_fallthrough", self.frac_fallthrough),
            ("frac_loop_branches", self.frac_loop_branches),
            ("frac_random_branches", self.frac_random_branches),
            ("bias_strength", self.bias_strength),
            ("frac_src2", self.frac_src2),
            ("frac_addr_dep", self.frac_addr_dep),
            ("frac_seq_access", self.frac_seq_access),
            ("frac_stack_access", self.frac_stack_access),
            ("frac_random_hot", self.frac_random_hot),
        ];
        for (name, v) in fracs {
            assert!((0.0..=1.0).contains(&v), "{name} = {v} outside [0, 1]");
        }
        let slot_sum =
            self.frac_load + self.frac_store + self.frac_mult + self.frac_div + self.frac_nop;
        assert!(slot_sum <= 1.0, "slot fractions sum to {slot_sum} > 1");
        let term_sum = self.frac_jump + self.frac_call + self.frac_fallthrough;
        assert!(term_sum <= 1.0, "terminator fractions sum to {term_sum} > 1");
        let cond_sum = self.frac_loop_branches + self.frac_random_branches;
        assert!(
            cond_sum <= 1.0,
            "conditional-branch class fractions sum to {cond_sum} > 1"
        );
        assert!(self.num_blocks > 0, "num_blocks must be non-zero");
        assert!(
            self.block_len_min >= 1 && self.block_len_min <= self.block_len_max,
            "block length range [{}, {}] invalid",
            self.block_len_min,
            self.block_len_max
        );
        assert!(self.mean_loop_trips >= 1, "mean_loop_trips must be >= 1");
        assert!(self.num_functions > 0, "num_functions must be non-zero");
        assert!(self.func_len_blocks > 0, "func_len_blocks must be non-zero");
        assert!(
            self.dep_distance_mean >= 0.05,
            "dep_distance_mean must be at least 0.05"
        );
        assert!(
            self.working_set_bytes >= 4096,
            "working set must be at least one page"
        );
        assert!(
            self.seq_stride >= 1,
            "sequential stride must be at least 1 byte"
        );
        assert!(
            self.hot_bytes >= 64 && self.hot_bytes <= self.working_set_bytes,
            "hot region must be between one block and the working set"
        );
    }

    /// Mean basic-block length in slots.
    pub fn mean_block_len(&self) -> f64 {
        (self.block_len_min + self.block_len_max) as f64 / 2.0
    }
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        Self::generic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_is_valid() {
        WorkloadProfile::generic().validate();
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_fraction_panics() {
        let p = WorkloadProfile {
            frac_load: 1.5,
            ..WorkloadProfile::generic()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn oversubscribed_slots_panic() {
        let p = WorkloadProfile {
            frac_load: 0.6,
            frac_store: 0.6,
            ..WorkloadProfile::generic()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "block length range")]
    fn inverted_block_range_panics() {
        let p = WorkloadProfile {
            block_len_min: 9,
            block_len_max: 3,
            ..WorkloadProfile::generic()
        };
        p.validate();
    }

    #[test]
    fn mean_block_len() {
        let p = WorkloadProfile {
            block_len_min: 3,
            block_len_max: 7,
            ..WorkloadProfile::generic()
        };
        assert_eq!(p.mean_block_len(), 5.0);
    }
}
