//! Static control-flow graph synthesis.
//!
//! A workload is a randomly generated but *fixed* CFG: a main region of
//! basic blocks chained linearly (with loop back-edges, biased forward
//! skips, random branches, jumps and calls) plus a set of callable
//! function bodies ending in returns. Walking this CFG produces a dynamic
//! stream whose PCs, branch sites and targets repeat — which is what lets
//! the I-cache, BTB, RAS and two-level predictor behave as they would on
//! real code.

use crate::profile::WorkloadProfile;
use rand::rngs::SmallRng;
use rand::Rng;

/// Index of a basic block inside a [`StaticCfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

impl BlockId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Error-diffusion sampler: keeps every window of generated slots close
/// to the profile's instruction mix, so the *dynamic* mix matches the
/// profile no matter which blocks the hot loops land on.
#[derive(Debug, Clone, Default)]
struct SlotQuota {
    /// Accumulated credit per category:
    /// load, store, mult, div, nop, alu.
    acc: [f64; 6],
}

impl SlotQuota {
    fn next_kind(&mut self, profile: &WorkloadProfile, rng: &mut SmallRng) -> SlotKind {
        let alu = 1.0
            - profile.frac_load
            - profile.frac_store
            - profile.frac_mult
            - profile.frac_div
            - profile.frac_nop;
        let fracs = [
            profile.frac_load,
            profile.frac_store,
            profile.frac_mult,
            profile.frac_div,
            profile.frac_nop,
            alu,
        ];
        let mut best = 0;
        for (i, f) in fracs.iter().enumerate() {
            self.acc[i] += f;
            if self.acc[i] > self.acc[best] {
                best = i;
            }
        }
        self.acc[best] -= 1.0;
        match best {
            0 => SlotKind::Load,
            1 => SlotKind::Store,
            2 => SlotKind::Mult,
            3 => SlotKind::Div,
            4 => SlotKind::Nop,
            _ => SlotKind::Alu {
                src2: rng.gen_bool(profile.frac_src2),
            },
        }
    }
}

/// Error-diffusion sampler for terminator classes: keeps any contiguous
/// run of blocks (e.g. a hot loop body) close to the profile's terminator
/// mix, so dynamic branch behaviour does not depend on which blocks the
/// seed happens to make hot.
#[derive(Debug, Clone, Default)]
struct TermQuota {
    /// jump, call, fallthrough, loop, random, biased.
    acc: [f64; 6],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TermClass {
    Jump,
    Call,
    FallThrough,
    Loop,
    Random,
    Biased,
}

impl TermQuota {
    fn next_class(&mut self, profile: &WorkloadProfile, in_function: bool) -> TermClass {
        let call = if in_function {
            profile.frac_call / 2.0
        } else {
            profile.frac_call
        };
        let cond = (1.0 - profile.frac_jump - call - profile.frac_fallthrough).max(0.0);
        let fracs = [
            profile.frac_jump,
            call,
            profile.frac_fallthrough,
            cond * profile.frac_loop_branches,
            cond * profile.frac_random_branches,
            cond * (1.0 - profile.frac_loop_branches - profile.frac_random_branches),
        ];
        let mut best = 0;
        for (i, f) in fracs.iter().enumerate() {
            self.acc[i] += f;
            if self.acc[i] > self.acc[best] {
                best = i;
            }
        }
        self.acc[best] -= 1.0;
        [
            TermClass::Jump,
            TermClass::Call,
            TermClass::FallThrough,
            TermClass::Loop,
            TermClass::Random,
            TermClass::Biased,
        ][best]
    }
}

/// A non-control instruction slot, fixed at CFG build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotKind {
    /// Single-cycle ALU op; `src2` adds a second register source.
    Alu { src2: bool },
    /// Multiplier-class op.
    Mult,
    /// Divider-class op.
    Div,
    /// Nop.
    Nop,
    /// Load.
    Load,
    /// Store.
    Store,
}

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Terminator {
    /// Loop back-edge: taken `trips` times per entry, then falls through.
    Loop {
        /// Back-edge target.
        target: BlockId,
        /// Trip count per loop entry.
        trips: u32,
    },
    /// Statically biased conditional forward branch.
    Biased {
        /// Taken target.
        target: BlockId,
        /// Per-evaluation taken probability.
        p_taken: f64,
    },
    /// 50/50 data-dependent conditional branch.
    Random {
        /// Taken target.
        target: BlockId,
    },
    /// Unconditional direct jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Direct call into a function region.
    Call {
        /// Function entry block.
        callee: BlockId,
    },
    /// Return to the caller (RAS-predicted).
    Return,
    /// No control transfer: execution continues into the next block.
    FallThrough,
}

impl Terminator {
    /// Whether the terminator occupies an instruction slot.
    pub fn is_instruction(&self) -> bool {
        !matches!(self, Terminator::FallThrough)
    }

    /// Whether this is a conditional branch.
    pub fn is_conditional(&self) -> bool {
        matches!(
            self,
            Terminator::Loop { .. } | Terminator::Biased { .. } | Terminator::Random { .. }
        )
    }
}

/// One basic block: a run of slots plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Block {
    pub start_pc: u32,
    pub slots: Vec<SlotKind>,
    pub terminator: Terminator,
}

impl Block {
    /// PC of the terminator instruction (valid when it is an instruction).
    pub fn terminator_pc(&self) -> u32 {
        self.start_pc + (self.slots.len() as u32) * 4
    }

    /// Total instructions including the terminator.
    pub fn len(&self) -> usize {
        self.slots.len() + usize::from(self.terminator.is_instruction())
    }
}

/// A complete static CFG: main region plus function bodies.
#[derive(Debug, Clone)]
pub struct StaticCfg {
    pub(crate) blocks: Vec<Block>,
    main_blocks: usize,
    func_entries: Vec<BlockId>,
    text_base: u32,
}

impl StaticCfg {
    /// Text-segment base for synthetic code.
    pub const TEXT_BASE: u32 = 0x0040_0000;

    /// Builds a CFG from `profile` using `rng` for all structural choices.
    pub(crate) fn build(profile: &WorkloadProfile, rng: &mut SmallRng) -> Self {
        let main = profile.num_blocks;
        let total = main + profile.num_functions * profile.func_len_blocks;
        let mut blocks = Vec::with_capacity(total);
        let mut func_entries = Vec::with_capacity(profile.num_functions);
        let mut quota = SlotQuota::default();
        let mut tquota = TermQuota::default();

        // --- main region ---
        for i in 0..main {
            let slots = Self::sample_slots(profile, rng, &mut quota);
            let terminator = if i + 1 == main {
                // Close the outer program loop.
                Terminator::Jump { target: BlockId(0) }
            } else {
                Self::sample_terminator(profile, rng, &mut tquota, i, main, false)
            };
            blocks.push(Block {
                start_pc: 0, // assigned below
                slots,
                terminator,
            });
        }

        // --- function region ---
        for f in 0..profile.num_functions {
            let entry = main + f * profile.func_len_blocks;
            func_entries.push(BlockId(entry));
            for j in 0..profile.func_len_blocks {
                let slots = Self::sample_slots(profile, rng, &mut quota);
                let terminator = if j + 1 == profile.func_len_blocks {
                    Terminator::Return
                } else {
                    Self::sample_terminator(
                        profile,
                        rng,
                        &mut tquota,
                        entry + j,
                        entry + profile.func_len_blocks,
                        true,
                    )
                };
                blocks.push(Block {
                    start_pc: 0,
                    slots,
                    terminator,
                });
            }
        }

        // Patch call targets now that function entries exist, then lay out
        // PCs.
        let n_funcs = func_entries.len();
        for b in &mut blocks {
            if let Terminator::Call { callee } = &mut b.terminator {
                if callee.0 == usize::MAX {
                    *callee = func_entries[rng.gen_range(0..n_funcs)];
                }
            }
        }
        let mut pc = Self::TEXT_BASE;
        for b in &mut blocks {
            b.start_pc = pc;
            pc += (b.len() as u32) * 4;
        }

        Self {
            blocks,
            main_blocks: main,
            func_entries,
            text_base: Self::TEXT_BASE,
        }
    }

    fn sample_slots(
        profile: &WorkloadProfile,
        rng: &mut SmallRng,
        quota: &mut SlotQuota,
    ) -> Vec<SlotKind> {
        let len = rng.gen_range(profile.block_len_min..=profile.block_len_max);
        let mut slots: Vec<SlotKind> = (0..len)
            .map(|_| quota.next_kind(profile, rng))
            .collect();
        // Shuffle within the block so quota ordering leaves no periodic
        // pattern in the instruction stream.
        for i in (1..slots.len()).rev() {
            let j = rng.gen_range(0..=i);
            slots.swap(i, j);
        }
        slots
    }

    fn sample_terminator(
        profile: &WorkloadProfile,
        rng: &mut SmallRng,
        quota: &mut TermQuota,
        index: usize,
        region_end: usize,
        in_function: bool,
    ) -> Terminator {
        let forward = |rng: &mut SmallRng| {
            let lo = index + 2;
            let hi = (index + 8).min(region_end);
            if lo >= hi {
                BlockId(index + 1)
            } else {
                BlockId(rng.gen_range(lo..hi))
            }
        };
        match quota.next_class(profile, in_function) {
            TermClass::Jump => Terminator::Jump {
                target: forward(rng),
            },
            // Callee patched after function entries are known.
            TermClass::Call => Terminator::Call {
                callee: BlockId(usize::MAX),
            },
            TermClass::FallThrough => Terminator::FallThrough,
            TermClass::Loop if index > 0 => {
                let span = rng.gen_range(1..=3usize.min(index));
                // Exponentially distributed trip count around the mean,
                // with a floor so degenerate 1-trip "loops" (which behave
                // like noisy biased branches) stay rare.
                let mean = f64::from(profile.mean_loop_trips);
                let floor = (mean / 4.0).max(2.0);
                let trips = (floor
                    + (-rng.gen::<f64>().max(1e-12).ln()) * (mean - floor).max(1.0))
                .ceil() as u32;
                Terminator::Loop {
                    target: BlockId(index - span),
                    trips,
                }
            }
            TermClass::Loop => Terminator::FallThrough,
            TermClass::Random => Terminator::Random {
                target: forward(rng),
            },
            TermClass::Biased => {
                // Biased: half taken-biased, half not-taken-biased.
                let p = if rng.gen_bool(0.5) {
                    profile.bias_strength
                } else {
                    1.0 - profile.bias_strength
                };
                Terminator::Biased {
                    target: forward(rng),
                    p_taken: p,
                }
            }
        }
    }

    /// Number of blocks (main region + functions).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of blocks in the main region.
    pub fn main_blocks(&self) -> usize {
        self.main_blocks
    }

    /// Entry blocks of the callable functions.
    pub fn func_entries(&self) -> &[BlockId] {
        &self.func_entries
    }

    /// Static code footprint in bytes.
    pub fn code_bytes(&self) -> u32 {
        self.blocks.iter().map(|b| (b.len() as u32) * 4).sum()
    }

    /// Base address of the synthetic text segment.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// The terminator of block `id`.
    pub fn terminator(&self, id: BlockId) -> &Terminator {
        &self.blocks[id.0].terminator
    }

    /// The linear successor of block `id` (wrapping to the main region).
    pub(crate) fn next_linear(&self, id: BlockId) -> BlockId {
        let n = id.0 + 1;
        if n >= self.blocks.len() {
            BlockId(0)
        } else {
            BlockId(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn build(profile: &WorkloadProfile, seed: u64) -> StaticCfg {
        let mut rng = SmallRng::seed_from_u64(seed);
        StaticCfg::build(profile, &mut rng)
    }

    #[test]
    fn structure_matches_profile() {
        let p = WorkloadProfile::generic();
        let cfg = build(&p, 1);
        assert_eq!(cfg.main_blocks(), p.num_blocks);
        assert_eq!(
            cfg.num_blocks(),
            p.num_blocks + p.num_functions * p.func_len_blocks
        );
        assert_eq!(cfg.func_entries().len(), p.num_functions);
    }

    #[test]
    fn deterministic_for_seed() {
        let p = WorkloadProfile::generic();
        let a = build(&p, 7);
        let b = build(&p, 7);
        assert_eq!(a.blocks, b.blocks);
        let c = build(&p, 8);
        assert_ne!(a.blocks, c.blocks, "different seed, different CFG");
    }

    #[test]
    fn pcs_are_contiguous_and_word_aligned() {
        let p = WorkloadProfile::generic();
        let cfg = build(&p, 2);
        let mut expect = StaticCfg::TEXT_BASE;
        for b in &cfg.blocks {
            assert_eq!(b.start_pc, expect);
            assert_eq!(b.start_pc % 4, 0);
            expect += (b.len() as u32) * 4;
        }
        assert_eq!(cfg.code_bytes(), expect - StaticCfg::TEXT_BASE);
    }

    #[test]
    fn loops_point_backward_jumps_forward() {
        let p = WorkloadProfile::generic();
        let cfg = build(&p, 3);
        for (i, b) in cfg.blocks.iter().enumerate() {
            match b.terminator {
                Terminator::Loop { target, trips } => {
                    assert!(target.0 < i, "loop target must be a back-edge");
                    assert!(trips >= 1);
                }
                Terminator::Jump { target } if i + 1 != cfg.main_blocks()
                    // Only the region-closing jump may point backwards.
                    && i < cfg.main_blocks() && target.0 != 0 => {
                        assert!(target.0 > i);
                    }
                _ => {}
            }
        }
    }

    #[test]
    fn calls_target_function_entries() {
        let p = WorkloadProfile::generic();
        let cfg = build(&p, 4);
        for b in &cfg.blocks {
            if let Terminator::Call { callee } = b.terminator {
                assert!(
                    cfg.func_entries().contains(&callee),
                    "call must target a function entry"
                );
            }
        }
    }

    #[test]
    fn functions_end_with_return() {
        let p = WorkloadProfile::generic();
        let cfg = build(&p, 5);
        for f in 0..p.num_functions {
            let last = p.num_blocks + f * p.func_len_blocks + p.func_len_blocks - 1;
            assert_eq!(cfg.blocks[last].terminator, Terminator::Return);
        }
    }

    #[test]
    fn main_region_closes_the_outer_loop() {
        let p = WorkloadProfile::generic();
        let cfg = build(&p, 6);
        assert_eq!(
            cfg.blocks[p.num_blocks - 1].terminator,
            Terminator::Jump { target: BlockId(0) }
        );
    }
}
