//! A small blocking client — what `resim submit` and the test battery
//! drive the server with.

use crate::protocol::object;
use resim_toml::json::{parse_json, JsonValue};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Transport failure (connect, read or write).
    Io(io::ErrorKind),
    /// The server's bytes were not a valid response line.
    Protocol(String),
    /// The server answered with a typed error.
    Server {
        /// The machine-readable code (`"bad-scenario"`, …).
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(kind) => write!(f, "i/o error: {kind}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e.kind())
    }
}

/// One blocking connection to a `resim-serve` instance.
///
/// Requests are serialized through [`JsonValue::render`], so scenario
/// text with quotes, newlines or any other JSON-hostile content is
/// escaped correctly by construction.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// The connect error.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Sends one request object and reads lines until the response,
    /// passing any interleaved event lines to `on_event`.
    fn roundtrip(
        &mut self,
        request: JsonValue,
        mut on_event: impl FnMut(&JsonValue),
    ) -> Result<JsonValue, ClientError> {
        let mut line = request.render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        loop {
            let mut buf = String::new();
            if self.reader.read_line(&mut buf)? == 0 {
                return Err(ClientError::Protocol(
                    "connection closed before a response arrived".to_string(),
                ));
            }
            let value = parse_json(buf.trim_end_matches('\n'))
                .map_err(|e| ClientError::Protocol(e.to_string()))?;
            if value.get("event").is_some() {
                on_event(&value);
                continue;
            }
            return match value.get("ok").and_then(JsonValue::as_bool) {
                Some(true) => Ok(value),
                Some(false) => Err(ClientError::Server {
                    code: value
                        .get("code")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    message: value
                        .get("error")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                }),
                None => Err(ClientError::Protocol(format!(
                    "response line carries neither \"ok\" nor \"event\": {buf:?}"
                ))),
            };
        }
    }

    /// `ping` — liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn ping(&mut self) -> Result<JsonValue, ClientError> {
        self.roundtrip(verb("ping", vec![]), |_| {})
    }

    /// `submit` — enqueue a scenario document (its TOML text).
    /// The response carries `job`, `cells` and `fingerprint`.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; a rejected scenario is
    /// [`ClientError::Server`] with code `bad-scenario`.
    pub fn submit(&mut self, scenario: &str) -> Result<JsonValue, ClientError> {
        self.roundtrip(
            verb(
                "submit",
                vec![("scenario", JsonValue::Str(scenario.to_string()))],
            ),
            |_| {},
        )
    }

    /// `status` — non-blocking job snapshot.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; an unissued id is code `unknown-job`.
    pub fn status(&mut self, job: u64) -> Result<JsonValue, ClientError> {
        self.roundtrip(verb("status", vec![("job", JsonValue::Int(job as i64))]), |_| {})
    }

    /// `wait` — block until the job finishes; every streamed progress
    /// line goes to `on_event` before the final response returns.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn wait(
        &mut self,
        job: u64,
        on_event: impl FnMut(&JsonValue),
    ) -> Result<JsonValue, ClientError> {
        self.roundtrip(verb("wait", vec![("job", JsonValue::Int(job as i64))]), on_event)
    }

    /// `submit` then `wait`: the whole submission as one call,
    /// returning the terminal status (carrying the `csv` report).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn submit_and_wait(
        &mut self,
        scenario: &str,
        on_event: impl FnMut(&JsonValue),
    ) -> Result<JsonValue, ClientError> {
        let accepted = self.submit(scenario)?;
        let job = accepted
            .get("job")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit response lacks a job id".to_string()))?;
        self.wait(job, on_event)
    }

    /// `metrics` — the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn metrics(&mut self) -> Result<JsonValue, ClientError> {
        self.roundtrip(verb("metrics", vec![]), |_| {})
    }

    /// `shutdown` — ask the server to stop cleanly.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn shutdown(&mut self) -> Result<JsonValue, ClientError> {
        self.roundtrip(verb("shutdown", vec![]), |_| {})
    }

    /// Sends raw bytes (no framing, no escaping) and reads one
    /// response line — the corruption battery's way of putting
    /// arbitrary garbage on the wire.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ClientError::Protocol`] when the
    /// connection closes without a line.
    pub fn raw(&mut self, bytes: &[u8]) -> Result<String, ClientError> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        let mut buf = String::new();
        if self.reader.read_line(&mut buf)? == 0 {
            return Err(ClientError::Protocol(
                "connection closed without a response".to_string(),
            ));
        }
        Ok(buf.trim_end_matches('\n').to_string())
    }
}

fn verb(name: &str, mut fields: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut all = vec![("verb", JsonValue::Str(name.to_string()))];
    all.append(&mut fields);
    object(all)
}
