//! The job table: submitted scenarios, their queue, states and
//! progress, shared between connection handlers and the executor.
//!
//! The table is a single mutex-guarded map plus one condition variable.
//! A monotonically increasing `version` per job lets a `wait` handler
//! stream every progress change without polling: it sleeps on the
//! condvar and wakes exactly when *something* changed, re-snapshotting
//! its job.
//!
//! Execution itself is **serial**: one executor thread pops jobs in
//! submission order ([`JobTable::take_next`]). That is the exactly-once
//! guarantee under concurrent identical submissions — by the time the
//! second copy of a scenario reaches the executor, the first has
//! already populated the result cache, so the second simulates nothing.
//! Parallelism lives *inside* a job (the sweep runner's worker pool),
//! where it is deterministic.

use resim_sweep::ScenarioDoc;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// What a finished job produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The submission's [`ScenarioDoc::fingerprint`].
    pub fingerprint: u64,
    /// Grid cells in the submission.
    pub cells: u64,
    /// Cells actually simulated (result-cache misses).
    pub simulated: u64,
    /// Cells answered from the in-memory cache.
    pub served_mem: u64,
    /// Cells answered from validated on-disk entries.
    pub served_disk: u64,
    /// On-disk entries rejected as corrupt (each was re-simulated).
    pub rejected: u64,
    /// The deterministic CSV report, bit-identical to
    /// [`SweepReport::to_csv_stable`](resim_sweep::SweepReport::to_csv_stable)
    /// of a local run of the same scenario.
    pub csv: String,
}

#[derive(Debug)]
enum State {
    Queued,
    Running,
    Done(JobOutcome),
    Failed(String),
}

impl State {
    fn name(&self) -> &'static str {
        match self {
            State::Queued => "queued",
            State::Running => "running",
            State::Done(_) => "done",
            State::Failed(_) => "failed",
        }
    }

    fn terminal(&self) -> bool {
        matches!(self, State::Done(_) | State::Failed(_))
    }
}

#[derive(Debug)]
struct JobEntry {
    doc: ScenarioDoc,
    state: State,
    phase: Option<&'static str>,
    done: u64,
    total: u64,
    version: u64,
}

/// A point-in-time snapshot of one job, safe to render after the lock
/// is dropped.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// `"queued"`, `"running"`, `"done"` or `"failed"`.
    pub state: &'static str,
    /// Current phase label (`"tracegen"` / `"simulate"`) while running.
    pub phase: Option<&'static str>,
    /// Units of the current phase completed.
    pub done: u64,
    /// Units in the current phase.
    pub total: u64,
    /// Change counter; grows on every state or progress update.
    pub version: u64,
    /// The outcome, once done.
    pub outcome: Option<JobOutcome>,
    /// The failure message, once failed.
    pub error: Option<String>,
}

impl JobStatus {
    /// Whether the job has reached a terminal state.
    pub fn terminal(&self) -> bool {
        self.outcome.is_some() || self.error.is_some()
    }
}

#[derive(Debug, Default)]
struct Inner {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobEntry>,
    closed: bool,
}

/// The shared job table (see the module docs for the concurrency
/// story).
#[derive(Debug, Default)]
pub struct JobTable {
    inner: Mutex<Inner>,
    changed: Condvar,
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a parsed submission; returns its job id (ids start at 1
    /// so 0 is never a valid handle).
    pub fn submit(&self, doc: ScenarioDoc) -> u64 {
        let mut inner = self.lock();
        inner.next_id += 1;
        let id = inner.next_id;
        inner.jobs.insert(
            id,
            JobEntry {
                doc,
                state: State::Queued,
                phase: None,
                done: 0,
                total: 0,
                version: 0,
            },
        );
        inner.queue.push_back(id);
        self.changed.notify_all();
        id
    }

    /// Blocks until a job is queued (returning it marked running) or
    /// the table is closed (returning `None`). The executor's loop
    /// condition.
    pub fn take_next(&self) -> Option<(u64, ScenarioDoc)> {
        let mut inner = self.lock();
        loop {
            if let Some(id) = inner.queue.pop_front() {
                let entry = inner.jobs.get_mut(&id).expect("queued ids exist");
                entry.state = State::Running;
                entry.version += 1;
                let doc = entry.doc.clone();
                self.changed.notify_all();
                return Some((id, doc));
            }
            if inner.closed {
                return None;
            }
            inner = self
                .changed
                .wait(inner)
                .expect("job table poisoned");
        }
    }

    /// Records a progress sample for a running job.
    pub fn set_progress(&self, id: u64, phase: &'static str, done: u64, total: u64) {
        let mut inner = self.lock();
        if let Some(entry) = inner.jobs.get_mut(&id) {
            entry.phase = Some(phase);
            entry.done = done;
            entry.total = total;
            entry.version += 1;
        }
        self.changed.notify_all();
    }

    /// Moves a job to its terminal state.
    pub fn finish(&self, id: u64, result: Result<JobOutcome, String>) {
        let mut inner = self.lock();
        if let Some(entry) = inner.jobs.get_mut(&id) {
            entry.state = match result {
                Ok(outcome) => State::Done(outcome),
                Err(message) => State::Failed(message),
            };
            entry.version += 1;
        }
        self.changed.notify_all();
    }

    /// Snapshots a job; `None` for an id the table never issued.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        let inner = self.lock();
        inner.jobs.get(&id).map(|e| snapshot(id, e))
    }

    /// Blocks until job `id` changes past `seen_version` (or is already
    /// terminal), returning the fresh snapshot; `None` for an unknown
    /// id. The building block of streamed `wait` responses: call with
    /// the last snapshot's version, emit, repeat until terminal.
    pub fn wait_change(&self, id: u64, seen_version: u64) -> Option<JobStatus> {
        let mut inner = self.lock();
        loop {
            let entry = inner.jobs.get(&id)?;
            if entry.version > seen_version || entry.state.terminal() {
                return Some(snapshot(id, entry));
            }
            inner = self
                .changed
                .wait(inner)
                .expect("job table poisoned");
        }
    }

    /// Closes the queue: [`JobTable::take_next`] returns `None` once
    /// drained, letting the executor exit. Already-queued jobs are
    /// abandoned (the server is going down).
    pub fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        inner.queue.clear();
        self.changed.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("job table poisoned")
    }
}

fn snapshot(id: u64, e: &JobEntry) -> JobStatus {
    let (outcome, error) = match &e.state {
        State::Done(o) => (Some(o.clone()), None),
        State::Failed(m) => (None, Some(m.clone())),
        _ => (None, None),
    };
    JobStatus {
        id,
        state: e.state.name(),
        phase: e.phase,
        done: e.done,
        total: e.total,
        version: e.version,
        outcome,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> JobOutcome {
        JobOutcome {
            fingerprint: 1,
            cells: 2,
            simulated: 2,
            served_mem: 0,
            served_disk: 0,
            rejected: 0,
            csv: "hdr\n".to_string(),
        }
    }

    #[test]
    fn jobs_move_through_their_states_in_submission_order() {
        let table = JobTable::new();
        let a = table.submit(ScenarioDoc::default());
        let b = table.submit(ScenarioDoc::default());
        assert_eq!((a, b), (1, 2));
        assert_eq!(table.status(a).unwrap().state, "queued");
        assert!(table.status(99).is_none());

        let (first, _) = table.take_next().unwrap();
        assert_eq!(first, a, "FIFO");
        assert_eq!(table.status(a).unwrap().state, "running");
        table.set_progress(a, "simulate", 1, 2);
        let s = table.status(a).unwrap();
        assert_eq!((s.phase, s.done, s.total), (Some("simulate"), 1, 2));
        table.finish(a, Ok(outcome()));
        let s = table.status(a).unwrap();
        assert_eq!(s.state, "done");
        assert!(s.terminal());
        assert_eq!(s.outcome.unwrap().cells, 2);

        let (second, _) = table.take_next().unwrap();
        table.finish(second, Err("boom".to_string()));
        let s = table.status(b).unwrap();
        assert_eq!(s.state, "failed");
        assert_eq!(s.error.as_deref(), Some("boom"));

        table.close();
        assert!(table.take_next().is_none());
    }

    #[test]
    fn wait_change_sees_every_update_in_order() {
        // Single-threaded: each mutation bumps the version, so
        // wait_change returns immediately with the fresh snapshot —
        // exactly the loop a `wait` handler runs.
        let table = JobTable::new();
        let id = table.submit(ScenarioDoc::default());
        let (got, _) = table.take_next().unwrap();
        assert_eq!(got, id);
        let s = table.wait_change(id, 0).unwrap();
        assert_eq!(s.state, "running");
        table.set_progress(id, "simulate", 1, 2);
        let s = table.wait_change(id, s.version).unwrap();
        assert_eq!((s.phase, s.done, s.total), (Some("simulate"), 1, 2));
        table.finish(id, Ok(outcome()));
        let s = table.wait_change(id, s.version).unwrap();
        assert_eq!(s.state, "done");
        // Waiting on an already-terminal job returns immediately even
        // with nothing newer than `seen`.
        assert!(table.wait_change(id, u64::MAX).unwrap().terminal());
        assert!(table.wait_change(404, 0).is_none());
    }

    #[test]
    fn wait_change_blocks_until_woken() {
        let table = std::sync::Arc::new(JobTable::new());
        let id = table.submit(ScenarioDoc::default());
        let (got, _) = table.take_next().unwrap();
        assert_eq!(got, id);
        let seen = table.status(id).unwrap().version;
        let waiter = {
            let table = table.clone();
            std::thread::spawn(move || table.wait_change(id, seen).unwrap())
        };
        // The waiter sleeps on the condvar until this terminal update.
        table.finish(id, Ok(outcome()));
        let s = waiter.join().unwrap();
        assert!(s.terminal());
    }
}
