//! The TCP server: connection handlers, the serial executor, and the
//! cache-aware job execution they share.

use crate::cache::{CachedCell, Lookup, ResultCache};
use crate::jobs::{JobOutcome, JobStatus, JobTable};
use crate::protocol::{
    fingerprint_hex, object, ok_response, parse_request, read_frame, ErrorCode, FrameError,
    Request, WireError, SERVE_SCHEMA,
};
use resim_obs::{Counter, MetricsRecorder, Recorder as _};
use resim_sweep::{stable_csv_header, ScenarioDoc, SweepRunner};
use resim_toml::json::JsonValue;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The version string `ping` reports.
pub const SERVER_VERSION: &str = env!("CARGO_PKG_VERSION");

/// A bound `resim-serve` instance.
///
/// [`Server::bind`] reserves the address (port 0 picks a free one —
/// read it back with [`Server::local_addr`]); [`Server::run`] blocks
/// serving connections until a `shutdown` verb arrives, then joins
/// every handler and the executor before returning, so "run returned"
/// means "every cache entry is on disk".
///
/// ```no_run
/// use resim_serve::{ResultCache, Server};
///
/// let server = Server::bind("127.0.0.1:0", ResultCache::in_memory(), 1).unwrap();
/// println!("listening on {}", server.local_addr());
/// server.run().unwrap();
/// ```
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    jobs: JobTable,
    cache: ResultCache,
    runner: SweepRunner,
    metrics: Mutex<MetricsRecorder>,
    stop: AtomicBool,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`). `threads` is the sweep
    /// runner's worker-pool size per job (0 = all cores); job
    /// *execution* is always serial (see [`JobTable`]).
    ///
    /// # Errors
    ///
    /// The bind error.
    pub fn bind(addr: &str, cache: ResultCache, threads: usize) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            addr,
            jobs: JobTable::new(),
            cache,
            runner: SweepRunner::new(threads),
            metrics: Mutex::new(MetricsRecorder::new()),
            stop: AtomicBool::new(false),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The result cache (exposed for tests asserting hit/miss counts).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Current value of one serve counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.metrics.lock().expect("metrics poisoned").counter_value(c)
    }

    /// Serves until a `shutdown` verb arrives; every connection gets
    /// its own handler thread, all joined before this returns.
    ///
    /// # Errors
    ///
    /// Accept-loop errors (per-connection I/O failures only end that
    /// connection).
    pub fn run(&self) -> io::Result<()> {
        std::thread::scope(|scope| {
            scope.spawn(|| self.executor());
            for stream in self.listener.incoming() {
                if self.stop.load(Ordering::Acquire) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        scope.spawn(move || self.handle(stream));
                    }
                    Err(_) => continue,
                }
            }
            self.jobs.close();
        });
        Ok(())
    }

    fn bump(&self, c: Counter, by: u64) {
        self.metrics.lock().expect("metrics poisoned").counter(c, by);
    }

    /// The serial executor: pops jobs in submission order, runs each
    /// against the cache, publishes the outcome.
    fn executor(&self) {
        while let Some((id, doc)) = self.jobs.take_next() {
            let result = self.run_job(id, &doc);
            self.jobs.finish(id, result);
            self.bump(Counter::ServeJobsCompleted, 1);
        }
    }

    /// Executes one submission: look every cell up in the result
    /// cache, simulate only the misses (through the shared runner, so
    /// results are bit-identical to a local `resim sweep`), store the
    /// fresh cells, and assemble the deterministic CSV in scenario
    /// order.
    fn run_job(&self, id: u64, doc: &ScenarioDoc) -> Result<JobOutcome, String> {
        let scenario = doc.to_scenario().map_err(|e| e.to_string())?;
        let fingerprint = doc.fingerprint().map_err(|e| e.to_string())?;
        let cells = scenario.cells();
        let fps: Vec<u64> = cells
            .iter()
            .map(|c| scenario.cell_fingerprint(c))
            .collect();

        let mut resolved: Vec<Option<CachedCell>> = vec![None; cells.len()];
        let mut misses: Vec<usize> = Vec::new();
        let (mut mem, mut disk, mut rejected) = (0u64, 0u64, 0u64);
        for (i, &fp) in fps.iter().enumerate() {
            match self.cache.lookup(fp) {
                Lookup::Memory(c) => {
                    mem += 1;
                    resolved[i] = Some(c);
                }
                Lookup::Disk(c) => {
                    disk += 1;
                    resolved[i] = Some(c);
                }
                Lookup::Miss => misses.push(i),
                Lookup::Rejected(_) => {
                    // A damaged entry is a miss with a counter: the cell
                    // re-simulates honestly and overwrites the entry.
                    rejected += 1;
                    misses.push(i);
                }
            }
        }
        self.bump(Counter::ServeCellsMemHits, mem);
        self.bump(Counter::ServeCellsDiskHits, disk);
        self.bump(Counter::ServeCacheRejected, rejected);

        if !misses.is_empty() {
            let report = self
                .runner
                .run_subset(&scenario, &misses, |p| {
                    self.jobs
                        .set_progress(id, p.phase.label(), p.done as u64, p.total as u64);
                })
                .map_err(|e| e.to_string())?;
            for (&slot, result) in misses.iter().zip(report.cells.iter()) {
                let cached = CachedCell::from_result(fps[slot], result);
                // Disk spill is best-effort: the in-memory insert makes
                // the result servable either way.
                let _ = self.cache.insert(cached.clone());
                resolved[slot] = Some(cached);
            }
            self.bump(Counter::ServeCellsSimulated, misses.len() as u64);
        }

        let mut csv = String::from(stable_csv_header());
        for (i, cell) in cells.iter().enumerate() {
            let name = &scenario.configs()[cell.config].name;
            let cached = resolved[i].as_ref().expect("every cell resolved");
            csv.push_str(&cached.stable_csv_row(name));
        }
        Ok(JobOutcome {
            fingerprint,
            cells: cells.len() as u64,
            simulated: misses.len() as u64,
            served_mem: mem,
            served_disk: disk,
            rejected,
            csv,
        })
    }

    /// One connection: frames in, responses out, until EOF or an
    /// unframeable error.
    fn handle(&self, stream: TcpStream) {
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        loop {
            match read_frame(&mut reader) {
                Ok(None) => break,
                Ok(Some(line)) => {
                    self.bump(Counter::ServeRequests, 1);
                    let keep_going = match parse_request(&line) {
                        Ok(request) => self.respond(request, &mut writer),
                        Err(e) => {
                            self.bump(Counter::ServeErrors, 1);
                            send(&mut writer, &e.render())
                        }
                    };
                    if !keep_going {
                        break;
                    }
                }
                Err(FrameError::Oversized) => {
                    // The stream cannot be re-framed; answer and close.
                    self.bump(Counter::ServeRequests, 1);
                    self.bump(Counter::ServeErrors, 1);
                    let e = WireError::new(
                        ErrorCode::OversizedFrame,
                        format!("frame exceeds {} bytes", crate::protocol::MAX_FRAME),
                    );
                    let _ = send(&mut writer, &e.render());
                    break;
                }
                Err(FrameError::BadUtf8) => {
                    self.bump(Counter::ServeRequests, 1);
                    self.bump(Counter::ServeErrors, 1);
                    let e = WireError::new(ErrorCode::BadJson, "frame is not UTF-8");
                    if !send(&mut writer, &e.render()) {
                        break;
                    }
                }
                Err(FrameError::Io(_)) => break,
            }
        }
    }

    /// Answers one request; `false` ends the connection (shutdown, or
    /// the peer is gone).
    fn respond(&self, request: Request, writer: &mut TcpStream) -> bool {
        match request {
            Request::Ping => send(
                writer,
                &ok_response(vec![
                    ("schema", JsonValue::Str(SERVE_SCHEMA.to_string())),
                    ("service", JsonValue::Str("resim-serve".to_string())),
                    ("version", JsonValue::Str(SERVER_VERSION.to_string())),
                ]),
            ),
            Request::Submit { scenario } => {
                let parsed = ScenarioDoc::parse_str(&scenario)
                    .and_then(|doc| doc.fingerprint().map(|fp| (doc, fp)));
                match parsed {
                    Ok((doc, fp)) => {
                        let cells = doc
                            .to_scenario()
                            .map(|s| s.len())
                            .expect("fingerprint() already resolved the scenario");
                        let id = self.jobs.submit(doc);
                        self.bump(Counter::ServeJobsSubmitted, 1);
                        send(
                            writer,
                            &ok_response(vec![
                                ("job", JsonValue::Int(id as i64)),
                                ("cells", JsonValue::Int(cells as i64)),
                                ("fingerprint", JsonValue::Str(fingerprint_hex(fp))),
                            ]),
                        )
                    }
                    Err(e) => {
                        self.bump(Counter::ServeErrors, 1);
                        let e = WireError::new(ErrorCode::BadScenario, e.to_string());
                        send(writer, &e.render())
                    }
                }
            }
            Request::Status { job } => match self.jobs.status(job) {
                Some(status) => send(writer, &status_response(&status)),
                None => {
                    self.bump(Counter::ServeErrors, 1);
                    let e = WireError::new(ErrorCode::UnknownJob, format!("no job {job}"));
                    send(writer, &e.render())
                }
            },
            Request::Wait { job } => {
                let mut seen = 0;
                loop {
                    let Some(status) = self.jobs.wait_change(job, seen) else {
                        self.bump(Counter::ServeErrors, 1);
                        let e = WireError::new(ErrorCode::UnknownJob, format!("no job {job}"));
                        return send(writer, &e.render());
                    };
                    if status.terminal() {
                        return send(writer, &status_response(&status));
                    }
                    seen = status.version;
                    if !send(writer, &progress_event(&status)) {
                        return false;
                    }
                }
            }
            Request::Metrics => {
                let counters: Vec<(&str, JsonValue)> = {
                    let m = self.metrics.lock().expect("metrics poisoned");
                    Counter::ALL
                        .iter()
                        .map(|&c| (c.name(), JsonValue::Int(m.counter_value(c) as i64)))
                        .collect()
                };
                send(
                    writer,
                    &ok_response(vec![
                        ("schema", JsonValue::Str(SERVE_SCHEMA.to_string())),
                        (
                            "counters",
                            object(counters),
                        ),
                        (
                            "cached_cells",
                            JsonValue::Int(self.cache.len() as i64),
                        ),
                    ]),
                )
            }
            Request::Shutdown => {
                let _ = send(
                    writer,
                    &ok_response(vec![("stopping", JsonValue::Bool(true))]),
                );
                self.stop.store(true, Ordering::Release);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(self.addr);
                false
            }
        }
    }
}

/// Renders a job snapshot as the final response line of `status`/`wait`.
fn status_response(s: &JobStatus) -> String {
    let mut fields = vec![
        ("job", JsonValue::Int(s.id as i64)),
        ("state", JsonValue::Str(s.state.to_string())),
    ];
    if let Some(phase) = s.phase {
        fields.push(("phase", JsonValue::Str(phase.to_string())));
        fields.push(("done", JsonValue::Int(s.done as i64)));
        fields.push(("total", JsonValue::Int(s.total as i64)));
    }
    if let Some(o) = &s.outcome {
        fields.push(("fingerprint", JsonValue::Str(fingerprint_hex(o.fingerprint))));
        fields.push(("cells", JsonValue::Int(o.cells as i64)));
        fields.push(("simulated", JsonValue::Int(o.simulated as i64)));
        fields.push(("served_mem", JsonValue::Int(o.served_mem as i64)));
        fields.push(("served_disk", JsonValue::Int(o.served_disk as i64)));
        fields.push(("rejected", JsonValue::Int(o.rejected as i64)));
        fields.push(("csv", JsonValue::Str(o.csv.clone())));
    }
    if let Some(e) = &s.error {
        fields.push(("job_error", JsonValue::Str(e.clone())));
    }
    ok_response(fields)
}

/// Renders one streamed progress line of a `wait` — the serving-layer
/// echo of a [`SweepProgress`](resim_sweep::SweepProgress) sample.
fn progress_event(s: &JobStatus) -> String {
    object(vec![
        ("event", JsonValue::Str("progress".to_string())),
        ("schema", JsonValue::Str(SERVE_SCHEMA.to_string())),
        ("job", JsonValue::Int(s.id as i64)),
        ("state", JsonValue::Str(s.state.to_string())),
        (
            "phase",
            match s.phase {
                Some(p) => JsonValue::Str(p.to_string()),
                None => JsonValue::Null,
            },
        ),
        ("done", JsonValue::Int(s.done as i64)),
        ("total", JsonValue::Int(s.total as i64)),
    ])
    .render()
}

/// Writes one response line; `false` when the peer is gone.
fn send(writer: &mut TcpStream, line: &str) -> bool {
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_ok()
}
