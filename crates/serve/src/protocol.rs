//! The wire protocol: newline-delimited JSON frames over TCP.
//!
//! Every request is one JSON object on one line, carrying a `verb` key;
//! every response is one JSON object on one line, carrying `"ok": true`
//! on success or `"ok": false` plus a stable machine-readable `code`
//! on failure. Long-running verbs (`wait`) may interleave event lines —
//! objects carrying an `event` key — before the final response, so a
//! client reads lines until it sees `ok`.
//!
//! The parser is [`resim_toml::json`]: strict, dependency-free, and
//! hardened by the same corruption battery the trace container gets.
//! Malformed input of any shape — truncation, flipped bytes, oversized
//! frames, unknown verbs — produces a *typed* [`WireError`], never a
//! panic and never a hang.

use resim_toml::json::{parse_json, JsonValue};
use std::io::{self, BufRead, Read as _};

/// Upper bound on one request frame, newline included. A scenario file
/// is a few KiB; anything near this limit is garbage or abuse, and the
/// bound keeps a hostile peer from growing server memory without bound.
pub const MAX_FRAME: usize = 1 << 20;

/// Protocol schema identifier, echoed by `ping` and event lines.
pub const SERVE_SCHEMA: &str = "resim.serve/1";

/// Stable machine-readable error categories of the protocol.
///
/// The names are part of the wire contract (clients match on them), so
/// the corruption battery pins each one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// A request line exceeded [`MAX_FRAME`] bytes.
    OversizedFrame,
    /// The frame was not a well-formed JSON object.
    BadJson,
    /// The frame was JSON but structurally wrong (missing/mistyped keys).
    BadRequest,
    /// The `verb` key named no known verb.
    UnknownVerb,
    /// A submitted scenario failed to parse or resolve.
    BadScenario,
    /// A `status`/`wait` named a job id the server never issued.
    UnknownJob,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownVerb => "unknown-verb",
            ErrorCode::BadScenario => "bad-scenario",
            ErrorCode::UnknownJob => "unknown-job",
        }
    }
}

/// A typed protocol error: the category plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail (never needed to dispatch on).
    pub message: String,
}

impl WireError {
    /// Builds an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// Renders the one-line error response,
    /// `{"ok":false,"code":"…","error":"…"}`.
    pub fn render(&self) -> String {
        object(vec![
            ("ok", JsonValue::Bool(false)),
            ("code", JsonValue::Str(self.code.name().to_string())),
            ("error", JsonValue::Str(self.message.clone())),
        ])
        .render()
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)
    }
}

impl std::error::Error for WireError {}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered immediately.
    Ping,
    /// Submit a scenario document (the TOML text, verbatim) for
    /// execution; answered with a job id.
    Submit {
        /// The scenario file text.
        scenario: String,
    },
    /// Snapshot a job's state without blocking.
    Status {
        /// Job id from `submit`.
        job: u64,
    },
    /// Block until a job finishes, streaming progress event lines.
    Wait {
        /// Job id from `submit`.
        job: u64,
    },
    /// Snapshot the server's counters.
    Metrics,
    /// Stop accepting work and shut the server down cleanly.
    Shutdown,
}

/// Parses one request frame.
///
/// # Errors
///
/// A [`WireError`] with code [`ErrorCode::BadJson`],
/// [`ErrorCode::BadRequest`] or [`ErrorCode::UnknownVerb`].
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let value = parse_json(line).map_err(|e| WireError::new(ErrorCode::BadJson, e.to_string()))?;
    let Some(_) = value.as_object() else {
        return Err(WireError::new(
            ErrorCode::BadRequest,
            "request must be a JSON object",
        ));
    };
    let verb = value
        .get("verb")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| WireError::new(ErrorCode::BadRequest, "missing string key \"verb\""))?;
    let job = |what: &str| {
        value
            .get("job")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| {
                WireError::new(
                    ErrorCode::BadRequest,
                    format!("{what} requires a non-negative integer key \"job\""),
                )
            })
    };
    match verb {
        "ping" => Ok(Request::Ping),
        "submit" => {
            let scenario = value
                .get("scenario")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| {
                    WireError::new(
                        ErrorCode::BadRequest,
                        "submit requires a string key \"scenario\"",
                    )
                })?;
            Ok(Request::Submit {
                scenario: scenario.to_string(),
            })
        }
        "status" => Ok(Request::Status { job: job("status")? }),
        "wait" => Ok(Request::Wait { job: job("wait")? }),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(WireError::new(
            ErrorCode::UnknownVerb,
            format!("unknown verb {other:?}"),
        )),
    }
}

/// Why [`read_frame`] failed to produce a line.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying transport failed (peer gone, reset, …).
    Io(io::ErrorKind),
    /// The line exceeded [`MAX_FRAME`] bytes. The stream cannot be
    /// re-framed after this; the connection must be closed.
    Oversized,
    /// The frame was not UTF-8.
    BadUtf8,
}

/// Reads one newline-terminated frame of at most [`MAX_FRAME`] bytes.
///
/// Returns `Ok(None)` on clean end-of-stream (the client closed its
/// half), `Ok(Some(line))` with the newline stripped otherwise. The
/// read is bounded, so a peer streaming garbage without a newline
/// cannot grow server memory past the frame limit.
///
/// # Errors
///
/// [`FrameError::Oversized`] past the limit, [`FrameError::BadUtf8`]
/// for non-UTF-8 bytes, [`FrameError::Io`] for transport failures.
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<String>, FrameError> {
    let mut buf = Vec::new();
    let mut limited = reader.by_ref().take(MAX_FRAME as u64 + 1);
    let n = limited
        .read_until(b'\n', &mut buf)
        .map_err(|e| FrameError::Io(e.kind()))?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    } else if n > MAX_FRAME {
        return Err(FrameError::Oversized);
    }
    // A final unterminated line (EOF without newline) within the limit
    // is accepted: it is what a one-shot client piping a request sends.
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| FrameError::BadUtf8)
}

/// Builds a JSON object from `(key, value)` pairs, insertion-ordered.
pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders a success response: `{"ok":true, …fields}`.
pub fn ok_response(fields: Vec<(&str, JsonValue)>) -> String {
    let mut all = vec![("ok", JsonValue::Bool(true))];
    all.extend(fields);
    object(all).render()
}

/// Renders a fingerprint the way the protocol spells them: 16 hex
/// digits, zero-padded, `0x`-free — the same spelling the on-disk
/// cache uses for entry file names.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse() {
        assert_eq!(parse_request(r#"{"verb":"ping"}"#), Ok(Request::Ping));
        assert_eq!(parse_request(r#"{"verb":"metrics"}"#), Ok(Request::Metrics));
        assert_eq!(parse_request(r#"{"verb":"shutdown"}"#), Ok(Request::Shutdown));
        assert_eq!(
            parse_request(r#"{"verb":"status","job":3}"#),
            Ok(Request::Status { job: 3 })
        );
        assert_eq!(
            parse_request(r#"{"verb":"wait","job":0}"#),
            Ok(Request::Wait { job: 0 })
        );
        assert_eq!(
            parse_request(r#"{"verb":"submit","scenario":"[workload]\nseed = 1\n"}"#),
            Ok(Request::Submit {
                scenario: "[workload]\nseed = 1\n".to_string()
            })
        );
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        for (input, code) in [
            ("", ErrorCode::BadJson),
            ("{", ErrorCode::BadJson),
            ("nonsense", ErrorCode::BadJson),
            (r#"{"verb":"ping"} trailing"#, ErrorCode::BadJson),
            ("42", ErrorCode::BadRequest),
            (r#"["verb","ping"]"#, ErrorCode::BadRequest),
            (r#"{"noun":"ping"}"#, ErrorCode::BadRequest),
            (r#"{"verb":7}"#, ErrorCode::BadRequest),
            (r#"{"verb":"submit"}"#, ErrorCode::BadRequest),
            (r#"{"verb":"submit","scenario":5}"#, ErrorCode::BadRequest),
            (r#"{"verb":"status"}"#, ErrorCode::BadRequest),
            (r#"{"verb":"status","job":-1}"#, ErrorCode::BadRequest),
            (r#"{"verb":"status","job":"three"}"#, ErrorCode::BadRequest),
            (r#"{"verb":"launch"}"#, ErrorCode::UnknownVerb),
        ] {
            let err = parse_request(input).expect_err(input);
            assert_eq!(err.code, code, "{input:?} → {err}");
        }
    }

    #[test]
    fn error_rendering_is_machine_readable() {
        let err = WireError::new(ErrorCode::UnknownVerb, "unknown verb \"x\"");
        let line = err.render();
        let parsed = parse_json(&line).unwrap();
        assert_eq!(parsed.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            parsed.get("code").and_then(JsonValue::as_str),
            Some("unknown-verb")
        );
        assert!(parsed.get("error").is_some());
    }

    #[test]
    fn code_names_are_stable() {
        // Wire contract: clients dispatch on these spellings.
        let all = [
            (ErrorCode::OversizedFrame, "oversized-frame"),
            (ErrorCode::BadJson, "bad-json"),
            (ErrorCode::BadRequest, "bad-request"),
            (ErrorCode::UnknownVerb, "unknown-verb"),
            (ErrorCode::BadScenario, "bad-scenario"),
            (ErrorCode::UnknownJob, "unknown-job"),
        ];
        for (code, name) in all {
            assert_eq!(code.name(), name);
        }
    }

    #[test]
    fn frames_are_bounded_and_newline_delimited() {
        let mut two = io::Cursor::new(b"{\"verb\":\"ping\"}\n{\"verb\":\"metrics\"}\n".to_vec());
        assert_eq!(
            read_frame(&mut two).unwrap().as_deref(),
            Some("{\"verb\":\"ping\"}")
        );
        assert_eq!(
            read_frame(&mut two).unwrap().as_deref(),
            Some("{\"verb\":\"metrics\"}")
        );
        assert_eq!(read_frame(&mut two).unwrap(), None, "clean EOF");

        // Unterminated final line within the limit is accepted.
        let mut tail = io::Cursor::new(b"{\"verb\":\"ping\"}".to_vec());
        assert_eq!(
            read_frame(&mut tail).unwrap().as_deref(),
            Some("{\"verb\":\"ping\"}")
        );

        // Oversized frame is a typed error, not memory growth.
        let mut huge = io::Cursor::new(vec![b'x'; MAX_FRAME + 10]);
        assert_eq!(read_frame(&mut huge), Err(FrameError::Oversized));

        // Exactly at the limit (newline included) still frames.
        let mut at_limit = vec![b'y'; MAX_FRAME - 1];
        at_limit.push(b'\n');
        let mut at_limit = io::Cursor::new(at_limit);
        assert_eq!(read_frame(&mut at_limit).unwrap().unwrap().len(), MAX_FRAME - 1);

        // Non-UTF-8 is a typed error.
        let mut bad = io::Cursor::new(b"\xFF\xFE\n".to_vec());
        assert_eq!(read_frame(&mut bad), Err(FrameError::BadUtf8));
    }

    #[test]
    fn response_builders_render_compact_json() {
        let line = ok_response(vec![
            ("job", JsonValue::Int(4)),
            ("fingerprint", JsonValue::Str(fingerprint_hex(0xAB))),
        ]);
        assert_eq!(
            line,
            r#"{"ok":true,"job":4,"fingerprint":"00000000000000ab"}"#
        );
    }
}
