//! The content-addressed result cache: RSCE entries in memory, spilled
//! to disk.
//!
//! The unit of caching is one simulated **cell** — the numeric essence
//! a [`stable_csv_row`](resim_sweep::stable_csv_row) needs to re-render
//! byte-identically — keyed by
//! [`Scenario::cell_fingerprint`](resim_sweep::Scenario::cell_fingerprint):
//! a platform-stable FNV-1a hash over the engine and trace-generator
//! fingerprints, workload name, seed, budget and execution mode.
//! Content addressing means a renamed configuration or a moved trace
//! file still hits; any change to what is actually simulated misses.
//!
//! ## The RSCE entry (version 1)
//!
//! All integers little-endian; strings are UTF-8 with a u16 length
//! prefix; floats are stored as their IEEE-754 bit patterns.
//!
//! | field            | size          | notes                                   |
//! |------------------|---------------|-----------------------------------------|
//! | magic            | 4             | `"RSCE"`                                |
//! | version          | u16           | [`CACHE_VERSION`]                       |
//! | flags            | u16           | bit 0: IPC-estimate triple present      |
//! | cell fingerprint | u64           | echoed; a renamed entry file is caught  |
//! | seed             | u64           | workload seed                           |
//! | budget           | u64           | correct-path instruction budget         |
//! | workload         | u16 + n       | workload name                           |
//! | mode             | u16 + n       | `"full"` / `"sampled-…"`                |
//! | bits_per_instr   | u64           | trace density, f64 bits                 |
//! | IPC estimate     | 3×u64         | mean/lo/hi f64 bits, only when flagged  |
//! | stats arity      | u16           | must equal [`SIM_STATS_FIELDS`] length  |
//! | stats words      | 42×u64        | [`SimStats::to_words`] order            |
//! | stats digest     | u64           | [`SimStats::digest`], cross-checked     |
//! | entry checksum   | u64           | FNV-1a over every preceding byte        |
//!
//! The trailing whole-entry checksum makes any flipped or missing byte
//! a typed [`CacheEntryError`]; the cache treats a rejected entry as a
//! miss and **re-simulates honestly** rather than serving damaged
//! numbers (the restart-persistence test pins this).

use crate::protocol::fingerprint_hex;
use resim_core::{Fnv64, SimStats, SIM_STATS_FIELDS};
use resim_sweep::CellResult;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The four magic bytes opening every cache entry.
pub const CACHE_MAGIC: [u8; 4] = *b"RSCE";

/// Newest entry version this build reads and writes.
pub const CACHE_VERSION: u16 = 1;

/// Flag bit 0: the cell's IPC is a sampled estimate; a mean/lo/hi
/// triple is stored.
const FLAG_ESTIMATE: u16 = 1 << 0;
const KNOWN_FLAGS: u16 = FLAG_ESTIMATE;

/// The numeric essence of one simulated cell — everything needed to
/// answer a resubmission without re-simulating, including re-rendering
/// its deterministic CSV row byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedCell {
    /// The content-addressed key this cell is stored under.
    pub fingerprint: u64,
    /// Workload name.
    pub workload: String,
    /// Execution-mode name (`"full"`, or `"sampled-<plan>"`).
    pub mode: String,
    /// Correct-path instruction budget.
    pub budget: u64,
    /// Workload seed.
    pub seed: u64,
    /// Encoded-trace density of the cell's input trace.
    pub bits_per_instr: f64,
    /// `(mean, ci_lo, ci_hi)` of an estimating (sampled) cell.
    pub ipc_estimate: Option<(f64, f64, f64)>,
    /// The cell's bit-exact simulated statistics.
    pub stats: SimStats,
}

impl CachedCell {
    /// Captures a runner result under its content-addressed key.
    pub fn from_result(fingerprint: u64, r: &CellResult) -> Self {
        Self {
            fingerprint,
            workload: r.workload.clone(),
            mode: r.mode.clone(),
            budget: r.budget as u64,
            seed: r.seed,
            bits_per_instr: r.trace_stats.bits_per_instruction(),
            ipc_estimate: r.ipc_estimate(),
            stats: r.stats,
        }
    }

    /// Re-renders the cell's deterministic CSV row under a display
    /// name — the name is presentation, so it is the *caller's* (the
    /// submitting scenario's), not something the cache stores.
    pub fn stable_csv_row(&self, config: &str) -> String {
        resim_sweep::stable_csv_row(
            config,
            &self.workload,
            &self.mode,
            self.budget,
            self.seed,
            &self.stats,
            self.ipc_estimate,
            self.bits_per_instr,
        )
    }

    /// The entry's flags word.
    fn flags(&self) -> u16 {
        if self.ipc_estimate.is_some() {
            FLAG_ESTIMATE
        } else {
            0
        }
    }

    /// Serializes the entry, trailing checksum included.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(&CACHE_MAGIC);
        b.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        b.extend_from_slice(&self.flags().to_le_bytes());
        b.extend_from_slice(&self.fingerprint.to_le_bytes());
        b.extend_from_slice(&self.seed.to_le_bytes());
        b.extend_from_slice(&self.budget.to_le_bytes());
        write_str16(&mut b, &self.workload);
        write_str16(&mut b, &self.mode);
        b.extend_from_slice(&self.bits_per_instr.to_bits().to_le_bytes());
        if let Some((mean, lo, hi)) = self.ipc_estimate {
            for f in [mean, lo, hi] {
                b.extend_from_slice(&f.to_bits().to_le_bytes());
            }
        }
        let words = self.stats.to_words();
        b.extend_from_slice(&(words.len() as u16).to_le_bytes());
        for w in &words {
            b.extend_from_slice(&w.to_le_bytes());
        }
        b.extend_from_slice(&self.stats.digest().to_le_bytes());
        let checksum = Fnv64::hash_bytes(&b);
        b.extend_from_slice(&checksum.to_le_bytes());
        b
    }

    /// Deserializes and validates an entry: checksum, magic, version,
    /// flags, stats arity and digest are all checked, in that order.
    ///
    /// # Errors
    ///
    /// The first [`CacheEntryError`] found. A truncated or bit-flipped
    /// entry fails the whole-entry checksum before anything else is
    /// believed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CacheEntryError> {
        if bytes.len() < 8 {
            return Err(CacheEntryError::Truncated);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("split at len-8"));
        let computed = Fnv64::hash_bytes(body);
        if stored != computed {
            return Err(CacheEntryError::ChecksumMismatch { stored, computed });
        }
        let mut c = Cursor { body, at: 0 };
        let magic: [u8; 4] = c.array()?;
        if magic != CACHE_MAGIC {
            return Err(CacheEntryError::BadMagic(magic));
        }
        let version = c.u16()?;
        if version == 0 || version > CACHE_VERSION {
            return Err(CacheEntryError::UnsupportedVersion {
                found: version,
                newest_supported: CACHE_VERSION,
            });
        }
        let flags = c.u16()?;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(CacheEntryError::UnknownFlags(flags & !KNOWN_FLAGS));
        }
        let fingerprint = c.u64()?;
        let seed = c.u64()?;
        let budget = c.u64()?;
        let workload = c.str16()?;
        let mode = c.str16()?;
        let bits_per_instr = f64::from_bits(c.u64()?);
        let ipc_estimate = if flags & FLAG_ESTIMATE != 0 {
            let mean = f64::from_bits(c.u64()?);
            let lo = f64::from_bits(c.u64()?);
            let hi = f64::from_bits(c.u64()?);
            Some((mean, lo, hi))
        } else {
            None
        };
        let arity = c.u16()? as usize;
        if arity != SIM_STATS_FIELDS.len() {
            return Err(CacheEntryError::BadStatsArity {
                found: arity,
                expected: SIM_STATS_FIELDS.len(),
            });
        }
        let mut words = Vec::with_capacity(arity);
        for _ in 0..arity {
            words.push(c.u64()?);
        }
        let stored_digest = c.u64()?;
        if c.at != body.len() {
            return Err(CacheEntryError::TrailingBytes(body.len() - c.at));
        }
        let stats = SimStats::from_words(&words).expect("arity checked above");
        let computed_digest = stats.digest();
        if computed_digest != stored_digest {
            return Err(CacheEntryError::DigestMismatch {
                stored: stored_digest,
                computed: computed_digest,
            });
        }
        Ok(Self {
            fingerprint,
            workload,
            mode,
            budget,
            seed,
            bits_per_instr,
            ipc_estimate,
            stats,
        })
    }
}

struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CacheEntryError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or(CacheEntryError::Truncated)?;
        let slice = &self.body[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], CacheEntryError> {
        Ok(self.take(N)?.try_into().expect("length taken"))
    }

    fn u16(&mut self) -> Result<u16, CacheEntryError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, CacheEntryError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn str16(&mut self) -> Result<String, CacheEntryError> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| CacheEntryError::BadUtf8)
    }
}

fn write_str16(b: &mut Vec<u8>, s: &str) {
    b.extend_from_slice(&(s.len() as u16).to_le_bytes());
    b.extend_from_slice(s.as_bytes());
}

/// Everything that can be wrong with a cache entry's bytes. Every
/// variant is a *miss with a reason*: the cache re-simulates and
/// overwrites, it never serves or propagates a damaged entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheEntryError {
    /// The first four bytes were not `"RSCE"`.
    BadMagic([u8; 4]),
    /// A version this build does not read.
    UnsupportedVersion {
        /// Version found in the entry.
        found: u16,
        /// Newest version this build supports.
        newest_supported: u16,
    },
    /// Flag bits this build does not know (shown masked to the unknown
    /// bits).
    UnknownFlags(u16),
    /// The entry ended mid-field.
    Truncated,
    /// Bytes remained after the last field.
    TrailingBytes(usize),
    /// A stored string was not UTF-8.
    BadUtf8,
    /// The statistics vector was not exactly [`SIM_STATS_FIELDS`] long.
    BadStatsArity {
        /// Word count found.
        found: usize,
        /// Word count expected.
        expected: usize,
    },
    /// The stored statistics digest disagrees with the words.
    DigestMismatch {
        /// Digest stored in the entry.
        stored: u64,
        /// Digest computed from the stored words.
        computed: u64,
    },
    /// The whole-entry checksum disagrees with the bytes.
    ChecksumMismatch {
        /// Checksum stored in the entry.
        stored: u64,
        /// Checksum computed from the bytes.
        computed: u64,
    },
    /// The entry's embedded fingerprint is not the key it was looked
    /// up under (a renamed or cross-copied entry file).
    FingerprintMismatch {
        /// Key the lookup asked for.
        expected: u64,
        /// Fingerprint embedded in the entry.
        found: u64,
    },
    /// Reading the entry file failed.
    Io(io::ErrorKind),
}

impl fmt::Display for CacheEntryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheEntryError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected \"RSCE\")"),
            CacheEntryError::UnsupportedVersion {
                found,
                newest_supported,
            } => write!(
                f,
                "unsupported entry version {found} (this build reads up to {newest_supported})"
            ),
            CacheEntryError::UnknownFlags(bits) => write!(f, "unknown flag bits {bits:#06x}"),
            CacheEntryError::Truncated => write!(f, "entry truncated mid-field"),
            CacheEntryError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the entry"),
            CacheEntryError::BadUtf8 => write!(f, "stored string is not UTF-8"),
            CacheEntryError::BadStatsArity { found, expected } => {
                write!(f, "stats vector holds {found} words, expected {expected}")
            }
            CacheEntryError::DigestMismatch { stored, computed } => write!(
                f,
                "stats digest mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CacheEntryError::ChecksumMismatch { stored, computed } => write!(
                f,
                "entry checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CacheEntryError::FingerprintMismatch { expected, found } => write!(
                f,
                "entry fingerprint {found:#018x} is not the key {expected:#018x} it was \
                 looked up under"
            ),
            CacheEntryError::Io(kind) => write!(f, "i/o error: {kind}"),
        }
    }
}

impl std::error::Error for CacheEntryError {}

/// Where a [`ResultCache::lookup`] was answered from.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// Served from the in-process map.
    Memory(CachedCell),
    /// Served from a validated on-disk entry (now promoted to memory).
    Disk(CachedCell),
    /// Nothing cached under this key.
    Miss,
    /// An on-disk entry existed but failed validation; the caller must
    /// re-simulate. The damaged entry stays on disk until the fresh
    /// result overwrites it.
    Rejected(CacheEntryError),
}

/// The content-addressed result cache: an in-memory map backed by one
/// RSCE file per cell under the cache directory (when one is given),
/// so identical cells are answered without simulation across requests
/// *and* across server restarts.
#[derive(Debug)]
pub struct ResultCache {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<u64, CachedCell>>,
}

impl ResultCache {
    /// A purely in-memory cache (nothing survives the process).
    pub fn in_memory() -> Self {
        Self {
            dir: None,
            mem: Mutex::new(HashMap::new()),
        }
    }

    /// A cache spilling to `dir` (created if missing). A later cache
    /// constructed over the same directory serves this one's results.
    ///
    /// # Errors
    ///
    /// The directory-creation error.
    pub fn with_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: Some(dir),
            mem: Mutex::new(HashMap::new()),
        })
    }

    /// The cache directory, when the cache is disk-backed.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Entries currently held in memory.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache map poisoned").len()
    }

    /// Whether the in-memory map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The on-disk path of a key's entry (`<16 hex digits>.rsce`).
    pub fn entry_path(&self, fingerprint: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.rsce", fingerprint_hex(fingerprint))))
    }

    /// Looks a cell up by fingerprint: memory first, then disk (a disk
    /// hit is validated and promoted to memory).
    pub fn lookup(&self, fingerprint: u64) -> Lookup {
        if let Some(cell) = self
            .mem
            .lock()
            .expect("cache map poisoned")
            .get(&fingerprint)
        {
            return Lookup::Memory(cell.clone());
        }
        let Some(path) = self.entry_path(fingerprint) else {
            return Lookup::Miss;
        };
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Miss,
            Err(e) => return Lookup::Rejected(CacheEntryError::Io(e.kind())),
        };
        let cell = match CachedCell::from_bytes(&bytes) {
            Ok(c) => c,
            Err(e) => return Lookup::Rejected(e),
        };
        if cell.fingerprint != fingerprint {
            return Lookup::Rejected(CacheEntryError::FingerprintMismatch {
                expected: fingerprint,
                found: cell.fingerprint,
            });
        }
        self.mem
            .lock()
            .expect("cache map poisoned")
            .insert(fingerprint, cell.clone());
        Lookup::Disk(cell)
    }

    /// Stores a cell in memory and (when disk-backed) on disk, written
    /// to a temporary file and renamed so a crash mid-write never
    /// leaves a half entry under the real name.
    ///
    /// # Errors
    ///
    /// The disk write/rename error; the in-memory insert has already
    /// happened.
    pub fn insert(&self, cell: CachedCell) -> io::Result<()> {
        let fingerprint = cell.fingerprint;
        let bytes = cell.to_bytes();
        self.mem
            .lock()
            .expect("cache map poisoned")
            .insert(fingerprint, cell);
        if let Some(path) = self.entry_path(fingerprint) {
            let tmp = path.with_extension("rsce.tmp");
            fs::write(&tmp, &bytes)?;
            fs::rename(&tmp, &path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(fp: u64) -> CachedCell {
        CachedCell {
            fingerprint: fp,
            workload: "gzip".to_string(),
            mode: "full".to_string(),
            budget: 3_000,
            seed: 2009,
            bits_per_instr: 14.25,
            ipc_estimate: None,
            stats: SimStats {
                cycles: 1_500,
                committed: 3_000,
                ..SimStats::default()
            },
        }
    }

    fn sampled_cell(fp: u64) -> CachedCell {
        CachedCell {
            mode: "sampled-u1000d200k1f".to_string(),
            ipc_estimate: Some((1.875, 1.75, 2.0)),
            ..cell(fp)
        }
    }

    #[test]
    fn entries_roundtrip() {
        for c in [cell(0xDEAD_BEEF), sampled_cell(7)] {
            let bytes = c.to_bytes();
            assert_eq!(CachedCell::from_bytes(&bytes).unwrap(), c);
        }
    }

    #[test]
    fn csv_row_matches_the_runner_rendering() {
        let c = cell(1);
        let row = c.stable_csv_row("base");
        assert_eq!(row, "base,gzip,full,3000,2009,1500,3000,2.0000,,,0.0000,14.25\n");
        let s = sampled_cell(1);
        let row = s.stable_csv_row("base");
        assert!(row.contains(",1.8750,1.7500,2.0000,"), "{row}");
    }

    #[test]
    fn every_corruption_is_a_typed_error() {
        let good = cell(3).to_bytes();
        // Any single flipped bit breaks the whole-entry checksum.
        for at in [0, 4, 8, good.len() / 2, good.len() - 9] {
            let mut bad = good.clone();
            bad[at] ^= 0x40;
            assert!(
                matches!(
                    CachedCell::from_bytes(&bad),
                    Err(CacheEntryError::ChecksumMismatch { .. })
                ),
                "flip at {at}"
            );
        }
        // Truncation at every prefix is an error, never a panic.
        for len in 0..good.len() {
            assert!(CachedCell::from_bytes(&good[..len]).is_err(), "prefix {len}");
        }
        // A checksum-repaired bad magic is still caught.
        let mut bad = good[..good.len() - 8].to_vec();
        bad[0] = b'X';
        let sum = Fnv64::hash_bytes(&bad);
        bad.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            CachedCell::from_bytes(&bad),
            Err(CacheEntryError::BadMagic(_))
        ));
        // Same for a future version…
        let mut bad = good[..good.len() - 8].to_vec();
        bad[4] = 0xFF;
        let sum = Fnv64::hash_bytes(&bad);
        bad.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            CachedCell::from_bytes(&bad),
            Err(CacheEntryError::UnsupportedVersion { .. })
        ));
        // …unknown flags…
        let mut bad = good[..good.len() - 8].to_vec();
        bad[6] = 0x80;
        let sum = Fnv64::hash_bytes(&bad);
        bad.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            CachedCell::from_bytes(&bad),
            Err(CacheEntryError::UnknownFlags(_))
        ));
        // …and trailing garbage.
        let mut bad = good[..good.len() - 8].to_vec();
        bad.extend_from_slice(&[0; 4]);
        let sum = Fnv64::hash_bytes(&bad);
        bad.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            CachedCell::from_bytes(&bad),
            Err(CacheEntryError::TrailingBytes(4))
        ));
    }

    #[test]
    fn memory_cache_hits_and_misses() {
        let cache = ResultCache::in_memory();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(9), Lookup::Miss);
        cache.insert(cell(9)).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(matches!(cache.lookup(9), Lookup::Memory(_)));
        assert_eq!(cache.lookup(10), Lookup::Miss);
        assert!(cache.entry_path(9).is_none(), "no disk behind in_memory()");
    }

    #[test]
    fn disk_cache_survives_reconstruction() {
        let dir = std::env::temp_dir().join(format!("rsce-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::with_dir(&dir).unwrap();
            cache.insert(cell(0xAB)).unwrap();
            assert!(cache.entry_path(0xAB).unwrap().exists());
        }
        // A fresh cache over the same directory serves the entry from
        // disk, then from memory.
        let cache = ResultCache::with_dir(&dir).unwrap();
        assert!(matches!(cache.lookup(0xAB), Lookup::Disk(c) if c == cell(0xAB)));
        assert!(matches!(cache.lookup(0xAB), Lookup::Memory(_)));
        // A tampered entry is rejected, not served.
        let path = cache.entry_path(0xAB).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let fresh = ResultCache::with_dir(&dir).unwrap();
        assert!(matches!(fresh.lookup(0xAB), Lookup::Rejected(_)));
        // An entry stored under the wrong name is caught by the echo.
        let cache2 = ResultCache::with_dir(&dir).unwrap();
        cache2.insert(cell(0xCD)).unwrap();
        fs::rename(
            cache2.entry_path(0xCD).unwrap(),
            cache2.entry_path(0xEF).unwrap(),
        )
        .unwrap();
        let fresh = ResultCache::with_dir(&dir).unwrap();
        assert!(matches!(
            fresh.lookup(0xEF),
            Lookup::Rejected(CacheEntryError::FingerprintMismatch {
                expected: 0xEF,
                found: 0xCD
            })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
