//! # resim-serve
//!
//! A persistent simulation service for the ReSim reproduction: the
//! paper's host/simulator split (§V.B) taken one step further, from
//! "a host tool drives one run" to "a long-running server answers
//! scenario submissions, caching every result it ever computed".
//!
//! ## Protocol
//!
//! Line-delimited JSON over TCP (see [`protocol`]): each request is
//! one object with a `verb` — `ping`, `submit`, `status`, `wait`,
//! `metrics`, `shutdown` — and each response is one object carrying
//! `ok`. Failures are *typed*: a stable machine-readable `code`
//! (`bad-json`, `bad-scenario`, `unknown-job`, …) plus a message, and
//! malformed input of any shape — truncated frames, flipped bytes,
//! oversized lines — is answered with such an error, never a panic or
//! a hang (the corruption battery pins this).
//!
//! ## The result cache
//!
//! Results are **content-addressed** (see [`cache`]): the unit is one
//! simulated grid cell, keyed by a platform-stable FNV-1a fingerprint
//! over everything that determines its statistics — engine and
//! trace-generator fingerprints, workload name, seed, budget,
//! execution mode — and nothing that doesn't (config display names,
//! trace file paths). Entries live in memory and spill to one
//! checksummed `RSCE` file each, so an identical cell submitted again
//! is answered without simulation across requests *and* across server
//! restarts; a tampered entry fails its checksum and is re-simulated
//! honestly.
//!
//! ## Exactly-once execution
//!
//! Jobs execute serially on one executor thread ([`jobs`]), so N
//! concurrent submissions of the same grid simulate each cell exactly
//! once — the first job populates the cache, the rest hit it. The
//! parallelism lives inside a job: cells fan out across the sweep
//! runner's deterministic worker pool, so served results are
//! bit-identical to a local `resim sweep` of the same scenario.
//!
//! The CLI wires this up as `resim serve` (the daemon) and
//! `resim submit` (the client); `docs/guide.md` has the wire-level
//! reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod jobs;
pub mod protocol;
mod server;

pub use cache::{CacheEntryError, CachedCell, Lookup, ResultCache, CACHE_MAGIC, CACHE_VERSION};
pub use client::{Client, ClientError};
pub use jobs::{JobOutcome, JobStatus, JobTable};
pub use protocol::{ErrorCode, Request, WireError, MAX_FRAME, SERVE_SCHEMA};
pub use server::{Server, SERVER_VERSION};
