//! Adversarial wire inputs against a *live* server: every single-byte
//! corruption and every truncation of a well-formed request must come
//! back as a typed error line (or a different-but-valid request's
//! response) — never a panic, never a hang, and never a wedged server.
//!
//! The same contract the trace-container battery pins for on-disk
//! bytes (`crates/trace/tests/container_corruption.rs`), applied to
//! the serve protocol; the on-disk cache-entry half of the story lives
//! in `resim_serve::cache`'s unit battery and in
//! `tests/restart_persistence.rs`.

use resim_obs::Counter;
use resim_serve::{Client, ResultCache, Server, MAX_FRAME};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

/// Binds a fresh in-memory server and returns it with its address and
/// the thread running its accept loop.
fn start_server() -> (Arc<Server>, String, thread::JoinHandle<()>) {
    let server =
        Arc::new(Server::bind("127.0.0.1:0", ResultCache::in_memory(), 1).expect("bind"));
    let addr = server.local_addr().to_string();
    let handle = {
        let server = server.clone();
        thread::spawn(move || server.run().expect("serve loop"))
    };
    (server, addr, handle)
}

fn stop_server(addr: &str, handle: thread::JoinHandle<()>) {
    Client::connect(addr)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown verb");
    handle.join().expect("server thread");
}

/// A response line is acceptable iff it is one JSON object carrying
/// `"ok"` — a typed error or a legitimate answer; anything else means
/// the framing or the dispatcher leaked something unstructured.
fn assert_response_shape(case: &str, line: &str) {
    let value = resim_toml::json::parse_json(line)
        .unwrap_or_else(|e| panic!("{case}: response is not JSON ({e}): {line:?}"));
    assert!(
        value.get("ok").is_some(),
        "{case}: response carries no \"ok\": {line:?}"
    );
}

#[test]
fn every_single_byte_flip_gets_a_structured_answer() {
    let (_server, addr, handle) = start_server();
    let good = b"{\"verb\":\"status\",\"job\":1}\n";
    // The trailing newline is the frame delimiter: flipping it away is
    // the unterminated-frame case, covered separately below with a
    // half-closed socket (over a kept-open socket the server is
    // *supposed* to keep waiting for the rest of the line).
    for pos in 0..good.len() - 1 {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut bad = good.to_vec();
            bad[pos] ^= mask;
            let case = format!("flip {mask:#04x} at {pos}");
            let mut client = Client::connect(&addr).expect("connect");
            match client.raw(&bad) {
                Ok(line) => assert_response_shape(&case, &line),
                // A flip that forges an early newline can split the
                // frame; the first response still must arrive, so the
                // only acceptable error is none at all.
                Err(e) => panic!("{case}: no response line: {e}"),
            }
        }
    }
    stop_server(&addr, handle);
}

#[test]
fn every_truncation_gets_a_structured_answer() {
    let (_server, addr, handle) = start_server();
    let good = b"{\"verb\":\"status\",\"job\":1}";
    // Newline-terminated truncations: a complete frame of garbage.
    for len in 0..good.len() {
        let mut bad = good[..len].to_vec();
        bad.push(b'\n');
        let case = format!("terminated cut at {len}");
        let mut client = Client::connect(&addr).expect("connect");
        let line = client.raw(&bad).expect("a response line");
        assert_response_shape(&case, &line);
        assert!(
            line.contains("\"ok\":false"),
            "{case}: a strict parser cannot accept a prefix: {line:?}"
        );
    }
    // Unterminated truncations: the connection half-closes mid-frame.
    // The server must answer the partial line (it is a complete —
    // malformed — frame once EOF arrives) and then close, not hang.
    for len in 1..good.len() {
        let case = format!("unterminated cut at {len}");
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(&good[..len]).expect("write");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read until close");
        let line = response.lines().next().unwrap_or_else(|| {
            panic!("{case}: connection closed without a response")
        });
        assert_response_shape(&case, line);
    }
    stop_server(&addr, handle);
}

#[test]
fn protocol_abuse_is_typed_and_never_wedges_the_server() {
    let (server, addr, handle) = start_server();
    let cases: &[(&str, &[u8], &str)] = &[
        ("unknown verb", b"{\"verb\":\"launch\"}\n", "unknown-verb"),
        ("non-object json", b"[1,2,3]\n", "bad-request"),
        ("bare scalar", b"42\n", "bad-request"),
        ("missing verb", b"{\"job\":1}\n", "bad-request"),
        ("submit without scenario", b"{\"verb\":\"submit\"}\n", "bad-request"),
        (
            "submit with non-string scenario",
            b"{\"verb\":\"submit\",\"scenario\":7}\n",
            "bad-request",
        ),
        ("status without job", b"{\"verb\":\"status\"}\n", "bad-request"),
        ("wait with string job", b"{\"verb\":\"wait\",\"job\":\"x\"}\n", "bad-request"),
        ("empty frame", b"\n", "bad-json"),
        ("binary garbage", b"\x00\xfe\x01RSCE\x9c\n", "bad-json"),
        (
            "invalid utf-8",
            b"{\"verb\":\"ping\"\xff\xfe}\n",
            "bad-json",
        ),
        (
            "submit with an invalid scenario",
            b"{\"verb\":\"submit\",\"scenario\":\"[engine]\\npreset = \\\"no-such\\\"\"}\n",
            "bad-scenario",
        ),
        ("status for a job never issued", b"{\"verb\":\"status\",\"job\":999}\n", "unknown-job"),
    ];
    for (case, bytes, code) in cases {
        let mut client = Client::connect(&addr).expect("connect");
        let line = client.raw(bytes).expect("a response line");
        assert_response_shape(case, &line);
        assert!(
            line.contains(&format!("\"code\":\"{code}\"")),
            "{case}: expected code {code:?}, got {line:?}"
        );
        // The *same connection* keeps working after a typed error.
        let line = client.raw(b"{\"verb\":\"ping\"}\n").expect("ping after error");
        assert!(
            line.contains("\"ok\":true"),
            "{case}: connection wedged after the error: {line:?}"
        );
    }

    // An oversized frame cannot be re-framed: one typed error, then the
    // connection closes — and the server itself stays healthy.
    let mut client = Client::connect(&addr).expect("connect");
    let mut huge = vec![b'a'; MAX_FRAME + 2];
    huge.push(b'\n');
    let line = client.raw(&huge).expect("oversized-frame response");
    assert!(
        line.contains("\"code\":\"oversized-frame\""),
        "oversized frame: {line:?}"
    );
    assert!(
        client.raw(b"{\"verb\":\"ping\"}\n").is_err(),
        "the unframeable connection must be closed"
    );

    let errors = server.counter(Counter::ServeErrors);
    assert!(
        errors > cases.len() as u64,
        "every abuse case plus the oversized frame must count as a serve error (saw {errors})"
    );
    let mut client = Client::connect(&addr).expect("fresh connect");
    client.ping().expect("server is still serving");
    // `run()` joins every handler, and a handler lives as long as its
    // connection: close ours before asking the server to drain.
    drop(client);
    stop_server(&addr, handle);
}
