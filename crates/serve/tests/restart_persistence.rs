//! The result cache across process lifetimes: a restarted server on
//! the same cache directory answers a resubmission with bit-identical
//! statistics and *zero* re-simulation — and a tampered entry fails
//! its checksum and is re-simulated honestly, never served corrupt.

use resim_obs::Counter;
use resim_serve::{Client, ResultCache, Server};
use resim_toml::json::JsonValue;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;

/// 2 configs x 1 seed = 2 cells.
const SCENARIO: &str = r#"
[engine]
preset = "paper-4wide"

[workload]
name = "gzip"
seed = 7
budget = 2000

[sweep]
workloads = ["gzip"]
budgets = [2000]
seeds = [7]
threads = 1

[sweep.grid]
rb_sizes = [16, 32]
"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("resim-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn field(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or_else(|| {
        panic!("terminal status lacks {key:?}: {}", v.render())
    })
}

fn csv_of(v: &JsonValue) -> String {
    v.get("csv")
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("terminal status lacks csv: {}", v.render()))
        .to_string()
}

/// One server lifetime on `dir`: submit the scenario, return the
/// terminal status and the server's counter snapshot, shut down
/// cleanly (so "returned" means "cache flushed to disk").
fn one_lifetime(dir: &Path) -> (JsonValue, [u64; 3]) {
    let cache = ResultCache::with_dir(dir).expect("cache dir");
    let server = Arc::new(Server::bind("127.0.0.1:0", cache, 1).expect("bind"));
    let addr = server.local_addr().to_string();
    let run = {
        let server = server.clone();
        thread::spawn(move || server.run().expect("serve loop"))
    };
    let status = Client::connect(&addr)
        .expect("connect")
        .submit_and_wait(SCENARIO, |_| {})
        .expect("submit and wait");
    let counters = [
        server.counter(Counter::ServeCellsSimulated),
        server.counter(Counter::ServeCellsDiskHits),
        server.counter(Counter::ServeCacheRejected),
    ];
    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    run.join().expect("server thread");
    (status, counters)
}

#[test]
fn restart_serves_from_disk_with_zero_resimulation() {
    let dir = temp_dir("clean");

    // Lifetime 1: a cold cache — every cell simulates, then spills.
    let (first, [simulated, disk, rejected]) = one_lifetime(&dir);
    let cells = field(&first, "cells");
    assert_eq!(simulated, cells, "cold cache: every cell simulates");
    assert_eq!((disk, rejected), (0, 0));
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rsce"))
        .collect();
    assert_eq!(entries.len() as u64, cells, "one RSCE file per cell");

    // Lifetime 2: a brand-new process-equivalent on the same dir —
    // identical stats, zero re-simulation, counter-asserted.
    let (second, [simulated, disk, rejected]) = one_lifetime(&dir);
    assert_eq!(csv_of(&second), csv_of(&first), "restart changed the stats");
    assert_eq!(simulated, 0, "restart must not re-simulate anything");
    assert_eq!(disk, cells, "every cell comes off disk");
    assert_eq!(rejected, 0);
    assert_eq!(field(&second, "simulated"), 0);
    assert_eq!(field(&second, "served_disk"), cells);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_and_truncated_entries_are_rejected_and_resimulated() {
    let dir = temp_dir("tamper");
    let (first, _) = one_lifetime(&dir);
    let cells = field(&first, "cells");
    assert!(cells >= 2, "the scenario must give two entries to damage");

    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rsce"))
        .collect();
    entries.sort();
    // Entry 0: one flipped byte in the middle (breaks the checksum).
    let bytes = std::fs::read(&entries[0]).expect("read entry");
    let mut bad = bytes.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x80;
    std::fs::write(&entries[0], &bad).expect("tamper");
    // Entry 1: truncated to half (fails before any field is believed).
    let bytes = std::fs::read(&entries[1]).expect("read entry");
    std::fs::write(&entries[1], &bytes[..bytes.len() / 2]).expect("truncate");

    // Lifetime 3: both damaged entries must be rejected, re-simulated
    // honestly, and the answer still bit-identical.
    let (third, [simulated, _disk, rejected]) = one_lifetime(&dir);
    assert_eq!(csv_of(&third), csv_of(&first), "corruption leaked into the stats");
    assert_eq!(rejected, 2, "both damaged entries are rejected");
    assert_eq!(simulated, 2, "both damaged cells re-simulate");
    assert_eq!(field(&third, "rejected"), 2);

    // The honest re-simulation also rewrote the entries: a fourth
    // lifetime is clean again.
    let (fourth, [simulated, disk, rejected]) = one_lifetime(&dir);
    assert_eq!(csv_of(&fourth), csv_of(&first));
    assert_eq!((simulated, rejected), (0, 0));
    assert_eq!(disk, cells);

    let _ = std::fs::remove_dir_all(&dir);
}
