//! The exactly-once guarantee under a client storm: N threads submit
//! the *same* grid concurrently, every client gets a bit-identical
//! deterministic CSV — equal to a local sweep of the same scenario —
//! and the server simulates each cell exactly once, no matter how the
//! submissions interleave.

use resim_obs::Counter;
use resim_serve::{Client, ResultCache, Server};
use resim_sweep::ScenarioDoc;
use resim_toml::json::JsonValue;
use std::sync::Arc;
use std::thread;

const CLIENTS: usize = 8;

/// 2 configs x 2 seeds = 4 cells, small enough for a fast storm.
const SCENARIO: &str = r#"
[engine]
preset = "paper-4wide"

[workload]
name = "gzip"
seed = 1
budget = 2000

[sweep]
workloads = ["gzip"]
budgets = [2000]
seeds = [1, 2]
threads = 1

[sweep.grid]
rb_sizes = [16, 32]
"#;

fn field(v: &JsonValue, key: &str) -> u64 {
    v.get(key).and_then(JsonValue::as_u64).unwrap_or_else(|| {
        panic!("terminal status lacks {key:?}: {}", v.render())
    })
}

#[test]
fn n_concurrent_identical_submissions_simulate_each_cell_exactly_once() {
    let server =
        Arc::new(Server::bind("127.0.0.1:0", ResultCache::in_memory(), 2).expect("bind"));
    let addr = server.local_addr().to_string();
    let run = {
        let server = server.clone();
        thread::spawn(move || server.run().expect("serve loop"))
    };

    // The ground truth: a local single-threaded sweep of the same
    // scenario, rendered through the deterministic CSV.
    let doc = ScenarioDoc::parse_str(SCENARIO).expect("scenario parses");
    let scenario = doc.to_scenario().expect("scenario resolves");
    let cells = scenario.len() as u64;
    let local_csv = resim_sweep::SweepRunner::new(1)
        .run(&scenario)
        .expect("local sweep")
        .to_csv_stable();

    let statuses: Vec<JsonValue> = thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    Client::connect(&addr)
                        .expect("connect")
                        .submit_and_wait(SCENARIO, |_| {})
                        .expect("submit and wait")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let mut total_simulated = 0;
    for (i, status) in statuses.iter().enumerate() {
        let csv = status
            .get("csv")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("client {i}: no csv in {}", status.render()));
        assert_eq!(
            csv, local_csv,
            "client {i}: served CSV differs from the local sweep"
        );
        assert_eq!(field(status, "cells"), cells, "client {i}");
        let simulated = field(status, "simulated");
        let served = field(status, "served_mem") + field(status, "served_disk");
        assert_eq!(
            simulated + served,
            cells,
            "client {i}: every cell is either simulated or served"
        );
        total_simulated += simulated;
    }

    // The heart of the test: across all N jobs the grid was simulated
    // exactly once — the job-level ledger and the server's counter
    // must both say so.
    assert_eq!(
        total_simulated, cells,
        "the storm must simulate each cell exactly once in total"
    );
    assert_eq!(
        server.counter(Counter::ServeCellsSimulated),
        cells,
        "counter: each cell simulated exactly once"
    );
    assert_eq!(
        server.counter(Counter::ServeCellsMemHits),
        (CLIENTS as u64 - 1) * cells,
        "counter: every other submission was served from memory"
    );
    assert_eq!(server.counter(Counter::ServeJobsCompleted), CLIENTS as u64);

    Client::connect(&addr).expect("connect").shutdown().expect("shutdown");
    run.join().expect("server thread");
}
