//! Adversarial container inputs: every single-byte corruption and every
//! truncation of a well-formed v1 or v2 trace container must come back
//! as a typed error (or a shorter-but-valid decode) — never a panic,
//! and never a silently *wrong* record stream passed off as clean.
//!
//! The tests are exhaustive rather than randomized: the container under
//! test is small enough (< 200 bytes) to try every byte position and
//! every prefix length deterministically.

use resim_trace::{
    FileSource, MemKind, MemRecord, MemSize, OpClass, OtherRecord, Reg, Trace, TraceFileHeader,
    TraceRecord, TraceSource,
};

fn sample_trace() -> Trace {
    let mut t = Trace::new();
    for i in 0..12u32 {
        t.push(TraceRecord::Other(OtherRecord {
            pc: 0x0040_0000 + i * 4,
            class: OpClass::ALL[(i % 4) as usize],
            dest: Some(Reg::new((i % 32) as u8)),
            src1: Some(Reg::new(1)),
            src2: None,
            wrong_path: false,
        }));
        t.push(TraceRecord::Mem(MemRecord {
            pc: 0x0040_0030 + i * 4,
            addr: 0x1000_0000 + i * 8,
            size: MemSize::Word,
            kind: MemKind::Load,
            base: Some(Reg::new(29)),
            data: Some(Reg::new(5)),
            wrong_path: false,
        }));
    }
    t
}

fn container(layout: u16) -> Vec<u8> {
    let trace = sample_trace();
    let encoded = match layout {
        1 => trace.encode(),
        2 => trace.encode_v2(),
        other => panic!("no layout {other}"),
    };
    let header = TraceFileHeader::for_trace(&encoded, "gzip", 2009, 0xFEED)
        .with_correct_records(trace.correct_path_len() as u64);
    let mut buf = Vec::new();
    header.write_trace(&mut buf, &encoded).unwrap();
    buf
}

/// Drains a source built from possibly hostile bytes. Returns the
/// records it produced; any panic fails the test by propagating.
fn drain(bytes: &[u8]) -> Option<(Vec<TraceRecord>, bool)> {
    let mut src = FileSource::from_reader(bytes).ok()?;
    let records: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
    Some((records, src.error().is_some()))
}

#[test]
fn every_single_byte_flip_is_handled() {
    for layout in [1u16, 2] {
        let good = container(layout);
        let clean = drain(&good).expect("pristine container parses");
        assert!(!clean.1, "pristine container must drain cleanly");
        for pos in 0..good.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut bad = good.clone();
                bad[pos] ^= mask;
                // Three legal outcomes: header rejection, a stream that
                // terminates with a recorded error, or a decode that
                // still terminates (a flipped body bit can produce a
                // different-but-well-formed stream — that is the
                // digest's job to catch, one level up in RSSN). The
                // illegal outcome, a panic, propagates out of drain().
                let _ = drain(&bad);
            }
        }
    }
}

#[test]
fn every_truncation_is_handled() {
    for layout in [1u16, 2] {
        let good = container(layout);
        let full = drain(&good).expect("pristine container parses").0;
        for len in 0..good.len() {
            match drain(&good[..len]) {
                // Header didn't survive the cut: fine.
                None => {}
                Some((records, errored)) => {
                    // Body cut: whatever decoded must be a true prefix,
                    // and losing records must not look like a clean end.
                    assert!(
                        records.len() <= full.len() && records == full[..records.len()],
                        "layout {layout}, cut at {len}: decoded records are not a prefix"
                    );
                    if records.len() < full.len() {
                        assert!(
                            errored,
                            "layout {layout}, cut at {len}: lost records without an error"
                        );
                    }
                }
            }
        }
    }
}

/// Growing the file (declared lengths larger than the actual body) must
/// also terminate with an error, not spin or panic.
#[test]
fn inflated_declared_lengths_are_handled() {
    for layout in [1u16, 2] {
        let mut buf = container(layout);
        // records count lives at offset 8, len_bits at offset 24.
        buf[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        buf[24..32].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        if let Some((_, errored)) = drain(&buf) {
            assert!(errored, "layout {layout}: inflated header must error");
        }
    }
}
