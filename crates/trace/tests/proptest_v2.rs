//! Property tests for the layout-v2 (delta/run-length) codec: lossless
//! round-trips for arbitrary record sequences, accounting that matches
//! the stream, agreement with the v1 codec on what the records *are*,
//! and graceful failure on truncation.

use proptest::prelude::*;
use resim_trace::{
    BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OpClass, OtherRecord, Reg, Trace,
    TraceRecord, TraceSource, TRACE_LAYOUT_VERSION, TRACE_LAYOUT_VERSION_V2,
};

// A deliberate copy of `proptest_roundtrip`'s strategy (integration
// tests compile separately; the duplication keeps each file
// self-contained, same as the golden vectors).
fn arb_reg() -> impl Strategy<Value = Option<Reg>> {
    prop_oneof![
        Just(None),
        (0u8..64).prop_map(|i| Some(Reg::new(i))),
    ]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    let other = (
        any::<u32>(),
        0u32..4,
        arb_reg(),
        arb_reg(),
        arb_reg(),
        any::<bool>(),
    )
        .prop_map(|(pc, class, dest, src1, src2, wrong_path)| {
            TraceRecord::Other(OtherRecord {
                pc,
                class: OpClass::ALL[class as usize],
                dest,
                src1,
                src2,
                wrong_path,
            })
        });
    let mem = (
        any::<u32>(),
        any::<u32>(),
        0u32..4,
        any::<bool>(),
        arb_reg(),
        arb_reg(),
        any::<bool>(),
    )
        .prop_map(|(pc, addr, size, store, base, data, wrong_path)| {
            TraceRecord::Mem(MemRecord {
                pc,
                addr,
                size: MemSize::ALL[size as usize],
                kind: if store { MemKind::Store } else { MemKind::Load },
                base,
                data,
                wrong_path,
            })
        });
    let branch = (
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        0u32..6,
        arb_reg(),
        arb_reg(),
        any::<bool>(),
    )
        .prop_map(|(pc, target, taken, kind, src1, src2, wrong_path)| {
            TraceRecord::Branch(BranchRecord {
                pc,
                target,
                taken: taken || BranchKind::ALL[kind as usize].is_unconditional(),
                kind: BranchKind::ALL[kind as usize],
                src1,
                src2,
                wrong_path,
            })
        });
    prop_oneof![other, mem, branch]
}

/// A "realistic" stream: mostly-sequential PCs with occasional jumps,
/// the regime the delta codec is built for (and where its grouping
/// logic has the most state to get wrong).
fn arb_sequential_trace() -> impl Strategy<Value = Vec<TraceRecord>> {
    (any::<u32>(), prop::collection::vec((arb_record(), 0u8..8), 0..150)).prop_map(
        |(start, steps)| {
            let mut pc = start;
            steps
                .into_iter()
                .map(|(mut r, gap)| {
                    // Mostly pc += 4; occasionally a bigger hop.
                    pc = pc.wrapping_add(4 + 4 * u32::from(gap / 6));
                    match &mut r {
                        TraceRecord::Other(o) => o.pc = pc,
                        TraceRecord::Mem(m) => m.pc = pc,
                        TraceRecord::Branch(b) => b.pc = pc,
                    }
                    r
                })
                .collect()
        },
    )
}

proptest! {
    /// decode(encode_v2(x)) == x for arbitrary record sequences.
    #[test]
    fn v2_roundtrip_lossless(records in prop::collection::vec(arb_record(), 0..200)) {
        let trace = Trace::from_records(records);
        let encoded = trace.encode_v2();
        prop_assert_eq!(encoded.layout_version(), TRACE_LAYOUT_VERSION_V2);
        let decoded = encoded.decode().expect("own encoding must decode");
        prop_assert_eq!(trace.records(), decoded.records());
    }

    /// Same, for the mostly-sequential streams the codec optimizes.
    #[test]
    fn v2_roundtrip_sequential(records in arb_sequential_trace()) {
        let trace = Trace::from_records(records);
        let decoded = trace.encode_v2().decode().expect("must decode");
        prop_assert_eq!(trace.records(), decoded.records());
    }

    /// v1 and v2 always decode to the same records, and the accounting
    /// of each matches its own stream.
    #[test]
    fn v1_and_v2_agree(records in arb_sequential_trace()) {
        let trace = Trace::from_records(records.clone());
        let v1 = trace.encode();
        let v2 = trace.encode_v2();
        prop_assert_eq!(v1.layout_version(), TRACE_LAYOUT_VERSION);
        prop_assert_eq!(
            v1.decode().expect("v1 decodes").records(),
            v2.decode().expect("v2 decodes").records()
        );
        for enc in [&v1, &v2] {
            prop_assert_eq!(enc.stats().total_bits(), enc.len_bits());
            prop_assert_eq!(enc.stats().total_records(), records.len() as u64);
        }
    }

    /// Truncating a v2 stream anywhere either yields a clean prefix of
    /// the records or a decode error — never a panic, never an invented
    /// record.
    #[test]
    fn v2_truncation_is_graceful(
        records in prop::collection::vec(arb_record(), 1..60),
        cut_fraction in 0.0f64..1.0,
    ) {
        let trace = Trace::from_records(records);
        let encoded = trace.encode_v2();
        let cut = ((encoded.len_bits() as f64) * cut_fraction) as u64;
        let bytes = encoded.bytes();
        let keep_bytes = (cut as usize).div_ceil(8).min(bytes.len());
        let clipped = resim_trace::EncodedTrace::from_bytes_v2_for_test(
            bytes[..keep_bytes].to_vec(),
            cut,
        );
        let mut src = clipped.source();
        let mut n = 0usize;
        while let Some(r) = src.next_record() {
            // Every record produced must be a true prefix element.
            prop_assert_eq!(&r, &trace.records()[n]);
            n += 1;
        }
        prop_assert!(n <= trace.len());
    }
}
