//! Golden-vector test for the trace codec.
//!
//! A small fixture of encoded B/M/O records is checked in as hex. The
//! codec must (a) encode the fixture records to exactly these bytes,
//! (b) decode the bytes back to exactly these records, and (c) spend
//! exactly the pinned number of bits on each record. Together these pin
//! the paper's Table 3 wire format — the 2-bit format field, the Tag
//! bit, PC delta-compression and the per-format field widths — against
//! accidental drift: any layout change breaks the hex, any width change
//! breaks the per-record bit counts.

use resim_trace::{
    BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OpClass, OtherRecord, Reg, Trace,
    TraceDecoder, TraceEncoder, TraceRecord,
};

/// The canonical fixture: one of everything interesting.
///
/// * sequential O records (second drops its PC: implicit encoding),
/// * M load and M store with explicit 32-bit addresses,
/// * a taken conditional branch (branches always carry their PC),
/// * a wrong-path block entry (Tag set, explicit PC at the discontinuity),
/// * a return through the RAS,
/// * a post-branch O record whose PC is implied by the taken target.
fn fixture_records() -> Vec<TraceRecord> {
    vec![
        TraceRecord::Other(OtherRecord {
            pc: 0x0040_0000,
            class: OpClass::IntAlu,
            dest: Some(Reg::new(3)),
            src1: Some(Reg::new(1)),
            src2: Some(Reg::new(2)),
            wrong_path: false,
        }),
        TraceRecord::Other(OtherRecord {
            pc: 0x0040_0004,
            class: OpClass::IntMult,
            dest: Some(Reg::new(4)),
            src1: Some(Reg::new(3)),
            src2: None,
            wrong_path: false,
        }),
        TraceRecord::Mem(MemRecord {
            pc: 0x0040_0008,
            addr: 0x1000_0040,
            size: MemSize::Word,
            kind: MemKind::Load,
            base: Some(Reg::new(29)),
            data: Some(Reg::new(5)),
            wrong_path: false,
        }),
        TraceRecord::Mem(MemRecord {
            pc: 0x0040_000C,
            addr: 0x1000_0044,
            size: MemSize::Byte,
            kind: MemKind::Store,
            base: Some(Reg::new(29)),
            data: Some(Reg::new(5)),
            wrong_path: false,
        }),
        TraceRecord::Branch(BranchRecord {
            pc: 0x0040_0010,
            target: 0x0040_0100,
            taken: true,
            kind: BranchKind::Cond,
            src1: Some(Reg::new(5)),
            src2: Some(Reg::new(6)),
            wrong_path: false,
        }),
        TraceRecord::Other(OtherRecord {
            pc: 0x0040_0014,
            class: OpClass::Nop,
            dest: None,
            src1: None,
            src2: None,
            wrong_path: true,
        }),
        TraceRecord::Mem(MemRecord {
            pc: 0x0040_0018,
            addr: 0x2000_0000,
            size: MemSize::Half,
            kind: MemKind::Load,
            base: None,
            data: Some(Reg::new(7)),
            wrong_path: true,
        }),
        TraceRecord::Branch(BranchRecord {
            pc: 0x0040_0100,
            target: 0x0040_0000,
            taken: true,
            kind: BranchKind::Return,
            src1: Some(Reg::new(31)),
            src2: None,
            wrong_path: false,
        }),
        TraceRecord::Other(OtherRecord {
            pc: 0x0040_0000,
            class: OpClass::IntDiv,
            dest: Some(Reg::new(8)),
            src1: Some(Reg::new(8)),
            src2: Some(Reg::new(9)),
            wrong_path: false,
        }),
    ]
}

/// Encoded form of [`fixture_records`], byte-aligned per record.
const GOLDEN_HEX: &str = "08000004c061500050e2004120000088dd021122000088dd020a0100048000\
0140008b064c010004300025000000100f0a100004b0000040003f60243201";

/// Exact payload length in bits (62 bytes, every record byte-aligned).
const GOLDEN_BITS: u64 = 496;

/// Pinned per-record encoded sizes in bits.
///
/// These pin the Table 3 field widths: the 4-bit common header
/// (fmt 2 + tag 1 + pc-flag 1), the 32-bit explicit PC, 2-bit op class,
/// 1 + 6-bit register names, 1 + 2 + 32-bit memory kind/size/address and
/// 3 + 1 + 32-bit branch kind/direction/target — each record padded to a
/// byte boundary.
const GOLDEN_RECORD_BITS: [u64; 9] = [64, 24, 56, 56, 88, 48, 48, 80, 32];

fn golden_bytes() -> Vec<u8> {
    (0..GOLDEN_HEX.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&GOLDEN_HEX[i..i + 2], 16).expect("valid hex"))
        .collect()
}

#[test]
fn encode_matches_golden_bytes() {
    let enc = Trace::from_records(fixture_records()).encode();
    assert_eq!(enc.len_bits(), GOLDEN_BITS);
    assert_eq!(enc.len(), 9);
    let hex: String = enc.bytes().iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(hex, GOLDEN_HEX, "wire format drifted from the golden vector");
}

#[test]
fn decode_golden_bytes_yields_fixture_records() {
    let bytes = golden_bytes();
    let mut dec = TraceDecoder::new(&bytes, GOLDEN_BITS);
    let mut out = Vec::new();
    while let Some(r) = dec.next_record().expect("golden stream is well-formed") {
        out.push(r);
    }
    assert_eq!(out, fixture_records());
}

#[test]
fn decode_then_encode_roundtrips_bit_exactly() {
    let bytes = golden_bytes();
    let mut dec = TraceDecoder::new(&bytes, GOLDEN_BITS);
    let mut enc = TraceEncoder::new();
    while let Some(r) = dec.next_record().expect("golden stream is well-formed") {
        enc.push(&r);
    }
    let enc = enc.finish();
    assert_eq!(enc.len_bits(), GOLDEN_BITS);
    assert_eq!(enc.bytes(), &bytes[..], "decode->encode must be bit-exact");
}

/// The layout-v2 codec must agree with the golden vector's *meaning*
/// while beating its v1 size: same nine records back out, strictly
/// fewer bits in. (The v2 byte stream itself is pinned by its own unit
/// tests; here we anchor it to the v1 golden fixture.)
#[test]
fn v2_encoding_of_the_golden_fixture_cross_checks() {
    let trace = Trace::from_records(fixture_records());
    let v2 = trace.encode_v2();
    assert_eq!(
        v2.decode().expect("v2 decodes its own stream").records(),
        fixture_records()
    );
    assert!(
        v2.len_bits() < GOLDEN_BITS,
        "v2 ({} bits) should beat the byte-aligned v1 golden vector ({GOLDEN_BITS} bits)",
        v2.len_bits()
    );
}

#[test]
fn per_record_bit_costs_are_pinned() {
    let mut enc = TraceEncoder::new();
    let mut prev = 0;
    for (i, r) in fixture_records().iter().enumerate() {
        enc.push(r);
        let now = enc.stats().total_bits();
        assert_eq!(
            now - prev,
            GOLDEN_RECORD_BITS[i],
            "record {i} ({r}) changed encoded size"
        );
        prev = now;
    }
    // Sanity on the layout arithmetic the docs promise: a sequential O
    // record with no registers costs header(4) + class(2) + 3 flag bits
    // = 9 bits, padded to 16; the implicit-PC mult above costs 24 (two
    // register fields present).
    assert_eq!(GOLDEN_RECORD_BITS.iter().sum::<u64>(), GOLDEN_BITS);
}
