//! Differential tests for the batched [`TraceSource::fill`] frontend.
//!
//! Every specialized block decoder — [`SliceSource`]'s sub-slice copy,
//! [`EncodedSource`]'s in-memory bit-stream loop and [`FileSource`]'s
//! streaming-reader loop — must agree record-for-record with the
//! trait's default one-at-a-time implementation, at every batch size and
//! from every stream offset. The fixture is the golden-codec vector
//! (one record of every interesting shape: implicit and explicit PCs,
//! wrong-path tag, all three formats), so a disagreement pins down a
//! decode divergence, not a workload accident.

use resim_trace::{
    BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OpClass, OtherRecord, Reg, Trace,
    TraceFileHeader, TraceRecord, TraceSource,
};

/// The golden-codec fixture shapes: sequential O records (implicit PC),
/// M load/store, a taken branch, a wrong-path entry, and a post-branch
/// record whose PC is implied by the taken target.
fn fixture_records() -> Vec<TraceRecord> {
    vec![
        TraceRecord::Other(OtherRecord {
            pc: 0x0040_0000,
            class: OpClass::IntAlu,
            dest: Some(Reg::new(3)),
            src1: Some(Reg::new(1)),
            src2: Some(Reg::new(2)),
            wrong_path: false,
        }),
        TraceRecord::Other(OtherRecord {
            pc: 0x0040_0004,
            class: OpClass::IntMult,
            dest: Some(Reg::new(4)),
            src1: Some(Reg::new(3)),
            src2: None,
            wrong_path: false,
        }),
        TraceRecord::Mem(MemRecord {
            pc: 0x0040_0008,
            addr: 0x1000_0040,
            size: MemSize::Word,
            kind: MemKind::Load,
            base: Some(Reg::new(29)),
            data: Some(Reg::new(5)),
            wrong_path: false,
        }),
        TraceRecord::Mem(MemRecord {
            pc: 0x0040_000C,
            addr: 0x1000_0044,
            size: MemSize::Byte,
            kind: MemKind::Store,
            base: Some(Reg::new(29)),
            data: Some(Reg::new(5)),
            wrong_path: false,
        }),
        TraceRecord::Branch(BranchRecord {
            pc: 0x0040_0010,
            target: 0x0040_0100,
            taken: true,
            kind: BranchKind::Cond,
            src1: Some(Reg::new(5)),
            src2: Some(Reg::new(6)),
            wrong_path: false,
        }),
        TraceRecord::Other(OtherRecord {
            pc: 0x0040_0014,
            class: OpClass::Nop,
            dest: None,
            src1: None,
            src2: None,
            wrong_path: true,
        }),
        TraceRecord::Other(OtherRecord {
            pc: 0x0040_0100,
            class: OpClass::IntDiv,
            dest: Some(Reg::new(8)),
            src1: Some(Reg::new(8)),
            src2: Some(Reg::new(9)),
            wrong_path: false,
        }),
    ]
}

/// Forces the default `fill` implementation by hiding every override
/// behind a `next_record`-only shim.
struct DefaultFillOnly<S>(S);

impl<S: TraceSource> TraceSource for DefaultFillOnly<S> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        self.0.next_record()
    }
}

fn pad() -> TraceRecord {
    TraceRecord::Other(OtherRecord {
        pc: 0,
        class: OpClass::Nop,
        dest: None,
        src1: None,
        src2: None,
        wrong_path: false,
    })
}

/// Drains `src` through `fill` calls of `batch` records and returns
/// everything produced.
fn drain_via_fill(mut src: impl TraceSource, batch: usize) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    let mut buf = vec![pad(); batch];
    loop {
        let n = src.fill(&mut buf);
        out.extend_from_slice(&buf[..n]);
        if n < batch {
            return out;
        }
    }
}

fn file_container(trace: &Trace) -> Vec<u8> {
    let encoded = trace.encode();
    let header = TraceFileHeader::for_trace(&encoded, "fixture", 1, 0)
        .with_correct_records(trace.correct_path_len() as u64);
    let mut buf = Vec::new();
    header.write_trace(&mut buf, &encoded).unwrap();
    buf
}

#[test]
fn specialized_fill_agrees_with_default_fill_on_the_golden_vector() {
    let trace = Trace::from_records(fixture_records());
    let encoded = trace.encode();
    let container = file_container(&trace);

    for batch in [1usize, 2, 3, 5, 7, 64] {
        let via_slice = drain_via_fill(trace.source(), batch);
        let via_slice_default = drain_via_fill(DefaultFillOnly(trace.source()), batch);
        let via_encoded = drain_via_fill(encoded.source(), batch);
        let via_encoded_default = drain_via_fill(DefaultFillOnly(encoded.source()), batch);
        let via_file = drain_via_fill(
            resim_trace::FileSource::from_reader(&container[..]).unwrap(),
            batch,
        );
        let via_file_default = drain_via_fill(
            DefaultFillOnly(resim_trace::FileSource::from_reader(&container[..]).unwrap()),
            batch,
        );

        assert_eq!(via_slice, trace.records(), "slice fill, batch {batch}");
        assert_eq!(via_slice_default, trace.records());
        assert_eq!(via_encoded, trace.records(), "encoded fill, batch {batch}");
        assert_eq!(via_encoded_default, trace.records());
        assert_eq!(via_file, trace.records(), "file fill, batch {batch}");
        assert_eq!(via_file_default, trace.records());
    }
}

#[test]
fn fill_interleaves_with_next_record_without_losing_position() {
    // Alternate single pulls and block pulls: the PC chain (implicit
    // encodings) must survive arbitrary interleavings.
    let trace = Trace::from_records(fixture_records());
    let encoded = trace.encode();
    let mut src = encoded.source();
    let mut got = Vec::new();
    let mut buf = vec![pad(); 2];
    while let Some(r) = src.next_record() {
        got.push(r);
        let n = src.fill(&mut buf);
        got.extend_from_slice(&buf[..n]);
        if n < buf.len() {
            break;
        }
    }
    assert_eq!(got, trace.records());
}

#[test]
fn short_fill_means_end_of_trace() {
    let trace = Trace::from_records(fixture_records());
    let mut src = trace.source();
    let mut buf = vec![pad(); 100];
    assert_eq!(src.fill(&mut buf), trace.len());
    assert_eq!(src.fill(&mut buf), 0, "fused after end");
    assert!(src.next_record().is_none());
}

#[test]
fn window_fill_clamps_to_its_budget() {
    let trace = Trace::from_records(fixture_records());
    let mut src = trace.source();
    let mut w = src.window(3);
    let mut buf = vec![pad(); 100];
    assert_eq!(w.fill(&mut buf), 3, "window caps the block");
    assert_eq!(w.fill(&mut buf), 0);
    assert_eq!(
        src.next_record().unwrap(),
        fixture_records()[3],
        "records past the window stay in the source"
    );
}

#[test]
fn boxed_and_borrowed_sources_forward_fill() {
    let trace = Trace::from_records(fixture_records());
    let encoded = trace.encode();

    let mut boxed: Box<dyn TraceSource + '_> = Box::new(encoded.source());
    let mut buf = vec![pad(); 4];
    assert_eq!(boxed.fill(&mut buf), 4);
    assert_eq!(buf, trace.records()[..4]);

    // Monomorphize over `&mut S` so the forwarding impl (not the
    // concrete source) is the one filling.
    fn fill_via<S: TraceSource>(mut src: S, buf: &mut [TraceRecord]) -> usize {
        src.fill(buf)
    }
    let mut inner = encoded.source();
    assert_eq!(fill_via(&mut inner, &mut buf), 4);
    assert_eq!(buf, trace.records()[..4]);
}
