//! Golden vectors pinning the on-disk trace-container layout.
//!
//! The header bytes below are the contract `docs/guide.md` documents and
//! other tools may rely on; if this test fails, either bump
//! `TRACE_CONTAINER_VERSION` / `TRACE_LAYOUT_VERSION` and re-pin, or
//! revert the accidental layout change.

use resim_trace::{
    FileSource, OpClass, OtherRecord, Trace, TraceFileHeader, TraceRecord, TraceSource,
    TRACE_CONTAINER_VERSION, TRACE_LAYOUT_VERSION,
};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn tiny_trace() -> Trace {
    let mut t = Trace::new();
    // Two sequential ALU ops: the first PC is explicit, the second rides
    // the delta-compression chain — 8 + 4 bytes of body.
    t.push(TraceRecord::Other(OtherRecord {
        pc: 0x0040_1000,
        class: OpClass::IntAlu,
        dest: None,
        src1: None,
        src2: None,
        wrong_path: false,
    }));
    t.push(TraceRecord::Other(OtherRecord {
        pc: 0x0040_1004,
        class: OpClass::IntAlu,
        dest: None,
        src1: None,
        src2: None,
        wrong_path: false,
    }));
    t
}

/// The header golden vector, field by field:
///
/// ```text
/// 52535452          magic "RSTR"
/// 0100              container version 1 (LE u16)
/// 0100              record bit-layout version 1
/// 0200000000000000  record count 2
/// 0200000000000000  correct-path count 2
/// 4000000000000000  payload bits 64 (6 + 2 bytes)
/// d907000000000000  workload seed 2009
/// ed5eedfe00000000  tracegen fingerprint 0xFEED5EED
/// 0400              workload id length 4
/// 677a6970          "gzip"
/// ```
#[test]
fn golden_header_hex() {
    let trace = tiny_trace();
    let encoded = trace.encode();
    assert_eq!(encoded.len_bits(), 64, "body layout drifted; fix before re-pinning");
    let header = TraceFileHeader::for_trace(&encoded, "gzip", 2009, 0xFEED_5EED)
        .with_correct_records(2);
    let mut buf = Vec::new();
    header.write_to(&mut buf).unwrap();
    assert_eq!(
        hex(&buf),
        concat!(
            "52535452",
            "0100",
            "0100",
            "0200000000000000",
            "0200000000000000",
            "4000000000000000",
            "d907000000000000",
            "ed5eedfe00000000",
            "0400",
            "677a6970",
        )
    );
    assert_eq!(buf.len(), header.encoded_len());
}

/// The version constants are part of the pinned surface: bumping one
/// without re-pinning the golden header must fail loudly here, not
/// silently shift the layout.
#[test]
fn pinned_versions() {
    assert_eq!(TRACE_CONTAINER_VERSION, 1);
    assert_eq!(TRACE_LAYOUT_VERSION, 1);
}

/// A full container (header + codec body) decoded by a reader built only
/// from the golden bytes: guards the framing end to end.
#[test]
fn golden_container_roundtrip() {
    let trace = tiny_trace();
    let encoded = trace.encode();
    let header = TraceFileHeader::for_trace(&encoded, "gzip", 2009, 0xFEED_5EED)
        .with_correct_records(2);
    let mut buf = Vec::new();
    header.write_trace(&mut buf, &encoded).unwrap();
    // Explicit-PC record: 4 + 32 + 2 + 3 = 41 bits → 48 padded (6 bytes);
    // implicit-PC record: 9 bits → 16 (2 bytes).
    assert_eq!(buf.len(), header.encoded_len() + 8);

    let mut src = FileSource::from_reader(&buf[..]).unwrap();
    assert_eq!(src.header(), &header);
    let round: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
    assert_eq!(round, trace.records());
    assert!(src.error().is_none());
}
