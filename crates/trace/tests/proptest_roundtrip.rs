//! Property tests: the bit-exact codec round-trips arbitrary record
//! sequences losslessly, and its accounting matches the bit stream.

use proptest::prelude::*;
use resim_trace::{
    BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OpClass, OtherRecord, Reg, Trace,
    TraceRecord,
};

fn arb_reg() -> impl Strategy<Value = Option<Reg>> {
    prop_oneof![
        Just(None),
        (0u8..64).prop_map(|i| Some(Reg::new(i))),
    ]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    let other = (
        any::<u32>(),
        0u32..4,
        arb_reg(),
        arb_reg(),
        arb_reg(),
        any::<bool>(),
    )
        .prop_map(|(pc, class, dest, src1, src2, wrong_path)| {
            TraceRecord::Other(OtherRecord {
                pc,
                class: OpClass::ALL[class as usize],
                dest,
                src1,
                src2,
                wrong_path,
            })
        });
    let mem = (
        any::<u32>(),
        any::<u32>(),
        0u32..4,
        any::<bool>(),
        arb_reg(),
        arb_reg(),
        any::<bool>(),
    )
        .prop_map(|(pc, addr, size, store, base, data, wrong_path)| {
            TraceRecord::Mem(MemRecord {
                pc,
                addr,
                size: MemSize::ALL[size as usize],
                kind: if store { MemKind::Store } else { MemKind::Load },
                base,
                data,
                wrong_path,
            })
        });
    let branch = (
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        0u32..6,
        arb_reg(),
        arb_reg(),
        any::<bool>(),
    )
        .prop_map(|(pc, target, taken, kind, src1, src2, wrong_path)| {
            TraceRecord::Branch(BranchRecord {
                pc,
                target,
                taken: taken || BranchKind::ALL[kind as usize].is_unconditional(),
                kind: BranchKind::ALL[kind as usize],
                src1,
                src2,
                wrong_path,
            })
        });
    prop_oneof![other, mem, branch]
}

proptest! {
    /// encode(decode(x)) == x for arbitrary record sequences.
    #[test]
    fn roundtrip_lossless(records in prop::collection::vec(arb_record(), 0..200)) {
        let trace = Trace::from_records(records);
        let encoded = trace.encode();
        let decoded = encoded.decode().expect("own encoding must decode");
        prop_assert_eq!(trace.records(), decoded.records());
    }

    /// The stats' bit total always equals the stream length, records are
    /// byte-aligned, and per-format counts sum to the total.
    #[test]
    fn accounting_consistent(records in prop::collection::vec(arb_record(), 0..200)) {
        let trace = Trace::from_records(records.clone());
        let encoded = trace.encode();
        let stats = encoded.stats();
        prop_assert_eq!(stats.total_bits(), encoded.len_bits());
        prop_assert_eq!(stats.total_records(), records.len() as u64);
        prop_assert_eq!(encoded.len_bits() % 8, 0);
        prop_assert_eq!(
            stats.branch_records() + stats.mem_records() + stats.other_records(),
            stats.total_records()
        );
        let wrong = records.iter().filter(|r| r.wrong_path()).count() as u64;
        prop_assert_eq!(stats.wrong_path_records(), wrong);
    }

    /// Concatenating encoders equals one encoder (streaming = batch).
    #[test]
    fn incremental_equals_batch(
        a in prop::collection::vec(arb_record(), 0..60),
        b in prop::collection::vec(arb_record(), 0..60),
    ) {
        let mut both = a.clone();
        both.extend(b.iter().copied());
        let batch = Trace::from_records(both).encode();

        let mut enc = resim_trace::TraceEncoder::new();
        for r in a.iter().chain(b.iter()) {
            enc.push(r);
        }
        let streamed = enc.finish();
        prop_assert_eq!(batch.bytes(), streamed.bytes());
        prop_assert_eq!(batch.len_bits(), streamed.len_bits());
    }
}
