//! The on-disk trace container: a versioned header in front of the
//! Table-3 codec stream.
//!
//! The paper's host tool prepares traces "off-line, for example for bulk
//! simulations with varying design parameters" (§V.A) and streams them
//! to the engine over a link. This module is the file-system analogue of
//! that link: a trace is generated and encoded **once**, written to disk
//! with enough metadata to identify it, and replayed any number of times
//! through a streaming [`FileSource`] — by `resim run`, `resim sample`
//! and `resim sweep` alike.
//!
//! ## Layout
//!
//! All multi-byte fields are **little-endian**. The body is exactly the
//! bit stream a [`TraceEncoder`](crate::TraceEncoder) (layout 1) or
//! [`Trace::encode_v2`](crate::Trace::encode_v2) (layout 2) produces, so
//! the container adds a fixed 50-byte header plus the workload id and
//! nothing else:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "RSTR"
//!      4     2  container version (1)
//!      6     2  record bit-layout version (TRACE_LAYOUT_VERSION)
//!      8     8  record count (wrong-path records included)
//!     16     8  correct-path record count
//!     24     8  payload length in bits
//!     32     8  workload seed
//!     40     8  trace-generator fingerprint (opaque to this crate)
//!     48     2  workload id length L
//!     50     L  workload id (UTF-8)
//!   50+L     …  body: the encoded record stream
//! ```
//!
//! ## Version rules
//!
//! * A reader rejects a file whose **container version** is newer than
//!   its own ([`TRACE_CONTAINER_VERSION`]): the header layout itself may
//!   have changed.
//! * A reader accepts a file whose **bit-layout version** is one of the
//!   layouts its codec decodes ([`SUPPORTED_LAYOUT_VERSIONS`]) — the
//!   original Table-3 layout 1 and the delta-compressed layout 2 — and
//!   dispatches the body decoder on it. Anything else is rejected: same
//!   container, incompatible record stream.
//!
//! ## Example
//!
//! ```
//! use resim_trace::{FileSource, Trace, TraceFileHeader, TraceRecord,
//!                   TraceSource, OtherRecord, OpClass};
//!
//! let trace: Trace = (0..100u32)
//!     .map(|i| TraceRecord::Other(OtherRecord {
//!         pc: 0x1000 + i * 4,
//!         class: OpClass::IntAlu,
//!         dest: None, src1: None, src2: None,
//!         wrong_path: false,
//!     }))
//!     .collect();
//!
//! // Write the container to any io::Write sink…
//! let encoded = trace.encode();
//! let header = TraceFileHeader::for_trace(&encoded, "demo", 7, 0)
//!     .with_correct_records(trace.correct_path_len() as u64);
//! let mut file: Vec<u8> = Vec::new();
//! header.write_trace(&mut file, &encoded).unwrap();
//!
//! // …and stream it back record by record.
//! let mut source = FileSource::from_reader(&file[..]).unwrap();
//! assert_eq!(source.header().workload, "demo");
//! assert_eq!(source.len_hint(), Some(100));
//! let round: Trace = std::iter::from_fn(|| source.next_record()).collect();
//! assert_eq!(round, trace);
//! ```

use crate::bits::BitRead;
use crate::codec::{
    decode_record_bits, skip_record_bits, DecodeError, EncodedTrace, TRACE_LAYOUT_VERSION,
};
use crate::codec_v2::{decode_record_bits_v2, V2State, TRACE_LAYOUT_VERSION_V2};
use crate::record::TraceRecord;
use crate::source::TraceSource;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// The four magic bytes opening every trace container.
pub const TRACE_FILE_MAGIC: [u8; 4] = *b"RSTR";

/// Version of the container layout (header framing) itself.
pub const TRACE_CONTAINER_VERSION: u16 = 1;

/// Record bit-layout versions this reader decodes.
pub const SUPPORTED_LAYOUT_VERSIONS: [u16; 2] = [TRACE_LAYOUT_VERSION, TRACE_LAYOUT_VERSION_V2];

/// The decoded header of an on-disk trace container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFileHeader {
    /// Container layout version the file was written with.
    pub container_version: u16,
    /// Record bit-layout version of the body stream.
    pub layout_version: u16,
    /// Total records in the body (wrong-path included).
    pub records: u64,
    /// Correct-path records in the body.
    pub correct_records: u64,
    /// Exact payload length of the body in bits.
    pub len_bits: u64,
    /// Seed the workload stream was instantiated with.
    pub seed: u64,
    /// Deterministic fingerprint of the generator configuration that
    /// produced the trace (`resim_tracegen::TraceGenConfig::fingerprint`);
    /// opaque to this crate, `0` when unknown.
    pub tracegen_fingerprint: u64,
    /// Workload identity (e.g. `"gzip"`).
    pub workload: String,
}

impl TraceFileHeader {
    /// Builds a header describing `encoded`, with the correct-path count
    /// defaulting to the total record count (adjust with
    /// [`TraceFileHeader::with_correct_records`] for tagged traces). The
    /// bit-layout version is taken from `encoded`, so v1 and v2 bodies
    /// alike are framed correctly.
    pub fn for_trace(
        encoded: &EncodedTrace,
        workload: impl Into<String>,
        seed: u64,
        tracegen_fingerprint: u64,
    ) -> Self {
        Self {
            container_version: TRACE_CONTAINER_VERSION,
            layout_version: encoded.layout_version(),
            records: encoded.len(),
            correct_records: encoded.len(),
            len_bits: encoded.len_bits(),
            seed,
            tracegen_fingerprint,
            workload: workload.into(),
        }
    }

    /// Sets the correct-path record count.
    pub fn with_correct_records(mut self, correct: u64) -> Self {
        self.correct_records = correct;
        self
    }

    /// Serializes the header alone (magic through workload id).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`; a workload id longer than the
    /// 16-bit length field is reported as
    /// [`io::ErrorKind::InvalidInput`].
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        let id = self.workload.as_bytes();
        let id_len = u16::try_from(id.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("workload id of {} bytes exceeds the 65535-byte field", id.len()),
            )
        })?;
        w.write_all(&TRACE_FILE_MAGIC)?;
        w.write_all(&self.container_version.to_le_bytes())?;
        w.write_all(&self.layout_version.to_le_bytes())?;
        w.write_all(&self.records.to_le_bytes())?;
        w.write_all(&self.correct_records.to_le_bytes())?;
        w.write_all(&self.len_bits.to_le_bytes())?;
        w.write_all(&self.seed.to_le_bytes())?;
        w.write_all(&self.tracegen_fingerprint.to_le_bytes())?;
        w.write_all(&id_len.to_le_bytes())?;
        w.write_all(id)?;
        Ok(())
    }

    /// Writes the full container: this header followed by `encoded`'s
    /// body bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_trace<W: Write>(&self, mut w: W, encoded: &EncodedTrace) -> io::Result<()> {
        self.write_to(&mut w)?;
        w.write_all(encoded.bytes())?;
        w.flush()
    }

    /// Parses a header from the front of `r`, applying the version rules.
    ///
    /// # Errors
    ///
    /// [`FileError::Io`] on short reads, [`FileError::BadMagic`] /
    /// [`FileError::UnsupportedContainer`] /
    /// [`FileError::UnsupportedLayout`] on an alien or incompatible file,
    /// [`FileError::BadWorkloadId`] on a non-UTF-8 workload id.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, FileError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != TRACE_FILE_MAGIC {
            return Err(FileError::BadMagic(magic));
        }
        let container_version = read_u16(&mut r)?;
        if container_version > TRACE_CONTAINER_VERSION {
            return Err(FileError::UnsupportedContainer {
                found: container_version,
                newest_supported: TRACE_CONTAINER_VERSION,
            });
        }
        let layout_version = read_u16(&mut r)?;
        if !SUPPORTED_LAYOUT_VERSIONS.contains(&layout_version) {
            return Err(FileError::UnsupportedLayout {
                found: layout_version,
                newest_supported: TRACE_LAYOUT_VERSION_V2,
            });
        }
        let records = read_u64(&mut r)?;
        let correct_records = read_u64(&mut r)?;
        let len_bits = read_u64(&mut r)?;
        let seed = read_u64(&mut r)?;
        let tracegen_fingerprint = read_u64(&mut r)?;
        let id_len = read_u16(&mut r)? as usize;
        let mut id = vec![0u8; id_len];
        r.read_exact(&mut id)?;
        let workload = String::from_utf8(id).map_err(|_| FileError::BadWorkloadId)?;
        Ok(Self {
            container_version,
            layout_version,
            records,
            correct_records,
            len_bits,
            seed,
            tracegen_fingerprint,
            workload,
        })
    }

    /// Serialized header size in bytes (50 + workload id length).
    pub fn encoded_len(&self) -> usize {
        50 + self.workload.len()
    }
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16, FileError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, FileError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Convenience: writes `encoded` under `header` to a new file at `path`.
///
/// # Errors
///
/// File-creation and write failures come back as a [`TraceFileError`]
/// naming the offending path.
pub fn save_trace_file(
    path: impl AsRef<Path>,
    header: &TraceFileHeader,
    encoded: &EncodedTrace,
) -> Result<(), TraceFileError> {
    let path = path.as_ref();
    let at = |e: io::Error| TraceFileError::new(path, FileError::Io(e.kind()));
    let file = fs::File::create(path).map_err(at)?;
    header
        .write_trace(io::BufWriter::new(file), encoded)
        .map_err(at)
}

/// A streaming [`TraceSource`] over an on-disk trace container.
///
/// The header is parsed (and version-checked) eagerly at construction;
/// body records are decoded one `next_record` at a time straight off the
/// reader, so replaying a multi-gigabyte trace never buffers more than
/// one byte of it. [`TraceSource::skip`] uses the codec's
/// decode-and-discard fast path, exactly like
/// [`EncodedSource`](crate::EncodedSource).
///
/// I/O and decode problems after construction terminate the stream
/// (fused `None`); inspect [`FileSource::error`] to distinguish a clean
/// end of trace from a broken one.
#[derive(Debug)]
pub struct FileSource<R: Read> {
    header: TraceFileHeader,
    bits: StreamBits<R>,
    body: BodyDecoder,
    remaining: u64,
    error: Option<FileError>,
    decoded: u64,
    fills: u64,
}

/// Per-layout decoder state threaded through a [`FileSource`]'s body.
#[derive(Debug)]
enum BodyDecoder {
    V1 { expected_pc: Option<u32> },
    V2(V2State),
}

impl FileSource<io::BufReader<fs::File>> {
    /// Opens the trace container at `path`.
    ///
    /// # Errors
    ///
    /// A [`TraceFileError`] naming `path`: [`FileError::Io`] if the file
    /// cannot be opened, plus everything
    /// [`TraceFileHeader::read_from`] rejects.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceFileError> {
        let path = path.as_ref();
        let file =
            fs::File::open(path).map_err(|e| TraceFileError::new(path, FileError::Io(e.kind())))?;
        Self::from_reader(io::BufReader::new(file)).map_err(|e| TraceFileError::new(path, e))
    }
}

impl<R: Read> FileSource<R> {
    /// Wraps any reader positioned at the start of a trace container.
    ///
    /// For raw [`fs::File`]s prefer [`FileSource::open`], which adds
    /// buffering; the decoder pulls single bytes.
    ///
    /// # Errors
    ///
    /// Everything [`TraceFileHeader::read_from`] rejects.
    pub fn from_reader(mut reader: R) -> Result<Self, FileError> {
        let header = TraceFileHeader::read_from(&mut reader)?;
        let bits = StreamBits::new(reader, header.len_bits);
        let body = if header.layout_version == TRACE_LAYOUT_VERSION_V2 {
            BodyDecoder::V2(V2State::default())
        } else {
            BodyDecoder::V1 { expected_pc: None }
        };
        Ok(Self {
            remaining: header.records,
            header,
            bits,
            body,
            error: None,
            decoded: 0,
            fills: 0,
        })
    }

    /// The container header (validated at construction).
    pub fn header(&self) -> &TraceFileHeader {
        &self.header
    }

    /// The first I/O or decode error hit, if the stream ended abnormally.
    pub fn error(&self) -> Option<&FileError> {
        self.error.as_ref()
    }

    /// Records materialised so far, across [`TraceSource::next_record`]
    /// and [`TraceSource::fill`] alike (skipped records are not decoded
    /// in layout 1 and are not counted for either layout).
    pub fn records_decoded(&self) -> u64 {
        self.decoded
    }

    /// Number of [`TraceSource::fill`] batch-decode calls served.
    pub fn batch_fills(&self) -> u64 {
        self.fills
    }

    /// Folds the bit reader's pending I/O error (if any) with a decode
    /// result into this source's terminal error state.
    fn fail(&mut self, decode: DecodeError) {
        self.error = Some(match self.bits.take_io_error() {
            Some(io) => FileError::Io(io.kind()),
            None => FileError::Decode(decode),
        });
    }

    /// Decodes the next record through the layout this file declared.
    fn decode_next(&mut self) -> Result<Option<TraceRecord>, DecodeError> {
        match &mut self.body {
            BodyDecoder::V1 { expected_pc } => decode_record_bits(&mut self.bits, expected_pc),
            BodyDecoder::V2(state) => decode_record_bits_v2(&mut self.bits, state),
        }
    }

    /// Advances past one record. The v1 layout can skip without
    /// materialising; v2 chains per-record state, so it decodes and
    /// discards.
    fn skip_next(&mut self) -> Result<bool, DecodeError> {
        match &mut self.body {
            BodyDecoder::V1 { expected_pc } => skip_record_bits(&mut self.bits, expected_pc),
            BodyDecoder::V2(state) => {
                decode_record_bits_v2(&mut self.bits, state).map(|r| r.is_some())
            }
        }
    }
}

impl<R: Read> TraceSource for FileSource<R> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.error.is_some() || self.remaining == 0 {
            return None;
        }
        match self.decode_next() {
            Ok(Some(r)) => {
                self.remaining -= 1;
                self.decoded += 1;
                Some(r)
            }
            Ok(None) => {
                // Body bits ran out before the declared record count.
                self.error = Some(FileError::Decode(DecodeError::Truncated));
                None
            }
            Err(e) => {
                self.fail(e);
                None
            }
        }
    }

    fn fill(&mut self, buf: &mut [TraceRecord]) -> usize {
        // Block decode straight off the reader: one `fill` call amortises
        // the per-record dispatch and keeps the bit cursor and expected-PC
        // chain in registers across the whole batch.
        self.fills += 1;
        let mut n = 0;
        while n < buf.len() && self.error.is_none() && self.remaining > 0 {
            match self.decode_next() {
                Ok(Some(r)) => {
                    buf[n] = r;
                    n += 1;
                    self.remaining -= 1;
                    self.decoded += 1;
                }
                Ok(None) => {
                    self.error = Some(FileError::Decode(DecodeError::Truncated));
                    break;
                }
                Err(e) => {
                    self.fail(e);
                    break;
                }
            }
        }
        n
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }

    fn skip(&mut self, n: u64) -> u64 {
        let mut skipped = 0;
        while skipped < n && self.error.is_none() && self.remaining > 0 {
            match self.skip_next() {
                Ok(true) => {
                    skipped += 1;
                    self.remaining -= 1;
                }
                Ok(false) => {
                    self.error = Some(FileError::Decode(DecodeError::Truncated));
                    break;
                }
                Err(e) => {
                    self.fail(e);
                    break;
                }
            }
        }
        skipped
    }
}

/// A [`BitRead`] pulling bytes on demand from an [`io::Read`].
///
/// The total payload bit length comes from the container header; an I/O
/// error is parked in `io_error` (bit reads then report exhaustion) and
/// surfaced by [`FileSource`] as [`FileError::Io`].
#[derive(Debug)]
struct StreamBits<R: Read> {
    reader: R,
    total_bits: u64,
    pos: u64,
    /// The byte currently being consumed bit by bit.
    cur: u8,
    io_error: Option<io::Error>,
}

impl<R: Read> StreamBits<R> {
    fn new(reader: R, total_bits: u64) -> Self {
        Self {
            reader,
            total_bits,
            pos: 0,
            cur: 0,
            io_error: None,
        }
    }

    fn take_io_error(&mut self) -> Option<io::Error> {
        self.io_error.take()
    }

    /// Loads the byte holding bit `pos` when crossing a byte boundary;
    /// `false` on I/O failure (including a file shorter than the header
    /// declared).
    fn refill(&mut self) -> bool {
        if !self.pos.is_multiple_of(8) {
            return true;
        }
        let mut byte = [0u8; 1];
        match self.reader.read_exact(&mut byte) {
            Ok(()) => {
                self.cur = byte[0];
                true
            }
            Err(e) => {
                self.io_error = Some(e);
                false
            }
        }
    }
}

impl<R: Read> BitRead for StreamBits<R> {
    fn get(&mut self, nbits: u32) -> Option<u32> {
        assert!(
            (1..=32).contains(&nbits),
            "bit width {nbits} out of range 1..=32"
        );
        if self.io_error.is_some() || self.pos + u64::from(nbits) > self.total_bits {
            return None;
        }
        let mut value = 0u32;
        for i in 0..nbits {
            if !self.refill() {
                return None;
            }
            let bit = (self.cur >> (self.pos % 8)) & 1;
            value |= u32::from(bit) << i;
            self.pos += 1;
        }
        Some(value)
    }

    fn skip_bits(&mut self, nbits: u64) -> bool {
        // A generic `io::Read` cannot seek, so skipping still consumes
        // bytes — but without assembling values, and whole bytes at a
        // time once aligned.
        match self.pos.checked_add(nbits) {
            Some(end) if end <= self.total_bits => {}
            _ => return false,
        }
        if self.io_error.is_some() {
            return false;
        }
        let mut left = nbits;
        // Finish the partially consumed byte.
        while left > 0 && !self.pos.is_multiple_of(8) {
            self.pos += 1;
            left -= 1;
        }
        let mut bytes = left / 8;
        let mut chunk = [0u8; 256];
        while bytes > 0 {
            let n = bytes.min(chunk.len() as u64) as usize;
            if let Err(e) = self.reader.read_exact(&mut chunk[..n]) {
                self.io_error = Some(e);
                return false;
            }
            self.pos += n as u64 * 8;
            left -= n as u64 * 8;
            bytes -= n as u64;
        }
        // Enter the trailing partial byte, if any.
        while left > 0 {
            if !self.refill() {
                return false;
            }
            self.pos += 1;
            left -= 1;
        }
        true
    }

    fn position(&self) -> u64 {
        self.pos
    }

    fn remaining_bits(&self) -> u64 {
        if self.io_error.is_some() {
            0
        } else {
            self.total_bits - self.pos
        }
    }
}

/// Problems reading an on-disk trace container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileError {
    /// An underlying I/O failure (a short file reports
    /// [`io::ErrorKind::UnexpectedEof`]).
    Io(io::ErrorKind),
    /// The file does not start with [`TRACE_FILE_MAGIC`].
    BadMagic([u8; 4]),
    /// The container version is newer than this reader understands.
    UnsupportedContainer {
        /// Container version declared by the file.
        found: u16,
        /// Newest container version this reader parses
        /// ([`TRACE_CONTAINER_VERSION`]).
        newest_supported: u16,
    },
    /// The record bit-layout version is not one this codec decodes
    /// ([`SUPPORTED_LAYOUT_VERSIONS`]).
    UnsupportedLayout {
        /// Layout version declared by the file.
        found: u16,
        /// Newest layout version this codec decodes.
        newest_supported: u16,
    },
    /// The workload id is not valid UTF-8.
    BadWorkloadId,
    /// The body bit stream is malformed or shorter than declared.
    Decode(DecodeError),
}

impl fmt::Display for FileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileError::Io(kind) => write!(f, "trace file i/o error: {kind}"),
            FileError::BadMagic(m) => {
                write!(f, "not a resim trace file (magic {m:02x?}, expected \"RSTR\")")
            }
            FileError::UnsupportedContainer {
                found,
                newest_supported,
            } => write!(
                f,
                "trace container version {found} is newer than this reader \
                 (newest supported: {newest_supported})"
            ),
            FileError::UnsupportedLayout {
                found,
                newest_supported,
            } => write!(
                f,
                "trace record layout version {found} is not one this codec decodes \
                 (supported: 1..={newest_supported})"
            ),
            FileError::BadWorkloadId => write!(f, "workload id is not valid UTF-8"),
            FileError::Decode(e) => write!(f, "trace body malformed: {e}"),
        }
    }
}

impl From<io::Error> for FileError {
    fn from(e: io::Error) -> Self {
        FileError::Io(e.kind())
    }
}

impl From<DecodeError> for FileError {
    fn from(e: DecodeError) -> Self {
        FileError::Decode(e)
    }
}

impl Error for FileError {}

/// A [`FileError`] annotated with the path it occurred on.
///
/// Returned by the path-taking entry points ([`FileSource::open`],
/// [`save_trace_file`]) so a diagnostic can always name the offending
/// file; the path-free [`FileSource::from_reader`] keeps returning a
/// bare [`FileError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFileError {
    path: PathBuf,
    error: FileError,
}

impl TraceFileError {
    pub(crate) fn new(path: impl Into<PathBuf>, error: FileError) -> Self {
        Self {
            path: path.into(),
            error,
        }
    }

    /// The file the operation failed on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The underlying container error.
    pub fn error(&self) -> &FileError {
        &self.error
    }
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.error)
    }
}

impl Error for TraceFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OpClass, OtherRecord, Reg};
    use crate::Trace;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceRecord::Other(OtherRecord {
            pc: 0x40_0000,
            class: OpClass::IntAlu,
            dest: Some(Reg::new(3)),
            src1: Some(Reg::new(1)),
            src2: Some(Reg::new(2)),
            wrong_path: false,
        }));
        t.push(TraceRecord::Mem(MemRecord {
            pc: 0x40_0004,
            addr: 0x1000_0040,
            size: MemSize::Word,
            kind: MemKind::Load,
            base: Some(Reg::new(29)),
            data: Some(Reg::new(4)),
            wrong_path: false,
        }));
        t.push(TraceRecord::Branch(BranchRecord {
            pc: 0x40_0008,
            target: 0x40_0100,
            taken: true,
            kind: BranchKind::Cond,
            src1: Some(Reg::new(4)),
            src2: None,
            wrong_path: false,
        }));
        t.push(TraceRecord::Other(OtherRecord {
            pc: 0x40_000C,
            class: OpClass::Nop,
            dest: None,
            src1: None,
            src2: None,
            wrong_path: true,
        }));
        t.push(TraceRecord::Other(OtherRecord {
            pc: 0x40_0100,
            class: OpClass::IntDiv,
            dest: Some(Reg::new(8)),
            src1: Some(Reg::new(8)),
            src2: Some(Reg::new(9)),
            wrong_path: false,
        }));
        t
    }

    fn container(trace: &Trace) -> Vec<u8> {
        let encoded = trace.encode();
        let header = TraceFileHeader::for_trace(&encoded, "gzip", 2009, 0xDEAD_BEEF)
            .with_correct_records(trace.correct_path_len() as u64);
        let mut buf = Vec::new();
        header.write_trace(&mut buf, &encoded).unwrap();
        buf
    }

    #[test]
    fn header_roundtrip() {
        let trace = sample_trace();
        let encoded = trace.encode();
        let header = TraceFileHeader::for_trace(&encoded, "gzip", 2009, 0xDEAD_BEEF)
            .with_correct_records(4);
        let mut buf = Vec::new();
        header.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), header.encoded_len());
        let round = TraceFileHeader::read_from(&buf[..]).unwrap();
        assert_eq!(round, header);
        assert_eq!(round.records, 5);
        assert_eq!(round.correct_records, 4);
        assert_eq!(round.workload, "gzip");
        assert_eq!(round.seed, 2009);
        assert_eq!(round.tracegen_fingerprint, 0xDEAD_BEEF);
    }

    #[test]
    fn file_roundtrip_streams_all_records() {
        let trace = sample_trace();
        let buf = container(&trace);
        let mut src = FileSource::from_reader(&buf[..]).unwrap();
        assert_eq!(src.len_hint(), Some(5));
        assert_eq!(src.header().correct_records, 4);
        let round: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
        assert_eq!(round, trace.records());
        assert!(src.error().is_none());
        assert!(src.next_record().is_none(), "fused after end");
    }

    #[test]
    fn skip_then_decode_stays_in_sync() {
        let trace = sample_trace();
        let buf = container(&trace);
        for n in 0..=trace.len() as u64 {
            let mut src = FileSource::from_reader(&buf[..]).unwrap();
            assert_eq!(src.skip(n), n);
            let rest: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
            assert_eq!(rest, trace.records()[n as usize..], "suffix after skipping {n}");
            assert!(src.error().is_none());
        }
        let mut src = FileSource::from_reader(&buf[..]).unwrap();
        assert_eq!(src.skip(100), 5, "skip clamps at end of trace");
    }

    #[test]
    fn on_disk_roundtrip() {
        let trace = sample_trace();
        let encoded = trace.encode();
        let header = TraceFileHeader::for_trace(&encoded, "disk", 1, 2);
        let path = std::env::temp_dir().join(format!("resim-trace-test-{}.trace", std::process::id()));
        save_trace_file(&path, &header, &encoded).unwrap();
        let mut src = FileSource::open(&path).unwrap();
        let round: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(round, trace.records());
    }

    #[test]
    fn alien_and_versioned_files_are_rejected() {
        let trace = sample_trace();
        let mut buf = container(&trace);
        assert!(matches!(
            FileSource::from_reader(&b"RS"[..]),
            Err(FileError::Io(io::ErrorKind::UnexpectedEof))
        ));
        assert!(matches!(
            FileSource::from_reader(&b"ELF!"[..]),
            Err(FileError::BadMagic(_))
        ));
        buf[0] = b'X';
        assert!(matches!(
            FileSource::from_reader(&buf[..]),
            Err(FileError::BadMagic(_))
        ));
        buf[0] = b'R';
        buf[4] = 0xFF; // container version 0xFF
        assert!(matches!(
            FileSource::from_reader(&buf[..]),
            Err(FileError::UnsupportedContainer { found: 0xFF, .. })
        ));
        buf[4] = 1;
        buf[6] = 0xEE; // layout version
        assert!(matches!(
            FileSource::from_reader(&buf[..]),
            Err(FileError::UnsupportedLayout { found: 0xEE, .. })
        ));
        buf[6] = 0; // layout version 0 never existed
        assert!(matches!(
            FileSource::from_reader(&buf[..]),
            Err(FileError::UnsupportedLayout { found: 0, .. })
        ));
    }

    #[test]
    fn truncated_body_surfaces_as_error() {
        let trace = sample_trace();
        let buf = container(&trace);
        let short = &buf[..buf.len() - 2];
        let mut src = FileSource::from_reader(short).unwrap();
        while src.next_record().is_some() {}
        assert!(src.error().is_some(), "truncation must not look like a clean end");
        assert_eq!(src.skip(1), 0, "errored source skips nothing");
    }

    #[test]
    fn decode_counters_track_records_and_fills() {
        let trace = sample_trace();
        let buf = container(&trace);
        let mut src = FileSource::from_reader(&buf[..]).unwrap();
        assert_eq!(src.records_decoded(), 0);
        assert_eq!(src.batch_fills(), 0);
        src.next_record().unwrap();
        src.next_record().unwrap();
        assert_eq!(src.records_decoded(), 2);
        let filler = TraceRecord::Other(OtherRecord {
            pc: 0,
            class: OpClass::Nop,
            dest: None,
            src1: None,
            src2: None,
            wrong_path: false,
        });
        let mut batch = vec![filler; 8];
        let n = src.fill(&mut batch);
        assert_eq!(n, 3, "the remaining records arrive in one batch");
        assert_eq!(src.batch_fills(), 1);
        assert_eq!(src.records_decoded(), 5);
        // A fill at end-of-trace still counts as a (empty) batch call.
        assert_eq!(src.fill(&mut batch), 0);
        assert_eq!(src.batch_fills(), 2);
        assert_eq!(src.records_decoded(), 5);
    }

    #[test]
    fn record_count_shorter_than_body_is_honoured() {
        // A header declaring fewer records than the body holds: the
        // source stops at the declared count.
        let trace = sample_trace();
        let encoded = trace.encode();
        let header = TraceFileHeader::for_trace(&encoded, "w", 0, 0);
        let header = TraceFileHeader {
            records: 2,
            ..header
        };
        let mut buf = Vec::new();
        header.write_trace(&mut buf, &encoded).unwrap();
        let mut src = FileSource::from_reader(&buf[..]).unwrap();
        let got: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
        assert_eq!(got.len(), 2);
        assert!(src.error().is_none());
    }

    #[test]
    fn errors_display() {
        assert!(FileError::BadMagic(*b"ELF!").to_string().contains("RSTR"));
        let container = FileError::UnsupportedContainer {
            found: 9,
            newest_supported: TRACE_CONTAINER_VERSION,
        }
        .to_string();
        assert!(container.contains("version 9"), "{container}");
        assert!(container.contains("newest supported: 1"), "{container}");
        let layout = FileError::UnsupportedLayout {
            found: 9,
            newest_supported: 2,
        }
        .to_string();
        assert!(layout.contains("layout version 9"), "{layout}");
        assert!(layout.contains("1..=2"), "{layout}");
        assert!(FileError::Decode(DecodeError::Truncated)
            .to_string()
            .contains("malformed"));
        assert!(FileError::Io(io::ErrorKind::UnexpectedEof)
            .to_string()
            .contains("i/o"));
        assert!(FileError::BadWorkloadId.to_string().contains("UTF-8"));
    }

    #[test]
    fn v2_container_roundtrips_and_skips() {
        let trace = sample_trace();
        let encoded = trace.encode_v2();
        assert_eq!(encoded.layout_version(), 2);
        let header = TraceFileHeader::for_trace(&encoded, "gzip", 2009, 0xDEAD_BEEF)
            .with_correct_records(trace.correct_path_len() as u64);
        assert_eq!(header.layout_version, 2);
        let mut buf = Vec::new();
        header.write_trace(&mut buf, &encoded).unwrap();
        let mut src = FileSource::from_reader(&buf[..]).unwrap();
        assert_eq!(src.header().layout_version, 2);
        let round: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
        assert_eq!(round, trace.records());
        assert!(src.error().is_none());
        // Skip over the v2 delta chain, then decode the suffix.
        for n in 0..=trace.len() as u64 {
            let mut src = FileSource::from_reader(&buf[..]).unwrap();
            assert_eq!(src.skip(n), n);
            let rest: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
            assert_eq!(rest, trace.records()[n as usize..], "suffix after skipping {n}");
        }
    }

    #[test]
    fn truncated_v2_body_surfaces_as_error() {
        let trace = sample_trace();
        let encoded = trace.encode_v2();
        let header = TraceFileHeader::for_trace(&encoded, "w", 0, 0);
        let mut buf = Vec::new();
        header.write_trace(&mut buf, &encoded).unwrap();
        let short = &buf[..buf.len() - 1];
        let mut src = FileSource::from_reader(short).unwrap();
        while src.next_record().is_some() {}
        assert!(src.error().is_some(), "truncation must not look like a clean end");
    }

    #[test]
    fn open_names_the_missing_path() {
        let path = std::env::temp_dir().join("resim-no-such-trace-file.trace");
        let err = FileSource::open(&path).unwrap_err();
        assert_eq!(err.path(), path.as_path());
        assert!(matches!(err.error(), FileError::Io(io::ErrorKind::NotFound)));
        let msg = err.to_string();
        assert!(
            msg.contains("resim-no-such-trace-file.trace"),
            "message must name the file: {msg}"
        );
    }

    #[test]
    fn open_names_the_path_on_version_mismatch() {
        let trace = sample_trace();
        let mut buf = container(&trace);
        buf[6] = 0x7B; // layout version 123
        let path = std::env::temp_dir().join(format!(
            "resim-trace-badlayout-{}.trace",
            std::process::id()
        ));
        std::fs::write(&path, &buf).unwrap();
        let err = FileSource::open(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(err.path(), path.as_path());
        assert!(matches!(
            err.error(),
            FileError::UnsupportedLayout { found: 123, .. }
        ));
        let msg = err.to_string();
        assert!(msg.contains("badlayout"), "{msg}");
        assert!(msg.contains("123"), "{msg}");
    }

    #[test]
    fn save_names_the_path_on_failure() {
        let trace = sample_trace();
        let encoded = trace.encode();
        let header = TraceFileHeader::for_trace(&encoded, "w", 0, 0);
        let path = std::env::temp_dir()
            .join("resim-no-such-dir")
            .join("out.trace");
        let err = save_trace_file(&path, &header, &encoded).unwrap_err();
        assert_eq!(err.path(), path.as_path());
        assert!(matches!(err.error(), FileError::Io(_)));
        assert!(err.to_string().contains("out.trace"));
    }

    #[test]
    fn oversized_workload_id_is_rejected_at_write() {
        let trace = sample_trace();
        let encoded = trace.encode();
        let header = TraceFileHeader::for_trace(&encoded, "w".repeat(70_000), 0, 0);
        let err = header.write_to(Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
