//! Little bit-granular writer/reader used by the trace codec.
//!
//! Records are variable-length bit strings ("each with its own fields and
//! length", paper §V.A), so the codec cannot rely on byte alignment. Bits
//! are packed LSB-first into a byte vector.

/// Appends values of 1–32 bits into a growing byte buffer, LSB-first.
///
/// # Example
///
/// ```
/// use resim_trace::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.put(0b101, 3);
/// w.put(0xABCD, 16);
/// let (bytes, bits) = w.finish();
/// assert_eq!(bits, 19);
///
/// let mut r = BitReader::new(&bytes, bits);
/// assert_eq!(r.get(3), Some(0b101));
/// assert_eq!(r.get(16), Some(0xABCD));
/// assert_eq!(r.get(1), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in `buf`.
    len_bits: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `nbits` bits of `value` (1–32).
    ///
    /// # Panics
    ///
    /// Panics if `nbits` is 0 or greater than 32, or if `value` has bits
    /// set above `nbits`.
    pub fn put(&mut self, value: u32, nbits: u32) {
        assert!(
            (1..=32).contains(&nbits),
            "bit width {nbits} out of range 1..=32"
        );
        if nbits < 32 {
            assert!(
                value < (1u32 << nbits),
                "value {value:#x} does not fit in {nbits} bits"
            );
        }
        for i in 0..nbits {
            let bit = (value >> i) & 1;
            let byte_idx = (self.len_bits / 8) as usize;
            let bit_idx = (self.len_bits % 8) as u32;
            if bit_idx == 0 {
                self.buf.push(0);
            }
            if bit == 1 {
                self.buf[byte_idx] |= 1 << bit_idx;
            }
            self.len_bits += 1;
        }
    }

    /// Appends a single flag bit.
    pub fn put_bool(&mut self, value: bool) {
        self.put(u32::from(value), 1);
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Finishes, returning the packed bytes and the exact bit count.
    pub fn finish(self) -> (Vec<u8>, u64) {
        (self.buf, self.len_bits)
    }
}

/// The bit-granular read interface shared by the in-memory
/// [`BitReader`] and the streaming trace-file reader: everything the
/// record codec needs, so one decode routine serves both.
pub(crate) trait BitRead {
    /// Reads `nbits` (1–32) bits; `None` if fewer remain.
    fn get(&mut self, nbits: u32) -> Option<u32>;

    /// Reads one flag bit.
    fn get_bool(&mut self) -> Option<bool> {
        self.get(1).map(|b| b == 1)
    }

    /// Advances past `nbits` bits without assembling a value; `false` if
    /// fewer remain.
    fn skip_bits(&mut self, nbits: u64) -> bool;

    /// Current read position in bits.
    fn position(&self) -> u64;

    /// Bits remaining to be read.
    fn remaining_bits(&self) -> u64;
}

/// Reads back values packed by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    len_bits: u64,
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf` holding exactly `len_bits` valid bits.
    ///
    /// # Panics
    ///
    /// Panics if `len_bits` exceeds the buffer capacity.
    pub fn new(buf: &'a [u8], len_bits: u64) -> Self {
        assert!(
            len_bits <= buf.len() as u64 * 8,
            "len_bits {len_bits} exceeds buffer capacity {}",
            buf.len() as u64 * 8
        );
        Self {
            buf,
            len_bits,
            pos: 0,
        }
    }

    /// Reads `nbits` (1–32) bits; `None` if fewer remain.
    pub fn get(&mut self, nbits: u32) -> Option<u32> {
        assert!(
            (1..=32).contains(&nbits),
            "bit width {nbits} out of range 1..=32"
        );
        if self.pos + u64::from(nbits) > self.len_bits {
            return None;
        }
        let mut value = 0u32;
        for i in 0..nbits {
            let byte_idx = (self.pos / 8) as usize;
            let bit_idx = (self.pos % 8) as u32;
            let bit = (self.buf[byte_idx] >> bit_idx) & 1;
            value |= u32::from(bit) << i;
            self.pos += 1;
        }
        Some(value)
    }

    /// Reads one flag bit.
    pub fn get_bool(&mut self) -> Option<bool> {
        self.get(1).map(|b| b == 1)
    }

    /// Advances past `nbits` bits without assembling a value; `false` if
    /// fewer remain (position is then unchanged).
    ///
    /// This is the decode-and-discard primitive behind
    /// [`TraceDecoder::skip_record`](crate::TraceDecoder::skip_record):
    /// skipping is O(1) in the width, where [`BitReader::get`] walks every
    /// bit.
    pub fn skip_bits(&mut self, nbits: u64) -> bool {
        match self.pos.checked_add(nbits) {
            Some(end) if end <= self.len_bits => {
                self.pos = end;
                true
            }
            _ => false,
        }
    }

    /// Bits remaining to be read.
    pub fn remaining_bits(&self) -> u64 {
        self.len_bits - self.pos
    }

    /// Current read position in bits.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

impl BitRead for BitReader<'_> {
    fn get(&mut self, nbits: u32) -> Option<u32> {
        BitReader::get(self, nbits)
    }

    fn skip_bits(&mut self, nbits: u64) -> bool {
        BitReader::skip_bits(self, nbits)
    }

    fn position(&self) -> u64 {
        BitReader::position(self)
    }

    fn remaining_bits(&self) -> u64 {
        BitReader::remaining_bits(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(1, 1);
        w.put(0, 1);
        w.put(0x3F, 6);
        w.put(0xDEADBEEF, 32);
        w.put(5, 3);
        let total = w.len_bits();
        assert_eq!(total, 1 + 1 + 6 + 32 + 3);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, total);
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.get(1), Some(1));
        assert_eq!(r.get(1), Some(0));
        assert_eq!(r.get(6), Some(0x3F));
        assert_eq!(r.get(32), Some(0xDEADBEEF));
        assert_eq!(r.get(3), Some(5));
        assert_eq!(r.remaining_bits(), 0);
        assert_eq!(r.get(1), None);
    }

    #[test]
    fn empty_reader() {
        let mut r = BitReader::new(&[], 0);
        assert_eq!(r.get(1), None);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn bools() {
        let mut w = BitWriter::new();
        w.put_bool(true);
        w.put_bool(false);
        w.put_bool(true);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.get_bool(), Some(true));
        assert_eq!(r.get_bool(), Some(false));
        assert_eq!(r.get_bool(), Some(true));
        assert_eq!(r.get_bool(), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_value_panics() {
        let mut w = BitWriter::new();
        w.put(8, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_panics() {
        let mut w = BitWriter::new();
        w.put(0, 0);
    }

    #[test]
    fn position_tracking() {
        let mut w = BitWriter::new();
        w.put(0x7, 3);
        w.put(0x1, 2);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.position(), 0);
        r.get(3);
        assert_eq!(r.position(), 3);
        r.get(2);
        assert_eq!(r.position(), 5);
    }

    #[test]
    fn skip_bits_advances_without_reading() {
        let mut w = BitWriter::new();
        w.put(0x5, 3);
        w.put(0xBEEF, 16);
        w.put(0x3, 2);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        assert!(r.skip_bits(3));
        assert_eq!(r.position(), 3);
        assert!(r.skip_bits(16));
        assert_eq!(r.get(2), Some(0x3));
        assert!(!r.skip_bits(1), "nothing left to skip");
        assert_eq!(r.position(), 21, "failed skip must not move");
        assert!(!r.skip_bits(u64::MAX), "overflowing skip must fail cleanly");
        assert_eq!(r.position(), 21);
    }

    #[test]
    fn full_u32_values() {
        let mut w = BitWriter::new();
        w.put(u32::MAX, 32);
        w.put(0, 32);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(r.get(32), Some(u32::MAX));
        assert_eq!(r.get(32), Some(0));
    }
}
