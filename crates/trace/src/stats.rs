//! Trace size accounting: the basis of the paper's Table 3.
//!
//! Table 3 reports, per SPECINT benchmark, the average number of trace
//! *bits per instruction* (41–47), the simulation throughput including
//! mis-speculated instructions, and the resulting trace bandwidth demand in
//! MByte/s. [`TraceStats`] provides the first ingredient; the FPGA crate
//! combines it with the throughput model for the rest.

use crate::record::TraceRecord;

/// Per-format record and bit accounting for an encoded trace.
///
/// All counters are 64-bit, mirroring the paper's §V.B decision to use
/// 64-bit statistics registers to avoid overflow on long runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    branch_records: u64,
    mem_records: u64,
    other_records: u64,
    wrong_path_records: u64,
    branch_bits: u64,
    mem_bits: u64,
    other_bits: u64,
    loads: u64,
    stores: u64,
    taken_branches: u64,
}

impl TraceStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one encoded record of `bits` length.
    pub(crate) fn account(&mut self, record: &TraceRecord, bits: u64) {
        match record {
            TraceRecord::Branch(b) => {
                self.branch_records += 1;
                self.branch_bits += bits;
                if b.taken {
                    self.taken_branches += 1;
                }
            }
            TraceRecord::Mem(m) => {
                self.mem_records += 1;
                self.mem_bits += bits;
                if m.is_load() {
                    self.loads += 1;
                } else {
                    self.stores += 1;
                }
            }
            TraceRecord::Other(_) => {
                self.other_records += 1;
                self.other_bits += bits;
            }
        }
        if record.wrong_path() {
            self.wrong_path_records += 1;
        }
    }

    /// Total records (all formats, wrong path included).
    pub fn total_records(&self) -> u64 {
        self.branch_records + self.mem_records + self.other_records
    }

    /// Total encoded bits.
    pub fn total_bits(&self) -> u64 {
        self.branch_bits + self.mem_bits + self.other_bits
    }

    /// Branch (B) record count.
    pub fn branch_records(&self) -> u64 {
        self.branch_records
    }

    /// Memory (M) record count.
    pub fn mem_records(&self) -> u64 {
        self.mem_records
    }

    /// Other (O) record count.
    pub fn other_records(&self) -> u64 {
        self.other_records
    }

    /// Wrong-path (Tag = 1) record count.
    pub fn wrong_path_records(&self) -> u64 {
        self.wrong_path_records
    }

    /// Load count.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Store count.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Taken-branch count.
    pub fn taken_branches(&self) -> u64 {
        self.taken_branches
    }

    /// Average trace bits per dynamic instruction (Table 3, col. 2).
    ///
    /// Returns 0.0 for an empty trace.
    pub fn bits_per_instruction(&self) -> f64 {
        let n = self.total_records();
        if n == 0 {
            0.0
        } else {
            self.total_bits() as f64 / n as f64
        }
    }

    /// Average bits of a Branch record.
    pub fn bits_per_branch(&self) -> f64 {
        if self.branch_records == 0 {
            0.0
        } else {
            self.branch_bits as f64 / self.branch_records as f64
        }
    }

    /// Average bits of a Memory record.
    pub fn bits_per_mem(&self) -> f64 {
        if self.mem_records == 0 {
            0.0
        } else {
            self.mem_bits as f64 / self.mem_records as f64
        }
    }

    /// Average bits of an Other record.
    pub fn bits_per_other(&self) -> f64 {
        if self.other_records == 0 {
            0.0
        } else {
            self.other_bits as f64 / self.other_records as f64
        }
    }

    /// Fraction of records that are wrong-path (the paper measures ≈10 %).
    pub fn wrong_path_fraction(&self) -> f64 {
        let n = self.total_records();
        if n == 0 {
            0.0
        } else {
            self.wrong_path_records as f64 / n as f64
        }
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        self.branch_records += other.branch_records;
        self.mem_records += other.mem_records;
        self.other_records += other.other_records;
        self.wrong_path_records += other.wrong_path_records;
        self.branch_bits += other.branch_bits;
        self.mem_bits += other.mem_bits;
        self.other_bits += other.other_bits;
        self.loads += other.loads;
        self.stores += other.stores;
        self.taken_branches += other.taken_branches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::*;

    fn stats_for(records: &[TraceRecord]) -> TraceStats {
        let mut enc = crate::TraceEncoder::new();
        for r in records {
            enc.push(r);
        }
        enc.stats().clone()
    }

    #[test]
    fn empty_stats() {
        let s = TraceStats::new();
        assert_eq!(s.total_records(), 0);
        assert_eq!(s.bits_per_instruction(), 0.0);
        assert_eq!(s.wrong_path_fraction(), 0.0);
        assert_eq!(s.bits_per_branch(), 0.0);
        assert_eq!(s.bits_per_mem(), 0.0);
        assert_eq!(s.bits_per_other(), 0.0);
    }

    #[test]
    fn per_format_counts() {
        let records = vec![
            TraceRecord::Other(OtherRecord {
                pc: 0,
                class: OpClass::IntAlu,
                dest: None,
                src1: None,
                src2: None,
                wrong_path: false,
            }),
            TraceRecord::Mem(MemRecord {
                pc: 4,
                addr: 64,
                size: MemSize::Word,
                kind: MemKind::Store,
                base: None,
                data: None,
                wrong_path: true,
            }),
            TraceRecord::Branch(BranchRecord {
                pc: 8,
                target: 0,
                taken: true,
                kind: BranchKind::Cond,
                src1: None,
                src2: None,
                wrong_path: false,
            }),
        ];
        let s = stats_for(&records);
        assert_eq!(s.total_records(), 3);
        assert_eq!(s.branch_records(), 1);
        assert_eq!(s.mem_records(), 1);
        assert_eq!(s.other_records(), 1);
        assert_eq!(s.stores(), 1);
        assert_eq!(s.loads(), 0);
        assert_eq!(s.taken_branches(), 1);
        assert_eq!(s.wrong_path_records(), 1);
        assert!((s.wrong_path_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!(s.bits_per_instruction() > 0.0);
    }

    #[test]
    fn merge_adds() {
        let r = TraceRecord::Other(OtherRecord {
            pc: 0,
            class: OpClass::IntAlu,
            dest: None,
            src1: None,
            src2: None,
            wrong_path: false,
        });
        let a = stats_for(&[r]);
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.total_records(), 2);
        assert_eq!(b.total_bits(), 2 * a.total_bits());
    }

    #[test]
    fn memory_records_are_largest() {
        // M records carry a 32-bit address, so they must out-weigh O
        // records; this ordering is what makes memory-heavy benchmarks
        // (vortex) show the highest bits/instruction in Table 3.
        let o = TraceRecord::Other(OtherRecord {
            pc: 0,
            class: OpClass::IntAlu,
            dest: Some(Reg::new(1)),
            src1: Some(Reg::new(2)),
            src2: Some(Reg::new(3)),
            wrong_path: false,
        });
        let m = TraceRecord::Mem(MemRecord {
            pc: 0,
            addr: 0xFFFF,
            size: MemSize::Word,
            kind: MemKind::Load,
            base: Some(Reg::new(2)),
            data: Some(Reg::new(1)),
            wrong_path: false,
        });
        let so = stats_for(&[o]);
        let sm = stats_for(&[m]);
        assert!(sm.bits_per_instruction() > so.bits_per_instruction());
    }
}
