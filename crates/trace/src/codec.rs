//! Bit-exact variable-length trace codec.
//!
//! The wire format follows the paper's description (§V.A): three record
//! formats with distinct lengths, selected by a 2-bit format field, each
//! carrying the 1-bit mis-speculation Tag. Program counters are
//! delta-compressed: a record whose PC equals the PC implied by the
//! previous record (sequential flow, or the previous branch's outcome)
//! spends a single flag bit; any discontinuity (trace start, wrong-path
//! block entry/exit, misfetch replay) spends 1 + 32 bits. This is what
//! keeps the average record in the 40-some-bit range the paper reports in
//! Table 3 while still carrying full 32-bit effective addresses and branch
//! targets.
//!
//! Layout (LSB-first bit order):
//!
//! ```text
//! common header: fmt(2) tag(1) pc_explicit(1) [pc(32)]
//! O: class(2) dest?(1[+6]) src1?(1[+6]) src2?(1[+6])
//! M: kind(1) size(2) addr(32) base?(1[+6]) data?(1[+6])
//! B: kind(3) taken(1) target(32) src1?(1[+6]) src2?(1[+6])
//! ```
//!
//! Every record is **padded to a byte boundary**, as a hardware trace
//! decoder (and any practical trace transport) requires: a typical Other
//! record costs 4 bytes, Memory and Branch records 7, and a record
//! following a PC discontinuity 4 more. The resulting 40-some bits per
//! average instruction is the band the paper's Table 3 reports (41–47
//! bits/instruction on SPECINT).

use crate::bits::{BitRead, BitReader, BitWriter};
use crate::record::{
    BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OpClass, OtherRecord, Reg, TraceRecord,
};
use crate::stats::TraceStats;
use crate::Trace;
use std::error::Error;
use std::fmt;

pub(crate) const FMT_OTHER: u32 = 0;
pub(crate) const FMT_MEM: u32 = 1;
pub(crate) const FMT_BRANCH: u32 = 2;

/// Version of the record bit layout this codec produces.
///
/// Stored in the on-disk trace container header
/// ([`TraceFileHeader`](crate::TraceFileHeader)) so a reader can reject
/// traces written under a different layout instead of mis-decoding them.
/// Bump on **any** change to the wire format documented at the top of
/// this module — field widths, field order, padding or the PC
/// delta-compression rule.
pub const TRACE_LAYOUT_VERSION: u16 = 1;

/// Streaming encoder producing the bit-packed wire format.
///
/// Push records in fetch order and call [`TraceEncoder::finish`] to obtain
/// the [`EncodedTrace`]. Statistics (per-format record and bit counts) are
/// accumulated on the fly, so [`TraceEncoder::stats`] can be consulted at
/// any point — this is how the on-the-fly generation mode meters its link
/// bandwidth without buffering the whole trace.
#[derive(Debug, Clone, Default)]
pub struct TraceEncoder {
    writer: BitWriter,
    stats: TraceStats,
    expected_pc: Option<u32>,
    records: u64,
}

impl TraceEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes one record.
    pub fn push(&mut self, record: &TraceRecord) {
        let before = self.writer.len_bits();
        let pc = record.pc();
        let fmt = match record {
            TraceRecord::Other(_) => FMT_OTHER,
            TraceRecord::Mem(_) => FMT_MEM,
            TraceRecord::Branch(_) => FMT_BRANCH,
        };
        self.writer.put(fmt, 2);
        self.writer.put_bool(record.wrong_path());
        // Branch records always carry their PC: they are the stream's
        // synchronisation points (misfetch checking and mid-trace seek
        // need the branch PC without decoding the predecessor chain).
        let explicit = record.is_branch() || self.expected_pc != Some(pc);
        self.writer.put_bool(explicit);
        if explicit {
            self.writer.put(pc, 32);
        }
        match record {
            TraceRecord::Other(o) => {
                self.writer.put(o.class.encode(), 2);
                put_reg(&mut self.writer, o.dest);
                put_reg(&mut self.writer, o.src1);
                put_reg(&mut self.writer, o.src2);
            }
            TraceRecord::Mem(m) => {
                self.writer.put(m.kind.encode(), 1);
                self.writer.put(m.size.encode(), 2);
                self.writer.put(m.addr, 32);
                put_reg(&mut self.writer, m.base);
                put_reg(&mut self.writer, m.data);
            }
            TraceRecord::Branch(b) => {
                self.writer.put(b.kind.encode(), 3);
                self.writer.put_bool(b.taken);
                self.writer.put(b.target, 32);
                put_reg(&mut self.writer, b.src1);
                put_reg(&mut self.writer, b.src2);
            }
        }
        // Byte-align each record (hardware decoder framing).
        while !self.writer.len_bits().is_multiple_of(8) {
            self.writer.put_bool(false);
        }
        self.expected_pc = Some(record.implied_next_pc());
        let bits = self.writer.len_bits() - before;
        self.stats.account(record, bits);
        self.records += 1;
    }

    /// Statistics over everything encoded so far.
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Number of records encoded so far.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether no records have been encoded.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Finishes encoding and returns the packed trace.
    pub fn finish(self) -> EncodedTrace {
        let (bytes, len_bits) = self.writer.finish();
        EncodedTrace {
            bytes,
            len_bits,
            records: self.records,
            stats: self.stats,
            layout: TRACE_LAYOUT_VERSION,
        }
    }
}

pub(crate) fn put_reg(w: &mut BitWriter, reg: Option<Reg>) {
    match reg {
        Some(r) => {
            w.put_bool(true);
            w.put(u32::from(r.index()), 6);
        }
        None => w.put_bool(false),
    }
}

pub(crate) fn get_reg<B: BitRead>(r: &mut B) -> Result<Option<Reg>, DecodeError> {
    let present = r.get_bool().ok_or(DecodeError::Truncated)?;
    if !present {
        return Ok(None);
    }
    let idx = r.get(6).ok_or(DecodeError::Truncated)?;
    Ok(Some(Reg::new(idx as u8)))
}

/// A bit-packed, encoded trace plus its accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedTrace {
    bytes: Vec<u8>,
    len_bits: u64,
    records: u64,
    stats: TraceStats,
    layout: u16,
}

impl EncodedTrace {
    pub(crate) fn from_raw_parts(
        bytes: Vec<u8>,
        len_bits: u64,
        records: u64,
        stats: TraceStats,
        layout: u16,
    ) -> Self {
        Self {
            bytes,
            len_bits,
            records,
            stats,
            layout,
        }
    }

    /// Test-only: reinterprets raw bytes as a v2 body of `len_bits`
    /// bits (no stats, no record count). Lets the fuzz suites clip a
    /// stream at an arbitrary bit without going through a container.
    #[doc(hidden)]
    pub fn from_bytes_v2_for_test(bytes: Vec<u8>, len_bits: u64) -> Self {
        Self::from_raw_parts(
            bytes,
            len_bits,
            0,
            TraceStats::default(),
            crate::codec_v2::TRACE_LAYOUT_VERSION_V2,
        )
    }

    /// The packed bytes (the final byte may be partially used).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The record bit-layout version of this stream
    /// ([`TRACE_LAYOUT_VERSION`] or
    /// [`TRACE_LAYOUT_VERSION_V2`](crate::TRACE_LAYOUT_VERSION_V2)).
    pub fn layout_version(&self) -> u16 {
        self.layout
    }

    /// Exact number of payload bits.
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Number of records encoded.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Per-format statistics (record counts, bit counts).
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// Decodes the whole trace back into record form, dispatching on the
    /// stream's layout version.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the bit stream is truncated or contains
    /// an invalid format/enum field.
    pub fn decode(&self) -> Result<Trace, DecodeError> {
        let mut src = self.source();
        let mut out = Vec::with_capacity(self.records as usize);
        {
            use crate::TraceSource as _;
            while let Some(r) = src.next_record() {
                out.push(r);
            }
        }
        if let Some(e) = src.error() {
            return Err(e);
        }
        Ok(Trace::from_records(out))
    }

    /// A streaming [`TraceSource`](crate::TraceSource) decoding records on
    /// the fly.
    ///
    /// [`TraceSource::skip`](crate::TraceSource::skip) on a v1 source uses
    /// the codec-level fast path ([`TraceDecoder::skip_record`]) — records
    /// are paged over without being materialised. A v2 stream chains
    /// decoder state through every record, so its skip decodes and
    /// discards.
    pub fn source(&self) -> EncodedSource<'_> {
        let inner = if self.layout == crate::codec_v2::TRACE_LAYOUT_VERSION_V2 {
            SourceInner::V2 {
                reader: BitReader::new(&self.bytes, self.len_bits),
                state: crate::codec_v2::V2State::default(),
            }
        } else {
            SourceInner::V1(TraceDecoder::new(&self.bytes, self.len_bits))
        };
        EncodedSource {
            inner,
            remaining: self.records,
            error: None,
        }
    }
}

/// A [`TraceSource`](crate::TraceSource) streaming straight out of an
/// [`EncodedTrace`]'s bit
/// stream, decoding one record per pull.
///
/// Decode errors terminate the stream (fused `None`); the first error is
/// retained and can be inspected with [`EncodedSource::error`]. Traces
/// produced by [`TraceEncoder`] never error.
#[derive(Debug, Clone)]
pub struct EncodedSource<'a> {
    inner: SourceInner<'a>,
    remaining: u64,
    error: Option<DecodeError>,
}

/// The layout-specific decoder behind an [`EncodedSource`].
#[derive(Debug, Clone)]
enum SourceInner<'a> {
    V1(TraceDecoder<'a>),
    V2 {
        reader: BitReader<'a>,
        state: crate::codec_v2::V2State,
    },
}

impl SourceInner<'_> {
    fn next_record(&mut self) -> Result<Option<TraceRecord>, DecodeError> {
        match self {
            SourceInner::V1(dec) => dec.next_record(),
            SourceInner::V2 { reader, state } => {
                crate::codec_v2::decode_record_bits_v2(reader, state)
            }
        }
    }

    /// Advances past one record; v1 uses the decode-and-discard fast
    /// path, v2 must fully decode to keep its delta chains threaded.
    fn skip_record(&mut self) -> Result<bool, DecodeError> {
        match self {
            SourceInner::V1(dec) => dec.skip_record(),
            SourceInner::V2 { reader, state } => {
                crate::codec_v2::decode_record_bits_v2(reader, state).map(|r| r.is_some())
            }
        }
    }
}

impl EncodedSource<'_> {
    /// The first decode error hit, if the stream ended abnormally.
    pub fn error(&self) -> Option<DecodeError> {
        self.error
    }
}

impl crate::TraceSource for EncodedSource<'_> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.error.is_some() {
            return None;
        }
        match self.inner.next_record() {
            Ok(Some(r)) => {
                self.remaining = self.remaining.saturating_sub(1);
                Some(r)
            }
            Ok(None) => None,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }

    fn fill(&mut self, buf: &mut [TraceRecord]) -> usize {
        // Block decode: the bit-level parse loop runs to completion over
        // the whole buffer, so decoder state (reader position, expected
        // PC) stays hot instead of being reloaded per pulled record.
        let mut n = 0;
        while n < buf.len() && self.error.is_none() {
            match self.inner.next_record() {
                Ok(Some(r)) => {
                    buf[n] = r;
                    n += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    self.error = Some(e);
                    break;
                }
            }
        }
        self.remaining = self.remaining.saturating_sub(n as u64);
        n
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }

    fn skip(&mut self, n: u64) -> u64 {
        let mut skipped = 0;
        while skipped < n && self.error.is_none() {
            match self.inner.skip_record() {
                Ok(true) => skipped += 1,
                Ok(false) => break,
                Err(e) => {
                    self.error = Some(e);
                    break;
                }
            }
        }
        self.remaining = self.remaining.saturating_sub(skipped);
        skipped
    }
}

/// Streaming decoder over a packed bit stream.
#[derive(Debug, Clone)]
pub struct TraceDecoder<'a> {
    reader: BitReader<'a>,
    expected_pc: Option<u32>,
}

impl<'a> TraceDecoder<'a> {
    /// Creates a decoder over `bytes` holding `len_bits` valid bits.
    pub fn new(bytes: &'a [u8], len_bits: u64) -> Self {
        Self {
            reader: BitReader::new(bytes, len_bits),
            expected_pc: None,
        }
    }

    /// Decodes the next record; `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if the stream ends mid-record;
    /// [`DecodeError::BadFormat`] / [`DecodeError::BadEnum`] on invalid
    /// field values.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, DecodeError> {
        decode_record_bits(&mut self.reader, &mut self.expected_pc)
    }

    /// Discards the next record without building a [`TraceRecord`] —
    /// the codec-level fast path behind
    /// [`TraceSource::skip`](crate::TraceSource::skip).
    ///
    /// Only the fields that determine record length and PC chaining are
    /// examined (presence flags, and a branch's taken/target pair); the
    /// 32-bit address/register payloads are skipped wholesale, never
    /// validated or materialised. Returns `Ok(false)` at a clean end of
    /// stream.
    ///
    /// # Errors
    ///
    /// The same [`DecodeError`]s as [`TraceDecoder::next_record`], except
    /// that enum payloads (`OpClass`, `MemSize`, `BranchKind`) are *not*
    /// range-checked here.
    pub fn skip_record(&mut self) -> Result<bool, DecodeError> {
        skip_record_bits(&mut self.reader, &mut self.expected_pc)
    }
}

/// Decodes one record from any [`BitRead`] source — the single parse
/// routine behind both [`TraceDecoder`] (in-memory bit slices) and the
/// streaming trace-file reader ([`FileSource`](crate::FileSource)).
pub(crate) fn decode_record_bits<B: BitRead>(
    reader: &mut B,
    expected_pc: &mut Option<u32>,
) -> Result<Option<TraceRecord>, DecodeError> {
    if reader.remaining_bits() == 0 {
        return Ok(None);
    }
    // Fewer than a minimal header's worth of bits means padding from
    // byte alignment was mis-declared: the caller passed a wrong bit
    // length.
    let fmt = reader.get(2).ok_or(DecodeError::Truncated)?;
    if fmt > FMT_BRANCH {
        return Err(DecodeError::BadFormat(fmt as u8));
    }
    let wrong_path = reader.get_bool().ok_or(DecodeError::Truncated)?;
    let explicit = reader.get_bool().ok_or(DecodeError::Truncated)?;
    let pc = if explicit {
        reader.get(32).ok_or(DecodeError::Truncated)?
    } else {
        expected_pc.ok_or(DecodeError::MissingPc)?
    };
    let record = match fmt {
        FMT_OTHER => {
            let class = reader.get(2).ok_or(DecodeError::Truncated)?;
            let class = OpClass::decode(class).ok_or(DecodeError::BadEnum("op class"))?;
            let dest = get_reg(reader)?;
            let src1 = get_reg(reader)?;
            let src2 = get_reg(reader)?;
            TraceRecord::Other(OtherRecord {
                pc,
                class,
                dest,
                src1,
                src2,
                wrong_path,
            })
        }
        FMT_MEM => {
            let kind = reader.get(1).ok_or(DecodeError::Truncated)?;
            let kind = if kind == 0 { MemKind::Load } else { MemKind::Store };
            let size = reader.get(2).ok_or(DecodeError::Truncated)?;
            let size = MemSize::decode(size).ok_or(DecodeError::BadEnum("mem size"))?;
            let addr = reader.get(32).ok_or(DecodeError::Truncated)?;
            let base = get_reg(reader)?;
            let data = get_reg(reader)?;
            TraceRecord::Mem(MemRecord {
                pc,
                addr,
                size,
                kind,
                base,
                data,
                wrong_path,
            })
        }
        FMT_BRANCH => {
            let kind = reader.get(3).ok_or(DecodeError::Truncated)?;
            let kind = BranchKind::decode(kind).ok_or(DecodeError::BadEnum("branch kind"))?;
            let taken = reader.get_bool().ok_or(DecodeError::Truncated)?;
            let target = reader.get(32).ok_or(DecodeError::Truncated)?;
            let src1 = get_reg(reader)?;
            let src2 = get_reg(reader)?;
            TraceRecord::Branch(BranchRecord {
                pc,
                target,
                taken,
                kind,
                src1,
                src2,
                wrong_path,
            })
        }
        other => return Err(DecodeError::BadFormat(other as u8)),
    };
    // Skip the byte-alignment padding.
    while !reader.position().is_multiple_of(8) {
        reader.get_bool().ok_or(DecodeError::Truncated)?;
    }
    *expected_pc = Some(record.implied_next_pc());
    Ok(Some(record))
}

/// Discards one record from any [`BitRead`] source — the generic body of
/// [`TraceDecoder::skip_record`], shared with the streaming trace-file
/// reader.
pub(crate) fn skip_record_bits<B: BitRead>(
    reader: &mut B,
    expected_pc: &mut Option<u32>,
) -> Result<bool, DecodeError> {
    if reader.remaining_bits() == 0 {
        return Ok(false);
    }
    let fmt = reader.get(2).ok_or(DecodeError::Truncated)?;
    if fmt > FMT_BRANCH {
        return Err(DecodeError::BadFormat(fmt as u8));
    }
    // tag bit
    if !reader.skip_bits(1) {
        return Err(DecodeError::Truncated);
    }
    let explicit = reader.get_bool().ok_or(DecodeError::Truncated)?;
    let pc = if explicit {
        reader.get(32).ok_or(DecodeError::Truncated)?
    } else {
        expected_pc.ok_or(DecodeError::MissingPc)?
    };
    let next_pc = match fmt {
        FMT_OTHER => {
            // class(2) + three optional registers.
            if !reader.skip_bits(2) {
                return Err(DecodeError::Truncated);
            }
            for _ in 0..3 {
                skip_reg(reader)?;
            }
            pc.wrapping_add(4)
        }
        FMT_MEM => {
            // kind(1) + size(2) + addr(32) + two optional registers.
            if !reader.skip_bits(1 + 2 + 32) {
                return Err(DecodeError::Truncated);
            }
            for _ in 0..2 {
                skip_reg(reader)?;
            }
            pc.wrapping_add(4)
        }
        _ => {
            // kind(3), then taken/target — the only payload skipping
            // must decode, because a taken branch redirects the
            // implicit-PC chain.
            if !reader.skip_bits(3) {
                return Err(DecodeError::Truncated);
            }
            let taken = reader.get_bool().ok_or(DecodeError::Truncated)?;
            let target = reader.get(32).ok_or(DecodeError::Truncated)?;
            for _ in 0..2 {
                skip_reg(reader)?;
            }
            if taken {
                target
            } else {
                pc.wrapping_add(4)
            }
        }
    };
    let pad = (8 - reader.position() % 8) % 8;
    if !reader.skip_bits(pad) {
        return Err(DecodeError::Truncated);
    }
    *expected_pc = Some(next_pc);
    Ok(true)
}

fn skip_reg<B: BitRead>(r: &mut B) -> Result<(), DecodeError> {
    let present = r.get_bool().ok_or(DecodeError::Truncated)?;
    if present && !r.skip_bits(6) {
        return Err(DecodeError::Truncated);
    }
    Ok(())
}

/// Errors produced when decoding a packed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The bit stream ended in the middle of a record.
    Truncated,
    /// Reserved format tag encountered.
    BadFormat(u8),
    /// An enum field held an out-of-range value.
    BadEnum(&'static str),
    /// First record used implicit-PC encoding (nothing to inherit from).
    MissingPc,
    /// A v2 varint claimed more groups than a 64-bit value can need.
    BadVarint,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "trace bit stream truncated mid-record"),
            DecodeError::BadFormat(v) => write!(f, "reserved trace format tag {v}"),
            DecodeError::BadEnum(what) => write!(f, "invalid {what} field value"),
            DecodeError::MissingPc => {
                write!(f, "implicit pc encoding with no preceding record")
            }
            DecodeError::BadVarint => write!(f, "overlong varint in v2 stream"),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Other(OtherRecord {
                pc: 0x40_0000,
                class: OpClass::IntAlu,
                dest: Some(Reg::new(3)),
                src1: Some(Reg::new(1)),
                src2: Some(Reg::new(2)),
                wrong_path: false,
            }),
            TraceRecord::Mem(MemRecord {
                pc: 0x40_0004,
                addr: 0x1000_0040,
                size: MemSize::Word,
                kind: MemKind::Load,
                base: Some(Reg::new(29)),
                data: Some(Reg::new(4)),
                wrong_path: false,
            }),
            TraceRecord::Branch(BranchRecord {
                pc: 0x40_0008,
                target: 0x40_0100,
                taken: true,
                kind: BranchKind::Cond,
                src1: Some(Reg::new(4)),
                src2: None,
                wrong_path: false,
            }),
            // Wrong-path block entered at the fall-through (explicit pc).
            TraceRecord::Other(OtherRecord {
                pc: 0x40_000C,
                class: OpClass::Nop,
                dest: None,
                src1: None,
                src2: None,
                wrong_path: true,
            }),
            // Correct path resumes at the target (explicit pc again).
            TraceRecord::Other(OtherRecord {
                pc: 0x40_0100,
                class: OpClass::IntDiv,
                dest: Some(Reg::new(8)),
                src1: Some(Reg::new(8)),
                src2: Some(Reg::new(9)),
                wrong_path: false,
            }),
        ]
    }

    #[test]
    fn roundtrip_sample() {
        let trace = Trace::from_records(sample_records());
        let enc = trace.encode();
        assert_eq!(enc.len(), 5);
        let dec = enc.decode().unwrap();
        assert_eq!(dec.records(), trace.records());
    }

    #[test]
    fn sequential_pc_is_implicit() {
        // Two sequential ALU ops: second record must not carry a 32-bit pc.
        let mk = |pc| {
            TraceRecord::Other(OtherRecord {
                pc,
                class: OpClass::IntAlu,
                dest: None,
                src1: None,
                src2: None,
                wrong_path: false,
            })
        };
        let mut enc = TraceEncoder::new();
        enc.push(&mk(0x100));
        let first = enc.stats().total_bits();
        enc.push(&mk(0x104));
        let second = enc.stats().total_bits() - first;
        assert_eq!(second, first - 32, "sequential record should drop the pc");
        assert_eq!(second % 8, 0, "records are byte-aligned");
    }

    #[test]
    fn taken_branch_target_becomes_implicit_base() {
        let mut enc = TraceEncoder::new();
        enc.push(&TraceRecord::Branch(BranchRecord {
            pc: 0x100,
            target: 0x800,
            taken: true,
            kind: BranchKind::Jump,
            src1: None,
            src2: None,
            wrong_path: false,
        }));
        let bits_before = enc.stats().total_bits();
        enc.push(&TraceRecord::Other(OtherRecord {
            pc: 0x800,
            class: OpClass::IntAlu,
            dest: None,
            src1: None,
            src2: None,
            wrong_path: false,
        }));
        // Header(4) + class(2) + three absent-reg flags(3) = 9 bits,
        // byte-aligned to 16.
        assert_eq!(enc.stats().total_bits() - bits_before, 16);
        let enc = enc.finish();
        let dec = enc.decode().unwrap();
        assert_eq!(dec.records()[1].pc(), 0x800);
    }

    #[test]
    fn truncated_stream_errors() {
        let trace = Trace::from_records(sample_records());
        let enc = trace.encode();
        let mut dec = TraceDecoder::new(enc.bytes(), enc.len_bits() - 8);
        let mut err = None;
        loop {
            match dec.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(DecodeError::Truncated));
    }

    #[test]
    fn bad_format_tag_errors() {
        let mut w = BitWriter::new();
        w.put(3, 2); // reserved format
        w.put(0, 2);
        let (bytes, bits) = w.finish();
        let mut dec = TraceDecoder::new(&bytes, bits);
        assert_eq!(dec.next_record(), Err(DecodeError::BadFormat(3)));
    }

    #[test]
    fn empty_stream_decodes_to_empty() {
        let enc = TraceEncoder::new().finish();
        assert!(enc.is_empty());
        let dec = enc.decode().unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn skip_record_stays_in_sync_with_decode() {
        use crate::TraceSource as _;
        let trace = Trace::from_records(sample_records());
        let enc = trace.encode();
        // Skip 3, decode the rest: must resume exactly at record 3 even
        // though records 1–3 ride the implicit/explicit PC chain.
        let mut src = enc.source();
        assert_eq!(src.skip(3), 3);
        assert_eq!(src.len_hint(), Some(2));
        let rest: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
        assert_eq!(rest, trace.records()[3..]);
        assert!(src.error().is_none());
    }

    #[test]
    fn skip_every_prefix_then_decode_suffix() {
        use crate::TraceSource as _;
        let trace = Trace::from_records(sample_records());
        let enc = trace.encode();
        for n in 0..=trace.len() {
            let mut src = enc.source();
            assert_eq!(src.skip(n as u64), n as u64);
            let rest: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
            assert_eq!(rest, trace.records()[n..], "suffix after skipping {n}");
        }
        // Skipping past the end clamps.
        let mut src = enc.source();
        assert_eq!(src.skip(100), trace.len() as u64);
        assert!(src.next_record().is_none());
    }

    #[test]
    fn encoded_source_streams_whole_trace() {
        use crate::TraceSource as _;
        let trace = Trace::from_records(sample_records());
        let enc = trace.encode();
        let mut src = enc.source();
        assert_eq!(src.len_hint(), Some(5));
        let all: Vec<TraceRecord> = std::iter::from_fn(|| src.next_record()).collect();
        assert_eq!(all, trace.records());
        assert!(src.next_record().is_none(), "fused after end");
    }

    #[test]
    fn encoded_source_surfaces_decode_errors() {
        use crate::TraceSource as _;
        let trace = Trace::from_records(sample_records());
        let enc = trace.encode();
        let mut bad = EncodedSource {
            inner: SourceInner::V1(TraceDecoder::new(enc.bytes(), enc.len_bits() - 8)),
            remaining: enc.len(),
            error: None,
        };
        while bad.next_record().is_some() {}
        assert_eq!(bad.error(), Some(DecodeError::Truncated));
        assert_eq!(bad.skip(1), 0, "errored source skips nothing");
    }

    #[test]
    fn stats_match_encoded_size() {
        let trace = Trace::from_records(sample_records());
        let enc = trace.encode();
        assert_eq!(enc.stats().total_bits(), enc.len_bits());
        assert_eq!(enc.stats().total_records(), enc.len());
    }
}
