//! The three pre-decoded record formats: Branch (B), Memory (M), Other (O).
//!
//! The field inventory follows the paper's §V.A: each dynamic instruction is
//! stored in one of three formats, "each with its own fields and length",
//! and every format carries a *Tag Bit* used for mis-speculation handling.
//! The concrete fields are the minimum a trace-driven timing model needs:
//! program counter (for I-cache and BTB indexing), register names (for the
//! rename table and wakeup), effective addresses (for the LSQ and D-cache),
//! and branch outcome/target (for misfetch and misprediction modelling).

use std::fmt;

/// Maximum number of architectural register names in a trace (6-bit field).
pub const MAX_REGS: u8 = 64;

/// An architectural register name as carried in the trace.
///
/// Registers are a flat 6-bit namespace (0–63): enough for PISA's or
/// Alpha's 32 integer registers plus 32 more names for FP/HI/LO without the
/// engine caring which ISA produced the trace. The timing engine only
/// compares names for equality when renaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64` (names are a 6-bit trace field).
    pub fn new(index: u8) -> Self {
        assert!(index < MAX_REGS, "register index {index} out of range 0..64");
        Reg(index)
    }

    /// Creates a register name, returning `None` when out of range.
    pub fn try_new(index: u8) -> Option<Self> {
        (index < MAX_REGS).then_some(Reg(index))
    }

    /// The raw 6-bit index.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Which half of the namespace this name belongs to.
    pub fn class(self) -> RegClass {
        if self.0 < 32 {
            RegClass::Int
        } else {
            RegClass::Ext
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.0),
            RegClass::Ext => write!(f, "x{}", self.0 - 32),
        }
    }
}

/// Register namespace halves (integer vs. extended/FP names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Integer register file names (0–31).
    Int,
    /// Extended names (32–63): FP, HI/LO, or other ISA-specific state.
    Ext,
}

/// Operation class of an *Other* (non-memory, non-branch) record.
///
/// The class selects which functional-unit pool the instruction needs and
/// thereby its execution latency (paper §V.C: four ALUs, one multiplier and
/// one divider with 1-, 3- and 10-cycle latencies in the reference
/// configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (also carries FP-add class ops).
    #[default]
    IntAlu,
    /// Multiply-class operation (3-cycle default latency).
    IntMult,
    /// Divide-class operation (10-cycle default latency).
    IntDiv,
    /// No-operation: occupies fetch/dispatch/commit slots but no FU.
    Nop,
}

impl OpClass {
    /// All classes, in encoding order.
    pub const ALL: [OpClass; 4] = [OpClass::IntAlu, OpClass::IntMult, OpClass::IntDiv, OpClass::Nop];

    /// 2-bit trace encoding.
    pub(crate) fn encode(self) -> u32 {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMult => 1,
            OpClass::IntDiv => 2,
            OpClass::Nop => 3,
        }
    }

    pub(crate) fn decode(v: u32) -> Option<Self> {
        Some(match v {
            0 => OpClass::IntAlu,
            1 => OpClass::IntMult,
            2 => OpClass::IntDiv,
            3 => OpClass::Nop,
            _ => return None,
        })
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMult => "mult",
            OpClass::IntDiv => "div",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// Control-flow kind of a Branch record.
///
/// The kind drives the branch predictor: conditional branches consult the
/// direction predictor, calls push the RAS, returns pop it, and indirect
/// jumps rely purely on the BTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BranchKind {
    /// Conditional direct branch.
    #[default]
    Cond,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (pushes return address on the RAS).
    Call,
    /// Return (pops the RAS).
    Return,
    /// Indirect jump through a register.
    IndirectJump,
    /// Indirect call through a register (pushes the RAS).
    IndirectCall,
}

impl BranchKind {
    /// All kinds, in encoding order.
    pub const ALL: [BranchKind; 6] = [
        BranchKind::Cond,
        BranchKind::Jump,
        BranchKind::Call,
        BranchKind::Return,
        BranchKind::IndirectJump,
        BranchKind::IndirectCall,
    ];

    /// Whether this kind is unconditional (always taken).
    pub fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::Cond)
    }

    /// Whether this kind pushes a return address onto the RAS.
    pub fn pushes_ras(self) -> bool {
        matches!(self, BranchKind::Call | BranchKind::IndirectCall)
    }

    /// Whether this kind pops the RAS.
    pub fn pops_ras(self) -> bool {
        matches!(self, BranchKind::Return)
    }

    /// Whether the target comes from a register (BTB-predicted only).
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchKind::Return | BranchKind::IndirectJump | BranchKind::IndirectCall
        )
    }

    pub(crate) fn encode(self) -> u32 {
        match self {
            BranchKind::Cond => 0,
            BranchKind::Jump => 1,
            BranchKind::Call => 2,
            BranchKind::Return => 3,
            BranchKind::IndirectJump => 4,
            BranchKind::IndirectCall => 5,
        }
    }

    pub(crate) fn decode(v: u32) -> Option<Self> {
        Some(match v {
            0 => BranchKind::Cond,
            1 => BranchKind::Jump,
            2 => BranchKind::Call,
            3 => BranchKind::Return,
            4 => BranchKind::IndirectJump,
            5 => BranchKind::IndirectCall,
            _ => return None,
        })
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Cond => "cond",
            BranchKind::Jump => "jump",
            BranchKind::Call => "call",
            BranchKind::Return => "ret",
            BranchKind::IndirectJump => "ijump",
            BranchKind::IndirectCall => "icall",
        };
        f.write_str(s)
    }
}

/// Direction of a Memory record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemKind {
    /// Load: reads memory into `data` (destination register).
    #[default]
    Load,
    /// Store: writes register `data` to memory at commit.
    Store,
}

impl MemKind {
    pub(crate) fn encode(self) -> u32 {
        match self {
            MemKind::Load => 0,
            MemKind::Store => 1,
        }
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemKind::Load => "load",
            MemKind::Store => "store",
        })
    }
}

/// Access size of a Memory record (2-bit field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemSize {
    /// One byte.
    Byte,
    /// Two bytes.
    Half,
    /// Four bytes.
    #[default]
    Word,
    /// Eight bytes.
    Double,
}

impl MemSize {
    /// All sizes, in encoding order.
    pub const ALL: [MemSize; 4] = [MemSize::Byte, MemSize::Half, MemSize::Word, MemSize::Double];

    /// Size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::Byte => 1,
            MemSize::Half => 2,
            MemSize::Word => 4,
            MemSize::Double => 8,
        }
    }

    pub(crate) fn encode(self) -> u32 {
        match self {
            MemSize::Byte => 0,
            MemSize::Half => 1,
            MemSize::Word => 2,
            MemSize::Double => 3,
        }
    }

    pub(crate) fn decode(v: u32) -> Option<Self> {
        Some(match v {
            0 => MemSize::Byte,
            1 => MemSize::Half,
            2 => MemSize::Word,
            3 => MemSize::Double,
            _ => return None,
        })
    }
}

/// A Branch (B) format record: one dynamic control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchRecord {
    /// Program counter of the branch.
    pub pc: u32,
    /// Actual (resolved) target address.
    pub target: u32,
    /// Actual (resolved) direction. Always `true` for unconditional kinds.
    pub taken: bool,
    /// Control-flow kind.
    pub kind: BranchKind,
    /// First source register (condition or target operand), if any.
    pub src1: Option<Reg>,
    /// Second source register, if any.
    pub src2: Option<Reg>,
    /// Tag bit: `true` marks a wrong-path (mis-speculated) instruction.
    pub wrong_path: bool,
}

impl BranchRecord {
    /// The fall-through address (next sequential PC).
    pub fn fallthrough(&self) -> u32 {
        self.pc.wrapping_add(4)
    }

    /// The address fetch should proceed from after this branch resolves.
    pub fn next_pc(&self) -> u32 {
        if self.taken {
            self.target
        } else {
            self.fallthrough()
        }
    }
}

/// A Memory (M) format record: one dynamic load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRecord {
    /// Program counter of the memory instruction.
    pub pc: u32,
    /// Effective (virtual) address, already resolved by the functional side.
    pub addr: u32,
    /// Access width.
    pub size: MemSize,
    /// Load or store.
    pub kind: MemKind,
    /// Address base register (source dependency for address generation).
    pub base: Option<Reg>,
    /// For loads: destination register. For stores: data source register.
    pub data: Option<Reg>,
    /// Tag bit: `true` marks a wrong-path instruction.
    pub wrong_path: bool,
}

impl MemRecord {
    /// Whether this record is a load.
    pub fn is_load(&self) -> bool {
        self.kind == MemKind::Load
    }

    /// Whether this record is a store.
    pub fn is_store(&self) -> bool {
        self.kind == MemKind::Store
    }

    /// Whether `self` and `other` touch overlapping byte ranges.
    pub fn overlaps(&self, other: &MemRecord) -> bool {
        let a0 = self.addr as u64;
        let a1 = a0 + self.size.bytes() as u64;
        let b0 = other.addr as u64;
        let b1 = b0 + other.size.bytes() as u64;
        a0 < b1 && b0 < a1
    }
}

/// An Other (O) format record: any non-memory, non-branch instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OtherRecord {
    /// Program counter.
    pub pc: u32,
    /// Functional-unit class (determines execution latency).
    pub class: OpClass,
    /// Destination register, if the instruction writes one.
    pub dest: Option<Reg>,
    /// First source register, if any.
    pub src1: Option<Reg>,
    /// Second source register, if any.
    pub src2: Option<Reg>,
    /// Tag bit: `true` marks a wrong-path instruction.
    pub wrong_path: bool,
}

/// One pre-decoded dynamic instruction in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceRecord {
    /// Control-flow instruction (B format).
    Branch(BranchRecord),
    /// Load or store (M format).
    Mem(MemRecord),
    /// Everything else (O format).
    Other(OtherRecord),
}

impl TraceRecord {
    /// Program counter of the instruction.
    pub fn pc(&self) -> u32 {
        match self {
            TraceRecord::Branch(b) => b.pc,
            TraceRecord::Mem(m) => m.pc,
            TraceRecord::Other(o) => o.pc,
        }
    }

    /// The Tag bit: whether this is a wrong-path instruction.
    pub fn wrong_path(&self) -> bool {
        match self {
            TraceRecord::Branch(b) => b.wrong_path,
            TraceRecord::Mem(m) => m.wrong_path,
            TraceRecord::Other(o) => o.wrong_path,
        }
    }

    /// Sets the Tag bit.
    pub fn set_wrong_path(&mut self, tag: bool) {
        match self {
            TraceRecord::Branch(b) => b.wrong_path = tag,
            TraceRecord::Mem(m) => m.wrong_path = tag,
            TraceRecord::Other(o) => o.wrong_path = tag,
        }
    }

    /// Destination register written by this instruction, if any.
    ///
    /// Loads write their `data` register; stores write nothing; branches
    /// write nothing at the timing level (link registers are modelled as
    /// part of the call's `Other` micro-sequence by the front ends that
    /// need them).
    pub fn dest(&self) -> Option<Reg> {
        match self {
            TraceRecord::Branch(_) => None,
            TraceRecord::Mem(m) => m.is_load().then_some(m.data).flatten(),
            TraceRecord::Other(o) => o.dest,
        }
    }

    /// Source registers read by this instruction (up to two).
    pub fn sources(&self) -> [Option<Reg>; 2] {
        match self {
            TraceRecord::Branch(b) => [b.src1, b.src2],
            TraceRecord::Mem(m) => match m.kind {
                MemKind::Load => [m.base, None],
                MemKind::Store => [m.base, m.data],
            },
            TraceRecord::Other(o) => [o.src1, o.src2],
        }
    }

    /// The PC the *next sequential* record would have if no control flow
    /// transfer happens (taken branches redirect to their target instead).
    pub fn implied_next_pc(&self) -> u32 {
        match self {
            TraceRecord::Branch(b) => b.next_pc(),
            _ => self.pc().wrapping_add(4),
        }
    }

    /// Whether this record is a branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, TraceRecord::Branch(_))
    }

    /// Whether this record is a load.
    pub fn is_load(&self) -> bool {
        matches!(self, TraceRecord::Mem(m) if m.is_load())
    }

    /// Whether this record is a store.
    pub fn is_store(&self) -> bool {
        matches!(self, TraceRecord::Mem(m) if m.is_store())
    }
}

impl From<BranchRecord> for TraceRecord {
    fn from(b: BranchRecord) -> Self {
        TraceRecord::Branch(b)
    }
}

impl From<MemRecord> for TraceRecord {
    fn from(m: MemRecord) -> Self {
        TraceRecord::Mem(m)
    }
}

impl From<OtherRecord> for TraceRecord {
    fn from(o: OtherRecord) -> Self {
        TraceRecord::Other(o)
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.wrong_path() { " [wp]" } else { "" };
        match self {
            TraceRecord::Branch(b) => write!(
                f,
                "{:#010x}: B {} -> {:#010x} ({}){}",
                b.pc,
                b.kind,
                b.target,
                if b.taken { "taken" } else { "not-taken" },
                tag
            ),
            TraceRecord::Mem(m) => write!(
                f,
                "{:#010x}: M {} @{:#010x} x{}{}",
                m.pc,
                m.kind,
                m.addr,
                m.size.bytes(),
                tag
            ),
            TraceRecord::Other(o) => write!(f, "{:#010x}: O {}{}", o.pc, o.class, tag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_class() {
        let r = Reg::new(5);
        assert_eq!(r.index(), 5);
        assert_eq!(r.class(), RegClass::Int);
        assert_eq!(Reg::new(40).class(), RegClass::Ext);
        assert_eq!(format!("{}", Reg::new(40)), "x8");
        assert_eq!(format!("{}", Reg::new(7)), "r7");
        assert!(Reg::try_new(63).is_some());
        assert!(Reg::try_new(64).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(64);
    }

    #[test]
    fn branch_next_pc() {
        let b = BranchRecord {
            pc: 0x100,
            target: 0x200,
            taken: true,
            kind: BranchKind::Cond,
            src1: None,
            src2: None,
            wrong_path: false,
        };
        assert_eq!(b.next_pc(), 0x200);
        assert_eq!(b.fallthrough(), 0x104);
        let nt = BranchRecord { taken: false, ..b };
        assert_eq!(nt.next_pc(), 0x104);
    }

    #[test]
    fn branch_kind_properties() {
        assert!(BranchKind::Call.pushes_ras());
        assert!(BranchKind::IndirectCall.pushes_ras());
        assert!(BranchKind::Return.pops_ras());
        assert!(BranchKind::Return.is_indirect());
        assert!(!BranchKind::Cond.is_unconditional());
        assert!(BranchKind::Jump.is_unconditional());
        for k in BranchKind::ALL {
            assert_eq!(BranchKind::decode(k.encode()), Some(k));
        }
        assert_eq!(BranchKind::decode(7), None);
    }

    #[test]
    fn opclass_roundtrip() {
        for c in OpClass::ALL {
            assert_eq!(OpClass::decode(c.encode()), Some(c));
        }
        assert_eq!(OpClass::decode(9), None);
    }

    #[test]
    fn memsize_roundtrip() {
        for s in MemSize::ALL {
            assert_eq!(MemSize::decode(s.encode()), Some(s));
            assert!(s.bytes().is_power_of_two());
        }
    }

    #[test]
    fn mem_overlap() {
        let mk = |addr, size| MemRecord {
            pc: 0,
            addr,
            size,
            kind: MemKind::Load,
            base: None,
            data: None,
            wrong_path: false,
        };
        assert!(mk(100, MemSize::Word).overlaps(&mk(102, MemSize::Half)));
        assert!(!mk(100, MemSize::Word).overlaps(&mk(104, MemSize::Word)));
        assert!(mk(100, MemSize::Byte).overlaps(&mk(100, MemSize::Byte)));
        assert!(!mk(101, MemSize::Byte).overlaps(&mk(100, MemSize::Byte)));
    }

    #[test]
    fn record_sources_and_dest() {
        let load = TraceRecord::Mem(MemRecord {
            pc: 0,
            addr: 0x80,
            size: MemSize::Word,
            kind: MemKind::Load,
            base: Some(Reg::new(4)),
            data: Some(Reg::new(9)),
            wrong_path: false,
        });
        assert_eq!(load.dest(), Some(Reg::new(9)));
        assert_eq!(load.sources(), [Some(Reg::new(4)), None]);

        let store = TraceRecord::Mem(MemRecord {
            pc: 0,
            addr: 0x80,
            size: MemSize::Word,
            kind: MemKind::Store,
            base: Some(Reg::new(4)),
            data: Some(Reg::new(9)),
            wrong_path: false,
        });
        assert_eq!(store.dest(), None);
        assert_eq!(store.sources(), [Some(Reg::new(4)), Some(Reg::new(9))]);
    }

    #[test]
    fn display_formats() {
        let o = TraceRecord::Other(OtherRecord {
            pc: 0x1000,
            class: OpClass::IntMult,
            dest: None,
            src1: None,
            src2: None,
            wrong_path: true,
        });
        let s = format!("{o}");
        assert!(s.contains("mult"));
        assert!(s.contains("[wp]"));
    }
}
