//! The RSTR v2 record bit layout: delta/run-length compression on top of
//! the v1 field inventory.
//!
//! Layout version 2 carries exactly the same information as the Table-3
//! layout in [`codec`](crate::codec) — the three record formats, the Tag
//! bit, full 32-bit addresses and targets — but spends its bits where the
//! streams are predictable instead of padding every record to a byte
//! boundary:
//!
//! * **Grouped PC runs.** Records are framed in *groups*: one PC field
//!   (a zigzag varint delta against the PC the previous record implied,
//!   or an explicit 32-bit escape) followed by a varint run length `n`,
//!   then `1 + n` record payloads that all ride the implied-PC chain.
//!   Sequential code costs its PC once per basic block instead of once
//!   per discontinuity *plus* a flag bit per record.
//! * **Run-length-encoded branch outcomes.** Branch directions are a
//!   highly biased bit stream; v2 stores them as alternating run lengths.
//!   The first run carries one direction bit; every later run flips the
//!   direction implicitly, so `k` consecutive same-direction branches
//!   cost one small varint instead of `k` bits.
//! * **Delta-coded addresses.** A memory record's effective address is a
//!   zigzag varint delta against the previous memory record's address; a
//!   branch target is a delta against its own PC. Both fall back to an
//!   explicit 32-bit escape when the delta would not pay for itself.
//! * **No per-record alignment.** Records pack back to back; only the
//!   container's byte stream pads the final byte.
//!
//! Wire layout (LSB-first bit order):
//!
//! ```text
//! body     = group*                      until the record count is reached
//! group    = pcfield varint(n) record{1+n}
//! pcfield  = 1 varint(zigzag(pc - expected_pc))   delta form
//!          | 0 pc(32)                             escape form
//! record   = fmt(2) tag(1) payload
//! O        : class(2) dest?(1[+6]) src1?(1[+6]) src2?(1[+6])
//! M        : kind(1) size(2) addrfield base?(1[+6]) data?(1[+6])
//! B        : kind(3) [run start: [first run only: dir(1)] rle(len-1)]
//!            targetfield src1?(1[+6]) src2?(1[+6])
//! varint   = (cont(1) group(7))+        LSB group first, ≤ 10 groups
//! rle      = (cont(1) group(2))+        LSB group first, ≤ 32 groups
//! ```
//!
//! `expected_pc` starts at 0; a memory record's address reference starts
//! at 0. Decoding is strictly streaming: the decoder state is a handful
//! of words ([`V2State`]) regardless of trace length, so the same record
//! parser serves in-memory buffers and the on-disk
//! [`FileSource`](crate::FileSource).

use crate::bits::{BitRead, BitWriter};
use crate::codec::{
    get_reg, put_reg, DecodeError, EncodedTrace, FMT_BRANCH, FMT_MEM, FMT_OTHER,
};
use crate::record::{
    BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OpClass, OtherRecord, TraceRecord,
};
use crate::stats::TraceStats;

/// The layout version tag written by [`encode_v2`](crate::Trace::encode_v2).
///
/// Containers carrying this tag in their header are decoded by the
/// routines in this module; version-1 bodies keep decoding through the
/// original Table-3 codec, bit for bit.
pub const TRACE_LAYOUT_VERSION_V2: u16 = 2;

/// Largest zigzag value the delta form of a PC/address/target field may
/// carry: three 7-bit varint groups (25 bits with the mode flag) still
/// undercut the 33-bit explicit escape; a fourth group would not.
const DELTA_MAX: u32 = (1 << 21) - 1;

fn zigzag(delta: u32) -> u32 {
    let d = delta as i32;
    ((d << 1) ^ (d >> 31)) as u32
}

fn unzigzag(z: u32) -> u32 {
    (z >> 1) ^ 0u32.wrapping_sub(z & 1)
}

/// Appends `v` as a bit-level LEB128 varint: 8-bit groups of one
/// continuation flag plus seven value bits, least-significant group first.
pub(crate) fn put_varint(w: &mut BitWriter, mut v: u64) {
    loop {
        let group = (v & 0x7F) as u32;
        v >>= 7;
        w.put_bool(v != 0);
        w.put(group, 7);
        if v == 0 {
            break;
        }
    }
}

/// Reads a varint written by [`put_varint`].
///
/// A stream claiming more than the ten groups a `u64` can need is
/// malformed ([`DecodeError::BadVarint`]), not an infinite loop.
pub(crate) fn get_varint<B: BitRead>(r: &mut B) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let cont = r.get_bool().ok_or(DecodeError::Truncated)?;
        let group = u64::from(r.get(7).ok_or(DecodeError::Truncated)?);
        if shift == 63 && group > 1 {
            return Err(DecodeError::BadVarint);
        }
        v |= group << shift;
        if !cont {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::BadVarint);
        }
    }
}

/// Appends `v` as a run-length varint: 3-bit groups of one continuation
/// flag plus two value bits. Outcome runs are usually short, so the
/// smallest group size that still grows geometrically wins.
fn put_rle(w: &mut BitWriter, mut v: u64) {
    loop {
        let group = (v & 0x3) as u32;
        v >>= 2;
        w.put_bool(v != 0);
        w.put(group, 2);
        if v == 0 {
            break;
        }
    }
}

fn get_rle<B: BitRead>(r: &mut B) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let cont = r.get_bool().ok_or(DecodeError::Truncated)?;
        let group = u64::from(r.get(2).ok_or(DecodeError::Truncated)?);
        v |= group << shift;
        if !cont {
            return Ok(v);
        }
        shift += 2;
        if shift > 62 {
            return Err(DecodeError::BadVarint);
        }
    }
}

/// Writes a 32-bit field as either a zigzag varint delta against
/// `reference` or an explicit escape, whichever is shorter.
fn put_delta_field(w: &mut BitWriter, actual: u32, reference: u32) {
    let zz = zigzag(actual.wrapping_sub(reference));
    if zz <= DELTA_MAX {
        w.put_bool(true);
        put_varint(w, u64::from(zz));
    } else {
        w.put_bool(false);
        w.put(actual, 32);
    }
}

fn get_delta_field<B: BitRead>(r: &mut B, reference: u32) -> Result<u32, DecodeError> {
    if r.get_bool().ok_or(DecodeError::Truncated)? {
        let zz = get_varint(r)?;
        let zz = u32::try_from(zz).map_err(|_| DecodeError::BadVarint)?;
        Ok(reference.wrapping_add(unzigzag(zz)))
    } else {
        r.get(32).ok_or(DecodeError::Truncated)
    }
}

/// Encodes a whole record sequence into the v2 bit layout.
///
/// Unlike the v1 [`TraceEncoder`](crate::TraceEncoder), v2 encoding is a
/// whole-trace pass: forming PC groups and outcome runs needs lookahead,
/// which an on-the-fly link encoder does not have. The returned
/// [`EncodedTrace`] reports [`TRACE_LAYOUT_VERSION_V2`] and decodes
/// through the same `decode`/`source` entry points as a v1 trace.
pub(crate) fn encode_v2(records: &[TraceRecord]) -> EncodedTrace {
    let mut w = BitWriter::new();
    let mut stats = TraceStats::new();
    let mut expected_pc: u32 = 0;
    let mut prev_addr: u32 = 0;
    let mut outcome: Option<bool> = None;
    let mut outcome_left: u64 = 0;
    let mut i = 0usize;
    while i < records.len() {
        let group_start = w.len_bits();
        put_delta_field(&mut w, records[i].pc(), expected_pc);
        // Maximal run of records riding the implied-PC chain.
        let mut run = 0u64;
        let mut chain = records[i].implied_next_pc();
        while let Some(r) = records.get(i + 1 + run as usize) {
            if r.pc() != chain {
                break;
            }
            chain = r.implied_next_pc();
            run += 1;
        }
        put_varint(&mut w, run);
        let header_bits = w.len_bits() - group_start;
        for k in 0..=(run as usize) {
            let r = &records[i + k];
            let before = w.len_bits();
            encode_record_v2(
                &mut w,
                r,
                &mut prev_addr,
                &mut outcome,
                &mut outcome_left,
                records,
                i + k,
            );
            let mut bits = w.len_bits() - before;
            if k == 0 {
                // The group header is billed to the record that opened it.
                bits += header_bits;
            }
            stats.account(r, bits);
        }
        i += run as usize + 1;
        expected_pc = records[i - 1].implied_next_pc();
    }
    let (bytes, len_bits) = w.finish();
    EncodedTrace::from_raw_parts(
        bytes,
        len_bits,
        records.len() as u64,
        stats,
        TRACE_LAYOUT_VERSION_V2,
    )
}

fn encode_record_v2(
    w: &mut BitWriter,
    record: &TraceRecord,
    prev_addr: &mut u32,
    outcome: &mut Option<bool>,
    outcome_left: &mut u64,
    records: &[TraceRecord],
    idx: usize,
) {
    let fmt = match record {
        TraceRecord::Other(_) => FMT_OTHER,
        TraceRecord::Mem(_) => FMT_MEM,
        TraceRecord::Branch(_) => FMT_BRANCH,
    };
    w.put(fmt, 2);
    w.put_bool(record.wrong_path());
    match record {
        TraceRecord::Other(o) => {
            w.put(o.class.encode(), 2);
            put_reg(w, o.dest);
            put_reg(w, o.src1);
            put_reg(w, o.src2);
        }
        TraceRecord::Mem(m) => {
            w.put(m.kind.encode(), 1);
            w.put(m.size.encode(), 2);
            put_delta_field(w, m.addr, *prev_addr);
            *prev_addr = m.addr;
            put_reg(w, m.base);
            put_reg(w, m.data);
        }
        TraceRecord::Branch(b) => {
            w.put(b.kind.encode(), 3);
            if *outcome_left == 0 {
                // Start a new outcome run: maximal span of branches (the
                // records between them do not matter) sharing `taken`.
                let mut len = 1u64;
                for r in &records[idx + 1..] {
                    if let TraceRecord::Branch(nb) = r {
                        if nb.taken == b.taken {
                            len += 1;
                        } else {
                            break;
                        }
                    }
                }
                if outcome.is_none() {
                    // Only the very first run spells out its direction;
                    // maximality makes every later run a flip.
                    w.put_bool(b.taken);
                }
                put_rle(w, len - 1);
                *outcome = Some(b.taken);
                *outcome_left = len;
            }
            debug_assert_eq!(*outcome, Some(b.taken), "outcome runs must alternate");
            *outcome_left -= 1;
            put_delta_field(w, b.target, b.pc);
            put_reg(w, b.src1);
            put_reg(w, b.src2);
        }
    }
}

/// Streaming v2 decoder state: everything the record parser carries
/// between records, O(1) in the trace length.
#[derive(Debug, Clone, Default)]
pub(crate) struct V2State {
    expected_pc: u32,
    group_left: u64,
    prev_addr: u32,
    outcome: Option<bool>,
    outcome_left: u64,
}

/// Decodes one v2 record from any [`BitRead`] source; `Ok(None)` at a
/// clean end of stream (which can only fall on a group boundary).
pub(crate) fn decode_record_bits_v2<B: BitRead>(
    reader: &mut B,
    st: &mut V2State,
) -> Result<Option<TraceRecord>, DecodeError> {
    let pc = if st.group_left == 0 {
        if reader.remaining_bits() == 0 {
            return Ok(None);
        }
        let pc = get_delta_field(reader, st.expected_pc)?;
        let run = get_varint(reader)?;
        st.group_left = run.checked_add(1).ok_or(DecodeError::BadVarint)?;
        pc
    } else {
        st.expected_pc
    };
    st.group_left -= 1;
    let fmt = reader.get(2).ok_or(DecodeError::Truncated)?;
    if fmt > FMT_BRANCH {
        return Err(DecodeError::BadFormat(fmt as u8));
    }
    let wrong_path = reader.get_bool().ok_or(DecodeError::Truncated)?;
    let record = match fmt {
        FMT_OTHER => {
            let class = reader.get(2).ok_or(DecodeError::Truncated)?;
            let class = OpClass::decode(class).ok_or(DecodeError::BadEnum("op class"))?;
            let dest = get_reg(reader)?;
            let src1 = get_reg(reader)?;
            let src2 = get_reg(reader)?;
            TraceRecord::Other(OtherRecord {
                pc,
                class,
                dest,
                src1,
                src2,
                wrong_path,
            })
        }
        FMT_MEM => {
            let kind = reader.get(1).ok_or(DecodeError::Truncated)?;
            let kind = if kind == 0 { MemKind::Load } else { MemKind::Store };
            let size = reader.get(2).ok_or(DecodeError::Truncated)?;
            let size = MemSize::decode(size).ok_or(DecodeError::BadEnum("mem size"))?;
            let addr = get_delta_field(reader, st.prev_addr)?;
            st.prev_addr = addr;
            let base = get_reg(reader)?;
            let data = get_reg(reader)?;
            TraceRecord::Mem(MemRecord {
                pc,
                addr,
                size,
                kind,
                base,
                data,
                wrong_path,
            })
        }
        _ => {
            let kind = reader.get(3).ok_or(DecodeError::Truncated)?;
            let kind = BranchKind::decode(kind).ok_or(DecodeError::BadEnum("branch kind"))?;
            if st.outcome_left == 0 {
                let dir = match st.outcome {
                    None => reader.get_bool().ok_or(DecodeError::Truncated)?,
                    Some(prev) => !prev,
                };
                let len = get_rle(reader)?.checked_add(1).ok_or(DecodeError::BadVarint)?;
                st.outcome = Some(dir);
                st.outcome_left = len;
            }
            let taken = st.outcome.unwrap_or(false);
            st.outcome_left -= 1;
            let target = get_delta_field(reader, pc)?;
            let src1 = get_reg(reader)?;
            let src2 = get_reg(reader)?;
            TraceRecord::Branch(BranchRecord {
                pc,
                target,
                taken,
                kind,
                src1,
                src2,
                wrong_path,
            })
        }
    };
    st.expected_pc = record.implied_next_pc();
    Ok(Some(record))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitReader;
    use crate::record::Reg;
    use crate::Trace;

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            let mut w = BitWriter::new();
            put_varint(&mut w, v);
            let (bytes, bits) = w.finish();
            let mut r = BitReader::new(&bytes, bits);
            assert_eq!(get_varint(&mut r), Ok(v), "varint {v}");
            assert_eq!(r.remaining_bits(), 0);
        }
    }

    #[test]
    fn rle_roundtrip() {
        for v in (0u64..70).chain([1000, u64::MAX]) {
            let mut w = BitWriter::new();
            put_rle(&mut w, v);
            let (bytes, bits) = w.finish();
            let mut r = BitReader::new(&bytes, bits);
            assert_eq!(get_rle(&mut r), Ok(v), "rle {v}");
            assert_eq!(r.remaining_bits(), 0);
        }
    }

    #[test]
    fn overlong_varint_is_an_error_not_a_hang() {
        // Eleven continuation groups: more than any u64 needs.
        let mut w = BitWriter::new();
        for _ in 0..11 {
            w.put_bool(true);
            w.put(0x7F, 7);
        }
        w.put_bool(false);
        w.put(0, 7);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(get_varint(&mut r), Err(DecodeError::BadVarint));
    }

    #[test]
    fn zigzag_maps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(u32::MAX), 1); // -1
        assert_eq!(zigzag(4), 8);
        for d in [0u32, 1, 4, 0xFFFF_FFFC, 0x8000_0000, u32::MAX] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn delta_field_escapes_large_jumps() {
        // A delta too wide for three varint groups must fall back to the
        // 33-bit escape instead of a 40-bit varint.
        let mut w = BitWriter::new();
        put_delta_field(&mut w, 0x8000_0000, 0);
        assert_eq!(w.len_bits(), 33);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes, bits);
        assert_eq!(get_delta_field(&mut r, 0), Ok(0x8000_0000));
    }

    fn alu(pc: u32) -> TraceRecord {
        TraceRecord::Other(OtherRecord {
            pc,
            class: OpClass::IntAlu,
            dest: Some(Reg::new(1)),
            src1: Some(Reg::new(2)),
            src2: None,
            wrong_path: false,
        })
    }

    fn branch(pc: u32, target: u32, taken: bool) -> TraceRecord {
        TraceRecord::Branch(BranchRecord {
            pc,
            target,
            taken,
            kind: BranchKind::Cond,
            src1: Some(Reg::new(4)),
            src2: None,
            wrong_path: false,
        })
    }

    #[test]
    fn sequential_block_costs_one_pc() {
        let records: Vec<TraceRecord> = (0..64).map(|i| alu(0x1000 + i * 4)).collect();
        let enc = encode_v2(&records);
        let dec = enc.decode().unwrap();
        assert_eq!(dec.records(), &records[..]);
        // One group: a single PC field + run length frame all 64 records,
        // and no per-record byte alignment. The v1 stream pads every
        // record to 24 bits here.
        let v1 = Trace::from_records(records).encode().len_bits();
        assert!(
            enc.len_bits() * 10 < v1 * 9,
            "sequential code must beat v1 by >10% ({} vs {v1} bits)",
            enc.len_bits()
        );
    }

    #[test]
    fn outcome_runs_alternate_and_roundtrip() {
        // taken,taken,taken,not,not,taken — three runs; interleave ALUs to
        // prove non-branch records do not split a run.
        let mut records = Vec::new();
        let outcomes = [true, true, true, false, false, true];
        let mut pc = 0x2000;
        for &t in &outcomes {
            records.push(alu(pc));
            pc += 4;
            records.push(branch(pc, if t { pc + 0x40 } else { pc + 4 }, t));
            pc = if t { pc + 0x40 } else { pc + 4 };
        }
        let enc = encode_v2(&records);
        let dec = enc.decode().unwrap();
        assert_eq!(dec.records(), &records[..]);
    }

    #[test]
    fn mem_addr_deltas_roundtrip() {
        let mk = |pc, addr| {
            TraceRecord::Mem(MemRecord {
                pc,
                addr,
                size: MemSize::Word,
                kind: MemKind::Load,
                base: Some(Reg::new(29)),
                data: Some(Reg::new(4)),
                wrong_path: false,
            })
        };
        // Strided, backwards, and wild addresses.
        let records = vec![
            mk(0x100, 0x1000_0000),
            mk(0x104, 0x1000_0004),
            mk(0x108, 0x0FFF_FFF0),
            mk(0x10C, 0xDEAD_BEEF),
            mk(0x110, 0xDEAD_BEF3),
        ];
        let enc = encode_v2(&records);
        assert_eq!(enc.decode().unwrap().records(), &records[..]);
    }

    #[test]
    fn empty_trace_is_empty_stream() {
        let enc = encode_v2(&[]);
        assert_eq!(enc.len_bits(), 0);
        assert!(enc.decode().unwrap().is_empty());
    }

    #[test]
    fn truncation_at_every_bit_errors_or_ends_cleanly() {
        let mut records = Vec::new();
        let mut pc = 0x400000;
        for i in 0..10u32 {
            records.push(alu(pc));
            pc += 4;
            if i % 3 == 2 {
                records.push(branch(pc, pc + 0x20, i % 2 == 0));
                pc += if i % 2 == 0 { 0x20 } else { 4 };
            }
        }
        let enc = encode_v2(&records);
        for cut in 0..enc.len_bits() {
            let mut st = V2State::default();
            let mut r = BitReader::new(enc.bytes(), cut);
            // Must terminate with Ok(None) or an error — never panic.
            while let Ok(Some(_)) = decode_record_bits_v2(&mut r, &mut st) {}
        }
    }

    #[test]
    fn stats_total_matches_stream_length() {
        let records: Vec<TraceRecord> = (0..10)
            .flat_map(|i| {
                let base = 0x8000 + i * 0x100;
                vec![alu(base), branch(base + 4, base + 0x100, true)]
            })
            .collect();
        let enc = encode_v2(&records);
        assert_eq!(enc.stats().total_bits(), enc.len_bits());
        assert_eq!(enc.stats().total_records(), records.len() as u64);
        assert_eq!(enc.layout_version(), TRACE_LAYOUT_VERSION_V2);
    }
}
