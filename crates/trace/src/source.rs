//! Streaming record sources.
//!
//! The engine pulls records through the [`TraceSource`] trait rather than
//! from a concrete buffer so the same front end serves both of the paper's
//! deployment modes: off-line traces "prepared off-line, for example for
//! bulk simulations with varying design parameters", and FAST-style
//! on-the-fly generation "in combination with a fast functional software
//! simulator" (§I).

use crate::record::TraceRecord;

/// A pull-based supplier of pre-decoded trace records in fetch order.
///
/// Returning `None` signals end of trace; sources must keep returning
/// `None` afterwards (fused behaviour).
pub trait TraceSource {
    /// Produces the next record, or `None` at end of trace.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// A hint of how many records remain, if known.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn next_record(&mut self) -> Option<TraceRecord> {
        (**self).next_record()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        (**self).next_record()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

/// A [`TraceSource`] over a borrowed record slice.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    records: &'a [TraceRecord],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Creates a source over `records`.
    pub fn new(records: &'a [TraceRecord]) -> Self {
        Self { records, pos: 0 }
    }

    /// Records consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl TraceSource for SliceSource<'_> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let r = self.records.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }

    fn len_hint(&self) -> Option<u64> {
        Some((self.records.len() - self.pos) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OpClass, OtherRecord};

    fn recs(n: u32) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                TraceRecord::Other(OtherRecord {
                    pc: i * 4,
                    class: OpClass::IntAlu,
                    dest: None,
                    src1: None,
                    src2: None,
                    wrong_path: false,
                })
            })
            .collect()
    }

    #[test]
    fn slice_source_yields_all_then_fuses() {
        let records = recs(3);
        let mut s = SliceSource::new(&records);
        assert_eq!(s.len_hint(), Some(3));
        assert!(s.next_record().is_some());
        assert!(s.next_record().is_some());
        assert_eq!(s.len_hint(), Some(1));
        assert!(s.next_record().is_some());
        assert!(s.next_record().is_none());
        assert!(s.next_record().is_none());
        assert_eq!(s.consumed(), 3);
    }

    #[test]
    fn source_through_mut_ref() {
        fn drain(mut src: impl TraceSource) -> u32 {
            let mut n = 0;
            while src.next_record().is_some() {
                n += 1;
            }
            n
        }
        let records = recs(5);
        let mut s = SliceSource::new(&records);
        assert_eq!(drain(&mut s), 5);
    }

    #[test]
    fn boxed_source() {
        let records = recs(2);
        let mut boxed: Box<dyn TraceSource + '_> = Box::new(SliceSource::new(&records));
        assert_eq!(boxed.len_hint(), Some(2));
        assert!(boxed.next_record().is_some());
    }
}
