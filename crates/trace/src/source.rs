//! Streaming record sources.
//!
//! The engine pulls records through the [`TraceSource`] trait rather than
//! from a concrete buffer so the same front end serves both of the paper's
//! deployment modes: off-line traces "prepared off-line, for example for
//! bulk simulations with varying design parameters", and FAST-style
//! on-the-fly generation "in combination with a fast functional software
//! simulator" (§I).

use crate::record::TraceRecord;

/// A pull-based supplier of pre-decoded trace records in fetch order.
///
/// Returning `None` signals end of trace; sources must keep returning
/// `None` afterwards (fused behaviour).
pub trait TraceSource {
    /// Produces the next record, or `None` at end of trace.
    fn next_record(&mut self) -> Option<TraceRecord>;

    /// Decodes up to `buf.len()` records into `buf`, returning how many
    /// were written (0 only at end of trace; fused thereafter).
    ///
    /// This is the batched counterpart of [`TraceSource::next_record`]:
    /// a consumer that pulls records in blocks pays the source's
    /// per-call costs (virtual dispatch, decoder state loads, bounds
    /// set-up) once per block instead of once per record. The default
    /// implementation loops `next_record`, so every source gets the API
    /// for free; sources with a cheaper block path override it —
    /// [`SliceSource`] copies a sub-slice, and the codec-backed sources
    /// ([`EncodedSource`](crate::EncodedSource),
    /// [`FileSource`](crate::FileSource)) run their bit-level decode
    /// loop without surfacing between records.
    ///
    /// Records land in `buf[..n]` in trace order; `buf[n..]` is left
    /// untouched. A short return (`n < buf.len()`) means end of trace,
    /// exactly like `next_record` returning `None`.
    fn fill(&mut self, buf: &mut [TraceRecord]) -> usize {
        let mut n = 0;
        while n < buf.len() {
            match self.next_record() {
                Some(r) => {
                    buf[n] = r;
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// A hint of how many records remain, if known.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Discards the next `n` records, returning how many were actually
    /// discarded (less than `n` only at end of trace).
    ///
    /// The default implementation decodes and drops records one by one;
    /// sources with cheaper seeks override it —
    /// [`SliceSource`] jumps its cursor in O(1), and
    /// [`EncodedSource`](crate::EncodedSource) pages over the bit stream
    /// without materialising records
    /// ([`TraceDecoder::skip_record`](crate::TraceDecoder::skip_record)).
    /// Sampled simulation uses this for warmup fast-forward between
    /// detailed windows.
    fn skip(&mut self, n: u64) -> u64 {
        for skipped in 0..n {
            if self.next_record().is_none() {
                return skipped;
            }
        }
        n
    }

    /// Borrows a sub-source yielding at most the next `records` records.
    ///
    /// The underlying source keeps whatever the window does not consume —
    /// this is the interval-iteration primitive of sampled simulation:
    /// each detailed window runs the engine over `source.window(d)` while
    /// the surrounding warmup loop keeps streaming the same source.
    fn window(&mut self, records: u64) -> Window<'_, Self>
    where
        Self: Sized,
    {
        Window {
            source: self,
            remaining: records,
        }
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn next_record(&mut self) -> Option<TraceRecord> {
        (**self).next_record()
    }

    fn fill(&mut self, buf: &mut [TraceRecord]) -> usize {
        (**self).fill(buf)
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }

    fn skip(&mut self, n: u64) -> u64 {
        (**self).skip(n)
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        (**self).next_record()
    }

    fn fill(&mut self, buf: &mut [TraceRecord]) -> usize {
        (**self).fill(buf)
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }

    fn skip(&mut self, n: u64) -> u64 {
        (**self).skip(n)
    }
}

/// A bounded view over a borrowed [`TraceSource`]: yields at most a fixed
/// number of records, then reports end of trace while the underlying
/// source retains its position. Created by [`TraceSource::window`].
#[derive(Debug)]
pub struct Window<'a, S: TraceSource> {
    source: &'a mut S,
    remaining: u64,
}

impl<S: TraceSource> Window<'_, S> {
    /// Unused budget: the window's record cap minus what it has yielded.
    /// Stays put when the underlying source ends early, so
    /// `cap - remaining()` is always the count actually consumed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<S: TraceSource> TraceSource for Window<'_, S> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        let r = self.source.next_record();
        if r.is_some() {
            self.remaining -= 1;
        }
        r
    }

    fn fill(&mut self, buf: &mut [TraceRecord]) -> usize {
        let cap = (buf.len() as u64).min(self.remaining) as usize;
        let n = self.source.fill(&mut buf[..cap]);
        self.remaining -= n as u64;
        n
    }

    fn len_hint(&self) -> Option<u64> {
        let cap = self.remaining;
        Some(self.source.len_hint().map_or(cap, |n| n.min(cap)))
    }

    fn skip(&mut self, n: u64) -> u64 {
        let skipped = self.source.skip(n.min(self.remaining));
        self.remaining -= skipped;
        skipped
    }
}

/// A [`TraceSource`] over a borrowed record slice.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    records: &'a [TraceRecord],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Creates a source over `records`.
    pub fn new(records: &'a [TraceRecord]) -> Self {
        Self { records, pos: 0 }
    }

    /// Records consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl TraceSource for SliceSource<'_> {
    fn next_record(&mut self) -> Option<TraceRecord> {
        let r = self.records.get(self.pos).copied();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }

    fn fill(&mut self, buf: &mut [TraceRecord]) -> usize {
        let n = buf.len().min(self.records.len() - self.pos);
        buf[..n].copy_from_slice(&self.records[self.pos..self.pos + n]);
        self.pos += n;
        n
    }

    fn len_hint(&self) -> Option<u64> {
        Some((self.records.len() - self.pos) as u64)
    }

    fn skip(&mut self, n: u64) -> u64 {
        let left = (self.records.len() - self.pos) as u64;
        let skipped = n.min(left);
        self.pos += skipped as usize;
        skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{OpClass, OtherRecord};

    fn recs(n: u32) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                TraceRecord::Other(OtherRecord {
                    pc: i * 4,
                    class: OpClass::IntAlu,
                    dest: None,
                    src1: None,
                    src2: None,
                    wrong_path: false,
                })
            })
            .collect()
    }

    #[test]
    fn slice_source_yields_all_then_fuses() {
        let records = recs(3);
        let mut s = SliceSource::new(&records);
        assert_eq!(s.len_hint(), Some(3));
        assert!(s.next_record().is_some());
        assert!(s.next_record().is_some());
        assert_eq!(s.len_hint(), Some(1));
        assert!(s.next_record().is_some());
        assert!(s.next_record().is_none());
        assert!(s.next_record().is_none());
        assert_eq!(s.consumed(), 3);
    }

    #[test]
    fn source_through_mut_ref() {
        fn drain(mut src: impl TraceSource) -> u32 {
            let mut n = 0;
            while src.next_record().is_some() {
                n += 1;
            }
            n
        }
        let records = recs(5);
        let mut s = SliceSource::new(&records);
        assert_eq!(drain(&mut s), 5);
    }

    #[test]
    fn boxed_source() {
        let records = recs(2);
        let mut boxed: Box<dyn TraceSource + '_> = Box::new(SliceSource::new(&records));
        assert_eq!(boxed.len_hint(), Some(2));
        assert!(boxed.next_record().is_some());
    }

    #[test]
    fn slice_skip_jumps_the_cursor() {
        let records = recs(10);
        let mut s = SliceSource::new(&records);
        assert_eq!(s.skip(3), 3);
        assert_eq!(s.consumed(), 3);
        assert_eq!(s.next_record().unwrap().pc(), 3 * 4);
        assert_eq!(s.skip(100), 6, "skip clamps at end of trace");
        assert!(s.next_record().is_none());
        assert_eq!(s.skip(1), 0);
    }

    /// A source that only implements `next_record`, exercising the default
    /// decode-and-discard `skip`.
    struct Minimal(SliceSource<'static>);
    impl TraceSource for Minimal {
        fn next_record(&mut self) -> Option<TraceRecord> {
            self.0.next_record()
        }
    }

    #[test]
    fn default_skip_matches_override() {
        let records: &'static [TraceRecord] = recs(10).leak();
        let mut fast = SliceSource::new(records);
        let mut slow = Minimal(SliceSource::new(records));
        assert_eq!(fast.skip(4), slow.skip(4));
        assert_eq!(fast.next_record(), slow.next_record());
        assert_eq!(fast.skip(99), slow.skip(99));
    }

    #[test]
    fn window_bounds_and_leaves_the_rest() {
        let records = recs(10);
        let mut s = SliceSource::new(&records);
        {
            let mut w = s.window(4);
            assert_eq!(w.len_hint(), Some(4));
            assert_eq!(w.skip(1), 1);
            assert_eq!(w.next_record().unwrap().pc(), 4);
            assert_eq!(w.remaining(), 2);
            assert!(w.next_record().is_some());
            assert!(w.next_record().is_some());
            assert!(w.next_record().is_none(), "window exhausted");
        }
        assert_eq!(s.consumed(), 4, "underlying source keeps the rest");
        assert_eq!(s.next_record().unwrap().pc(), 4 * 4);
    }

    #[test]
    fn window_larger_than_source_fuses() {
        let records = recs(2);
        let mut s = SliceSource::new(&records);
        let mut w = s.window(5);
        assert_eq!(w.len_hint(), Some(2), "hint clamps to the source");
        assert!(w.next_record().is_some());
        assert!(w.next_record().is_some());
        assert!(w.next_record().is_none());
        assert_eq!(
            w.remaining(),
            3,
            "budget is untouched by source exhaustion: 5 - 2 consumed"
        );
    }
}
