//! # resim-trace
//!
//! Pre-decoded instruction trace model for the ReSim trace-driven ILP
//! processor simulator (Fytraki & Pnevmatikatos, DATE 2009).
//!
//! ReSim never executes instructions: it consumes a *pre-decoded* trace in
//! which every dynamic instruction is one of three record formats —
//! **Branch (B)**, **Memory (M)** and **Other (O)** — each with its own
//! fields and bit length (paper §V.A). All formats carry a **Tag bit** that
//! marks *wrong-path* (mis-speculated) instructions inserted by the trace
//! generator after mispredicted branches.
//!
//! Because the trace is generic and fully decoded, the timing engine is
//! almost ISA-independent: any ISA whose dynamic behaviour can be projected
//! onto these three formats (PISA, Alpha, ...) is supported.
//!
//! This crate provides:
//!
//! * [`TraceRecord`] and its three variants ([`BranchRecord`],
//!   [`MemRecord`], [`OtherRecord`]) — the in-memory decoded form;
//! * a bit-exact variable-length codec ([`TraceEncoder`] /
//!   [`TraceDecoder`]) reproducing the paper's per-format trace lengths
//!   (Table 3 reports 41–47 bits per instruction on SPECINT 2000);
//! * [`Trace`], an owned record buffer, and the [`TraceSource`] streaming
//!   abstraction the engine consumes (supporting both off-line traces and
//!   FAST-style on-the-fly generation);
//! * [`TraceStats`], the bits-per-instruction accounting used by the
//!   paper's Table 3 trace-bandwidth analysis;
//! * a versioned **on-disk trace container** ([`TraceFileHeader`],
//!   [`save_trace_file`], streaming [`FileSource`]) so traces are
//!   generated once and replayed across tools — the file-system analogue
//!   of the paper's host→FPGA trace link (see the `resim` CLI).
//!
//! ## Example
//!
//! ```
//! use resim_trace::{BranchKind, BranchRecord, OtherRecord, OpClass, Reg,
//!                   Trace, TraceRecord};
//!
//! let mut trace = Trace::new();
//! trace.push(TraceRecord::Other(OtherRecord {
//!     pc: 0x1000,
//!     class: OpClass::IntAlu,
//!     dest: Some(Reg::new(3)),
//!     src1: Some(Reg::new(1)),
//!     src2: Some(Reg::new(2)),
//!     wrong_path: false,
//! }));
//! trace.push(TraceRecord::Branch(BranchRecord {
//!     pc: 0x1004,
//!     target: 0x2000,
//!     taken: true,
//!     kind: BranchKind::Cond,
//!     src1: Some(Reg::new(3)),
//!     src2: None,
//!     wrong_path: false,
//! }));
//!
//! let encoded = trace.encode();
//! let round = encoded.decode().expect("well-formed trace");
//! assert_eq!(round.records(), trace.records());
//! assert!(encoded.stats().bits_per_instruction() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod codec;
mod codec_v2;
mod file;
mod record;
mod source;
mod stats;

pub use bits::{BitReader, BitWriter};
pub use codec::{
    DecodeError, EncodedSource, EncodedTrace, TraceDecoder, TraceEncoder, TRACE_LAYOUT_VERSION,
};
pub use codec_v2::TRACE_LAYOUT_VERSION_V2;
pub use file::{
    save_trace_file, FileError, FileSource, TraceFileError, TraceFileHeader,
    SUPPORTED_LAYOUT_VERSIONS, TRACE_CONTAINER_VERSION, TRACE_FILE_MAGIC,
};
pub use record::{
    BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OpClass, OtherRecord, Reg, RegClass,
    TraceRecord,
};
pub use source::{SliceSource, TraceSource, Window};
pub use stats::TraceStats;

/// An owned, in-memory sequence of trace records.
///
/// A `Trace` is what the trace generator produces in batch mode and what
/// tests use to drive the engine deterministically. Use
/// [`Trace::encode`] to obtain the bit-packed wire format whose size the
/// paper's Table 3 analyses, and [`Trace::source`] to feed the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace from a vector of records.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Self { records }
    }

    /// Appends one record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// The records in program (fetch) order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records (dynamic instructions, wrong-path included).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of correct-path (untagged) records.
    pub fn correct_path_len(&self) -> usize {
        self.records.iter().filter(|r| !r.wrong_path()).count()
    }

    /// Number of wrong-path (Tag = 1) records.
    pub fn wrong_path_len(&self) -> usize {
        self.records.iter().filter(|r| r.wrong_path()).count()
    }

    /// Encodes into the bit-packed wire format (the v1 Table-3 layout).
    pub fn encode(&self) -> EncodedTrace {
        let mut enc = TraceEncoder::new();
        for r in &self.records {
            enc.push(r);
        }
        enc.finish()
    }

    /// Encodes into the delta/run-length-compressed v2 layout
    /// ([`TRACE_LAYOUT_VERSION_V2`]).
    ///
    /// v2 encoding is a whole-trace pass (PC grouping and branch-outcome
    /// runs need lookahead), so unlike [`Trace::encode`] there is no
    /// streaming encoder behind it. The result decodes through the same
    /// [`EncodedTrace::decode`]/[`EncodedTrace::source`] entry points and
    /// ships in the same on-disk container, negotiated via the header's
    /// layout-version field.
    pub fn encode_v2(&self) -> EncodedTrace {
        codec_v2::encode_v2(&self.records)
    }

    /// Computes the per-format statistics without keeping the encoded bytes.
    ///
    /// The bit counts match what [`Trace::encode`] would produce.
    pub fn stats(&self) -> TraceStats {
        self.encode().stats().clone()
    }

    /// A [`TraceSource`] yielding this trace's records by value.
    pub fn source(&self) -> SliceSource<'_> {
        SliceSource::new(&self.records)
    }

    /// Consumes the trace, returning the record vector.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Self {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(pc: u32) -> TraceRecord {
        TraceRecord::Other(OtherRecord {
            pc,
            class: OpClass::IntAlu,
            dest: Some(Reg::new(1)),
            src1: Some(Reg::new(2)),
            src2: None,
            wrong_path: false,
        })
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.correct_path_len(), 0);
        assert_eq!(t.wrong_path_len(), 0);
    }

    #[test]
    fn push_and_iterate() {
        let mut t = Trace::new();
        t.push(alu(0x1000));
        t.push(alu(0x1004));
        assert_eq!(t.len(), 2);
        let pcs: Vec<u32> = t.into_iter().map(|r| r.pc()).collect();
        assert_eq!(pcs, vec![0x1000, 0x1004]);
    }

    #[test]
    fn wrong_path_counting() {
        let mut t = Trace::new();
        t.push(alu(0));
        let mut wp = alu(4);
        if let TraceRecord::Other(o) = &mut wp {
            o.wrong_path = true;
        }
        t.push(wp);
        assert_eq!(t.correct_path_len(), 1);
        assert_eq!(t.wrong_path_len(), 1);
    }

    #[test]
    fn from_iterator_collect() {
        let t: Trace = (0..10u32).map(|i| alu(i * 4)).collect();
        assert_eq!(t.len(), 10);
    }
}
