//! Property tests for the branch-prediction structures.

use proptest::prelude::*;
use resim_bpred::{BranchPredictor, Btb, BtbConfig, PredictorConfig, Ras};
use resim_trace::BranchKind;

proptest! {
    /// The RAS behaves like an unbounded stack truncated to its capacity:
    /// the most recent `capacity` pushes pop in LIFO order.
    #[test]
    fn ras_matches_reference_stack(
        ops in prop::collection::vec(prop_oneof![
            (1u32..0xFFFF).prop_map(Some),
            Just(None),
        ], 0..200),
        cap in 1usize..32,
    ) {
        let mut ras = Ras::new(cap);
        let mut model: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                Some(addr) => {
                    ras.push(addr);
                    model.push(addr);
                    // The hardware stack forgets entries deeper than cap.
                    if model.len() > cap {
                        let excess = model.len() - cap;
                        model.drain(0..excess);
                    }
                }
                None => {
                    prop_assert_eq!(ras.pop(), model.pop());
                }
            }
            prop_assert!(ras.depth() <= cap);
            prop_assert_eq!(ras.depth(), model.len());
        }
    }

    /// A direct-mapped BTB always returns the last installed target for a
    /// PC whose set saw no other installs since.
    #[test]
    fn btb_returns_last_target(pcs in prop::collection::vec(0u32..0x1000, 1..100)) {
        let mut btb = Btb::new(BtbConfig { entries: 1024, associativity: 1 });
        // With 1024 sets and pcs < 0x1000 (word-indexed: 1024 words) no
        // two distinct PCs collide, so every lookup after update hits.
        for (i, &pc) in pcs.iter().enumerate() {
            let target = 0x9000_0000 + i as u32;
            btb.update(pc & !3, target);
            prop_assert_eq!(btb.peek(pc & !3), Some(target));
        }
    }

    /// Prediction outcome classes always partition the branch count.
    #[test]
    fn outcome_counts_partition(
        branches in prop::collection::vec(
            (0u32..64, any::<bool>(), 0u32..8),
            1..400,
        ),
    ) {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        for (site, taken, tgt) in &branches {
            let pc = 0x1000 + site * 4;
            let target = 0x8000 + tgt * 16;
            bp.predict(pc, BranchKind::Cond, *taken, target);
            bp.resolve(pc, BranchKind::Cond, *taken, target);
        }
        let s = bp.stats();
        prop_assert_eq!(s.branches, branches.len() as u64);
        prop_assert_eq!(s.correct + s.misfetches + s.dir_mispredicts, s.branches);
        prop_assert!(s.cond_accuracy() >= 0.0 && s.cond_accuracy() <= 1.0);
    }

    /// The perfect predictor is never wrong, whatever the stream.
    #[test]
    fn perfect_is_perfect(
        branches in prop::collection::vec((any::<u32>(), any::<bool>(), any::<u32>()), 1..200),
    ) {
        let mut bp = BranchPredictor::new(PredictorConfig::perfect());
        for (pc, taken, target) in &branches {
            let p = bp.predict(*pc, BranchKind::Cond, *taken, *target);
            prop_assert!(p.outcome().is_correct());
            bp.resolve(*pc, BranchKind::Cond, *taken, *target);
        }
        prop_assert_eq!(bp.stats().correct, branches.len() as u64);
    }
}
