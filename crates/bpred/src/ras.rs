//! Return Address Stack: the paper's default is 16 entries (§V.C).
//!
//! The RAS is a circular stack: pushing past capacity overwrites the
//! oldest entry (standard hardware behaviour), and popping an empty stack
//! yields no prediction.

use crate::state::{RasState, StateError};

/// A circular return-address stack.
#[derive(Debug, Clone)]
pub struct Ras {
    entries: Vec<u32>,
    /// Index of the next free slot (top-of-stack is `top - 1`).
    top: usize,
    /// Number of live entries (≤ capacity).
    depth: usize,
    pushes: u64,
    pops: u64,
    underflows: u64,
    overflows: u64,
}

impl Ras {
    /// Creates an empty RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        Self {
            entries: vec![0; capacity],
            top: 0,
            depth: 0,
            pushes: 0,
            pops: 0,
            underflows: 0,
            overflows: 0,
        }
    }

    /// The paper's default 16-entry RAS.
    pub fn paper() -> Self {
        Self::new(16)
    }

    /// Stack capacity.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Live entries.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether the stack holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// Pushes a return address (a call was predicted/executed).
    ///
    /// When full, the oldest entry is silently overwritten (circular).
    pub fn push(&mut self, return_addr: u32) {
        self.pushes += 1;
        if self.depth == self.capacity() {
            self.overflows += 1;
        } else {
            self.depth += 1;
        }
        self.entries[self.top] = return_addr;
        self.top = (self.top + 1) % self.capacity();
    }

    /// Pops the predicted return address, or `None` on underflow.
    pub fn pop(&mut self) -> Option<u32> {
        self.pops += 1;
        if self.depth == 0 {
            self.underflows += 1;
            return None;
        }
        self.depth -= 1;
        self.top = (self.top + self.capacity() - 1) % self.capacity();
        Some(self.entries[self.top])
    }

    /// The current top of stack without popping.
    pub fn peek(&self) -> Option<u32> {
        if self.depth == 0 {
            None
        } else {
            let idx = (self.top + self.capacity() - 1) % self.capacity();
            Some(self.entries[idx])
        }
    }

    /// Captures the stack contents (traffic counters excluded).
    pub fn state(&self) -> RasState {
        RasState {
            entries: self.entries.clone(),
            top: self.top as u32,
            depth: self.depth as u32,
        }
    }

    /// Restores contents captured from a RAS of the same capacity.
    ///
    /// # Errors
    ///
    /// [`StateError`] if the capacity differs, or if `top`/`depth` are out
    /// of range for it.
    pub fn restore_state(&mut self, state: &RasState) -> Result<(), StateError> {
        let cap = self.capacity();
        if state.entries.len() != cap {
            return Err(StateError {
                what: "RAS entries",
                expected: cap,
                got: state.entries.len(),
            });
        }
        if state.top as usize >= cap {
            return Err(StateError {
                what: "RAS top index",
                expected: cap,
                got: state.top as usize,
            });
        }
        if state.depth as usize > cap {
            return Err(StateError {
                what: "RAS depth",
                expected: cap,
                got: state.depth as usize,
            });
        }
        self.entries.copy_from_slice(&state.entries);
        self.top = state.top as usize;
        self.depth = state.depth as usize;
        Ok(())
    }

    /// Total pushes performed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total pops performed (including underflows).
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Pops that found an empty stack.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Pushes that overwrote a live entry.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(4);
        ras.push(0x100);
        ras.push(0x200);
        ras.push(0x300);
        assert_eq!(ras.pop(), Some(0x300));
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
        assert_eq!(ras.underflows(), 1);
    }

    #[test]
    fn circular_overflow_keeps_newest() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.overflows(), 1);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None, "overwritten entry is gone");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut ras = Ras::paper();
        assert_eq!(ras.capacity(), 16);
        ras.push(0xAA);
        assert_eq!(ras.peek(), Some(0xAA));
        assert_eq!(ras.depth(), 1);
        assert_eq!(ras.pop(), Some(0xAA));
        assert!(ras.is_empty());
    }

    #[test]
    fn deep_call_chain_roundtrip() {
        let mut ras = Ras::new(16);
        for i in 0..16u32 {
            ras.push(0x1000 + i * 8);
        }
        for i in (0..16u32).rev() {
            assert_eq!(ras.pop(), Some(0x1000 + i * 8));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Ras::new(0);
    }
}
