//! TOML scenario-file construction of predictor configurations.
//!
//! Maps a `[engine.predictor]` (or `[tracegen.predictor]`) table from a
//! `resim` scenario file onto [`PredictorConfig`], with every schema or
//! geometry problem reported as a line-numbered
//! [`resim_toml::Error`] instead of a panic deep inside the predictor
//! constructors. See `docs/guide.md` for the key reference.

use crate::btb::BtbConfig;
use crate::direction::{DirectionConfig, TwoLevelConfig};
use crate::predictor::PredictorConfig;
use resim_toml::{Error, Table};

/// Keys meaningful for every predictor kind.
const COMMON_KEYS: &[&str] = &["kind", "btb_entries", "btb_associativity", "ras_entries"];

impl PredictorConfig {
    /// Builds a predictor configuration from a scenario-file table.
    ///
    /// `kind` selects the direction predictor — `"perfect"`, `"taken"`,
    /// `"not-taken"`, `"bimodal"` (`size`), `"two-level"` (`l1_size`,
    /// `history_bits`, `l2_size`, `xor`, `counter_bits`) or `"gshare"`
    /// (`history_bits`, `pht_size`) — defaulting to the paper's
    /// two-level scheme. `btb_entries`, `btb_associativity` and
    /// `ras_entries` apply to every kind. Omitted keys keep the paper's
    /// reference values ([`PredictorConfig::paper_two_level`]).
    ///
    /// ```
    /// use resim_bpred::{DirectionConfig, PredictorConfig};
    ///
    /// let t = resim_toml::parse(r#"
    /// kind = "gshare"
    /// history_bits = 12
    /// pht_size = 4096
    /// btb_entries = 1024
    /// "#).unwrap();
    /// let config = PredictorConfig::from_table(&t).unwrap();
    /// assert_eq!(config.btb.entries, 1024);
    /// assert!(matches!(config.direction, DirectionConfig::TwoLevel(t) if t.xor));
    ///
    /// // Geometry problems are line-numbered diagnostics, not panics.
    /// let t = resim_toml::parse("kind = \"bimodal\"\nsize = 1000").unwrap();
    /// assert_eq!(PredictorConfig::from_table(&t).unwrap_err().line(), 2);
    /// ```
    ///
    /// # Errors
    ///
    /// A line-numbered [`Error`] for unknown keys, keys that do not
    /// apply to the selected kind, or invalid geometry (non-power-of-two
    /// table sizes, out-of-range history lengths).
    pub fn from_table(t: &Table) -> Result<Self, Error> {
        let mut config = PredictorConfig::paper_two_level();
        let kind = t.opt_str("kind")?.unwrap_or("two-level");
        config.direction = match kind {
            "perfect" => {
                t.ensure_only(COMMON_KEYS)?;
                DirectionConfig::Perfect
            }
            "taken" => {
                t.ensure_only(COMMON_KEYS)?;
                DirectionConfig::Taken
            }
            "not-taken" => {
                t.ensure_only(COMMON_KEYS)?;
                DirectionConfig::NotTaken
            }
            "bimodal" => {
                t.ensure_only(&[COMMON_KEYS, &["size"]].concat())?;
                let size = t.opt_usize("size")?.unwrap_or(2048);
                power_of_two(t, "size", size)?;
                DirectionConfig::Bimodal { size }
            }
            "two-level" => {
                t.ensure_only(
                    &[
                        COMMON_KEYS,
                        &["l1_size", "history_bits", "l2_size", "xor", "counter_bits"],
                    ]
                    .concat(),
                )?;
                let paper = TwoLevelConfig::paper();
                let two = TwoLevelConfig {
                    l1_size: t.opt_usize("l1_size")?.unwrap_or(paper.l1_size),
                    history_bits: t.opt_u32("history_bits")?.unwrap_or(paper.history_bits),
                    l2_size: t.opt_usize("l2_size")?.unwrap_or(paper.l2_size),
                    xor: t.opt_bool("xor")?.unwrap_or(paper.xor),
                    counter_bits: t.opt_u32("counter_bits")?.unwrap_or(paper.counter_bits),
                };
                check_two_level(t, &two)?;
                DirectionConfig::TwoLevel(two)
            }
            "gshare" => {
                t.ensure_only(&[COMMON_KEYS, &["history_bits", "pht_size"]].concat())?;
                let history = t.opt_u32("history_bits")?.unwrap_or(12);
                let pht = t.opt_usize("pht_size")?.unwrap_or(4096);
                let two = TwoLevelConfig::gshare(history, pht);
                check_two_level(t, &two)?;
                DirectionConfig::TwoLevel(two)
            }
            other => {
                return Err(Error::new(
                    t.key_line("kind"),
                    format!(
                        "unknown predictor kind {other:?} (expected perfect, taken, \
                         not-taken, bimodal, two-level or gshare)"
                    ),
                ))
            }
        };
        let btb = BtbConfig {
            entries: t.opt_usize("btb_entries")?.unwrap_or(config.btb.entries),
            associativity: t
                .opt_usize("btb_associativity")?
                .unwrap_or(config.btb.associativity),
        };
        power_of_two(t, "btb_entries", btb.entries)?;
        power_of_two(t, "btb_associativity", btb.associativity)?;
        if btb.associativity > btb.entries {
            return Err(Error::new(
                t.key_line("btb_associativity"),
                format!(
                    "btb_associativity {} exceeds btb_entries {}",
                    btb.associativity, btb.entries
                ),
            ));
        }
        config.btb = btb;
        config.ras_entries = t.opt_usize("ras_entries")?.unwrap_or(config.ras_entries);
        if config.ras_entries == 0 {
            return Err(Error::new(
                t.key_line("ras_entries"),
                "ras_entries must be at least 1",
            ));
        }
        Ok(config)
    }
}

fn check_two_level(t: &Table, two: &TwoLevelConfig) -> Result<(), Error> {
    power_of_two(t, "l1_size", two.l1_size)?;
    if two.l2_size != 0 && !two.l2_size.is_power_of_two() {
        return Err(Error::new(
            t.key_line(if t.get("pht_size").is_some() { "pht_size" } else { "l2_size" }),
            format!("value {} must be a power of two", two.l2_size),
        ));
    }
    if two.l2_size == 0 {
        return Err(Error::new(
            t.key_line(if t.get("pht_size").is_some() { "pht_size" } else { "l2_size" }),
            "pattern table needs at least one entry",
        ));
    }
    if !(1..=16).contains(&two.history_bits) {
        return Err(Error::new(
            t.key_line("history_bits"),
            format!("history_bits {} out of range 1..=16", two.history_bits),
        ));
    }
    if !(1..=8).contains(&two.counter_bits) {
        return Err(Error::new(
            t.key_line("counter_bits"),
            format!("counter_bits {} out of range 1..=8", two.counter_bits),
        ));
    }
    Ok(())
}

fn power_of_two(t: &Table, key: &str, value: usize) -> Result<(), Error> {
    if value == 0 || !value.is_power_of_two() {
        return Err(Error::new(
            t.key_line(key),
            format!("key {key:?}: {value} must be a power of two"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<PredictorConfig, Error> {
        PredictorConfig::from_table(&resim_toml::parse(s).unwrap())
    }

    #[test]
    fn empty_table_is_the_paper_predictor() {
        assert_eq!(parse("").unwrap(), PredictorConfig::paper_two_level());
    }

    #[test]
    fn every_kind_parses() {
        assert_eq!(
            parse("kind = \"perfect\"").unwrap().direction,
            DirectionConfig::Perfect
        );
        assert_eq!(parse("kind = \"taken\"").unwrap().direction, DirectionConfig::Taken);
        assert_eq!(
            parse("kind = \"not-taken\"").unwrap().direction,
            DirectionConfig::NotTaken
        );
        assert_eq!(
            parse("kind = \"bimodal\"\nsize = 512").unwrap().direction,
            DirectionConfig::Bimodal { size: 512 }
        );
        let two = parse("kind = \"two-level\"\nhistory_bits = 10\nl2_size = 1024").unwrap();
        assert_eq!(
            two.direction,
            DirectionConfig::TwoLevel(TwoLevelConfig {
                history_bits: 10,
                l2_size: 1024,
                ..TwoLevelConfig::paper()
            })
        );
        assert_eq!(
            parse("kind = \"gshare\"").unwrap().direction,
            DirectionConfig::TwoLevel(TwoLevelConfig::gshare(12, 4096))
        );
    }

    #[test]
    fn common_keys_apply_to_all_kinds() {
        let c = parse("kind = \"perfect\"\nbtb_entries = 64\nras_entries = 4").unwrap();
        assert_eq!(c.btb.entries, 64);
        assert_eq!(c.ras_entries, 4);
    }

    #[test]
    fn inapplicable_keys_are_rejected() {
        let err = parse("kind = \"perfect\"\nl1_size = 4").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("unknown key"), "{err}");
        assert!(parse("kind = \"gshare\"\nsize = 4").is_err());
    }

    #[test]
    fn geometry_is_checked_with_lines() {
        assert_eq!(parse("kind = \"bimodal\"\nsize = 1000").unwrap_err().line(), 2);
        assert!(parse("l2_size = 1000").unwrap_err().to_string().contains("power of two"));
        assert!(parse("history_bits = 17").unwrap_err().to_string().contains("1..=16"));
        assert!(parse("counter_bits = 0").unwrap_err().to_string().contains("1..=8"));
        assert!(parse("btb_entries = 100").is_err());
        assert!(parse("btb_associativity = 4\nbtb_entries = 2").unwrap_err().to_string().contains("exceeds"));
        assert!(parse("ras_entries = 0").unwrap_err().to_string().contains("at least 1"));
        assert!(parse("kind = \"gshare\"\npht_size = 100").unwrap_err().line() == 2);
    }

    #[test]
    fn unknown_kind_is_rejected_at_its_line() {
        let err = parse("\nkind = \"neural\"").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("neural"));
    }

    #[test]
    fn parsed_configs_instantiate() {
        // The real constructors assert geometry; a from_table success must
        // never panic downstream.
        for s in [
            "",
            "kind = \"perfect\"",
            "kind = \"bimodal\"\nsize = 256",
            "kind = \"gshare\"\nhistory_bits = 8\npht_size = 256",
            "btb_entries = 32\nbtb_associativity = 2\nras_entries = 1",
        ] {
            let config = parse(s).unwrap();
            let _ = crate::BranchPredictor::new(config);
        }
    }
}
