//! A tournament (combining) direction predictor — SimpleScalar's `comb`.
//!
//! The paper's Branch Predictor block is generated from user parameters
//! (§III); SimpleScalar's tool set, which ReSim mirrors, also offers a
//! *combining* predictor that arbitrates between a bimodal and a two-level
//! component with a PC-indexed chooser table. This extension rounds out
//! the parametric predictor family for design-space exploration.

use crate::counter::SatCounter;
use crate::direction::{DirectionConfig, DirectionPredictor};

/// Configuration of a tournament predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TournamentConfig {
    /// First component (selected when the chooser counter is high).
    pub component_a: DirectionConfig,
    /// Second component.
    pub component_b: DirectionConfig,
    /// Chooser (meta) table size; power of two.
    pub chooser_size: usize,
}

impl TournamentConfig {
    /// SimpleScalar's classic `comb` default: bimodal + two-level with a
    /// 1024-entry chooser.
    pub fn classic() -> Self {
        Self {
            component_a: DirectionConfig::Bimodal { size: 2048 },
            component_b: DirectionConfig::paper_two_level(),
            chooser_size: 1024,
        }
    }

    fn validate(&self) {
        assert!(
            self.chooser_size.is_power_of_two(),
            "chooser size must be a power of two, got {}",
            self.chooser_size
        );
        assert!(
            !matches!(self.component_a, DirectionConfig::Perfect)
                && !matches!(self.component_b, DirectionConfig::Perfect),
            "a tournament of oracles is just an oracle"
        );
    }
}

impl Default for TournamentConfig {
    fn default() -> Self {
        Self::classic()
    }
}

/// A two-component tournament predictor with a PC-indexed chooser.
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    a: DirectionPredictor,
    b: DirectionPredictor,
    chooser: Vec<SatCounter>,
}

impl TournamentPredictor {
    /// Instantiates the predictor described by `config`.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two chooser size or oracle components.
    pub fn new(config: TournamentConfig) -> Self {
        config.validate();
        Self {
            a: DirectionPredictor::new(config.component_a),
            b: DirectionPredictor::new(config.component_b),
            chooser: vec![SatCounter::two_bit(); config.chooser_size],
        }
    }

    fn chooser_index(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.chooser.len() - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u32) -> bool {
        // Components never consult `actual`, so pass a dummy.
        if self.chooser[self.chooser_index(pc)].predicts_taken() {
            self.a.predict(pc, false)
        } else {
            self.b.predict(pc, false)
        }
    }

    /// Trains both components and steers the chooser toward whichever
    /// component was right (no update on agreement).
    pub fn update(&mut self, pc: u32, taken: bool) {
        let pa = self.a.predict(pc, false);
        let pb = self.b.predict(pc, false);
        if pa != pb {
            let idx = self.chooser_index(pc);
            self.chooser[idx].update(pa == taken);
        }
        self.a.update(pc, taken);
        self.b.update(pc, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accuracy of a predict/update loop over `outcomes` at one PC.
    fn accuracy(p: &mut TournamentPredictor, pc: u32, outcomes: &[bool]) -> f64 {
        let mut right = 0;
        for &t in outcomes {
            if p.predict(pc) == t {
                right += 1;
            }
            p.update(pc, t);
        }
        right as f64 / outcomes.len() as f64
    }

    #[test]
    fn learns_bias_like_bimodal() {
        let mut p = TournamentPredictor::new(TournamentConfig::classic());
        let stream: Vec<bool> = (0..400).map(|i| i % 10 != 0).collect();
        assert!(accuracy(&mut p, 0x100, &stream) > 0.85);
    }

    #[test]
    fn learns_alternation_like_two_level() {
        // Bimodal alone fails on strict alternation (~50%); the chooser
        // must migrate to the two-level component.
        let mut p = TournamentPredictor::new(TournamentConfig::classic());
        let stream: Vec<bool> = (0..600).map(|i| i % 2 == 0).collect();
        assert!(
            accuracy(&mut p, 0x200, &stream[200..]) > 0.9 || {
                // Evaluate on the warmed tail only.
                let mut q = TournamentPredictor::new(TournamentConfig::classic());
                let _ = accuracy(&mut q, 0x200, &stream[..400]);
                accuracy(&mut q, 0x200, &stream[400..]) > 0.9
            }
        );
    }

    #[test]
    fn beats_or_matches_both_components_on_mixed_streams() {
        // Branch A is biased (bimodal-friendly), branch B is periodic
        // (two-level-friendly): the tournament should handle both.
        let mut p = TournamentPredictor::new(TournamentConfig::classic());
        let biased: Vec<bool> = (0..500).map(|i| i % 8 != 0).collect();
        let periodic: Vec<bool> = (0..500).map(|i| (i / 2) % 2 == 0).collect();
        let warm_a = accuracy(&mut p, 0x300, &biased);
        let warm_b = accuracy(&mut p, 0x400, &periodic);
        assert!(warm_a > 0.8, "biased accuracy {warm_a}");
        assert!(warm_b > 0.7, "periodic accuracy {warm_b}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_chooser_size_panics() {
        let _ = TournamentPredictor::new(TournamentConfig {
            chooser_size: 1000,
            ..TournamentConfig::classic()
        });
    }

    #[test]
    #[should_panic(expected = "oracle")]
    fn oracle_component_rejected() {
        let _ = TournamentPredictor::new(TournamentConfig {
            component_a: DirectionConfig::Perfect,
            ..TournamentConfig::classic()
        });
    }
}
