//! # resim-bpred
//!
//! Branch prediction models for ReSim (Fytraki & Pnevmatikatos, DATE 2009).
//!
//! The paper's Branch Predictor block (§III) is fully parametric and
//! contains three cooperating structures, each reproduced here:
//!
//! * a **direction predictor** — the reference configuration is a two-level
//!   scheme with a 4-entry Branch History Table, 8-bit history registers
//!   and a 4096-entry Pattern History Table of 2-bit counters
//!   ([`DirectionPredictor`]);
//! * a **Branch Target Buffer** — 512-entry direct-mapped by default
//!   ([`Btb`]);
//! * a **Return Address Stack** — 16 entries by default ([`Ras`]).
//!
//! [`BranchPredictor`] combines the three and classifies every control-flow
//! instruction the way ReSim's Fetch stage does: correct prediction,
//! **misfetch** ("a control flow instruction is predicted taken but the
//! predicted target PC is incorrect", fixed by setting the PC to the next
//! sequential address after a misfetch penalty), or full **direction
//! misprediction** (which sends fetch down the wrong path until the branch
//! resolves).
//!
//! The same model serves both the trace generator (the paper's modified
//! `sim-bpred`, which decides where wrong-path blocks go) and the timing
//! engine (misfetch detection and predictor statistics).
//!
//! ## Example
//!
//! ```
//! use resim_bpred::{BranchPredictor, PredictorConfig, Resolution};
//! use resim_trace::BranchKind;
//!
//! // The paper's reference predictor: 2-level + 512-entry BTB + 16-deep RAS.
//! let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
//!
//! // A loop branch at 0x1000, taken 100 times: the 2-level predictor locks on.
//! let mut correct = 0;
//! for _ in 0..100 {
//!     let p = bp.predict(0x1000, BranchKind::Cond, true, 0x0800);
//!     if p.outcome() == Resolution::CorrectTaken { correct += 1; }
//!     bp.resolve(0x1000, BranchKind::Cond, true, 0x0800);
//! }
//! assert!(correct > 90);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod counter;
mod from_table;
mod direction;
mod predictor;
mod ras;
mod state;
mod tournament;

pub use btb::{Btb, BtbConfig};
pub use counter::SatCounter;
pub use direction::{DirectionConfig, DirectionPredictor, TwoLevelConfig};
pub use predictor::{BranchPredictor, Prediction, PredictorConfig, PredictorStats, Resolution};
pub use state::{BtbEntryState, BtbState, DirectionState, PredictorState, RasState, StateError};
pub use ras::Ras;
pub use tournament::{TournamentConfig, TournamentPredictor};
