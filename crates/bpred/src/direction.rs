//! Direction predictors: static, bimodal, two-level adaptive and gshare.
//!
//! The paper's reference configuration (§V.C) is a two-level scheme with a
//! Branch History Table of 4 history registers, 8 bits of history each, and
//! a 4096-entry PHT of 2-bit counters — [`TwoLevelConfig::paper`]. A
//! "perfect" direction predictor (used in the Table 1 right-hand
//! configuration and in FAST's reported numbers) is provided as
//! [`DirectionConfig::Perfect`]; its prediction is the resolved direction,
//! so it never sends fetch down a wrong path.

use crate::counter::SatCounter;
use crate::state::{DirectionState, StateError};

/// Configuration of a two-level adaptive predictor (SimpleScalar `2lev`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TwoLevelConfig {
    /// Number of level-1 history registers (BHT entries); power of two.
    pub l1_size: usize,
    /// History register length in bits (1–16).
    pub history_bits: u32,
    /// Number of level-2 pattern-history counters; power of two.
    pub l2_size: usize,
    /// XOR the history with the PC when indexing the PHT (gshare-style).
    pub xor: bool,
    /// Width of the PHT saturating counters (2 in the paper).
    pub counter_bits: u32,
}

impl TwoLevelConfig {
    /// The paper's configuration: BHT 4 × 8-bit history, 4096-entry PHT.
    pub fn paper() -> Self {
        Self {
            l1_size: 4,
            history_bits: 8,
            l2_size: 4096,
            xor: false,
            counter_bits: 2,
        }
    }

    /// A gshare predictor: single global history register XOR-ed with the
    /// PC (the configuration FAST reports for its non-perfect results).
    pub fn gshare(history_bits: u32, pht_size: usize) -> Self {
        Self {
            l1_size: 1,
            history_bits,
            l2_size: pht_size,
            xor: true,
            counter_bits: 2,
        }
    }

    fn validate(&self) {
        assert!(
            self.l1_size.is_power_of_two(),
            "two-level l1_size must be a power of two, got {}",
            self.l1_size
        );
        assert!(
            self.l2_size.is_power_of_two(),
            "two-level l2_size must be a power of two, got {}",
            self.l2_size
        );
        assert!(
            (1..=16).contains(&self.history_bits),
            "history length {} out of 1..=16",
            self.history_bits
        );
    }
}

/// Which direction predictor to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirectionConfig {
    /// Always predict the resolved direction (no direction mispredictions).
    Perfect,
    /// Always predict taken.
    Taken,
    /// Always predict not-taken.
    NotTaken,
    /// PC-indexed table of 2-bit counters.
    Bimodal {
        /// Table size (power of two).
        size: usize,
    },
    /// Two-level adaptive predictor.
    TwoLevel(TwoLevelConfig),
}

impl DirectionConfig {
    /// The paper's two-level reference configuration.
    pub fn paper_two_level() -> Self {
        DirectionConfig::TwoLevel(TwoLevelConfig::paper())
    }
}

/// A concrete direction predictor instance.
///
/// Prediction is split from update so callers can model delayed training
/// (ReSim updates the predictor at Commit, §III).
#[derive(Debug, Clone)]
pub enum DirectionPredictor {
    /// See [`DirectionConfig::Perfect`].
    Perfect,
    /// See [`DirectionConfig::Taken`].
    Taken,
    /// See [`DirectionConfig::NotTaken`].
    NotTaken,
    /// PC-indexed counter table.
    Bimodal {
        /// Counter table, indexed by PC word address.
        table: Vec<SatCounter>,
    },
    /// Two-level adaptive: per-set history registers selecting PHT entries.
    TwoLevel {
        /// Level-1 history registers.
        histories: Vec<u16>,
        /// Level-2 pattern history counters.
        pht: Vec<SatCounter>,
        /// Static geometry.
        config: TwoLevelConfig,
    },
}

impl DirectionPredictor {
    /// Instantiates the predictor described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if table sizes are not powers of two or history length is
    /// out of range.
    pub fn new(config: DirectionConfig) -> Self {
        match config {
            DirectionConfig::Perfect => DirectionPredictor::Perfect,
            DirectionConfig::Taken => DirectionPredictor::Taken,
            DirectionConfig::NotTaken => DirectionPredictor::NotTaken,
            DirectionConfig::Bimodal { size } => {
                assert!(
                    size.is_power_of_two(),
                    "bimodal table size must be a power of two, got {size}"
                );
                DirectionPredictor::Bimodal {
                    table: vec![SatCounter::two_bit(); size],
                }
            }
            DirectionConfig::TwoLevel(c) => {
                c.validate();
                DirectionPredictor::TwoLevel {
                    histories: vec![0; c.l1_size],
                    pht: vec![SatCounter::new(c.counter_bits); c.l2_size],
                    config: c,
                }
            }
        }
    }

    /// Whether this predictor is the perfect oracle.
    pub fn is_perfect(&self) -> bool {
        matches!(self, DirectionPredictor::Perfect)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    ///
    /// `actual` is the resolved direction; only the perfect predictor
    /// consults it.
    pub fn predict(&self, pc: u32, actual: bool) -> bool {
        match self {
            DirectionPredictor::Perfect => actual,
            DirectionPredictor::Taken => true,
            DirectionPredictor::NotTaken => false,
            DirectionPredictor::Bimodal { table } => {
                table[Self::pc_index(pc, table.len())].predicts_taken()
            }
            DirectionPredictor::TwoLevel {
                histories,
                pht,
                config,
            } => {
                let idx = Self::pht_index(pc, histories, config, pht.len());
                pht[idx].predicts_taken()
            }
        }
    }

    /// Trains the predictor with the resolved direction of the branch at
    /// `pc`.
    pub fn update(&mut self, pc: u32, taken: bool) {
        match self {
            DirectionPredictor::Perfect
            | DirectionPredictor::Taken
            | DirectionPredictor::NotTaken => {}
            DirectionPredictor::Bimodal { table } => {
                let len = table.len();
                table[Self::pc_index(pc, len)].update(taken);
            }
            DirectionPredictor::TwoLevel {
                histories,
                pht,
                config,
            } => {
                let pht_len = pht.len();
                let idx = Self::pht_index(pc, histories, config, pht_len);
                pht[idx].update(taken);
                let h_idx = Self::pc_index(pc, histories.len());
                let mask = (1u32 << config.history_bits) - 1;
                histories[h_idx] =
                    (((u32::from(histories[h_idx]) << 1) | u32::from(taken)) & mask) as u16;
            }
        }
    }

    /// Captures the table contents as a plain-data snapshot
    /// (empty for static predictors).
    pub fn state(&self) -> DirectionState {
        match self {
            DirectionPredictor::Perfect
            | DirectionPredictor::Taken
            | DirectionPredictor::NotTaken => DirectionState::default(),
            DirectionPredictor::Bimodal { table } => DirectionState {
                histories: Vec::new(),
                counters: table.iter().map(|c| c.value()).collect(),
            },
            DirectionPredictor::TwoLevel { histories, pht, .. } => DirectionState {
                histories: histories.clone(),
                counters: pht.iter().map(|c| c.value()).collect(),
            },
        }
    }

    /// Restores a snapshot taken from a predictor of the same geometry.
    ///
    /// Counter values are clamped into the counter range and histories
    /// masked to the configured length, so any byte pattern of the right
    /// shape restores to a reachable machine state.
    ///
    /// # Errors
    ///
    /// [`StateError`] if the snapshot's table sizes do not match this
    /// predictor's geometry.
    pub fn restore_state(&mut self, state: &DirectionState) -> Result<(), StateError> {
        let check = |what, expected, got| {
            if expected == got {
                Ok(())
            } else {
                Err(StateError {
                    what,
                    expected,
                    got,
                })
            }
        };
        match self {
            DirectionPredictor::Perfect
            | DirectionPredictor::Taken
            | DirectionPredictor::NotTaken => {
                check("direction histories", 0, state.histories.len())?;
                check("direction counters", 0, state.counters.len())
            }
            DirectionPredictor::Bimodal { table } => {
                check("direction histories", 0, state.histories.len())?;
                check("direction counters", table.len(), state.counters.len())?;
                for (c, &v) in table.iter_mut().zip(&state.counters) {
                    c.set(v);
                }
                Ok(())
            }
            DirectionPredictor::TwoLevel {
                histories,
                pht,
                config,
            } => {
                check("direction histories", histories.len(), state.histories.len())?;
                check("direction counters", pht.len(), state.counters.len())?;
                let mask = ((1u32 << config.history_bits) - 1) as u16;
                for (h, &v) in histories.iter_mut().zip(&state.histories) {
                    *h = v & mask;
                }
                for (c, &v) in pht.iter_mut().zip(&state.counters) {
                    c.set(v);
                }
                Ok(())
            }
        }
    }

    fn pc_index(pc: u32, len: usize) -> usize {
        ((pc >> 2) as usize) & (len - 1)
    }

    fn pht_index(pc: u32, histories: &[u16], config: &TwoLevelConfig, pht_len: usize) -> usize {
        let h = u32::from(histories[Self::pc_index(pc, histories.len())]);
        let raw = if config.xor {
            h ^ (pc >> 2)
        } else {
            // SimpleScalar concatenates history below PC bits.
            (h) | ((pc >> 2) << config.history_bits)
        };
        (raw as usize) & (pht_len - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_always_matches_actual() {
        let p = DirectionPredictor::new(DirectionConfig::Perfect);
        assert!(p.predict(0x10, true));
        assert!(!p.predict(0x10, false));
        assert!(p.is_perfect());
    }

    #[test]
    fn static_predictors() {
        assert!(DirectionPredictor::new(DirectionConfig::Taken).predict(0, false));
        assert!(!DirectionPredictor::new(DirectionConfig::NotTaken).predict(0, true));
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = DirectionPredictor::new(DirectionConfig::Bimodal { size: 64 });
        for _ in 0..4 {
            p.update(0x100, false);
        }
        assert!(!p.predict(0x100, true));
        // A different (non-aliasing) branch keeps its own counter.
        assert!(p.predict(0x104, true));
    }

    #[test]
    fn two_level_learns_alternating_pattern() {
        // Bimodal cannot learn a strict T/NT alternation; two-level can.
        let mut p = DirectionPredictor::new(DirectionConfig::TwoLevel(TwoLevelConfig::paper()));
        let pc = 0x2000;
        let mut taken = false;
        // Warm up.
        for _ in 0..64 {
            p.update(pc, taken);
            taken = !taken;
        }
        // Now every prediction should be correct.
        let mut correct = 0;
        for _ in 0..32 {
            if p.predict(pc, taken) == taken {
                correct += 1;
            }
            p.update(pc, taken);
            taken = !taken;
        }
        assert_eq!(correct, 32, "two-level must lock onto alternation");
    }

    #[test]
    fn gshare_learns_correlated_branches() {
        let mut p = DirectionPredictor::new(DirectionConfig::TwoLevel(TwoLevelConfig::gshare(
            8, 4096,
        )));
        // Pattern of period 4 on one branch.
        let pat = [true, true, false, true];
        for i in 0..400usize {
            let t = pat[i % 4];
            if i >= 100 {
                assert_eq!(p.predict(0x500, t), t, "gshare should have locked on by {i}");
            }
            p.update(0x500, t);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bimodal_size_panics() {
        let _ = DirectionPredictor::new(DirectionConfig::Bimodal { size: 100 });
    }

    #[test]
    fn paper_config_geometry() {
        let c = TwoLevelConfig::paper();
        assert_eq!(c.l1_size, 4);
        assert_eq!(c.history_bits, 8);
        assert_eq!(c.l2_size, 4096);
        let p = DirectionPredictor::new(DirectionConfig::TwoLevel(c));
        match p {
            DirectionPredictor::TwoLevel { histories, pht, .. } => {
                assert_eq!(histories.len(), 4);
                assert_eq!(pht.len(), 4096);
            }
            _ => unreachable!(),
        }
    }
}
