//! Plain-data snapshots of predictor warm state.
//!
//! Sampled simulation (SMARTS-style) interleaves cheap functional warmup
//! with short detailed windows; the warm microarchitectural state crosses
//! that boundary as a checkpoint. These structs are the predictor's share
//! of a checkpoint: every table cell a hardware implementation would keep
//! — direction counters and histories, BTB tags/targets/LRU, the RAS ring
//! — and **nothing else**. Statistics counters are deliberately excluded:
//! they describe a measurement run, not the machine state, and a resumed
//! window must start counting from zero so windowed statistics compose
//! (see `SimStats::merge` in `resim-core`).
//!
//! All fields are public plain data so the owner of a checkpoint (the
//! engine's `Checkpoint` in `resim-core`) can serialize them bit-exactly.

use std::error::Error;
use std::fmt;

/// Direction-predictor state: history registers plus raw counter values.
///
/// Static predictors (perfect / always-taken / always-not-taken) have no
/// state; both vectors are empty for them. Bimodal predictors use
/// `counters` only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirectionState {
    /// Level-1 history registers (two-level predictors only).
    pub histories: Vec<u16>,
    /// Raw saturating-counter values, table order.
    pub counters: Vec<u8>,
}

/// One BTB way.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtbEntryState {
    /// Tag (PC word address above the set index).
    pub tag: u32,
    /// Predicted target PC.
    pub target: u32,
    /// LRU rank within the set (0 = MRU).
    pub lru: u8,
    /// Whether the way holds a mapping.
    pub valid: bool,
}

/// Full BTB contents, set-major (all ways of set 0, then set 1, ...).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BtbState {
    /// `sets × associativity` entries.
    pub entries: Vec<BtbEntryState>,
}

/// Return-address-stack contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RasState {
    /// The circular buffer, full capacity.
    pub entries: Vec<u32>,
    /// Index of the next free slot.
    pub top: u32,
    /// Live entries (≤ capacity).
    pub depth: u32,
}

/// Complete warm state of a [`BranchPredictor`](crate::BranchPredictor).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PredictorState {
    /// Direction-predictor tables.
    pub direction: DirectionState,
    /// BTB contents.
    pub btb: BtbState,
    /// RAS contents.
    pub ras: RasState,
}

/// A snapshot cannot be restored into a structure of different geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateError {
    /// Which structure mismatched.
    pub what: &'static str,
    /// The size the live structure expects.
    pub expected: usize,
    /// The size the snapshot carries.
    pub got: usize,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot restore {}: geometry expects {}, snapshot has {}",
            self.what, self.expected, self.got
        )
    }
}

impl Error for StateError {}
