//! The combined branch predictor: direction + BTB + RAS.
//!
//! [`BranchPredictor::predict`] classifies a control-flow instruction the
//! way ReSim's Fetch stage does (§III):
//!
//! * **correct** (taken or not-taken) — fetch proceeds without penalty;
//! * **misfetch** — the direction was right (or the branch unconditional)
//!   but the predicted target PC was wrong or unknown; the front end
//!   inserts a fetch bubble of `misfetch_penalty` cycles ("PC is set to
//!   the next sequential address, a misfetch delayed penalty is imposed");
//! * **direction misprediction** — fetch streams down the wrong path until
//!   the branch resolves; the trace generator materialises this wrong path
//!   as a tagged block.
//!
//! Prediction and training are separate so the engine can train at Commit
//! ("updates the Branch Predictor in case of branch", §III) while the trace
//! generator trains in program order.

use crate::btb::{Btb, BtbConfig};
use crate::direction::{DirectionConfig, DirectionPredictor};
use crate::ras::Ras;
use crate::state::{PredictorState, StateError};
use resim_trace::{BranchKind, TraceRecord};

/// Configuration of the combined predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredictorConfig {
    /// Direction predictor selection.
    pub direction: DirectionConfig,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// RAS depth.
    pub ras_entries: usize,
}

impl PredictorConfig {
    /// The paper's reference predictor: two-level (BHT 4, history 8,
    /// PHT 4096), 512-entry direct-mapped BTB, 16-entry RAS.
    pub fn paper_two_level() -> Self {
        Self {
            direction: DirectionConfig::paper_two_level(),
            btb: BtbConfig::paper(),
            ras_entries: 16,
        }
    }

    /// A perfect predictor: right direction *and* right target, always.
    ///
    /// Used by the paper's Table 1 right-hand configuration (2-issue,
    /// perfect BP) to compare against FAST's perfect-BP numbers.
    pub fn perfect() -> Self {
        Self {
            direction: DirectionConfig::Perfect,
            btb: BtbConfig::paper(),
            ras_entries: 16,
        }
    }

    /// A gshare configuration (FAST's trained predictor flavour).
    pub fn gshare(history_bits: u32, pht_size: usize) -> Self {
        Self {
            direction: DirectionConfig::TwoLevel(crate::direction::TwoLevelConfig::gshare(
                history_bits,
                pht_size,
            )),
            btb: BtbConfig::paper(),
            ras_entries: 16,
        }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self::paper_two_level()
    }
}

/// How a prediction compared against the resolved outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Predicted not-taken, was not-taken.
    CorrectNotTaken,
    /// Predicted taken with the right target.
    CorrectTaken,
    /// Right direction (or unconditional) but wrong/unknown target:
    /// a fetch-time bubble of the misfetch penalty.
    Misfetch,
    /// Wrong direction: wrong-path fetch until the branch resolves.
    DirMispredict,
}

impl Resolution {
    /// Whether fetch continues down a wrong path after this branch.
    pub fn starts_wrong_path(self) -> bool {
        matches!(self, Resolution::DirMispredict)
    }

    /// Whether the branch was predicted without any penalty.
    pub fn is_correct(self) -> bool {
        matches!(self, Resolution::CorrectNotTaken | Resolution::CorrectTaken)
    }
}

/// The outcome of predicting one control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prediction {
    pred_taken: bool,
    pred_target: Option<u32>,
    outcome: Resolution,
}

impl Prediction {
    /// Predicted direction.
    pub fn taken(&self) -> bool {
        self.pred_taken
    }

    /// Predicted target (from BTB or RAS), if any.
    pub fn target(&self) -> Option<u32> {
        self.pred_target
    }

    /// Classification against the resolved outcome.
    pub fn outcome(&self) -> Resolution {
        self.outcome
    }
}

/// 64-bit predictor statistics (paper §V.B: detailed branch information).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Control-flow instructions predicted.
    pub branches: u64,
    /// Conditional branches among them.
    pub cond_branches: u64,
    /// Correct predictions (direction and target).
    pub correct: u64,
    /// Fetch-time target misfetches.
    pub misfetches: u64,
    /// Direction mispredictions.
    pub dir_mispredicts: u64,
    /// Returns predicted through the RAS.
    pub ras_predictions: u64,
    /// RAS predictions whose target was right.
    pub ras_correct: u64,
}

impl PredictorStats {
    /// Field-wise sum of two counter sets — composes the statistics of
    /// windowed runs (every field is a count; nothing needs weighting).
    pub fn merge(&self, other: &PredictorStats) -> PredictorStats {
        PredictorStats {
            branches: self.branches + other.branches,
            cond_branches: self.cond_branches + other.cond_branches,
            correct: self.correct + other.correct,
            misfetches: self.misfetches + other.misfetches,
            dir_mispredicts: self.dir_mispredicts + other.dir_mispredicts,
            ras_predictions: self.ras_predictions + other.ras_predictions,
            ras_correct: self.ras_correct + other.ras_correct,
        }
    }

    /// Direction accuracy over conditional branches.
    pub fn cond_accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            1.0 - self.dir_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Overall no-penalty rate.
    pub fn address_accuracy(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.correct as f64 / self.branches as f64
        }
    }
}

/// Direction predictor + BTB + RAS, with ReSim's fetch-time classification.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    direction: DirectionPredictor,
    btb: Btb,
    ras: Ras,
    perfect: bool,
    stats: PredictorStats,
}

impl BranchPredictor {
    /// Instantiates the predictor described by `config`.
    pub fn new(config: PredictorConfig) -> Self {
        let perfect = matches!(config.direction, DirectionConfig::Perfect);
        Self {
            direction: DirectionPredictor::new(config.direction),
            btb: Btb::new(config.btb),
            ras: Ras::new(config.ras_entries),
            perfect,
            stats: PredictorStats::default(),
        }
    }

    /// Whether this is the perfect oracle (never mispredicts or misfetches).
    pub fn is_perfect(&self) -> bool {
        self.perfect
    }

    /// Predicts the control-flow instruction at `pc` and classifies the
    /// prediction against the resolved outcome carried by the trace.
    ///
    /// `actual_taken` / `actual_target` come from the trace record (the
    /// functional side has already resolved them). Speculative RAS
    /// push/pop happens here, at prediction time, as in hardware.
    pub fn predict(
        &mut self,
        pc: u32,
        kind: BranchKind,
        actual_taken: bool,
        actual_target: u32,
    ) -> Prediction {
        self.stats.branches += 1;
        if kind == BranchKind::Cond {
            self.stats.cond_branches += 1;
        }

        if self.perfect {
            self.stats.correct += 1;
            return Prediction {
                pred_taken: actual_taken,
                pred_target: Some(actual_target),
                outcome: if actual_taken {
                    Resolution::CorrectTaken
                } else {
                    Resolution::CorrectNotTaken
                },
            };
        }

        // Direction.
        let pred_taken = if kind.is_unconditional() {
            true
        } else {
            self.direction.predict(pc, actual_taken)
        };

        // Target: RAS for returns, BTB otherwise.
        let pred_target = if kind.pops_ras() {
            let t = self.ras.pop();
            self.stats.ras_predictions += 1;
            if t == Some(actual_target) {
                self.stats.ras_correct += 1;
            }
            t
        } else {
            self.btb.lookup(pc)
        };
        // Calls push their return address speculatively.
        if kind.pushes_ras() {
            self.ras.push(pc.wrapping_add(4));
        }

        let outcome = if pred_taken != actual_taken {
            self.stats.dir_mispredicts += 1;
            Resolution::DirMispredict
        } else if !actual_taken {
            self.stats.correct += 1;
            Resolution::CorrectNotTaken
        } else if pred_target == Some(actual_target) {
            self.stats.correct += 1;
            Resolution::CorrectTaken
        } else {
            self.stats.misfetches += 1;
            Resolution::Misfetch
        };

        Prediction {
            pred_taken,
            pred_target,
            outcome,
        }
    }

    /// Trains the predictor with a resolved branch.
    ///
    /// ReSim performs this at Commit; the trace generator in program order.
    pub fn resolve(&mut self, pc: u32, kind: BranchKind, taken: bool, target: u32) {
        if kind == BranchKind::Cond {
            self.direction.update(pc, taken);
        }
        if taken {
            self.btb.update(pc, target);
        }
    }

    /// Applies one trace record's *training* effects without predicting
    /// and without touching any statistics counter — the functional-warmup
    /// entry point of sampled simulation.
    ///
    /// Non-branch records are ignored. For a branch, the tables end up as
    /// a detailed replay would leave them: the direction predictor trains
    /// on conditionals, the BTB learns taken targets, and calls/returns
    /// push/pop the RAS (whose internal traffic diagnostics do tick — they
    /// are not part of [`PredictorStats`] or of the serialized warm
    /// state).
    pub fn warm_record(&mut self, record: &TraceRecord) {
        let TraceRecord::Branch(b) = record else {
            return;
        };
        self.warm(b.pc, b.kind, b.taken, b.target);
    }

    /// [`BranchPredictor::warm_record`] with the branch fields unpacked.
    pub fn warm(&mut self, pc: u32, kind: BranchKind, taken: bool, target: u32) {
        if self.perfect {
            return; // the oracle keeps no tables
        }
        if kind.pops_ras() {
            let _ = self.ras.pop();
        }
        if kind.pushes_ras() {
            self.ras.push(pc.wrapping_add(4));
        }
        if kind == BranchKind::Cond {
            self.direction.update(pc, taken);
        }
        if taken {
            self.btb.update(pc, target);
        }
    }

    /// Captures the complete warm state (tables only; statistics are a
    /// property of a measurement window, never of the machine state).
    pub fn state(&self) -> PredictorState {
        PredictorState {
            direction: self.direction.state(),
            btb: self.btb.state(),
            ras: self.ras.state(),
        }
    }

    /// Restores warm state captured from a predictor of identical
    /// configuration. Statistics counters are left untouched.
    ///
    /// # Errors
    ///
    /// [`StateError`] on any geometry mismatch.
    pub fn restore_state(&mut self, state: &PredictorState) -> Result<(), StateError> {
        self.direction.restore_state(&state.direction)?;
        self.btb.restore_state(&state.btb)?;
        self.ras.restore_state(&state.ras)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// The BTB, for hit-rate statistics.
    pub fn btb(&self) -> &Btb {
        &self.btb
    }

    /// The RAS, for depth/overflow statistics.
    pub fn ras(&self) -> &Ras {
        &self.ras
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predict_resolve(
        bp: &mut BranchPredictor,
        pc: u32,
        kind: BranchKind,
        taken: bool,
        target: u32,
    ) -> Resolution {
        let p = bp.predict(pc, kind, taken, target);
        bp.resolve(pc, kind, taken, target);
        p.outcome()
    }

    #[test]
    fn perfect_never_penalises() {
        let mut bp = BranchPredictor::new(PredictorConfig::perfect());
        assert!(bp.is_perfect());
        for i in 0..100u32 {
            let taken = i % 3 == 0;
            let o = predict_resolve(&mut bp, 0x1000 + i * 4, BranchKind::Cond, taken, 0x4000);
            assert!(o.is_correct());
        }
        let s = bp.stats();
        assert_eq!(s.dir_mispredicts, 0);
        assert_eq!(s.misfetches, 0);
        assert_eq!(s.correct, 100);
    }

    #[test]
    fn loop_branch_becomes_correct_taken() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        // First encounter: BTB cold -> misfetch or mispredict; then warm.
        let mut last = Resolution::Misfetch;
        for _ in 0..50 {
            last = predict_resolve(&mut bp, 0x100, BranchKind::Cond, true, 0x80);
        }
        assert_eq!(last, Resolution::CorrectTaken);
        assert!(bp.stats().cond_accuracy() > 0.9);
    }

    #[test]
    fn cold_unconditional_jump_misfetches_then_hits() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        let first = predict_resolve(&mut bp, 0x200, BranchKind::Jump, true, 0x900);
        assert_eq!(first, Resolution::Misfetch, "cold BTB has no target");
        let second = predict_resolve(&mut bp, 0x200, BranchKind::Jump, true, 0x900);
        assert_eq!(second, Resolution::CorrectTaken);
    }

    #[test]
    fn call_return_pair_uses_ras() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        // Call at 0x100 -> 0x800; RAS now holds 0x104.
        predict_resolve(&mut bp, 0x100, BranchKind::Call, true, 0x800);
        // Return from 0x900 -> 0x104: RAS predicts correctly even though
        // the BTB has never seen this return.
        let o = predict_resolve(&mut bp, 0x900, BranchKind::Return, true, 0x104);
        assert_eq!(o, Resolution::CorrectTaken);
        let s = bp.stats();
        assert_eq!(s.ras_predictions, 1);
        assert_eq!(s.ras_correct, 1);
    }

    #[test]
    fn return_with_empty_ras_misfetches() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        let o = predict_resolve(&mut bp, 0x900, BranchKind::Return, true, 0x104);
        assert_eq!(o, Resolution::Misfetch);
    }

    #[test]
    fn biased_not_taken_branch_mispredicts_when_taken() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        for _ in 0..20 {
            predict_resolve(&mut bp, 0x300, BranchKind::Cond, false, 0x600);
        }
        let o = predict_resolve(&mut bp, 0x300, BranchKind::Cond, true, 0x600);
        assert_eq!(o, Resolution::DirMispredict);
        assert!(o.starts_wrong_path());
        assert!(bp.stats().dir_mispredicts >= 1);
    }

    #[test]
    fn indirect_jump_with_changing_target_misfetches() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        predict_resolve(&mut bp, 0x400, BranchKind::IndirectJump, true, 0x1000);
        predict_resolve(&mut bp, 0x400, BranchKind::IndirectJump, true, 0x1000);
        // Target changes: BTB still predicts the old one -> misfetch.
        let o = predict_resolve(&mut bp, 0x400, BranchKind::IndirectJump, true, 0x2000);
        assert_eq!(o, Resolution::Misfetch);
    }

    /// A deterministic little branch stream covering all RAS/BTB/PHT paths.
    fn mixed_branches(n: u32) -> Vec<(u32, BranchKind, bool, u32)> {
        (0..n)
            .map(|i| match i % 5 {
                0 => (0x100 + (i % 7) * 4, BranchKind::Cond, i % 3 == 0, 0x40),
                1 => (0x200 + (i % 3) * 4, BranchKind::Jump, true, 0x900 + i * 8),
                2 => (0x300, BranchKind::Call, true, 0x800),
                3 => (0x900, BranchKind::Return, true, 0x304),
                _ => (0x400 + (i % 11) * 4, BranchKind::Cond, i % 2 == 0, 0x80),
            })
            .collect()
    }

    #[test]
    fn warm_leaves_same_tables_as_predict_resolve() {
        let mut detailed = BranchPredictor::new(PredictorConfig::paper_two_level());
        let mut warmed = BranchPredictor::new(PredictorConfig::paper_two_level());
        for (pc, kind, taken, target) in mixed_branches(500) {
            detailed.predict(pc, kind, taken, target);
            detailed.resolve(pc, kind, taken, target);
            warmed.warm(pc, kind, taken, target);
        }
        assert_eq!(detailed.state(), warmed.state());
        assert_eq!(warmed.stats(), PredictorStats::default(), "warm is stats-silent");
        assert!(detailed.stats().branches > 0);
    }

    #[test]
    fn warm_record_ignores_non_branches() {
        use resim_trace::{OpClass, OtherRecord};
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        let before = bp.state();
        bp.warm_record(&TraceRecord::Other(OtherRecord {
            pc: 0x100,
            class: OpClass::IntAlu,
            dest: None,
            src1: None,
            src2: None,
            wrong_path: false,
        }));
        assert_eq!(bp.state(), before);
    }

    #[test]
    fn state_roundtrip_restores_future_behaviour() {
        let mut warm = BranchPredictor::new(PredictorConfig::paper_two_level());
        for (pc, kind, taken, target) in mixed_branches(300) {
            warm.warm(pc, kind, taken, target);
        }
        let snap = warm.state();
        let mut restored = BranchPredictor::new(PredictorConfig::paper_two_level());
        restored.restore_state(&snap).unwrap();
        assert_eq!(restored.state(), snap);
        // Identical behaviour from here on.
        for (pc, kind, taken, target) in mixed_branches(100) {
            let a = warm.predict(pc, kind, taken, target);
            let b = restored.predict(pc, kind, taken, target);
            assert_eq!(a, b);
            warm.resolve(pc, kind, taken, target);
            restored.resolve(pc, kind, taken, target);
        }
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let small = BranchPredictor::new(PredictorConfig::gshare(4, 256)).state();
        let mut paper = BranchPredictor::new(PredictorConfig::paper_two_level());
        let err = paper.restore_state(&small).unwrap_err();
        assert_eq!(err.what, "direction histories");
        let mut ras_bad = paper.state();
        ras_bad.ras.top = 99;
        assert!(paper.restore_state(&ras_bad).is_err());
    }

    #[test]
    fn perfect_predictor_state_is_empty_and_warm_is_noop() {
        let mut bp = BranchPredictor::new(PredictorConfig::perfect());
        bp.warm(0x100, BranchKind::Call, true, 0x800);
        let s = bp.state();
        assert!(s.direction.counters.is_empty());
        assert_eq!(s.ras.depth, 0);
        assert!(s.btb.entries.iter().all(|e| !e.valid));
    }

    #[test]
    fn stats_merge_adds_fieldwise() {
        let a = PredictorStats {
            branches: 10,
            cond_branches: 6,
            correct: 5,
            misfetches: 2,
            dir_mispredicts: 3,
            ras_predictions: 1,
            ras_correct: 1,
        };
        let b = PredictorStats {
            branches: 1,
            cond_branches: 1,
            correct: 1,
            misfetches: 0,
            dir_mispredicts: 0,
            ras_predictions: 0,
            ras_correct: 0,
        };
        let m = a.merge(&b);
        assert_eq!(m.branches, 11);
        assert_eq!(m.correct, 6);
        assert_eq!(m.merge(&PredictorStats::default()), m);
    }

    #[test]
    fn stats_accounting_consistency() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        for i in 0..200u32 {
            let taken = (i / 7) % 2 == 0;
            predict_resolve(&mut bp, 0x100 + (i % 13) * 4, BranchKind::Cond, taken, 0x40);
        }
        let s = bp.stats();
        assert_eq!(s.branches, 200);
        assert_eq!(s.cond_branches, 200);
        assert_eq!(s.correct + s.misfetches + s.dir_mispredicts, 200);
        assert!(s.cond_accuracy() >= 0.0 && s.cond_accuracy() <= 1.0);
    }
}
