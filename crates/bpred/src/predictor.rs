//! The combined branch predictor: direction + BTB + RAS.
//!
//! [`BranchPredictor::predict`] classifies a control-flow instruction the
//! way ReSim's Fetch stage does (§III):
//!
//! * **correct** (taken or not-taken) — fetch proceeds without penalty;
//! * **misfetch** — the direction was right (or the branch unconditional)
//!   but the predicted target PC was wrong or unknown; the front end
//!   inserts a fetch bubble of `misfetch_penalty` cycles ("PC is set to
//!   the next sequential address, a misfetch delayed penalty is imposed");
//! * **direction misprediction** — fetch streams down the wrong path until
//!   the branch resolves; the trace generator materialises this wrong path
//!   as a tagged block.
//!
//! Prediction and training are separate so the engine can train at Commit
//! ("updates the Branch Predictor in case of branch", §III) while the trace
//! generator trains in program order.

use crate::btb::{Btb, BtbConfig};
use crate::direction::{DirectionConfig, DirectionPredictor};
use crate::ras::Ras;
use resim_trace::BranchKind;

/// Configuration of the combined predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PredictorConfig {
    /// Direction predictor selection.
    pub direction: DirectionConfig,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// RAS depth.
    pub ras_entries: usize,
}

impl PredictorConfig {
    /// The paper's reference predictor: two-level (BHT 4, history 8,
    /// PHT 4096), 512-entry direct-mapped BTB, 16-entry RAS.
    pub fn paper_two_level() -> Self {
        Self {
            direction: DirectionConfig::paper_two_level(),
            btb: BtbConfig::paper(),
            ras_entries: 16,
        }
    }

    /// A perfect predictor: right direction *and* right target, always.
    ///
    /// Used by the paper's Table 1 right-hand configuration (2-issue,
    /// perfect BP) to compare against FAST's perfect-BP numbers.
    pub fn perfect() -> Self {
        Self {
            direction: DirectionConfig::Perfect,
            btb: BtbConfig::paper(),
            ras_entries: 16,
        }
    }

    /// A gshare configuration (FAST's trained predictor flavour).
    pub fn gshare(history_bits: u32, pht_size: usize) -> Self {
        Self {
            direction: DirectionConfig::TwoLevel(crate::direction::TwoLevelConfig::gshare(
                history_bits,
                pht_size,
            )),
            btb: BtbConfig::paper(),
            ras_entries: 16,
        }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self::paper_two_level()
    }
}

/// How a prediction compared against the resolved outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Predicted not-taken, was not-taken.
    CorrectNotTaken,
    /// Predicted taken with the right target.
    CorrectTaken,
    /// Right direction (or unconditional) but wrong/unknown target:
    /// a fetch-time bubble of the misfetch penalty.
    Misfetch,
    /// Wrong direction: wrong-path fetch until the branch resolves.
    DirMispredict,
}

impl Resolution {
    /// Whether fetch continues down a wrong path after this branch.
    pub fn starts_wrong_path(self) -> bool {
        matches!(self, Resolution::DirMispredict)
    }

    /// Whether the branch was predicted without any penalty.
    pub fn is_correct(self) -> bool {
        matches!(self, Resolution::CorrectNotTaken | Resolution::CorrectTaken)
    }
}

/// The outcome of predicting one control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prediction {
    pred_taken: bool,
    pred_target: Option<u32>,
    outcome: Resolution,
}

impl Prediction {
    /// Predicted direction.
    pub fn taken(&self) -> bool {
        self.pred_taken
    }

    /// Predicted target (from BTB or RAS), if any.
    pub fn target(&self) -> Option<u32> {
        self.pred_target
    }

    /// Classification against the resolved outcome.
    pub fn outcome(&self) -> Resolution {
        self.outcome
    }
}

/// 64-bit predictor statistics (paper §V.B: detailed branch information).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Control-flow instructions predicted.
    pub branches: u64,
    /// Conditional branches among them.
    pub cond_branches: u64,
    /// Correct predictions (direction and target).
    pub correct: u64,
    /// Fetch-time target misfetches.
    pub misfetches: u64,
    /// Direction mispredictions.
    pub dir_mispredicts: u64,
    /// Returns predicted through the RAS.
    pub ras_predictions: u64,
    /// RAS predictions whose target was right.
    pub ras_correct: u64,
}

impl PredictorStats {
    /// Direction accuracy over conditional branches.
    pub fn cond_accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            1.0 - self.dir_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Overall no-penalty rate.
    pub fn address_accuracy(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.correct as f64 / self.branches as f64
        }
    }
}

/// Direction predictor + BTB + RAS, with ReSim's fetch-time classification.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    direction: DirectionPredictor,
    btb: Btb,
    ras: Ras,
    perfect: bool,
    stats: PredictorStats,
}

impl BranchPredictor {
    /// Instantiates the predictor described by `config`.
    pub fn new(config: PredictorConfig) -> Self {
        let perfect = matches!(config.direction, DirectionConfig::Perfect);
        Self {
            direction: DirectionPredictor::new(config.direction),
            btb: Btb::new(config.btb),
            ras: Ras::new(config.ras_entries),
            perfect,
            stats: PredictorStats::default(),
        }
    }

    /// Whether this is the perfect oracle (never mispredicts or misfetches).
    pub fn is_perfect(&self) -> bool {
        self.perfect
    }

    /// Predicts the control-flow instruction at `pc` and classifies the
    /// prediction against the resolved outcome carried by the trace.
    ///
    /// `actual_taken` / `actual_target` come from the trace record (the
    /// functional side has already resolved them). Speculative RAS
    /// push/pop happens here, at prediction time, as in hardware.
    pub fn predict(
        &mut self,
        pc: u32,
        kind: BranchKind,
        actual_taken: bool,
        actual_target: u32,
    ) -> Prediction {
        self.stats.branches += 1;
        if kind == BranchKind::Cond {
            self.stats.cond_branches += 1;
        }

        if self.perfect {
            self.stats.correct += 1;
            return Prediction {
                pred_taken: actual_taken,
                pred_target: Some(actual_target),
                outcome: if actual_taken {
                    Resolution::CorrectTaken
                } else {
                    Resolution::CorrectNotTaken
                },
            };
        }

        // Direction.
        let pred_taken = if kind.is_unconditional() {
            true
        } else {
            self.direction.predict(pc, actual_taken)
        };

        // Target: RAS for returns, BTB otherwise.
        let pred_target = if kind.pops_ras() {
            let t = self.ras.pop();
            self.stats.ras_predictions += 1;
            if t == Some(actual_target) {
                self.stats.ras_correct += 1;
            }
            t
        } else {
            self.btb.lookup(pc)
        };
        // Calls push their return address speculatively.
        if kind.pushes_ras() {
            self.ras.push(pc.wrapping_add(4));
        }

        let outcome = if pred_taken != actual_taken {
            self.stats.dir_mispredicts += 1;
            Resolution::DirMispredict
        } else if !actual_taken {
            self.stats.correct += 1;
            Resolution::CorrectNotTaken
        } else if pred_target == Some(actual_target) {
            self.stats.correct += 1;
            Resolution::CorrectTaken
        } else {
            self.stats.misfetches += 1;
            Resolution::Misfetch
        };

        Prediction {
            pred_taken,
            pred_target,
            outcome,
        }
    }

    /// Trains the predictor with a resolved branch.
    ///
    /// ReSim performs this at Commit; the trace generator in program order.
    pub fn resolve(&mut self, pc: u32, kind: BranchKind, taken: bool, target: u32) {
        if kind == BranchKind::Cond {
            self.direction.update(pc, taken);
        }
        if taken {
            self.btb.update(pc, target);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }

    /// The BTB, for hit-rate statistics.
    pub fn btb(&self) -> &Btb {
        &self.btb
    }

    /// The RAS, for depth/overflow statistics.
    pub fn ras(&self) -> &Ras {
        &self.ras
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predict_resolve(
        bp: &mut BranchPredictor,
        pc: u32,
        kind: BranchKind,
        taken: bool,
        target: u32,
    ) -> Resolution {
        let p = bp.predict(pc, kind, taken, target);
        bp.resolve(pc, kind, taken, target);
        p.outcome()
    }

    #[test]
    fn perfect_never_penalises() {
        let mut bp = BranchPredictor::new(PredictorConfig::perfect());
        assert!(bp.is_perfect());
        for i in 0..100u32 {
            let taken = i % 3 == 0;
            let o = predict_resolve(&mut bp, 0x1000 + i * 4, BranchKind::Cond, taken, 0x4000);
            assert!(o.is_correct());
        }
        let s = bp.stats();
        assert_eq!(s.dir_mispredicts, 0);
        assert_eq!(s.misfetches, 0);
        assert_eq!(s.correct, 100);
    }

    #[test]
    fn loop_branch_becomes_correct_taken() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        // First encounter: BTB cold -> misfetch or mispredict; then warm.
        let mut last = Resolution::Misfetch;
        for _ in 0..50 {
            last = predict_resolve(&mut bp, 0x100, BranchKind::Cond, true, 0x80);
        }
        assert_eq!(last, Resolution::CorrectTaken);
        assert!(bp.stats().cond_accuracy() > 0.9);
    }

    #[test]
    fn cold_unconditional_jump_misfetches_then_hits() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        let first = predict_resolve(&mut bp, 0x200, BranchKind::Jump, true, 0x900);
        assert_eq!(first, Resolution::Misfetch, "cold BTB has no target");
        let second = predict_resolve(&mut bp, 0x200, BranchKind::Jump, true, 0x900);
        assert_eq!(second, Resolution::CorrectTaken);
    }

    #[test]
    fn call_return_pair_uses_ras() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        // Call at 0x100 -> 0x800; RAS now holds 0x104.
        predict_resolve(&mut bp, 0x100, BranchKind::Call, true, 0x800);
        // Return from 0x900 -> 0x104: RAS predicts correctly even though
        // the BTB has never seen this return.
        let o = predict_resolve(&mut bp, 0x900, BranchKind::Return, true, 0x104);
        assert_eq!(o, Resolution::CorrectTaken);
        let s = bp.stats();
        assert_eq!(s.ras_predictions, 1);
        assert_eq!(s.ras_correct, 1);
    }

    #[test]
    fn return_with_empty_ras_misfetches() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        let o = predict_resolve(&mut bp, 0x900, BranchKind::Return, true, 0x104);
        assert_eq!(o, Resolution::Misfetch);
    }

    #[test]
    fn biased_not_taken_branch_mispredicts_when_taken() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        for _ in 0..20 {
            predict_resolve(&mut bp, 0x300, BranchKind::Cond, false, 0x600);
        }
        let o = predict_resolve(&mut bp, 0x300, BranchKind::Cond, true, 0x600);
        assert_eq!(o, Resolution::DirMispredict);
        assert!(o.starts_wrong_path());
        assert!(bp.stats().dir_mispredicts >= 1);
    }

    #[test]
    fn indirect_jump_with_changing_target_misfetches() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        predict_resolve(&mut bp, 0x400, BranchKind::IndirectJump, true, 0x1000);
        predict_resolve(&mut bp, 0x400, BranchKind::IndirectJump, true, 0x1000);
        // Target changes: BTB still predicts the old one -> misfetch.
        let o = predict_resolve(&mut bp, 0x400, BranchKind::IndirectJump, true, 0x2000);
        assert_eq!(o, Resolution::Misfetch);
    }

    #[test]
    fn stats_accounting_consistency() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_two_level());
        for i in 0..200u32 {
            let taken = (i / 7) % 2 == 0;
            predict_resolve(&mut bp, 0x100 + (i % 13) * 4, BranchKind::Cond, taken, 0x40);
        }
        let s = bp.stats();
        assert_eq!(s.branches, 200);
        assert_eq!(s.cond_branches, 200);
        assert_eq!(s.correct + s.misfetches + s.dir_mispredicts, 200);
        assert!(s.cond_accuracy() >= 0.0 && s.cond_accuracy() <= 1.0);
    }
}
