//! Saturating up/down counters — the PHT cell of every dynamic predictor.

/// An n-bit saturating counter (default 2-bit, as in the paper's PHT).
///
/// The counter predicts *taken* when in the upper half of its range. A
/// 2-bit counter therefore implements the classic strongly/weakly
/// taken/not-taken state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates a counter with `bits` width (1–7), initialised weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7.
    pub fn new(bits: u32) -> Self {
        assert!((1..=7).contains(&bits), "counter width {bits} out of 1..=7");
        let max = (1u8 << bits) - 1;
        Self {
            // Weakly taken: the lowest value that still predicts taken.
            value: (max / 2) + 1,
            max,
        }
    }

    /// The classic 2-bit counter initialised weakly taken.
    pub fn two_bit() -> Self {
        Self::new(2)
    }

    /// Current raw value.
    pub fn value(self) -> u8 {
        self.value
    }

    /// Maximum (saturated) value.
    pub fn max(self) -> u8 {
        self.max
    }

    /// Whether the counter currently predicts taken.
    pub fn predicts_taken(self) -> bool {
        self.value > self.max / 2
    }

    /// Sets the raw value, clamping into the counter's range (used when
    /// restoring a warm-state snapshot).
    pub fn set(&mut self, value: u8) {
        self.value = value.min(self.max);
    }

    /// Trains the counter toward the resolved direction.
    ///
    /// Branchless: the ±1 move is computed arithmetically and saturated
    /// with a clamp (which lowers to conditional moves), so the hottest
    /// predictor write in the simulator never takes a data-dependent
    /// branch. Bit-identical to the classic two-branch formulation.
    pub fn update(&mut self, taken: bool) {
        let next = i16::from(self.value) + (i16::from(taken) * 2 - 1);
        self.value = next.clamp(0, i16::from(self.max)) as u8;
    }
}

impl Default for SatCounter {
    fn default() -> Self {
        Self::two_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_state_machine() {
        let mut c = SatCounter::two_bit();
        assert_eq!(c.value(), 2); // weakly taken
        assert!(c.predicts_taken());
        c.update(false);
        assert!(!c.predicts_taken()); // weakly not-taken
        c.update(false);
        assert_eq!(c.value(), 0); // strongly not-taken
        c.update(false);
        assert_eq!(c.value(), 0); // saturates
        c.update(true);
        assert!(!c.predicts_taken()); // needs two to flip from strong
        c.update(true);
        assert!(c.predicts_taken());
        c.update(true);
        c.update(true);
        assert_eq!(c.value(), 3); // saturates high
    }

    #[test]
    fn hysteresis_tolerates_one_off() {
        // A saturated-taken counter should survive one not-taken outcome.
        let mut c = SatCounter::two_bit();
        c.update(true);
        c.update(true);
        c.update(false);
        assert!(c.predicts_taken());
    }

    #[test]
    fn one_bit_counter_has_no_hysteresis() {
        let mut c = SatCounter::new(1);
        c.update(false);
        assert!(!c.predicts_taken());
        c.update(true);
        assert!(c.predicts_taken());
    }

    #[test]
    #[should_panic(expected = "out of 1..=7")]
    fn zero_width_panics() {
        let _ = SatCounter::new(0);
    }

    #[test]
    fn three_bit_range() {
        let mut c = SatCounter::new(3);
        assert_eq!(c.max(), 7);
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c.value(), 7);
    }
}
