//! Branch Target Buffer: set-associative target cache.
//!
//! The paper's default is a direct-mapped, 512-entry BTB (§V.C); the number
//! of entries and the associativity are user parameters of the VHDL
//! generator (§III), so both are parameters here.

use crate::state::{BtbEntryState, BtbState, StateError};

/// BTB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BtbConfig {
    /// Total number of entries (power of two).
    pub entries: usize,
    /// Ways per set (power of two, ≤ entries).
    pub associativity: usize,
}

impl BtbConfig {
    /// The paper's default: 512 entries, direct-mapped.
    pub fn paper() -> Self {
        Self {
            entries: 512,
            associativity: 1,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.entries / self.associativity
    }

    fn validate(&self) {
        assert!(
            self.entries.is_power_of_two(),
            "BTB entries must be a power of two, got {}",
            self.entries
        );
        assert!(
            self.associativity.is_power_of_two() && self.associativity >= 1,
            "BTB associativity must be a power of two, got {}",
            self.associativity
        );
        assert!(
            self.associativity <= self.entries,
            "BTB associativity {} exceeds entry count {}",
            self.associativity,
            self.entries
        );
    }
}

impl Default for BtbConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BtbEntry {
    tag: u32,
    target: u32,
    /// LRU rank within the set: 0 = most recently used.
    lru: u8,
    valid: bool,
}

/// A set-associative branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    config: BtbConfig,
    sets: Vec<Vec<BtbEntry>>,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if the configuration geometry is invalid (non-power-of-two
    /// sizes or associativity exceeding entry count).
    pub fn new(config: BtbConfig) -> Self {
        config.validate();
        let empty = BtbEntry {
            tag: 0,
            target: 0,
            lru: 0,
            valid: false,
        };
        Self {
            config,
            sets: vec![vec![empty; config.associativity]; config.sets()],
            lookups: 0,
            hits: 0,
        }
    }

    /// Geometry this BTB was built with.
    pub fn config(&self) -> BtbConfig {
        self.config
    }

    fn set_and_tag(&self, pc: u32) -> (usize, u32) {
        let word = pc >> 2;
        let set = (word as usize) & (self.config.sets() - 1);
        let tag = word >> self.config.sets().trailing_zeros();
        (set, tag)
    }

    /// Looks up the predicted target for the branch at `pc`.
    ///
    /// Updates hit/lookup statistics and LRU state.
    pub fn lookup(&mut self, pc: u32) -> Option<u32> {
        self.lookups += 1;
        let (set, tag) = self.set_and_tag(pc);
        let ways = &mut self.sets[set];
        let hit = ways.iter().position(|e| e.valid && e.tag == tag);
        match hit {
            Some(way) => {
                self.hits += 1;
                let target = ways[way].target;
                Self::touch(ways, way);
                Some(target)
            }
            None => None,
        }
    }

    /// Peeks without touching statistics or LRU state.
    pub fn peek(&self, pc: u32) -> Option<u32> {
        let (set, tag) = self.set_and_tag(pc);
        self.sets[set]
            .iter()
            .find(|e| e.valid && e.tag == tag)
            .map(|e| e.target)
    }

    /// Installs or refreshes the mapping `pc -> target`.
    pub fn update(&mut self, pc: u32, target: u32) {
        let (set, tag) = self.set_and_tag(pc);
        let ways = &mut self.sets[set];
        if let Some(way) = ways.iter().position(|e| e.valid && e.tag == tag) {
            ways[way].target = target;
            Self::touch(ways, way);
            return;
        }
        // Choose an invalid way, else the LRU way.
        let victim = ways
            .iter()
            .position(|e| !e.valid)
            .unwrap_or_else(|| {
                ways.iter()
                    .enumerate()
                    .max_by_key(|(_, e)| e.lru)
                    .map(|(i, _)| i)
                    .expect("BTB set cannot be empty")
            });
        ways[victim] = BtbEntry {
            tag,
            target,
            lru: 0,
            valid: true,
        };
        // A fresh entry must age every other resident entry.
        Self::promote(ways, victim, u8::MAX);
    }

    fn touch(ways: &mut [BtbEntry], way: usize) {
        let old = ways[way].lru;
        Self::promote(ways, way, old);
    }

    /// Makes `way` most recently used, aging entries younger than `old`.
    fn promote(ways: &mut [BtbEntry], way: usize, old: u8) {
        for e in ways.iter_mut() {
            if e.valid && e.lru < old && e.lru < u8::MAX {
                e.lru += 1;
            }
        }
        ways[way].lru = 0;
    }

    /// Captures the BTB contents set-major (statistics excluded).
    pub fn state(&self) -> BtbState {
        BtbState {
            entries: self
                .sets
                .iter()
                .flatten()
                .map(|e| BtbEntryState {
                    tag: e.tag,
                    target: e.target,
                    lru: e.lru,
                    valid: e.valid,
                })
                .collect(),
        }
    }

    /// Restores contents captured from a BTB of the same geometry.
    ///
    /// # Errors
    ///
    /// [`StateError`] if the snapshot's entry count differs.
    pub fn restore_state(&mut self, state: &BtbState) -> Result<(), StateError> {
        if state.entries.len() != self.config.entries {
            return Err(StateError {
                what: "BTB entries",
                expected: self.config.entries,
                got: state.entries.len(),
            });
        }
        for (line, snap) in self.sets.iter_mut().flatten().zip(&state.entries) {
            *line = BtbEntry {
                tag: snap.tag,
                target: snap.target,
                lru: snap.lru,
                valid: snap.valid,
            };
        }
        Ok(())
    }

    /// Lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(BtbConfig::paper());
        assert_eq!(btb.lookup(0x1000), None);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
        assert_eq!(btb.lookups(), 2);
        assert_eq!(btb.hits(), 1);
        assert!((btb.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn update_refreshes_target() {
        let mut btb = Btb::new(BtbConfig::paper());
        btb.update(0x1000, 0x2000);
        btb.update(0x1000, 0x3000);
        assert_eq!(btb.peek(0x1000), Some(0x3000));
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let cfg = BtbConfig {
            entries: 4,
            associativity: 1,
        };
        let mut btb = Btb::new(cfg);
        btb.update(0x0, 0xA);
        // Same set (4 sets, word-indexed): pc 0x40 maps to set 0 too.
        btb.update(0x40, 0xB);
        assert_eq!(btb.peek(0x0), None, "conflict must evict the old entry");
        assert_eq!(btb.peek(0x40), Some(0xB));
    }

    #[test]
    fn two_way_keeps_both_then_evicts_lru() {
        let cfg = BtbConfig {
            entries: 4,
            associativity: 2,
        };
        let mut btb = Btb::new(cfg);
        // 2 sets; set 0 holds word addresses with even word index.
        btb.update(0x00, 0xA); // set 0
        btb.update(0x20, 0xB); // set 0 (word 8, even)
        assert_eq!(btb.peek(0x00), Some(0xA));
        assert_eq!(btb.peek(0x20), Some(0xB));
        // Touch 0x00 so 0x20 becomes LRU, then insert a third mapping.
        btb.lookup(0x00);
        btb.update(0x40, 0xC); // set 0 again
        assert_eq!(btb.peek(0x00), Some(0xA), "MRU entry must survive");
        assert_eq!(btb.peek(0x20), None, "LRU entry must be evicted");
        assert_eq!(btb.peek(0x40), Some(0xC));
    }

    #[test]
    fn peek_does_not_count() {
        let mut btb = Btb::new(BtbConfig::paper());
        btb.update(0x10, 0x20);
        let _ = btb.peek(0x10);
        assert_eq!(btb.lookups(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Btb::new(BtbConfig {
            entries: 500,
            associativity: 1,
        });
    }
}
