//! CI smoke sweep: a 2×2×2 grid (2 configs × 2 workloads × 2 seeds) on
//! 2 threads, small enough to finish in seconds.
//!
//! Run with `cargo run --release -p resim-sweep --example smoke`.
//! Exits non-zero (panics) if any cell misbehaves, so CI can gate on it.

use resim_core::EngineConfig;
use resim_sweep::{Scenario, SweepRunner, WorkloadPoint};
use resim_tracegen::TraceGenConfig;
use resim_workloads::SpecBenchmark;

fn main() {
    let scenario = Scenario::new()
        .config_grid(
            EngineConfig::paper_4wide().grid().widths([2, 4]).build(),
            TraceGenConfig::paper(),
        )
        .workload(WorkloadPoint::spec(SpecBenchmark::Gzip))
        .workload(WorkloadPoint::spec(SpecBenchmark::Vpr))
        .budgets([20_000])
        .seeds([2009, 2010]);

    let runner = SweepRunner::new(2);
    let report = runner.run(&scenario).expect("smoke scenario is valid");
    print!("{}", report.to_markdown());

    assert_eq!(report.cells.len(), 8, "2 configs x 2 workloads x 2 seeds");
    assert_eq!(
        report.trace_cache_misses, 4,
        "each (workload, seed) trace is generated once and shared by both configs"
    );
    for cell in &report.cells {
        assert_eq!(cell.stats.committed, 20_000, "{}: short commit", cell.config);
        assert!(
            cell.stats.ipc() > 0.0 && cell.stats.ipc() <= 4.0,
            "{}/{}: IPC {} out of range",
            cell.config,
            cell.workload,
            cell.stats.ipc()
        );
    }
    println!("smoke sweep OK");
}
