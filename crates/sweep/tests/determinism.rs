//! The stable-seeding contract: the same `(workload, seed, config)` cell
//! produces byte-identical `SimStats` whether it runs serially by hand or
//! through `resim-sweep` at any thread count.

use resim_core::{Engine, EngineConfig, SimStats};
use resim_sweep::{Scenario, SweepRunner, WorkloadPoint};
use resim_tracegen::{generate_trace, TraceGenConfig};
use resim_workloads::SpecBenchmark;

const BUDGET: usize = 10_000;

/// An 8-cell grid: 2 configs × 2 workloads × 1 budget × 2 seeds.
fn eight_cell_scenario() -> Scenario {
    Scenario::new()
        .config("4wide", EngineConfig::paper_4wide(), TraceGenConfig::paper())
        .config(
            "rb32",
            EngineConfig {
                rb_size: 32,
                ..EngineConfig::paper_4wide()
            },
            TraceGenConfig::paper(),
        )
        .workload(WorkloadPoint::spec(SpecBenchmark::Gzip))
        .workload(WorkloadPoint::spec(SpecBenchmark::Vpr))
        .budgets([BUDGET])
        .seeds([2009, 2010])
}

/// The hand-rolled serial reference: no runner, no cache, no threads —
/// exactly what every `resim-bench` binary did before the sweep crate.
fn serial_reference(scenario: &Scenario) -> Vec<SimStats> {
    let cells = scenario.cells();
    cells
        .iter()
        .map(|cell| {
            let config = &scenario.configs()[cell.config];
            let workload = &scenario.workloads()[cell.workload];
            let trace = generate_trace(
                workload.instantiate(cell.seed),
                cell.budget,
                &config.tracegen,
            );
            Engine::new(config.engine.clone())
                .expect("valid config")
                .run(trace.source())
        })
        .collect()
}

#[test]
fn sweep_matches_serial_reference_at_1_2_and_8_threads() {
    let scenario = eight_cell_scenario();
    let reference = serial_reference(&scenario);
    assert_eq!(reference.len(), 8);

    for threads in [1usize, 2, 8] {
        // A fresh runner (fresh cache) per thread count: nothing shared.
        let report = SweepRunner::new(threads)
            .run(&scenario)
            .expect("scenario is valid");
        assert_eq!(
            report.all_stats(),
            reference,
            "{threads}-thread sweep diverged from the serial reference"
        );
    }
}

#[test]
fn repeated_parallel_sweeps_are_bit_identical() {
    let scenario = eight_cell_scenario();
    let a = SweepRunner::new(4).run(&scenario).expect("valid");
    let b = SweepRunner::new(4).run(&scenario).expect("valid");
    assert_eq!(a.all_stats(), b.all_stats());
    // Cell metadata is stable too: order, names, budgets, seeds.
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.config, y.config);
        assert_eq!(x.workload, y.workload);
        assert_eq!(x.budget, y.budget);
        assert_eq!(x.seed, y.seed);
    }
}

#[test]
fn shared_cache_does_not_perturb_results() {
    // Running two sweeps on one runner (warm cache) must match a cold
    // runner cell for cell.
    let scenario = eight_cell_scenario();
    let runner = SweepRunner::new(2);
    let cold = runner.run(&scenario).expect("valid");
    let warm = runner.run(&scenario).expect("valid");
    assert_eq!(cold.all_stats(), warm.all_stats());
    assert_eq!(cold.trace_cache_misses, 4, "4 unique (workload, seed) traces");
    assert_eq!(warm.trace_cache_misses, 0, "warm sweep generates nothing");
}

/// The determinism contract extends to the sampled execution mode: a grid
/// mixing full and sampled cells produces bit-identical per-cell stats —
/// and identical per-window confidence data — at any thread count.
#[test]
fn sampled_sweeps_are_thread_count_invariant() {
    use resim_sweep::CellMode;
    let scenario = eight_cell_scenario()
        .mode(CellMode::Full)
        .mode(CellMode::Sampled(
            resim_sample::SamplePlan::systematic(2_000, 500, 2),
        ));
    let reference = SweepRunner::new(1).run(&scenario).expect("valid");
    assert_eq!(reference.cells.len(), 16, "mode axis doubles the grid");

    for threads in [2usize, 8] {
        let report = SweepRunner::new(threads).run(&scenario).expect("valid");
        assert_eq!(
            report.all_stats(),
            reference.all_stats(),
            "{threads}-thread sampled sweep diverged"
        );
        for (a, b) in report.cells.iter().zip(&reference.cells) {
            assert_eq!(a.mode, b.mode);
            assert_eq!(a.sampled, b.sampled, "window data must be identical");
        }
    }

    // Sampled cells share the full cells' traces: still 4 unique keys.
    assert_eq!(reference.trace_cache_misses, 4);

    // And each sampled estimate lands near its full counterpart.
    for full in reference.cells.iter().filter(|c| c.mode == "full") {
        let sampled = reference
            .cells
            .iter()
            .find(|c| {
                c.mode != "full"
                    && c.config == full.config
                    && c.workload == full.workload
                    && c.seed == full.seed
            })
            .expect("every full cell has a sampled twin");
        let s = sampled.sampled.as_ref().expect("sampled cell carries windows");
        assert!(
            s.relative_error(full.stats.ipc()) < 0.15,
            "sampled {} vs full {} ({} / {} / seed {})",
            s.mean_ipc(),
            full.stats.ipc(),
            full.config,
            full.workload,
            full.seed
        );
    }
}

#[test]
fn subset_runs_match_the_full_run_cell_for_cell() {
    let scenario = eight_cell_scenario();
    let full = SweepRunner::new(2).run(&scenario).expect("valid scenario");

    // A scattered subset, out of dispatch order and at several thread
    // counts: each cell must be bit-identical to the full run's, and the
    // report must follow the requested order.
    let indices = [5usize, 0, 3];
    for threads in [1usize, 4] {
        let subset = SweepRunner::new(threads)
            .run_subset(&scenario, &indices, |_| {})
            .expect("valid subset");
        assert_eq!(subset.cells.len(), indices.len());
        for (slot, &index) in indices.iter().enumerate() {
            assert_eq!(
                subset.cells[slot].stats.digest(),
                full.cells[index].stats.digest(),
                "cell {index} diverges at {threads} threads"
            );
            assert_eq!(subset.cells[slot].config, full.cells[index].config);
            assert_eq!(subset.cells[slot].workload, full.cells[index].workload);
        }
    }

    // A subset generates only the traces it needs.
    let runner = SweepRunner::new(1);
    let report = runner
        .run_subset(&scenario, &[0, 1], |_| {})
        .expect("valid subset");
    assert_eq!(report.trace_cache_misses, 1, "cells 0 and 1 share one trace");

    // An index outside the grid is a typed error, not a panic.
    let err = SweepRunner::new(1)
        .run_subset(&scenario, &[8], |_| {})
        .unwrap_err();
    assert!(err.to_string().contains("outside the grid"), "{err}");
}

/// The stats-lite contract at the sweep layer: a lite grid reproduces the
/// full grid's architectural results exactly — its stable CSV (which
/// carries no occupancy columns) is byte-identical — while every lite
/// cell's occupancy words read zero.
#[test]
fn lite_sweep_stable_csv_matches_full_byte_for_byte() {
    use resim_sweep::StatsMode;
    let scenario = eight_cell_scenario();
    let full = SweepRunner::new(2).run(&scenario).expect("valid");
    let lite = SweepRunner::new(2)
        .run(&eight_cell_scenario().stats(StatsMode::Lite))
        .expect("valid");

    assert_eq!(full.to_csv_stable(), lite.to_csv_stable());

    // Occupancy words are indices 17..23 of the 42-word vector; lite
    // zeroes exactly those and nothing else.
    for (f, l) in full.cells.iter().zip(&lite.cells) {
        let fw = f.stats.to_words();
        let lw = l.stats.to_words();
        for (i, (a, b)) in fw.iter().zip(&lw).enumerate() {
            if (17..23).contains(&i) {
                assert_eq!(*b, 0, "word {i} must be zeroed in lite");
            } else {
                assert_eq!(a, b, "word {i} drifted between full and lite");
            }
        }
        assert!(fw[17..23].iter().any(|&w| w > 0), "full grid saw occupancy");
    }
}

#[test]
fn cell_fingerprints_key_on_content_not_names() {
    let scenario = eight_cell_scenario();
    let cells = scenario.cells();
    // All 8 cells are distinct design points: distinct fingerprints.
    let mut fps: Vec<u64> = cells.iter().map(|c| scenario.cell_fingerprint(c)).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), 8);

    // Renaming a config does not move the fingerprint; changing the
    // engine does.
    let renamed = Scenario::new()
        .config("other-name", EngineConfig::paper_4wide(), TraceGenConfig::paper())
        .workload(WorkloadPoint::spec(SpecBenchmark::Gzip))
        .budgets([BUDGET])
        .seeds([2009]);
    assert_eq!(
        renamed.cell_fingerprint(&renamed.cells()[0]),
        scenario.cell_fingerprint(&cells[0]),
    );
}
