//! The deterministic worker-pool sweep runner.
//!
//! Cells are dispatched to plain `std::thread` workers pulling indices
//! from a shared atomic cursor; results land in a slot vector indexed by
//! cell, so the report order — and, because every cell's seeding comes
//! from the scenario definition rather than from scheduling — every
//! [`SimStats`](resim_core::SimStats) is bit-identical regardless of
//! thread count or interleaving.
//!
//! Trace generation runs as a separate phase over the *unique* trace
//! keys of the grid, so a sweep of many configurations over one
//! `(workload, seed, budget)` tuple generates (and encodes) its trace
//! exactly once, shared behind an [`Arc`] via
//! [`resim_tracegen::TraceCache`].

use crate::report::{CellResult, SweepReport};
use crate::scenario::{CellMode, Scenario, ScenarioError, StatsMode};
use resim_core::Engine;
use resim_sample::run_sampled;
use resim_tracegen::{TraceCache, TraceKey};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which phase of a sweep a [`SweepProgress`] sample describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPhase {
    /// Phase 1: generating (and encoding) the grid's unique traces.
    Generate,
    /// Phase 2: simulating the grid cells against the shared traces.
    Simulate,
}

impl SweepPhase {
    /// Short lower-case label (`"tracegen"` / `"simulate"`).
    pub fn label(self) -> &'static str {
        match self {
            SweepPhase::Generate => "tracegen",
            SweepPhase::Simulate => "simulate",
        }
    }
}

/// A live progress sample emitted by [`SweepRunner::run_with_progress`].
///
/// One sample arrives at the start of each phase (`done == 0`) and one
/// after every completed unit of work — a generated trace in
/// [`SweepPhase::Generate`], a simulated cell in
/// [`SweepPhase::Simulate`]. Samples may be emitted from worker threads;
/// the callback must be `Sync`.
#[derive(Debug, Clone)]
pub struct SweepProgress {
    /// The phase this sample describes.
    pub phase: SweepPhase,
    /// Units of the phase completed so far.
    pub done: usize,
    /// Total units in the phase.
    pub total: usize,
    /// Trace-cache hits accumulated since the sweep started.
    pub cache_hits: u64,
    /// Trace-cache misses (i.e. traces generated) since the sweep started.
    pub cache_misses: u64,
    /// Wall time since [`SweepRunner::run_with_progress`] was called.
    pub elapsed: Duration,
    /// Naive remaining-time estimate for this phase (elapsed scaled by
    /// the remaining unit count); `None` until the first unit completes.
    pub eta: Option<Duration>,
}

/// Multi-threaded scenario-grid runner.
///
/// # Example
///
/// ```
/// use resim_core::EngineConfig;
/// use resim_sweep::{Scenario, SweepRunner, WorkloadPoint};
/// use resim_tracegen::TraceGenConfig;
/// use resim_workloads::SpecBenchmark;
///
/// let scenario = Scenario::new()
///     .config("paper-4wide", EngineConfig::paper_4wide(), TraceGenConfig::paper())
///     .workload(WorkloadPoint::spec(SpecBenchmark::Gzip))
///     .budgets([5_000])
///     .seeds([2009]);
/// let report = SweepRunner::new(2).run(&scenario).expect("valid scenario");
/// assert_eq!(report.cells.len(), 1);
/// assert!(report.cells[0].stats.ipc() > 0.0);
/// ```
#[derive(Debug)]
pub struct SweepRunner {
    threads: usize,
    cache: Arc<TraceCache>,
}

impl SweepRunner {
    /// Creates a runner with `threads` workers; `0` selects the host's
    /// available parallelism.
    pub fn new(threads: usize) -> Self {
        Self::with_cache(threads, Arc::new(TraceCache::new()))
    }

    /// Creates a runner sharing an existing trace cache — use this to
    /// reuse traces across several sweeps in one process.
    pub fn with_cache(threads: usize, cache: Arc<TraceCache>) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Self { threads, cache }
    }

    /// Worker-thread count this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shared trace cache.
    pub fn cache(&self) -> &Arc<TraceCache> {
        &self.cache
    }

    /// Runs every cell of `scenario` and collects the report.
    ///
    /// # Errors
    ///
    /// Returns the [`ScenarioError`] from [`Scenario::validate`] without
    /// running anything.
    pub fn run(&self, scenario: &Scenario) -> Result<SweepReport, ScenarioError> {
        self.run_with_progress(scenario, |_| {})
    }

    /// Runs every cell of `scenario`, invoking `progress` with a
    /// [`SweepProgress`] sample at each phase start and after every
    /// completed unit of work.
    ///
    /// The callback may fire concurrently from worker threads (hence the
    /// `Sync` bound); each sample carries the completion count taken when
    /// its unit finished, so under concurrency samples can arrive
    /// slightly out of order. Progress reporting never influences
    /// scheduling or seeding, so the report stays bit-identical to
    /// [`SweepRunner::run`].
    ///
    /// # Errors
    ///
    /// Returns the [`ScenarioError`] from [`Scenario::validate`] without
    /// running anything.
    pub fn run_with_progress(
        &self,
        scenario: &Scenario,
        progress: impl Fn(&SweepProgress) + Sync,
    ) -> Result<SweepReport, ScenarioError> {
        scenario.validate()?;
        self.run_cells(scenario, scenario.cells(), progress)
    }

    /// Runs only the cells at `indices` (positions in
    /// [`Scenario::cells`] order), collecting a report whose cells
    /// appear in the order the indices were given.
    ///
    /// The execution machinery — worker pool, shared trace cache,
    /// definition-derived seeding — is exactly
    /// [`SweepRunner::run_with_progress`]'s, so a subset cell's
    /// [`SimStats`](resim_core::SimStats) is bit-identical to the same
    /// cell of a full run (the determinism tests state this contract).
    /// This is what `resim-serve` runs when a cached submission only
    /// misses on some cells.
    ///
    /// # Errors
    ///
    /// [`Scenario::validate`]'s error, or
    /// [`ScenarioError::CellIndex`] for an index outside the grid.
    pub fn run_subset(
        &self,
        scenario: &Scenario,
        indices: &[usize],
        progress: impl Fn(&SweepProgress) + Sync,
    ) -> Result<SweepReport, ScenarioError> {
        scenario.validate()?;
        let all = scenario.cells();
        let mut cells = Vec::with_capacity(indices.len());
        for &index in indices {
            let cell = *all.get(index).ok_or(ScenarioError::CellIndex {
                index,
                cells: all.len(),
            })?;
            cells.push(cell);
        }
        self.run_cells(scenario, cells, progress)
    }

    /// The shared execution core of [`SweepRunner::run_with_progress`]
    /// and [`SweepRunner::run_subset`]: generate the unique traces of
    /// `cells`, then simulate each cell, reporting in `cells` order.
    fn run_cells(
        &self,
        scenario: &Scenario,
        cells: Vec<crate::scenario::Cell>,
        progress: impl Fn(&SweepProgress) + Sync,
    ) -> Result<SweepReport, ScenarioError> {
        let t0 = Instant::now();
        let (hits0, misses0) = (self.cache.hits(), self.cache.misses());
        let emit = |phase: SweepPhase, done: usize, total: usize, phase_t0: Instant| {
            let phase_elapsed = phase_t0.elapsed();
            let eta = (done > 0 && done < total)
                .then(|| phase_elapsed.mul_f64((total - done) as f64 / done as f64));
            progress(&SweepProgress {
                phase,
                done,
                total,
                cache_hits: self.cache.hits() - hits0,
                cache_misses: self.cache.misses() - misses0,
                elapsed: t0.elapsed(),
                eta,
            });
        };

        // Phase 1: generate each unique trace once, in parallel.
        let mut seen = HashSet::new();
        let unique: Vec<(TraceKey, usize, u64)> = cells
            .iter()
            .filter_map(|c| {
                let key = scenario.trace_key(c);
                seen.insert(key.clone())
                    .then_some((key, c.workload, c.seed))
            })
            .collect();
        let phase_t0 = Instant::now();
        let done = AtomicUsize::new(0);
        emit(SweepPhase::Generate, 0, unique.len(), phase_t0);
        self.for_indices(unique.len(), |i| {
            let (key, workload, seed) = &unique[i];
            let point = &scenario.workloads()[*workload];
            self.cache
                .get_or_generate(key.clone(), || point.instantiate(*seed));
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            emit(SweepPhase::Generate, d, unique.len(), phase_t0);
        });

        // Phase 2: run the cells, each against its shared trace.
        let phase_t0 = Instant::now();
        let done = AtomicUsize::new(0);
        emit(SweepPhase::Simulate, 0, cells.len(), phase_t0);
        let slots: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; cells.len()]);
        self.for_indices(cells.len(), |i| {
            let cell = &cells[i];
            let config = &scenario.configs()[cell.config];
            let cached = self
                .cache
                .get(&scenario.trace_key(cell))
                .expect("phase 1 filled every key");
            let mode = scenario.cell_mode(cell);
            let cell_t0 = Instant::now();
            let (stats, sampled) = match &mode {
                CellMode::Full => {
                    // The grid-wide stats knob: lite grids run on the
                    // stats-lite engine (validate() already rejected
                    // lite + sampled combinations).
                    let mut engine = match scenario.stats_mode() {
                        StatsMode::Full => Engine::new(config.engine.clone()),
                        StatsMode::Lite => Engine::new_lite(config.engine.clone()),
                    }
                    .expect("scenario validated every config");
                    (engine.run(cached.trace.source()), None)
                }
                CellMode::Sampled(plan) => {
                    let s = run_sampled(&config.engine, cached.trace.source(), plan)
                        .expect("scenario validated every plan and config");
                    (s.sim, Some(s))
                }
            };
            let result = CellResult {
                config: config.name.clone(),
                workload: scenario.workloads()[cell.workload].name.clone(),
                mode: mode.name(),
                budget: cell.budget,
                seed: cell.seed,
                stats,
                sampled,
                trace_stats: cached.stats.clone(),
                wall: cell_t0.elapsed(),
            };
            slots.lock().expect("result slots poisoned")[i] = Some(result);
            let d = done.fetch_add(1, Ordering::Relaxed) + 1;
            emit(SweepPhase::Simulate, d, cells.len(), phase_t0);
        });

        let cells = slots
            .into_inner()
            .expect("result slots poisoned")
            .into_iter()
            .map(|r| r.expect("every cell ran"))
            .collect();
        Ok(SweepReport {
            cells,
            threads: self.threads,
            wall: t0.elapsed(),
            trace_cache_hits: self.cache.hits() - hits0,
            trace_cache_misses: self.cache.misses() - misses0,
        })
    }

    /// Runs `work(i)` for every `i in 0..n` across the worker pool.
    ///
    /// With one thread (or one item) the work runs inline on the calling
    /// thread — the serial reference path the determinism tests compare
    /// against.
    fn for_indices(&self, n: usize, work: impl Fn(usize) + Sync) {
        let workers = self.threads.min(n);
        if workers <= 1 {
            for i in 0..n {
                work(i);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    work(i);
                });
            }
        });
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorkloadPoint;
    use resim_core::EngineConfig;
    use resim_tracegen::TraceGenConfig;
    use resim_workloads::SpecBenchmark;

    fn small_grid() -> Scenario {
        Scenario::new()
            .config("4wide", EngineConfig::paper_4wide(), TraceGenConfig::paper())
            .config(
                "rb32",
                EngineConfig {
                    rb_size: 32,
                    ..EngineConfig::paper_4wide()
                },
                TraceGenConfig::paper(),
            )
            .workload(WorkloadPoint::spec(SpecBenchmark::Gzip))
            .budgets([3_000])
            .seeds([2009])
    }

    #[test]
    fn shared_tracegen_generates_one_trace_for_two_configs() {
        let runner = SweepRunner::new(1);
        let report = runner.run(&small_grid()).unwrap();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.trace_cache_misses, 1, "one unique trace key");
        for cell in &report.cells {
            assert_eq!(cell.stats.committed, 3_000);
        }
        // The bigger RB can only help.
        assert!(report.cells[1].stats.cycles <= report.cells[0].stats.cycles);
    }

    #[test]
    fn cache_reuse_across_sweeps() {
        let runner = SweepRunner::new(1);
        let first = runner.run(&small_grid()).unwrap();
        let second = runner.run(&small_grid()).unwrap();
        assert_eq!(first.trace_cache_misses, 1);
        assert_eq!(second.trace_cache_misses, 0, "second sweep generates nothing");
        assert!(second.trace_cache_hits >= 1, "second sweep reuses the trace");
    }

    #[test]
    fn zero_threads_resolves_to_host_parallelism() {
        assert!(SweepRunner::new(0).threads() >= 1);
        assert_eq!(SweepRunner::new(3).threads(), 3);
    }

    #[test]
    fn invalid_scenario_is_rejected() {
        let err = SweepRunner::new(1).run(&Scenario::new());
        assert!(err.is_err());
    }

    #[test]
    fn progress_samples_cover_both_phases() {
        let samples: Mutex<Vec<SweepProgress>> = Mutex::new(Vec::new());
        let report = SweepRunner::new(1)
            .run_with_progress(&small_grid(), |p| {
                samples.lock().unwrap().push(p.clone());
            })
            .unwrap();
        let samples = samples.into_inner().unwrap();
        // Phase starts (done == 0) plus one sample per completed unit:
        // 1 unique trace + 2 cells.
        let gen: Vec<_> = samples
            .iter()
            .filter(|p| p.phase == SweepPhase::Generate)
            .collect();
        let sim: Vec<_> = samples
            .iter()
            .filter(|p| p.phase == SweepPhase::Simulate)
            .collect();
        assert_eq!(gen.len(), 2, "start + 1 generated trace");
        assert_eq!(sim.len(), 3, "start + 2 simulated cells");
        assert_eq!(gen.last().unwrap().done, 1);
        assert_eq!(gen.last().unwrap().total, 1);
        assert_eq!(sim.last().unwrap().done, 2);
        assert_eq!(sim.last().unwrap().total, 2);
        assert_eq!(sim.last().unwrap().cache_misses, 1);
        assert!(sim.last().unwrap().eta.is_none(), "no eta once the phase is done");
        assert_eq!(sim[1].done, 1);
        assert!(sim[1].eta.is_some(), "mid-phase samples estimate the remainder");
        assert_eq!(SweepPhase::Generate.label(), "tracegen");
        assert_eq!(SweepPhase::Simulate.label(), "simulate");
        // Reporting must not change results.
        assert_eq!(report.cells.len(), 2);
        let plain = SweepRunner::new(1).run(&small_grid()).unwrap();
        assert_eq!(report.cells[0].stats.digest(), plain.cells[0].stats.digest());
    }
}
