//! # resim-sweep
//!
//! A deterministic, multi-threaded scenario-grid runner for ReSim
//! (Fytraki & Pnevmatikatos, DATE 2009).
//!
//! The point of a *reconfigurable* simulator is cheap exploration of many
//! design points: the paper reruns the same traces across widths,
//! pipeline organizations, predictors and memory systems. This crate
//! turns that pattern into a subsystem:
//!
//! * a [`Scenario`] is the cross product of engine configurations
//!   ([`ConfigPoint`]), workloads ([`WorkloadPoint`]), correct-path
//!   instruction budgets and workload seeds;
//! * a [`SweepRunner`] dispatches the cells to a `std::thread` worker
//!   pool (no external dependencies). Each cell's seeding comes from the
//!   scenario definition, never from scheduling, so every
//!   [`SimStats`](resim_core::SimStats) is **bit-identical regardless of
//!   thread count or interleaving**;
//! * traces for identical `(workload, seed, budget, tracegen)` inputs
//!   are generated **once** and shared behind an `Arc` through
//!   [`resim_tracegen::TraceCache`] — the dominant redundant cost of a
//!   naive sweep;
//! * results collect into a [`SweepReport`]: per-cell
//!   [`CellResult`]s (stats, trace stats, wall time) plus grid-level
//!   aggregates, renderable as CSV or Markdown;
//! * an execution-mode axis ([`CellMode`]) trades accuracy for
//!   wall-clock per cell: `CellMode::Sampled` runs a cell through
//!   `resim-sample`'s SMARTS-style sampled simulation (functional warmup
//!   between detailed windows) and reports the window-mean IPC with a
//!   95 % confidence interval next to the exact cells.
//!
//! ## Example
//!
//! ```
//! use resim_core::EngineConfig;
//! use resim_sweep::{Scenario, SweepRunner, WorkloadPoint};
//! use resim_tracegen::TraceGenConfig;
//! use resim_workloads::SpecBenchmark;
//!
//! // 2 configs × 2 workloads × 1 budget × 1 seed = 4 cells.
//! let scenario = Scenario::new()
//!     .config_grid(
//!         EngineConfig::paper_4wide().grid().rb_sizes([16, 32]).build(),
//!         TraceGenConfig::paper(),
//!     )
//!     .workload(WorkloadPoint::spec(SpecBenchmark::Gzip))
//!     .workload(WorkloadPoint::spec(SpecBenchmark::Vpr))
//!     .budgets([5_000])
//!     .seeds([2009]);
//!
//! let report = SweepRunner::new(2).run(&scenario).expect("valid grid");
//! assert_eq!(report.cells.len(), 4);
//! // Two workload traces serve all four cells.
//! assert_eq!(report.trace_cache_misses, 2);
//! println!("{}", report.to_markdown());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod doc;
mod from_table;
mod report;
mod runner;
mod scenario;

pub use doc::{ScenarioDoc, WorkloadSpec};
pub use from_table::resolve_tracegen;
pub use report::{stable_csv_header, stable_csv_row, CellResult, SweepReport};
pub use runner::{SweepPhase, SweepProgress, SweepRunner};
pub use scenario::{Cell, CellMode, ConfigPoint, Scenario, ScenarioError, StatsMode, WorkloadPoint};
