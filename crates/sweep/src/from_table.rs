//! TOML scenario-file construction of sweep scenarios.
//!
//! Maps the `[sweep]` table of a `resim` scenario file onto
//! [`Scenario`] — the entry point of the declarative bulk-simulation
//! path (`resim sweep`). See `docs/guide.md` for the key reference.

use crate::scenario::{CellMode, Scenario, StatsMode, WorkloadPoint};
use resim_core::{ConfigGrid, EngineConfig, PipelineDescription};
use resim_sample::SamplePlan;
use resim_toml::{Error, Table};
use resim_tracegen::TraceGenConfig;
use resim_workloads::{SpecBenchmark, WorkloadProfile};

impl WorkloadPoint {
    /// Looks a workload up by scenario-file name: one of the five
    /// calibrated SPECINT models (`"gzip"`, `"bzip2"`, `"parser"`,
    /// `"vortex"`, `"vpr"`) or `"generic"`
    /// ([`WorkloadProfile::generic`]). Custom profiles stay
    /// library-only ([`WorkloadPoint::profile`]).
    ///
    /// ```
    /// use resim_sweep::WorkloadPoint;
    ///
    /// assert_eq!(WorkloadPoint::named("bzip2").unwrap().name, "bzip2");
    /// assert!(WorkloadPoint::named("mcf").is_none());
    /// ```
    pub fn named(name: &str) -> Option<Self> {
        if name == "generic" {
            return Some(WorkloadPoint::profile("generic", WorkloadProfile::generic()));
        }
        SpecBenchmark::by_name(name).map(WorkloadPoint::spec)
    }

    /// The names [`WorkloadPoint::named`] accepts, rendered for
    /// diagnostics (`"gzip, bzip2, parser, vortex, vpr or generic"`) —
    /// derived from [`SpecBenchmark::ALL`] so error messages track new
    /// benchmarks automatically.
    pub fn valid_names() -> String {
        let spec: Vec<&str> = SpecBenchmark::ALL.iter().map(|b| b.name()).collect();
        format!("{} or generic", spec.join(", "))
    }
}

/// Resolves a `[tracegen]`-shaped table against an engine
/// configuration, defaulting the generator's predictor to the
/// engine's when no predictor is given — the wrong-path tags are only
/// meaningful when the two match (§V.A).
///
/// This is THE inheritance rule for scenario files: the sweep grid
/// (config entries and the grid base) and the CLI's single-run
/// commands all resolve through it, so a scenario means the same
/// thing on every path.
///
/// ```
/// use resim_core::EngineConfig;
/// use resim_sweep::resolve_tracegen;
///
/// let engine = EngineConfig::paper_2wide_cached(); // perfect predictor
/// let tg = resolve_tracegen(&engine, None).unwrap();
/// assert_eq!(tg.predictor, engine.predictor);
/// ```
///
/// # Errors
///
/// Whatever [`TraceGenConfig::from_table`] rejects.
pub fn resolve_tracegen(
    engine: &EngineConfig,
    table: Option<&Table>,
) -> Result<TraceGenConfig, Error> {
    match table {
        Some(g) => {
            let mut tg = TraceGenConfig::from_table(g)?;
            if g.opt_table("predictor")?.is_none() {
                tg.predictor = engine.predictor;
            }
            Ok(tg)
        }
        None => Ok(TraceGenConfig {
            predictor: engine.predictor,
            ..TraceGenConfig::paper()
        }),
    }
}

impl Scenario {
    /// Builds a sweep scenario from a `[sweep]` table.
    ///
    /// Axes:
    ///
    /// * `workloads` — array of workload names
    ///   ([`WorkloadPoint::named`]), required;
    /// * `budgets`, `seeds` — integer arrays, required;
    /// * `modes` — optional array of `"full"` / `"sampled"`;
    ///   `"sampled"` reads its plan from the `[sweep.sample]` sub-table
    ///   ([`SamplePlan::from_table`]);
    /// * `stats` — optional `"full"` (default) or `"lite"`: the
    ///   grid-wide [`StatsMode`]. `"lite"` runs every cell on the
    ///   stats-lite engine (occupancy and stage-activity bookkeeping
    ///   compiled out) and cannot combine with sampled modes;
    /// * configurations — any number of `[[sweep.config]]` entries
    ///   (`name`, optional `engine` and `tracegen` sub-tables), and/or
    ///   one `[sweep.grid]` (axis keys per
    ///   [`ConfigGrid::from_table`], an optional `base` engine table
    ///   and an optional shared `tracegen` table). At least one
    ///   configuration must result.
    ///
    /// A config entry without a `tracegen` table — or with one that
    /// omits `predictor` — generates its traces with the **engine's**
    /// predictor, keeping the wrong-path tags meaningful (§V.A).
    ///
    /// The keys `threads` and `trace_files` are permitted but ignored
    /// here: they steer the CLI driver, not the grid itself.
    ///
    /// The result is validated ([`Scenario::validate`]), so a table
    /// that parses is a grid
    /// [`SweepRunner::run`](crate::SweepRunner::run) accepts.
    ///
    /// ```
    /// use resim_sweep::Scenario;
    ///
    /// let doc = resim_toml::parse(r#"
    /// [sweep]
    /// workloads = ["gzip", "vpr"]
    /// budgets = [5000]
    /// seeds = [2009, 2010]
    ///
    /// [sweep.grid]
    /// rb_sizes = [16, 32]
    /// "#).unwrap();
    /// let sweep = doc.opt_table("sweep").unwrap().unwrap();
    /// let scenario = Scenario::from_table(sweep).unwrap();
    /// assert_eq!(scenario.len(), 2 * 2 * 2, "configs x workloads x seeds");
    /// ```
    ///
    /// # Errors
    ///
    /// A line-numbered [`Error`] for unknown keys or workload names,
    /// missing required axes, sub-table problems, or a grid failing
    /// [`Scenario::validate`] (duplicate names, zero budgets, invalid
    /// configurations).
    pub fn from_table(t: &Table) -> Result<Self, Error> {
        Self::from_table_with(t, None)
    }

    /// [`Scenario::from_table`] with a scenario-level custom
    /// [`PipelineDescription`] in scope (a top-level `[pipeline]`
    /// table, parsed by the caller). When given, the description is
    /// the default pipeline of every `[[sweep.config]]` engine and of
    /// the `[sweep.grid]` base, and its name is resolvable on the
    /// grid's `pipelines` axis alongside the built-ins.
    ///
    /// # Errors
    ///
    /// As [`Scenario::from_table`].
    pub fn from_table_with(
        t: &Table,
        custom: Option<&PipelineDescription>,
    ) -> Result<Self, Error> {
        t.ensure_only(&[
            "workloads",
            "budgets",
            "seeds",
            "modes",
            "stats",
            "sample",
            "config",
            "grid",
            "threads",
            "trace_files",
        ])?;
        let mut scenario = Scenario::new();

        for entry in t.table_array("config")? {
            entry.ensure_only(&["name", "engine", "tracegen"])?;
            let name = entry.req_str("name")?;
            let engine = match entry.opt_table("engine")? {
                Some(e) => EngineConfig::from_table_with(e, custom)?,
                None => match custom {
                    Some(p) => EngineConfig {
                        pipeline: p.clone(),
                        ..EngineConfig::paper_4wide()
                    },
                    None => EngineConfig::paper_4wide(),
                },
            };
            let tracegen = resolve_tracegen(&engine, entry.opt_table("tracegen")?)?;
            scenario = scenario.config(name, engine, tracegen);
        }
        if let Some(g) = t.opt_table("grid")? {
            let base = match g.opt_table("base")? {
                Some(b) => EngineConfig::from_table_with(b, custom)?,
                None => match custom {
                    Some(p) => EngineConfig {
                        pipeline: p.clone(),
                        ..EngineConfig::paper_4wide()
                    },
                    None => EngineConfig::paper_4wide(),
                },
            };
            let tracegen = resolve_tracegen(&base, g.opt_table("tracegen")?)?;
            let grid = ConfigGrid::from_table_with(base, g, custom)?;
            let (points, notes) = grid
                .try_build_with_notes()
                .map_err(|(name, e)| g.error(format!("grid point {name:?}: {e}")))?;
            scenario = scenario.config_grid(points, tracegen).with_grid_notes(notes);
        }
        if scenario.configs().is_empty() {
            return Err(t.error(
                "a sweep needs at least one configuration: [[sweep.config]] entries \
                 and/or a [sweep.grid]",
            ));
        }

        let Some(workloads) = t.opt_str_array("workloads")? else {
            return Err(t.error("missing required array key \"workloads\""));
        };
        for w in &workloads {
            let point = WorkloadPoint::named(&w.value).ok_or_else(|| {
                w.error(format!(
                    "unknown workload {:?} (expected {})",
                    w.value,
                    WorkloadPoint::valid_names()
                ))
            })?;
            scenario = scenario.workload(point);
        }
        let Some(budgets) = t.opt_usize_array("budgets")? else {
            return Err(t.error("missing required array key \"budgets\""));
        };
        let Some(seeds) = t.opt_u64_array("seeds")? else {
            return Err(t.error("missing required array key \"seeds\""));
        };
        scenario = scenario.budgets(budgets).seeds(seeds);

        match t.opt_str("stats")? {
            None | Some("full") => {}
            Some("lite") => scenario = scenario.stats(StatsMode::Lite),
            Some(other) => {
                return Err(Error::new(
                    t.key_line("stats"),
                    format!("unknown stats mode {other:?} (expected \"full\" or \"lite\")"),
                ))
            }
        }

        if let Some(modes) = t.opt_str_array("modes")? {
            for m in &modes {
                scenario = match m.value.as_str() {
                    "full" => scenario.mode(CellMode::Full),
                    "sampled" => {
                        let sub = t.opt_table("sample")?.ok_or_else(|| {
                            m.error("mode \"sampled\" requires a [sweep.sample] table")
                        })?;
                        scenario.mode(CellMode::Sampled(SamplePlan::from_table(sub)?))
                    }
                    other => {
                        return Err(m.error(format!(
                            "unknown mode {other:?} (expected full or sampled)"
                        )))
                    }
                };
            }
        }

        scenario
            .validate()
            .map_err(|e| t.error(format!("invalid scenario: {e}")))?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resim_bpred::PredictorConfig;

    fn parse(s: &str) -> Result<Scenario, Error> {
        let doc = resim_toml::parse(s).unwrap();
        let sweep = doc.opt_table("sweep").unwrap().expect("[sweep] present");
        Scenario::from_table(sweep)
    }

    const MINIMAL: &str = r#"
[sweep]
workloads = ["gzip"]
budgets = [1000]
seeds = [1]
[[sweep.config]]
name = "base"
"#;

    #[test]
    fn minimal_scenario() {
        let s = parse(MINIMAL).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.configs()[0].name, "base");
        assert_eq!(s.configs()[0].engine, EngineConfig::paper_4wide());
        assert_eq!(
            s.configs()[0].tracegen,
            TraceGenConfig::paper(),
            "default engine predictor == paper tracegen predictor"
        );
    }

    #[test]
    fn config_entries_and_grid_combine() {
        let s = parse(
            r#"
[sweep]
workloads = ["gzip", "vpr"]
budgets = [1000, 2000]
seeds = [1]
[[sweep.config]]
name = "cached"
[sweep.config.engine]
preset = "paper-2wide-cached"
[sweep.grid]
rb_sizes = [16, 32]
"#,
        )
        .unwrap();
        assert_eq!(s.configs().len(), 3, "1 explicit + 2 grid points");
        assert_eq!(s.configs()[1].name, "rb16");
        assert_eq!(s.len(), 3 * 2 * 2);
    }

    #[test]
    fn tracegen_predictor_follows_the_engine() {
        let s = parse(
            r#"
[sweep]
workloads = ["gzip"]
budgets = [1000]
seeds = [1]
[[sweep.config]]
name = "perf"
[sweep.config.engine.predictor]
kind = "perfect"
"#,
        )
        .unwrap();
        assert_eq!(
            s.configs()[0].tracegen.predictor,
            PredictorConfig::perfect(),
            "no [tracegen] table: generator inherits the engine predictor"
        );
    }

    #[test]
    fn explicit_tracegen_predictor_wins() {
        let s = parse(
            r#"
[sweep]
workloads = ["gzip"]
budgets = [1000]
seeds = [1]
[[sweep.config]]
name = "mixed"
[sweep.config.engine.predictor]
kind = "perfect"
[sweep.config.tracegen]
seed = 9
[sweep.config.tracegen.predictor]
kind = "two-level"
"#,
        )
        .unwrap();
        assert_eq!(s.configs()[0].tracegen.seed, 9);
        assert_eq!(
            s.configs()[0].tracegen.predictor,
            PredictorConfig::paper_two_level()
        );
    }

    #[test]
    fn modes_axis_with_sample_plan() {
        let s = parse(
            r#"
[sweep]
workloads = ["gzip"]
budgets = [10000]
seeds = [1]
modes = ["full", "sampled"]
[sweep.sample]
interval = 1000
detailed = 200
period = 2
[[sweep.config]]
name = "base"
"#,
        )
        .unwrap();
        assert_eq!(s.mode_values().len(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn missing_axes_are_pointed_out() {
        let err = parse("[sweep]\nbudgets = [1]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"")
            .unwrap_err();
        assert!(err.to_string().contains("workloads"), "{err}");
        let err = parse("[sweep]\nworkloads = [\"gzip\"]\nbudgets = [1]\nseeds = [1]").unwrap_err();
        assert!(err.to_string().contains("at least one configuration"), "{err}");
        let err = parse(
            "[sweep]\nworkloads = [\"gzip\"]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap_err();
        assert!(err.to_string().contains("budgets"), "{err}");
    }

    #[test]
    fn bad_workload_and_mode_names_carry_lines() {
        let err = parse(
            "[sweep]\nworkloads = [\"gzip\",\n  \"mcf\"]\nbudgets = [1]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("mcf"));
        let err = parse(
            "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [1]\nseeds = [1]\nmodes = [\"exact\"]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap_err();
        assert!(err.to_string().contains("exact"));
        let err = parse(
            "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [1]\nseeds = [1]\nmodes = [\"sampled\"]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap_err();
        assert!(err.to_string().contains("[sweep.sample]"));
    }

    #[test]
    fn stats_key_selects_the_mode() {
        let lite = parse(
            "[sweep]\nstats = \"lite\"\nworkloads = [\"gzip\"]\nbudgets = [1]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap();
        assert_eq!(lite.stats_mode(), StatsMode::Lite);
        let full = parse(
            "[sweep]\nstats = \"full\"\nworkloads = [\"gzip\"]\nbudgets = [1]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap();
        assert_eq!(full.stats_mode(), StatsMode::Full);
        assert_eq!(parse(MINIMAL).unwrap().stats_mode(), StatsMode::Full);
        let err = parse(
            "[sweep]\nstats = \"turbo\"\nworkloads = [\"gzip\"]\nbudgets = [1]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap_err();
        assert!(err.to_string().contains("turbo"), "{err}");
        let err = parse(
            "[sweep]\nstats = \"lite\"\nmodes = [\"sampled\"]\nworkloads = [\"gzip\"]\nbudgets = [10000]\nseeds = [1]\n[sweep.sample]\ninterval = 1000\ndetailed = 200\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap_err();
        assert!(err.to_string().contains("lite"), "{err}");
    }

    #[test]
    fn scenario_validation_runs() {
        let err = parse(
            "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [0]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap_err();
        assert!(err.to_string().contains("non-zero"), "{err}");
        let err = parse(
            "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [1]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn impossible_grid_combination_is_a_line_diagnostic() {
        let err = parse(
            "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [1]\nseeds = [1]\n[sweep.grid]\nrb_sizes = [2]",
        )
        .unwrap_err();
        assert_eq!(err.line(), 5, "anchored at the [sweep.grid] header");
        assert!(err.to_string().contains("grid point \"rb2\""), "{err}");
    }

    #[test]
    fn generic_workload_is_available() {
        let s = parse(
            "[sweep]\nworkloads = [\"generic\"]\nbudgets = [100]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap();
        assert_eq!(s.workloads()[0].name, "generic");
    }

    #[test]
    fn custom_pipeline_is_the_default_and_axis_resolvable() {
        let custom = PipelineDescription::new(
            "skewed",
            true,
            false,
            vec![
                resim_core::StageRow::per_way("fetch", "F", "2*i".parse().unwrap()),
                resim_core::StageRow::per_way("commit", "C", "2*i+1".parse().unwrap()),
            ],
        );
        let doc = resim_toml::parse(
            r#"
[sweep]
workloads = ["gzip"]
budgets = [1000]
seeds = [1]
[[sweep.config]]
name = "plain"
[sweep.grid]
pipelines = ["improved", "skewed"]
"#,
        )
        .unwrap();
        let sweep = doc.opt_table("sweep").unwrap().unwrap();
        let s = Scenario::from_table_with(sweep, Some(&custom)).unwrap();
        assert_eq!(
            s.configs()[0].engine.pipeline, custom,
            "a config entry without [engine] inherits the scenario pipeline"
        );
        assert_eq!(s.configs()[2].name, "skewed");
        assert_eq!(s.configs()[2].engine.pipeline, custom);
    }

    #[test]
    fn grid_substitution_notes_reach_the_scenario() {
        let s = parse(
            r#"
[sweep]
workloads = ["gzip"]
budgets = [1000]
seeds = [1]
[sweep.grid]
widths = [1, 2]
pipelines = ["optimized"]
[sweep.grid.base]
mem_read_ports = 1
"#,
        )
        .unwrap();
        assert_eq!(s.configs().len(), 2);
        assert_eq!(s.grid_notes().len(), 1, "{:?}", s.grid_notes());
        assert!(s.grid_notes()[0].contains("unsatisfiable"), "{:?}", s.grid_notes());
    }

    #[test]
    fn cli_owned_keys_are_tolerated() {
        let s = parse(
            "[sweep]\nthreads = 2\ntrace_files = [\"t.trace\"]\nworkloads = [\"gzip\"]\nbudgets = [1]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"",
        );
        assert!(s.is_ok());
    }
}
