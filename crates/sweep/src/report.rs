//! Sweep results: per-cell statistics plus grid-level aggregates, with
//! CSV and Markdown rendering.

use resim_core::SimStats;
use resim_sample::SampledStats;
use resim_trace::TraceStats;
use std::fmt::Write as _;
use std::time::Duration;

/// The outcome of one grid cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Configuration name.
    pub config: String,
    /// Workload name.
    pub workload: String,
    /// Execution-mode name (`"full"`, or `"sampled-<plan>"`).
    pub mode: String,
    /// Correct-path instruction budget.
    pub budget: usize,
    /// Workload seed.
    pub seed: u64,
    /// Engine statistics (bit-identical across thread counts). For a
    /// sampled cell these are the merged detailed-window statistics.
    pub stats: SimStats,
    /// Per-window confidence data of a sampled cell (`None` for full).
    pub sampled: Option<SampledStats>,
    /// Encoded-trace statistics of the (shared) input trace.
    pub trace_stats: TraceStats,
    /// Wall-clock time of this cell's engine run (informational only —
    /// never part of any determinism contract).
    pub wall: Duration,
}

impl CellResult {
    /// The sampled-estimate data of this cell, when the cell's IPC is an
    /// estimate rather than exact — `None` for full cells **and** for
    /// 100 %-coverage sampled cells (those are exact). The single
    /// decision point every renderer shares.
    pub fn sampled_estimate(&self) -> Option<&SampledStats> {
        self.sampled.as_ref().filter(|s| !s.full_coverage)
    }

    /// The cell's headline IPC: the sampled estimate (window-mean with a
    /// confidence interval) for sampled cells, the exact IPC otherwise.
    pub fn ipc(&self) -> f64 {
        match self.sampled_estimate() {
            Some(s) => s.mean_ipc(),
            None => self.stats.ipc(),
        }
    }

    /// The `(mean, ci_lo, ci_hi)` triple of an estimating cell, `None`
    /// when the cell's IPC is exact — the numeric essence a result
    /// cache must persist to re-render this cell's CSV row
    /// byte-identically.
    pub fn ipc_estimate(&self) -> Option<(f64, f64, f64)> {
        self.sampled_estimate().map(|s| {
            let (lo, hi) = s.ci95();
            (s.mean_ipc(), lo, hi)
        })
    }
}

/// The header line of the deterministic CSV rendering
/// ([`SweepReport::to_csv_stable`]), newline included.
pub fn stable_csv_header() -> &'static str {
    "config,workload,mode,budget,seed,cycles,committed,ipc,ipc_ci_lo,ipc_ci_hi,\
     wrong_path_frac,bits_per_instr\n"
}

/// Renders one deterministic CSV row (newline included) from the
/// numeric essence of a cell — exactly the row
/// [`SweepReport::to_csv_stable`] produces, shared so `resim-serve` can
/// re-render cached cells byte-identically to a live sweep.
///
/// `ipc_estimate` is `(mean, ci_lo, ci_hi)` for cells whose IPC is a
/// sampled estimate; `None` renders the exact IPC with empty CI fields.
#[allow(clippy::too_many_arguments)]
pub fn stable_csv_row(
    config: &str,
    workload: &str,
    mode: &str,
    budget: u64,
    seed: u64,
    stats: &SimStats,
    ipc_estimate: Option<(f64, f64, f64)>,
    bits_per_instr: f64,
) -> String {
    let (ipc, lo, hi) = match ipc_estimate {
        Some((mean, lo, hi)) => (mean, format!("{lo:.4}"), format!("{hi:.4}")),
        None => (stats.ipc(), String::new(), String::new()),
    };
    format!(
        "{},{},{},{},{},{},{},{:.4},{},{},{:.4},{:.2}\n",
        config,
        workload,
        mode,
        budget,
        seed,
        stats.cycles,
        stats.committed,
        ipc,
        lo,
        hi,
        stats.wrong_path_fraction(),
        bits_per_instr,
    )
}

/// Everything a sweep produced, cells in scenario order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-cell results, indexed exactly like
    /// [`Scenario::cells`](crate::Scenario::cells).
    pub cells: Vec<CellResult>,
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// Total wall-clock time including trace generation.
    pub wall: Duration,
    /// Trace-cache hits during this sweep (reuse of earlier sweeps'
    /// traces shows up here when the runner's cache is shared).
    pub trace_cache_hits: u64,
    /// Trace-cache misses during this sweep (= traces this sweep
    /// actually generated).
    pub trace_cache_misses: u64,
}

impl SweepReport {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the report holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Looks up the first cell matching `config` and `workload`.
    pub fn get(&self, config: &str, workload: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.config == config && c.workload == workload)
    }

    /// Iterates the cells of one configuration, scenario-ordered.
    pub fn cells_for_config<'a>(
        &'a self,
        config: &'a str,
    ) -> impl Iterator<Item = &'a CellResult> + 'a {
        self.cells.iter().filter(move |c| c.config == config)
    }

    /// The per-cell simulated statistics alone — the value the
    /// determinism contract is stated over.
    pub fn all_stats(&self) -> Vec<SimStats> {
        self.cells.iter().map(|c| c.stats).collect()
    }

    /// Mean IPC over all cells (sampled cells contribute their estimate).
    pub fn mean_ipc(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().map(|c| c.ipc()).sum::<f64>() / self.cells.len() as f64
    }

    /// Lowest cell IPC (0 for an empty report).
    pub fn min_ipc(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells
            .iter()
            .map(|c| c.ipc())
            .fold(f64::INFINITY, f64::min)
    }

    /// Highest cell IPC.
    pub fn max_ipc(&self) -> f64 {
        self.cells.iter().map(|c| c.ipc()).fold(0.0, f64::max)
    }

    /// Total simulated instructions committed across the grid.
    pub fn total_committed(&self) -> u64 {
        self.cells.iter().map(|c| c.stats.committed).sum()
    }

    /// Renders one CSV row per cell (with header). Sampled cells carry
    /// their 95 % confidence bounds; full cells leave those fields empty.
    pub fn to_csv(&self) -> String {
        self.render_csv(true)
    }

    /// The deterministic CSV rendering: [`SweepReport::to_csv`] without
    /// the `wall_us` column, so two runs of the same scenario — however
    /// driven, programmatically or through a TOML file — produce
    /// **byte-identical** output. This is what `resim sweep
    /// --stable-csv` writes and what golden tests compare.
    pub fn to_csv_stable(&self) -> String {
        self.render_csv(false)
    }

    fn render_csv(&self, wall: bool) -> String {
        let mut s = String::from(stable_csv_header().trim_end_matches('\n'));
        s.push_str(if wall { ",wall_us\n" } else { "\n" });
        for c in &self.cells {
            let row = stable_csv_row(
                &c.config,
                &c.workload,
                &c.mode,
                c.budget as u64,
                c.seed,
                &c.stats,
                c.ipc_estimate(),
                c.trace_stats.bits_per_instruction(),
            );
            if wall {
                s.push_str(row.trim_end_matches('\n'));
                let _ = writeln!(s, ",{}", c.wall.as_micros());
            } else {
                s.push_str(&row);
            }
        }
        s
    }

    /// Renders a Markdown table of the cells plus an aggregate footer.
    pub fn to_markdown(&self) -> String {
        let mut s = String::from(
            "| config | workload | mode | budget | seed | cycles | IPC | wp % | wall |\n\
             |---|---|---|---:|---:|---:|---:|---:|---:|\n",
        );
        for c in &self.cells {
            let ipc = match c.sampled_estimate() {
                Some(sam) => format!("{:.3}±{:.3}", c.ipc(), sam.ci95_half_width()),
                None => format!("{:.3}", c.ipc()),
            };
            let _ = writeln!(
                s,
                "| {} | {} | {} | {} | {} | {} | {} | {:.1} | {:.1?} |",
                c.config,
                c.workload,
                c.mode,
                c.budget,
                c.seed,
                c.stats.cycles,
                ipc,
                100.0 * c.stats.wrong_path_fraction(),
                c.wall,
            );
        }
        let _ = writeln!(
            s,
            "\n{} cells on {} threads in {:.2?} — IPC mean {:.3}, min {:.3}, max {:.3}; \
             traces generated {}, cache hits {}",
            self.cells.len(),
            self.threads,
            self.wall,
            self.mean_ipc(),
            self.min_ipc(),
            self.max_ipc(),
            self.trace_cache_misses,
            self.trace_cache_hits,
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(config: &str, workload: &str, ipc_cycles: (u64, u64)) -> CellResult {
        CellResult {
            config: config.into(),
            workload: workload.into(),
            mode: "full".into(),
            budget: 1000,
            seed: 1,
            stats: SimStats {
                cycles: ipc_cycles.1,
                committed: ipc_cycles.0,
                ..SimStats::default()
            },
            sampled: None,
            trace_stats: TraceStats::default(),
            wall: Duration::from_micros(10),
        }
    }

    fn sampled_cell() -> CellResult {
        use resim_sample::WindowStats;
        let windows: Vec<WindowStats> = (0..4)
            .map(|i| WindowStats {
                index: i,
                interval: i * 2,
                start_record: i * 2_000,
                records: 500,
                committed: 900 + (i % 2) * 200,
                cycles: 500,
            })
            .collect();
        let sim = windows.iter().fold(SimStats::default(), |acc, w| {
            acc.merge(&SimStats {
                cycles: w.cycles,
                committed: w.committed,
                ..SimStats::default()
            })
        });
        CellResult {
            config: "a".into(),
            workload: "gzip".into(),
            mode: "sampled-u2000d500k2f".into(),
            budget: 8_000,
            seed: 1,
            stats: sim,
            sampled: Some(resim_sample::SampledStats {
                windows,
                sim,
                records_total: 8_000,
                records_detailed: 2_000,
                records_warmed: 6_000,
                records_skipped: 0,
                full_coverage: false,
            }),
            trace_stats: TraceStats::default(),
            wall: Duration::from_micros(10),
        }
    }

    fn report() -> SweepReport {
        SweepReport {
            cells: vec![cell("a", "gzip", (200, 100)), cell("b", "gzip", (100, 100))],
            threads: 2,
            wall: Duration::from_millis(5),
            trace_cache_hits: 1,
            trace_cache_misses: 1,
        }
    }

    #[test]
    fn aggregates() {
        let r = report();
        assert_eq!(r.len(), 2);
        assert!((r.mean_ipc() - 1.5).abs() < 1e-12);
        assert!((r.min_ipc() - 1.0).abs() < 1e-12);
        assert!((r.max_ipc() - 2.0).abs() < 1e-12);
        assert_eq!(r.total_committed(), 300);
    }

    #[test]
    fn lookup_helpers() {
        let r = report();
        assert_eq!(r.get("a", "gzip").unwrap().stats.committed, 200);
        assert!(r.get("a", "vpr").is_none());
        assert_eq!(r.cells_for_config("b").count(), 1);
        assert_eq!(r.all_stats().len(), 2);
    }

    #[test]
    fn csv_shape() {
        let csv = report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("config,workload,mode"));
        assert!(lines[1].starts_with("a,gzip,full,1000,1,100,200,2.0000,,,"));
    }

    #[test]
    fn stable_csv_drops_only_the_wall_column() {
        let r = report();
        let stable = r.to_csv_stable();
        assert!(!stable.contains("wall_us"));
        for (full_line, stable_line) in r.to_csv().lines().zip(stable.lines()) {
            let full_cols: Vec<&str> = full_line.split(',').collect();
            let stable_cols: Vec<&str> = stable_line.split(',').collect();
            assert_eq!(full_cols.len(), stable_cols.len() + 1);
            assert_eq!(&full_cols[..stable_cols.len()], &stable_cols[..]);
        }
    }

    #[test]
    fn markdown_shape() {
        let md = report().to_markdown();
        assert!(md.contains("| a | gzip | full |"));
        assert!(md.contains("2 cells on 2 threads"));
        assert!(md.contains("IPC mean 1.500"));
    }

    #[test]
    fn sampled_cells_report_estimate_and_interval() {
        let c = sampled_cell();
        // Window mean (2.0) differs from the merged-stats IPC only in
        // weighting; here windows are equal-length so they agree.
        assert!((c.ipc() - 2.0).abs() < 1e-12);
        let r = SweepReport {
            cells: vec![c],
            threads: 1,
            wall: Duration::from_millis(1),
            trace_cache_hits: 0,
            trace_cache_misses: 1,
        };
        let csv = r.to_csv();
        let line = csv.lines().nth(1).unwrap();
        assert!(line.starts_with("a,gzip,sampled-u2000d500k2f,8000,1"));
        // CI bounds are present and bracket the estimate.
        let fields: Vec<&str> = line.split(',').collect();
        let (ipc, lo, hi): (f64, f64, f64) = (
            fields[7].parse().unwrap(),
            fields[8].parse().unwrap(),
            fields[9].parse().unwrap(),
        );
        assert!(lo < ipc && ipc < hi);
        let md = r.to_markdown();
        assert!(md.contains('±'), "markdown shows the half-width: {md}");
    }
}
