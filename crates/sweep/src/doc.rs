//! The resolved scenario document driving every subcommand — and, since
//! the serving layer exists, every submission to `resim-serve`.
//!
//! A scenario file is one TOML document with up to seven sections —
//! `[engine]`, `[tracegen]`, `[workload]`, `[trace]`, `[sample]`,
//! `[sweep]` and `[pipeline]` (a custom engine organization) — each
//! mapped onto the simulator's types through the
//! `from_table` constructors of the respective crates, so every
//! mistake is a line-numbered diagnostic. `docs/guide.md` documents
//! every key with examples.
//!
//! [`ScenarioDoc`] lives in `resim-sweep` (not the CLI) because it is
//! the unit of *identity*: [`ScenarioDoc::fingerprint`] is the
//! content-addressed cache key of the result cache, and
//! [`ScenarioDoc::to_scenario`] turns any document — single run,
//! sampled run, or sweep grid — into the one executable shape
//! ([`Scenario`]) the runner and the server share.

use crate::scenario::{CellMode, Scenario, StatsMode, WorkloadPoint};
use resim_core::{EngineConfig, Fnv64, PipelineDescription};
use resim_sample::SamplePlan;
use resim_toml::{Error, Table};
use resim_trace::Trace;
use resim_tracegen::{generate_trace, TraceGenConfig};

/// The `[workload]` section: which stream feeds trace generation.
///
/// ```
/// use resim_sweep::ScenarioDoc;
///
/// let doc = ScenarioDoc::parse_str(r#"
/// [workload]
/// name = "vpr"
/// seed = 7
/// budget = 2000
/// "#).unwrap();
/// assert_eq!(doc.workload.name, "vpr");
/// assert_eq!(doc.workload.seed, 7);
/// let trace = doc.generate();
/// assert_eq!(trace.correct_path_len(), 2000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Workload name ([`WorkloadPoint::named`]): one of the five
    /// SPECINT models or `"generic"`.
    pub name: String,
    /// Stream seed.
    pub seed: u64,
    /// Correct-path instruction budget.
    pub budget: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            name: "gzip".to_string(),
            seed: 2009,
            budget: 100_000,
        }
    }
}

/// A parsed, resolved scenario file.
///
/// Sections a file omits resolve to the paper's reference settings:
/// the 4-wide Table 1 machine, its matching trace generator, and a
/// 100k-instruction gzip workload seeded 2009.
///
/// ```
/// use resim_sweep::ScenarioDoc;
///
/// let doc = ScenarioDoc::parse_str(r#"
/// [engine]
/// rb_size = 32
/// [engine.predictor]
/// kind = "perfect"
/// "#).unwrap();
/// assert_eq!(doc.engine.rb_size, 32);
/// // The generator inherits the engine's predictor so wrong-path tags
/// // stay meaningful.
/// assert_eq!(doc.tracegen.predictor, doc.engine.predictor);
/// assert!(doc.sample.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioDoc {
    /// Resolved `[engine]` configuration.
    pub engine: EngineConfig,
    /// Resolved `[tracegen]` configuration (predictor defaulted to the
    /// engine's when not given explicitly).
    pub tracegen: TraceGenConfig,
    /// Resolved `[workload]` section.
    pub workload: WorkloadSpec,
    /// Whether the document spelled out a `[workload]` section (as
    /// opposed to inheriting the defaults) — replay commands only
    /// cross-check a trace file's header against an *explicit*
    /// workload.
    pub workload_explicit: bool,
    /// The `[trace]` section's `file` key, if present: where `resim
    /// trace` writes and what `resim run` / `resim sample` replay.
    pub trace_file: Option<String>,
    /// Resolved `[sample]` plan, if the section is present.
    pub sample: Option<SamplePlan>,
    /// The document's custom `[pipeline]` description, if present —
    /// already the `engine.pipeline` (unless `[engine]` overrode it by
    /// name) and in scope for the sweep grid's `pipelines` axis.
    pub pipeline: Option<PipelineDescription>,
    /// The raw `[sweep]` table, resolved on demand by
    /// [`ScenarioDoc::sweep_scenario`].
    sweep: Option<Table>,
}

impl ScenarioDoc {
    /// Parses and resolves a scenario document.
    ///
    /// # Errors
    ///
    /// A line-numbered [`Error`] for syntax problems, unknown sections
    /// or keys, or any section failing its `from_table` constructor.
    pub fn parse_str(input: &str) -> Result<Self, Error> {
        let doc = resim_toml::parse(input)?;
        doc.ensure_only(&[
            "engine", "tracegen", "workload", "trace", "sample", "sweep", "pipeline",
        ])?;

        // A top-level [pipeline] defines a custom organization: it
        // becomes the engine's pipeline (unless [engine] picks another
        // by name) and is name-resolvable in the sweep grid.
        let pipeline = match doc.opt_table("pipeline")? {
            Some(t) => Some(PipelineDescription::from_table(t)?),
            None => None,
        };

        let engine = match doc.opt_table("engine")? {
            Some(t) => EngineConfig::from_table_with(t, pipeline.as_ref())?,
            None => match &pipeline {
                Some(p) => EngineConfig {
                    pipeline: p.clone(),
                    ..EngineConfig::paper_4wide()
                },
                None => EngineConfig::paper_4wide(),
            },
        };
        // The single inheritance rule shared with the sweep grid: the
        // generator predictor follows the engine's unless given.
        let tracegen = crate::resolve_tracegen(&engine, doc.opt_table("tracegen")?)?;

        let mut workload = WorkloadSpec::default();
        let workload_table = doc.opt_table("workload")?;
        let workload_explicit = workload_table.is_some();
        if let Some(t) = workload_table {
            t.ensure_only(&["name", "seed", "budget"])?;
            if let Some(name) = t.opt_str("name")? {
                WorkloadPoint::named(name).ok_or_else(|| {
                    Error::new(
                        t.key_line("name"),
                        format!(
                            "unknown workload {name:?} (expected {})",
                            WorkloadPoint::valid_names()
                        ),
                    )
                })?;
                workload.name = name.to_string();
            }
            if let Some(seed) = t.opt_u64("seed")? {
                workload.seed = seed;
            }
            if let Some(budget) = t.opt_usize("budget")? {
                if budget == 0 {
                    return Err(Error::new(t.key_line("budget"), "budget must be non-zero"));
                }
                workload.budget = budget;
            }
        }

        let trace_file = match doc.opt_table("trace")? {
            Some(t) => {
                t.ensure_only(&["file"])?;
                t.opt_str("file")?.map(str::to_string)
            }
            None => None,
        };

        let sample = match doc.opt_table("sample")? {
            Some(t) => Some(SamplePlan::from_table(t)?),
            None => None,
        };

        // The sweep grid is resolved lazily: `resim trace|run|sample`
        // on a scenario that also carries a [sweep] section must not
        // pay (or fail) for it. Unknown keys inside are still caught
        // eagerly by Scenario::from_table when the sweep runs.
        let sweep = doc.opt_table("sweep")?.cloned();

        Ok(Self {
            engine,
            tracegen,
            workload,
            workload_explicit,
            trace_file,
            sample,
            pipeline,
            sweep,
        })
    }

    /// Instantiates the workload stream.
    pub fn workload_stream(&self) -> impl Iterator<Item = resim_trace::TraceRecord> {
        WorkloadPoint::named(&self.workload.name)
            .expect("name validated at parse time")
            .instantiate(self.workload.seed)
    }

    /// Generates the scenario's trace in memory (workload → tagged
    /// records, per `[tracegen]`).
    pub fn generate(&self) -> Trace {
        generate_trace(self.workload_stream(), self.workload.budget, &self.tracegen)
    }

    /// Whether the document has a `[sweep]` section.
    pub fn has_sweep(&self) -> bool {
        self.sweep.is_some()
    }

    /// Resolves the `[sweep]` section into a runnable [`Scenario`].
    ///
    /// # Errors
    ///
    /// [`Error`] when the section is missing, or whatever
    /// [`Scenario::from_table`] rejects.
    pub fn sweep_scenario(&self) -> Result<Scenario, Error> {
        let t = self
            .sweep
            .as_ref()
            .ok_or_else(|| Error::new(0, "this command needs a [sweep] section"))?;
        Scenario::from_table_with(t, self.pipeline.as_ref())
    }

    /// Resolves the whole document into the one executable shape: the
    /// `[sweep]` grid when present, otherwise a single-cell grid of the
    /// document's engine, workload, budget and seed — sampled under the
    /// `[sample]` plan when one is given, full-detail otherwise.
    ///
    /// This is what makes single runs, sampled runs and sweeps one case
    /// for the runner and the result cache: every submission is a
    /// [`Scenario`], every unit of work is a [`Cell`](crate::Cell).
    ///
    /// ```
    /// use resim_sweep::ScenarioDoc;
    ///
    /// let single = ScenarioDoc::parse_str("[workload]\nbudget = 500").unwrap();
    /// assert_eq!(single.to_scenario().unwrap().len(), 1);
    /// ```
    ///
    /// # Errors
    ///
    /// [`Error`] when a `[sweep]` section fails to resolve, or the
    /// single-cell grid fails validation (e.g. a degenerate `[sample]`
    /// plan).
    pub fn to_scenario(&self) -> Result<Scenario, Error> {
        if self.has_sweep() {
            return self.sweep_scenario();
        }
        let mut s = Scenario::new()
            .config("single", self.engine.clone(), self.tracegen)
            .workload(
                WorkloadPoint::named(&self.workload.name).expect("name validated at parse time"),
            )
            .budgets([self.workload.budget])
            .seeds([self.workload.seed]);
        if let Some(plan) = &self.sample {
            s = s.modes([CellMode::Sampled(*plan)]);
        }
        s.validate()
            .map_err(|e| Error::new(0, format!("invalid scenario: {e}")))?;
        Ok(s)
    }

    /// The content-addressed identity of the whole document: FNV-1a
    /// ([`Fnv64`]) over the cell count and the
    /// [`Scenario::cell_fingerprint`] of every cell of
    /// [`ScenarioDoc::to_scenario`], in dispatch order.
    ///
    /// Platform-stable, and deliberately *content*-addressed: two
    /// documents that simulate the same machines on the same inputs
    /// share a fingerprint even when their config display names or
    /// `[trace]` file paths differ. This is the cache key of
    /// `resim-serve`'s result cache — the golden test over
    /// `tests/corpus/` pins these values because an accidental change
    /// silently invalidates every deployed cache.
    ///
    /// ```
    /// use resim_sweep::ScenarioDoc;
    ///
    /// let a = ScenarioDoc::parse_str("[workload]\nseed = 1").unwrap();
    /// let b = ScenarioDoc::parse_str("[workload]\nseed = 2").unwrap();
    /// assert_ne!(a.fingerprint().unwrap(), b.fingerprint().unwrap());
    /// ```
    ///
    /// # Errors
    ///
    /// Whatever [`ScenarioDoc::to_scenario`] rejects.
    pub fn fingerprint(&self) -> Result<u64, Error> {
        let scenario = self.to_scenario()?;
        let mut h = Fnv64::new();
        let cells = scenario.cells();
        h.write_u64(cells.len() as u64);
        for cell in &cells {
            h.write_u64(scenario.cell_fingerprint(cell));
        }
        Ok(h.finish())
    }

    /// The `[sweep]` table's `threads` key (0 = all cores) — the
    /// default `resim sweep --threads` value.
    ///
    /// # Errors
    ///
    /// [`Error`] if the key is present but not a non-negative integer.
    pub fn sweep_threads(&self) -> Result<usize, Error> {
        match &self.sweep {
            Some(t) => Ok(t.opt_usize("threads")?.unwrap_or(0)),
            None => Ok(0),
        }
    }

    /// The `[sweep]` table's `stats` key as a [`StatsMode`]
    /// ([`StatsMode::Full`] when absent, or when there is no `[sweep]`
    /// section at all).
    ///
    /// Resolved lazily from the raw table — like
    /// [`ScenarioDoc::sweep_threads`] — so single-run commands (`resim
    /// run`, `resim profile`) can honour or refuse the knob without
    /// resolving the whole sweep grid.
    ///
    /// # Errors
    ///
    /// [`Error`] if the key is present but not `"full"` or `"lite"`.
    pub fn sweep_stats(&self) -> Result<StatsMode, Error> {
        match &self.sweep {
            Some(t) => match t.opt_str("stats")? {
                None | Some("full") => Ok(StatsMode::Full),
                Some("lite") => Ok(StatsMode::Lite),
                Some(other) => Err(Error::new(
                    t.key_line("stats"),
                    format!("unknown stats mode {other:?} (expected \"full\" or \"lite\")"),
                )),
            },
            None => Ok(StatsMode::Full),
        }
    }

    /// The `[sweep]` table's `trace_files` key: containers to preload
    /// into the sweep's trace cache.
    ///
    /// # Errors
    ///
    /// [`Error`] if the key is present but not an array of strings.
    pub fn sweep_trace_files(&self) -> Result<Vec<String>, Error> {
        match &self.sweep {
            Some(t) => Ok(t
                .opt_str_array("trace_files")?
                .unwrap_or_default()
                .into_iter()
                .map(|s| s.value)
                .collect()),
            None => Ok(Vec::new()),
        }
    }

    /// The effective trace-file path: `override_path` (a `--trace` /
    /// `--out` flag), else the `[trace]` section's `file` key.
    pub fn trace_path<'a>(&'a self, override_path: Option<&'a str>) -> Option<&'a str> {
        override_path.or(self.trace_file.as_deref())
    }
}

impl Default for ScenarioDoc {
    /// The empty document: every section at its reference default.
    fn default() -> Self {
        Self::parse_str("").expect("empty scenario resolves")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_document_resolves_to_paper_defaults() {
        let doc = ScenarioDoc::parse_str("").unwrap();
        assert_eq!(doc.engine, EngineConfig::paper_4wide());
        assert_eq!(doc.tracegen, TraceGenConfig::paper());
        assert_eq!(doc.workload, WorkloadSpec::default());
        assert!(doc.trace_file.is_none());
        assert!(doc.sample.is_none());
        assert!(!doc.has_sweep());
    }

    #[test]
    fn unknown_sections_and_keys_are_rejected() {
        assert!(ScenarioDoc::parse_str("[motor]\nx = 1").unwrap_err().to_string().contains("motor"));
        let err = ScenarioDoc::parse_str("[workload]\nname = \"gzip\"\nseeds = 3").unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(ScenarioDoc::parse_str("[workload]\nname = \"mcf\"").unwrap_err().to_string().contains("mcf"));
        assert!(ScenarioDoc::parse_str("[workload]\nbudget = 0").is_err());
    }

    #[test]
    fn trace_and_sample_sections() {
        let doc = ScenarioDoc::parse_str(
            "[trace]\nfile = \"gzip.trace\"\n[sample]\ninterval = 100\ndetailed = 50",
        )
        .unwrap();
        assert_eq!(doc.trace_file.as_deref(), Some("gzip.trace"));
        assert_eq!(doc.trace_path(None), Some("gzip.trace"));
        assert_eq!(doc.trace_path(Some("o.trace")), Some("o.trace"));
        assert_eq!(doc.sample.unwrap(), SamplePlan::systematic(100, 50, 1));
    }

    #[test]
    fn sweep_section_resolves_lazily() {
        let doc = ScenarioDoc::parse_str(
            "[sweep]\nthreads = 3\ntrace_files = [\"a.trace\"]\nworkloads = [\"gzip\"]\n\
             budgets = [100]\nseeds = [1]\n[[sweep.config]]\nname = \"base\"",
        )
        .unwrap();
        assert!(doc.has_sweep());
        assert_eq!(doc.sweep_threads().unwrap(), 3);
        assert_eq!(doc.sweep_trace_files().unwrap(), vec!["a.trace"]);
        assert_eq!(doc.sweep_stats().unwrap(), StatsMode::Full);
        assert_eq!(doc.sweep_scenario().unwrap().len(), 1);
        // A broken sweep section surfaces at resolution, not parse.
        let doc = ScenarioDoc::parse_str("[sweep]\nworkloads = [\"gzip\"]").unwrap();
        assert!(doc.sweep_scenario().is_err());
        // No sweep at all is its own message.
        let doc = ScenarioDoc::parse_str("").unwrap();
        assert!(doc.sweep_scenario().unwrap_err().to_string().contains("[sweep]"));
    }

    #[test]
    fn sweep_stats_key_resolves_lazily() {
        let doc = ScenarioDoc::parse_str("").unwrap();
        assert_eq!(doc.sweep_stats().unwrap(), StatsMode::Full);
        let doc = ScenarioDoc::parse_str("[sweep]\nstats = \"lite\"").unwrap();
        assert_eq!(doc.sweep_stats().unwrap(), StatsMode::Lite);
        let doc = ScenarioDoc::parse_str("[sweep]\nstats = \"turbo\"").unwrap();
        assert!(doc.sweep_stats().unwrap_err().to_string().contains("turbo"));
        // The lite marker moves the document fingerprint: lite results
        // must never alias full-stats cache entries.
        let full = ScenarioDoc::parse_str(
            "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [100]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap();
        let lite = ScenarioDoc::parse_str(
            "[sweep]\nstats = \"lite\"\nworkloads = [\"gzip\"]\nbudgets = [100]\nseeds = [1]\n[[sweep.config]]\nname = \"a\"",
        )
        .unwrap();
        assert_ne!(full.fingerprint().unwrap(), lite.fingerprint().unwrap());
    }

    #[test]
    fn pipeline_section_becomes_the_engine_pipeline() {
        let doc = ScenarioDoc::parse_str(
            r#"
[pipeline]
name = "compact"
pipelined = true
[[pipeline.stage]]
name = "fetch"
slots = "2*i"
[[pipeline.stage]]
name = "commit"
slots = "2*i+1"
"#,
        )
        .unwrap();
        let p = doc.pipeline.as_ref().expect("custom pipeline parsed");
        assert_eq!(p.name(), "compact");
        assert_eq!(doc.engine.pipeline, *p);
        // And the sweep grid can reference it by name.
        let doc = ScenarioDoc::parse_str(
            r#"
[pipeline]
name = "compact"
pipelined = true
[[pipeline.stage]]
name = "fetch"
slots = "2*i"
[[pipeline.stage]]
name = "commit"
slots = "2*i+1"
[sweep]
workloads = ["gzip"]
budgets = [100]
seeds = [1]
[sweep.grid]
pipelines = ["improved", "compact"]
"#,
        )
        .unwrap();
        let s = doc.sweep_scenario().unwrap();
        assert_eq!(s.configs().len(), 2);
        assert_eq!(s.configs()[1].name, "compact");
        assert_eq!(s.configs()[1].engine.pipeline.name(), "compact");
    }

    #[test]
    fn engine_can_override_the_custom_pipeline_by_name() {
        let doc = ScenarioDoc::parse_str(
            r#"
[pipeline]
name = "compact"
pipelined = true
[[pipeline.stage]]
name = "fetch"
slots = "2*i"
[[pipeline.stage]]
name = "commit"
slots = "2*i+1"
[engine]
pipeline = "improved"
"#,
        )
        .unwrap();
        assert_eq!(doc.engine.pipeline.name(), "improved");
        assert_eq!(doc.pipeline.unwrap().name(), "compact");
    }

    #[test]
    fn broken_pipeline_section_is_a_line_diagnostic() {
        let err = ScenarioDoc::parse_str(
            "[pipeline]\nname = \"bad\"\npipelined = true\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("stage"), "{err}");
    }

    #[test]
    fn generated_trace_respects_budget_and_seeding() {
        let doc = ScenarioDoc::parse_str("[workload]\nname = \"gzip\"\nbudget = 500").unwrap();
        let a = doc.generate();
        let b = doc.generate();
        assert_eq!(a, b, "generation is deterministic");
        assert_eq!(a.correct_path_len(), 500);
    }

    #[test]
    fn single_run_documents_resolve_to_one_cell() {
        let doc = ScenarioDoc::parse_str("[workload]\nname = \"vpr\"\nbudget = 700").unwrap();
        let s = doc.to_scenario().unwrap();
        assert_eq!(s.len(), 1);
        let cell = s.cells()[0];
        assert_eq!(cell.budget, 700);
        assert_eq!(s.workloads()[0].name, "vpr");
        assert_eq!(s.cell_mode(&cell), CellMode::Full);
        // A [sample] section makes the single cell sampled.
        let doc = ScenarioDoc::parse_str(
            "[workload]\nbudget = 10000\n[sample]\ninterval = 1000\ndetailed = 200",
        )
        .unwrap();
        let s = doc.to_scenario().unwrap();
        assert_eq!(s.len(), 1);
        assert!(matches!(s.cell_mode(&s.cells()[0]), CellMode::Sampled(_)));
        // And a sweep document resolves to its grid.
        let doc = ScenarioDoc::parse_str(
            "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [100, 200]\nseeds = [1]\n\
             [[sweep.config]]\nname = \"a\"",
        )
        .unwrap();
        assert_eq!(doc.to_scenario().unwrap().len(), 2);
    }

    #[test]
    fn fingerprints_are_content_addressed() {
        let base = ScenarioDoc::parse_str("").unwrap().fingerprint().unwrap();
        // Stable across parses.
        assert_eq!(ScenarioDoc::parse_str("").unwrap().fingerprint().unwrap(), base);
        // Every identity input moves the fingerprint…
        for (label, text) in [
            ("engine", "[engine]\nrb_size = 32"),
            ("tracegen", "[tracegen]\nwrong_path_len = 9"),
            ("workload", "[workload]\nname = \"vpr\""),
            ("seed", "[workload]\nseed = 1"),
            ("budget", "[workload]\nbudget = 1"),
            ("sample", "[sample]\ninterval = 10000\ndetailed = 2000"),
        ] {
            let fp = ScenarioDoc::parse_str(text).unwrap().fingerprint().unwrap();
            assert_ne!(fp, base, "{label} must be part of the identity");
        }
        // …but presentation does not: a [trace] file path is a
        // transport detail, not content.
        let with_path = ScenarioDoc::parse_str("[trace]\nfile = \"x.trace\"").unwrap();
        assert_eq!(with_path.fingerprint().unwrap(), base);
    }

    #[test]
    fn sweep_fingerprint_ignores_display_names() {
        let a = ScenarioDoc::parse_str(
            "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [100]\nseeds = [1]\n\
             [[sweep.config]]\nname = \"alpha\"",
        )
        .unwrap();
        let b = ScenarioDoc::parse_str(
            "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [100]\nseeds = [1]\n\
             [[sweep.config]]\nname = \"beta\"",
        )
        .unwrap();
        assert_eq!(
            a.fingerprint().unwrap(),
            b.fingerprint().unwrap(),
            "config display names are presentation, not content"
        );
        let c = ScenarioDoc::parse_str(
            "[sweep]\nworkloads = [\"gzip\"]\nbudgets = [100]\nseeds = [1]\n\
             [[sweep.config]]\nname = \"beta\"\n[sweep.config.engine]\nrb_size = 32",
        )
        .unwrap();
        assert_ne!(a.fingerprint().unwrap(), c.fingerprint().unwrap());
    }
}
