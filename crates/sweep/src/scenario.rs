//! Scenario grids: the cross product of engine configurations,
//! workloads, instruction budgets and workload seeds.

use resim_core::{ConfigError, EngineConfig};
use resim_sample::{PlanError, SamplePlan};
use resim_tracegen::{TraceGenConfig, TraceKey};
use resim_workloads::{SpecBenchmark, Workload, WorkloadProfile};
use std::error::Error;
use std::fmt;

/// How one grid cell executes its trace — the accuracy-versus-wall-clock
/// axis of a scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CellMode {
    /// Every record cycle-accurate: one [`Engine::run`](resim_core::Engine::run).
    #[default]
    Full,
    /// SMARTS-style sampled simulation under the given plan
    /// ([`resim_sample::run_sampled`]); the cell reports the merged
    /// detailed-window statistics plus the per-window confidence data.
    Sampled(SamplePlan),
}

impl CellMode {
    /// Display name, unique per distinct mode (`"full"`, or
    /// `"sampled-<plan>"`).
    pub fn name(&self) -> String {
        match self {
            CellMode::Full => "full".to_string(),
            CellMode::Sampled(plan) => format!("sampled-{}", plan.name()),
        }
    }
}

/// How much statistics bookkeeping every cell's engine performs — the
/// scenario-wide `[sweep] stats = "lite" | "full"` knob.
///
/// Unlike [`CellMode`] this is **not** an axis: it applies to the whole
/// grid, because mixing modes inside one report would make occupancy
/// columns silently incomparable. [`StatsMode::Lite`] cells run on
/// [`Engine::new_lite`](resim_core::Engine::new_lite): occupancy
/// sums/maxima read as zero while every architectural counter stays
/// bit-identical to a full-stats run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum StatsMode {
    /// Every statistics field maintained (the historical behaviour).
    #[default]
    Full,
    /// Occupancy and per-stage activity bookkeeping compiled out of the
    /// cycle loop for throughput.
    Lite,
}

impl StatsMode {
    /// Stable display name (`"full"` / `"lite"`), as scenario files
    /// spell it.
    pub fn name(&self) -> &'static str {
        match self {
            StatsMode::Full => "full",
            StatsMode::Lite => "lite",
        }
    }
}


/// One engine design point plus the trace-generation configuration its
/// traces must be produced with (the generator's predictor must match the
/// engine's for the wrong-path tags to be meaningful, §V.A).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigPoint {
    /// Display name, unique within a scenario (e.g. `"w4-optimized"`).
    pub name: String,
    /// The engine configuration.
    pub engine: EngineConfig,
    /// The matching trace-generation configuration.
    pub tracegen: TraceGenConfig,
}

impl ConfigPoint {
    /// Creates a config point.
    pub fn new(name: impl Into<String>, engine: EngineConfig, tracegen: TraceGenConfig) -> Self {
        Self {
            name: name.into(),
            engine,
            tracegen,
        }
    }
}

/// A workload axis entry: a named, seedable stream constructor.
#[derive(Debug, Clone)]
pub struct WorkloadPoint {
    /// Display name, unique within a scenario (e.g. `"gzip"`).
    pub name: String,
    kind: WorkloadKind,
}

#[derive(Debug, Clone)]
enum WorkloadKind {
    Spec(SpecBenchmark),
    Profile(Box<WorkloadProfile>),
}

impl WorkloadPoint {
    /// One of the calibrated SPECINT CPU2000 models.
    pub fn spec(benchmark: SpecBenchmark) -> Self {
        Self {
            name: benchmark.name().to_string(),
            kind: WorkloadKind::Spec(benchmark),
        }
    }

    /// A custom workload profile under `name`.
    ///
    /// Distinct profiles must get distinct names: the trace cache and the
    /// report identify workloads by name.
    pub fn profile(name: impl Into<String>, profile: WorkloadProfile) -> Self {
        Self {
            name: name.into(),
            kind: WorkloadKind::Profile(Box::new(profile)),
        }
    }

    /// Instantiates the workload stream for `seed`.
    pub fn instantiate(&self, seed: u64) -> Workload {
        match &self.kind {
            WorkloadKind::Spec(b) => Workload::spec(*b, seed),
            WorkloadKind::Profile(p) => Workload::new(p, seed),
        }
    }
}

/// The full sweep grid: `configs × workloads × budgets × seeds`.
///
/// Build one with the chained methods and hand it to
/// [`SweepRunner::run`](crate::SweepRunner::run):
///
/// ```
/// use resim_core::EngineConfig;
/// use resim_sweep::{Scenario, WorkloadPoint};
/// use resim_tracegen::TraceGenConfig;
/// use resim_workloads::SpecBenchmark;
///
/// let scenario = Scenario::new()
///     .config("paper-4wide", EngineConfig::paper_4wide(), TraceGenConfig::paper())
///     .workload(WorkloadPoint::spec(SpecBenchmark::Gzip))
///     .workload(WorkloadPoint::spec(SpecBenchmark::Vpr))
///     .budgets([10_000])
///     .seeds([2009, 2010]);
/// assert_eq!(scenario.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    configs: Vec<ConfigPoint>,
    workloads: Vec<WorkloadPoint>,
    budgets: Vec<usize>,
    seeds: Vec<u64>,
    /// Execution-mode axis; empty means the implicit `[CellMode::Full]`.
    modes: Vec<CellMode>,
    /// Grid-wide statistics mode (not an axis; see [`StatsMode`]).
    stats: StatsMode,
    /// Human-readable notes from grid construction (e.g. a pipeline
    /// substituted because the requested one is unsatisfiable at a
    /// width) — surfaced by the CLI, never silent.
    grid_notes: Vec<String>,
}

impl Scenario {
    /// Creates an empty scenario.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one engine/tracegen configuration.
    pub fn config(
        mut self,
        name: impl Into<String>,
        engine: EngineConfig,
        tracegen: TraceGenConfig,
    ) -> Self {
        self.configs.push(ConfigPoint::new(name, engine, tracegen));
        self
    }

    /// Adds every labelled point of a [`ConfigGrid`](resim_core::ConfigGrid)
    /// build under one shared trace-generation configuration.
    pub fn config_grid(
        mut self,
        points: impl IntoIterator<Item = (String, EngineConfig)>,
        tracegen: TraceGenConfig,
    ) -> Self {
        for (name, engine) in points {
            self.configs.push(ConfigPoint::new(name, engine, tracegen));
        }
        self
    }

    /// Adds one workload.
    pub fn workload(mut self, point: WorkloadPoint) -> Self {
        self.workloads.push(point);
        self
    }

    /// Adds all five paper SPECINT models.
    pub fn all_spec_workloads(mut self) -> Self {
        for b in SpecBenchmark::ALL {
            self.workloads.push(WorkloadPoint::spec(b));
        }
        self
    }

    /// Sets the correct-path instruction budgets.
    pub fn budgets(mut self, budgets: impl IntoIterator<Item = usize>) -> Self {
        self.budgets = budgets.into_iter().collect();
        self
    }

    /// Sets the workload seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Adds one execution mode to the mode axis.
    ///
    /// Scenarios without an explicit mode run every cell [`CellMode::Full`]
    /// (the implicit single-entry axis), so existing grids are unchanged.
    /// Adding modes multiplies the grid: `.mode(CellMode::Full)
    /// .mode(CellMode::Sampled(plan))` runs every design point both ways,
    /// which is how a grid measures its own sampling error.
    pub fn mode(mut self, mode: CellMode) -> Self {
        self.modes.push(mode);
        self
    }

    /// Replaces the whole execution-mode axis.
    pub fn modes(mut self, modes: impl IntoIterator<Item = CellMode>) -> Self {
        self.modes = modes.into_iter().collect();
        self
    }

    /// Sets the grid-wide statistics mode (`[sweep] stats` in a
    /// scenario file; defaults to [`StatsMode::Full`]).
    pub fn stats(mut self, stats: StatsMode) -> Self {
        self.stats = stats;
        self
    }

    /// The grid-wide statistics mode.
    pub fn stats_mode(&self) -> StatsMode {
        self.stats
    }

    /// Attaches grid-construction notes (see [`Scenario::grid_notes`]).
    pub fn with_grid_notes(mut self, notes: impl IntoIterator<Item = String>) -> Self {
        self.grid_notes.extend(notes);
        self
    }

    /// Notes emitted while the configuration grid was built — for
    /// example a grid point whose requested pipeline organization is
    /// unsatisfiable at its width and was substituted with an
    /// equivalent one. The CLI prints these before running so the
    /// substitution is never silent.
    pub fn grid_notes(&self) -> &[String] {
        &self.grid_notes
    }

    /// The configuration axis.
    pub fn configs(&self) -> &[ConfigPoint] {
        &self.configs
    }

    /// The workload axis.
    pub fn workloads(&self) -> &[WorkloadPoint] {
        &self.workloads
    }

    /// The budget axis.
    pub fn budget_values(&self) -> &[usize] {
        &self.budgets
    }

    /// The seed axis.
    pub fn seed_values(&self) -> &[u64] {
        &self.seeds
    }

    /// The effective execution-mode axis (the implicit `[Full]` when none
    /// was set explicitly).
    pub fn mode_values(&self) -> Vec<CellMode> {
        if self.modes.is_empty() {
            vec![CellMode::Full]
        } else {
            self.modes.clone()
        }
    }

    /// The execution mode of one cell.
    pub fn cell_mode(&self, cell: &Cell) -> CellMode {
        if self.modes.is_empty() {
            CellMode::Full
        } else {
            self.modes[cell.mode]
        }
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.configs.len()
            * self.workloads.len()
            * self.budgets.len()
            * self.seeds.len()
            * self.modes.len().max(1)
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks the grid is runnable: every axis non-empty, names unique,
    /// budgets non-zero and every engine configuration structurally valid.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.is_empty() {
            return Err(ScenarioError::EmptyAxis);
        }
        for window in 0..self.configs.len() {
            if self.configs[window + 1..]
                .iter()
                .any(|c| c.name == self.configs[window].name)
            {
                return Err(ScenarioError::DuplicateName(self.configs[window].name.clone()));
            }
        }
        for window in 0..self.workloads.len() {
            if self.workloads[window + 1..]
                .iter()
                .any(|w| w.name == self.workloads[window].name)
            {
                return Err(ScenarioError::DuplicateName(
                    self.workloads[window].name.clone(),
                ));
            }
        }
        if self.budgets.contains(&0) {
            return Err(ScenarioError::ZeroBudget);
        }
        for window in 0..self.modes.len() {
            if self.modes[window + 1..]
                .iter()
                .any(|m| m.name() == self.modes[window].name())
            {
                return Err(ScenarioError::DuplicateName(self.modes[window].name()));
            }
        }
        for m in &self.modes {
            if let CellMode::Sampled(plan) = m {
                plan.validate()
                    .map_err(|e| ScenarioError::Mode(m.name(), e))?;
                // Sampled cells merge windowed statistics — including the
                // occupancy fields lite mode does not maintain — so the
                // combination would not be bit-identical to anything.
                if self.stats == StatsMode::Lite {
                    return Err(ScenarioError::LiteSampled(m.name()));
                }
            }
        }
        for c in &self.configs {
            c.engine
                .validate()
                .map_err(|e| ScenarioError::Config(c.name.clone(), e))?;
        }
        Ok(())
    }

    /// Enumerates the cells in the deterministic dispatch order:
    /// seed-major, then budget, then workload, then mode, with the
    /// configuration axis innermost — so cells sharing one generated
    /// trace (all modes and configs of a `(workload, seed, budget)`
    /// tuple) are adjacent in the queue.
    pub fn cells(&self) -> Vec<Cell> {
        let n_modes = self.modes.len().max(1);
        let mut out = Vec::with_capacity(self.len());
        for (si, &seed) in self.seeds.iter().enumerate() {
            for (bi, &budget) in self.budgets.iter().enumerate() {
                for wi in 0..self.workloads.len() {
                    for mi in 0..n_modes {
                        for ci in 0..self.configs.len() {
                            out.push(Cell {
                                index: out.len(),
                                config: ci,
                                workload: wi,
                                budget,
                                seed,
                                budget_index: bi,
                                seed_index: si,
                                mode: mi,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The content-addressed identity of one cell: FNV-1a over the
    /// engine fingerprint, tracegen fingerprint, workload name, seed,
    /// budget and execution-mode name.
    ///
    /// Everything that determines the cell's [`SimStats`] is included;
    /// everything that does not — the config's *display name*, thread
    /// counts, trace-file paths — is deliberately excluded, so two
    /// scenarios that simulate the same machine on the same input share
    /// the key. This is what `resim-serve`'s result cache stores under.
    ///
    /// [`SimStats`]: resim_core::SimStats
    pub fn cell_fingerprint(&self, cell: &Cell) -> u64 {
        let mut h = resim_core::Fnv64::new();
        h.write_u64(self.configs[cell.config].engine.fingerprint());
        h.write_u64(self.configs[cell.config].tracegen.fingerprint());
        h.write_str(&self.workloads[cell.workload].name);
        h.write_u64(cell.seed);
        h.write_u64(cell.budget as u64);
        h.write_str(&self.cell_mode(cell).name());
        // Asymmetric on purpose: full-stats cells hash exactly what they
        // always hashed, so every fingerprint minted before the stats
        // knob existed — including the pinned corpus sessions and any
        // deployed `resim-serve` cache — stays valid.
        if self.stats == StatsMode::Lite {
            h.write_str("stats=lite");
        }
        h.finish()
    }

    /// The trace-cache key of one cell.
    pub fn trace_key(&self, cell: &Cell) -> TraceKey {
        TraceKey {
            workload: self.workloads[cell.workload].name.clone(),
            seed: cell.seed,
            n_correct: cell.budget,
            config: self.configs[cell.config].tracegen,
        }
    }
}

/// One point of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Position in the deterministic dispatch order.
    pub index: usize,
    /// Index into [`Scenario::configs`].
    pub config: usize,
    /// Index into [`Scenario::workloads`].
    pub workload: usize,
    /// Correct-path instruction budget of this cell.
    pub budget: usize,
    /// Workload seed of this cell.
    pub seed: u64,
    /// Index into [`Scenario::budget_values`].
    pub budget_index: usize,
    /// Index into [`Scenario::seed_values`].
    pub seed_index: usize,
    /// Index into [`Scenario::mode_values`].
    pub mode: usize,
}

/// Reasons a scenario cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// At least one axis (configs, workloads, budgets, seeds) is empty.
    EmptyAxis,
    /// Two configs or two workloads share a display name.
    DuplicateName(String),
    /// A zero instruction budget was requested.
    ZeroBudget,
    /// An engine configuration failed structural validation.
    Config(String, ConfigError),
    /// A sampled execution mode carries a degenerate plan.
    Mode(String, PlanError),
    /// `stats = "lite"` combined with a sampled execution mode.
    LiteSampled(String),
    /// A subset run named a cell index outside the grid.
    CellIndex {
        /// The offending index.
        index: usize,
        /// Number of cells in the grid.
        cells: usize,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::EmptyAxis => {
                write!(f, "every scenario axis (configs, workloads, budgets, seeds) needs at least one entry")
            }
            ScenarioError::DuplicateName(name) => {
                write!(f, "duplicate scenario point name {name:?}")
            }
            ScenarioError::ZeroBudget => write!(f, "instruction budgets must be non-zero"),
            ScenarioError::Config(name, e) => write!(f, "config {name:?} is invalid: {e}"),
            ScenarioError::Mode(name, e) => write!(f, "mode {name:?} is invalid: {e}"),
            ScenarioError::LiteSampled(name) => write!(
                f,
                "stats = \"lite\" cannot combine with sampled mode {name:?}: sampled \
                 simulation merges windowed statistics that lite mode does not maintain"
            ),
            ScenarioError::CellIndex { index, cells } => {
                write!(f, "cell index {index} is outside the grid ({cells} cells)")
            }
        }
    }
}

impl Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> Scenario {
        Scenario::new()
            .config("a", EngineConfig::paper_4wide(), TraceGenConfig::paper())
            .config("b", EngineConfig::paper_2wide_cached(), TraceGenConfig::perfect())
            .workload(WorkloadPoint::spec(SpecBenchmark::Gzip))
            .workload(WorkloadPoint::spec(SpecBenchmark::Vpr))
            .budgets([1_000])
            .seeds([1, 2])
    }

    #[test]
    fn cell_enumeration_is_config_innermost() {
        let s = two_by_two();
        assert_eq!(s.len(), 8);
        let cells = s.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!((cells[0].config, cells[0].workload, cells[0].seed), (0, 0, 1));
        assert_eq!((cells[1].config, cells[1].workload, cells[1].seed), (1, 0, 1));
        assert_eq!((cells[2].config, cells[2].workload, cells[2].seed), (0, 1, 1));
        assert_eq!(cells[7].seed, 2);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn trace_keys_share_across_configs_with_same_tracegen() {
        let s = Scenario::new()
            .config("a", EngineConfig::paper_4wide(), TraceGenConfig::paper())
            .config(
                "b",
                EngineConfig {
                    rb_size: 32,
                    ..EngineConfig::paper_4wide()
                },
                TraceGenConfig::paper(),
            )
            .workload(WorkloadPoint::spec(SpecBenchmark::Gzip))
            .budgets([500])
            .seeds([7]);
        let cells = s.cells();
        assert_eq!(s.trace_key(&cells[0]), s.trace_key(&cells[1]));
    }

    #[test]
    fn validation_catches_problems() {
        assert_eq!(Scenario::new().validate(), Err(ScenarioError::EmptyAxis));
        let dup = two_by_two().config("a", EngineConfig::paper_4wide(), TraceGenConfig::paper());
        assert!(matches!(dup.validate(), Err(ScenarioError::DuplicateName(_))));
        let zero = two_by_two().budgets([0]);
        assert_eq!(zero.validate(), Err(ScenarioError::ZeroBudget));
        let bad = two_by_two().config(
            "bad",
            EngineConfig {
                width: 0,
                ..EngineConfig::paper_4wide()
            },
            TraceGenConfig::paper(),
        );
        assert!(matches!(bad.validate(), Err(ScenarioError::Config(_, _))));
        assert!(two_by_two().validate().is_ok());
    }

    #[test]
    fn implicit_mode_axis_is_full_only() {
        let s = two_by_two();
        assert_eq!(s.mode_values(), vec![CellMode::Full]);
        assert_eq!(s.len(), 8, "no mode multiplier without explicit modes");
        for c in s.cells() {
            assert_eq!(c.mode, 0);
            assert_eq!(s.cell_mode(&c), CellMode::Full);
        }
    }

    #[test]
    fn explicit_modes_multiply_the_grid() {
        let plan = SamplePlan::systematic(1_000, 200, 2);
        let s = two_by_two()
            .mode(CellMode::Full)
            .mode(CellMode::Sampled(plan));
        assert_eq!(s.len(), 16);
        assert!(s.validate().is_ok());
        let cells = s.cells();
        // Mode varies outside the config axis: full for both configs,
        // then sampled for both.
        assert_eq!(s.cell_mode(&cells[0]), CellMode::Full);
        assert_eq!(s.cell_mode(&cells[1]), CellMode::Full);
        assert_eq!(s.cell_mode(&cells[2]), CellMode::Sampled(plan));
        assert_eq!(s.cell_mode(&cells[3]), CellMode::Sampled(plan));
        // Same trace key across modes: sampling shares the grid's traces.
        assert_eq!(s.trace_key(&cells[0]), s.trace_key(&cells[2]));
    }

    #[test]
    fn degenerate_or_duplicate_modes_are_rejected() {
        let bad = two_by_two().mode(CellMode::Sampled(SamplePlan::systematic(10, 20, 1)));
        assert!(matches!(bad.validate(), Err(ScenarioError::Mode(_, _))));
        let dup = two_by_two().mode(CellMode::Full).mode(CellMode::Full);
        assert!(matches!(
            dup.validate(),
            Err(ScenarioError::DuplicateName(_))
        ));
    }

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(CellMode::Full.name(), "full");
        assert_eq!(
            CellMode::Sampled(SamplePlan::systematic(1000, 100, 10)).name(),
            "sampled-u1000d100k10f"
        );
        assert_eq!(CellMode::default(), CellMode::Full);
    }

    #[test]
    fn stats_mode_defaults_full_and_marks_lite_fingerprints() {
        let full = two_by_two();
        assert_eq!(full.stats_mode(), StatsMode::Full);
        let lite = two_by_two().stats(StatsMode::Lite);
        assert_eq!(lite.stats_mode(), StatsMode::Lite);
        assert!(lite.validate().is_ok());
        // Lite cells must never hit a full-stats cache entry (and vice
        // versa): the fingerprint carries the mode.
        let cell = full.cells()[0];
        assert_ne!(full.cell_fingerprint(&cell), lite.cell_fingerprint(&cell));
        assert_eq!(StatsMode::Full.name(), "full");
        assert_eq!(StatsMode::Lite.name(), "lite");
        assert_eq!(StatsMode::default(), StatsMode::Full);
    }

    #[test]
    fn lite_stats_reject_sampled_modes() {
        let plan = SamplePlan::systematic(1_000, 200, 2);
        let s = two_by_two()
            .stats(StatsMode::Lite)
            .mode(CellMode::Full)
            .mode(CellMode::Sampled(plan));
        let err = s.validate().unwrap_err();
        assert!(matches!(err, ScenarioError::LiteSampled(_)));
        assert!(err.to_string().contains("lite"), "{err}");
        // Full cells alone are fine under lite stats.
        assert!(two_by_two()
            .stats(StatsMode::Lite)
            .mode(CellMode::Full)
            .validate()
            .is_ok());
    }

    #[test]
    fn custom_profile_workloads_instantiate() {
        let p = WorkloadProfile::generic();
        let point = WorkloadPoint::profile("generic", p);
        let mut w = point.instantiate(3);
        assert_eq!(w.generate(100).len(), 100);
        assert_eq!(point.name, "generic");
    }
}
