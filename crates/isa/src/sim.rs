//! The functional simulator: executes programs and emits the pre-decoded
//! dynamic instruction stream.
//!
//! This plays the role of SimpleScalar's functional core in the paper's
//! trace-generation flow: it resolves every branch and effective address so
//! the timing engine never has to execute anything. Output records are
//! always correct-path; the trace generator (`resim-tracegen`) adds the
//! wrong-path blocks.

use crate::asm::Program;
use crate::inst::{Inst, TEXT_BASE};
use resim_trace::{
    BranchKind, BranchRecord, MemKind, MemRecord, MemSize, OtherRecord, OpClass, Reg, TraceRecord,
};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Conventional stack pointer register.
pub const SP: u8 = 29;
/// Conventional return-address (link) register.
pub const RA: u8 = 31;

/// Initial stack pointer value.
const STACK_TOP: u32 = 0x7FFF_F000;
/// Sparse memory page size in bytes.
const PAGE: u32 = 4096;

/// Errors raised during functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the text segment.
    PcOutOfRange {
        /// The offending program counter.
        pc: u32,
    },
    /// The step budget ran out before `halt`.
    OutOfFuel {
        /// The number of steps executed.
        steps: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => write!(f, "pc {pc:#010x} left the text segment"),
            ExecError::OutOfFuel { steps } => {
                write!(f, "program did not halt within {steps} steps")
            }
        }
    }
}

impl Error for ExecError {}

/// Executes a [`Program`], producing one [`TraceRecord`] per dynamic
/// instruction.
#[derive(Debug, Clone)]
pub struct FunctionalSimulator<'p> {
    program: &'p Program,
    regs: [u32; 32],
    pages: HashMap<u32, Vec<u8>>,
    pc: u32,
    halted: bool,
    steps: u64,
}

impl<'p> FunctionalSimulator<'p> {
    /// Creates a simulator at the program's entry, with an initialised
    /// stack pointer (r29) and zeroed registers/memory.
    pub fn new(program: &'p Program) -> Self {
        let mut regs = [0u32; 32];
        regs[SP as usize] = STACK_TOP;
        Self {
            program,
            regs,
            pages: HashMap::new(),
            pc: program.pc_of(program.entry()),
            halted: false,
            steps: 0,
        }
    }

    /// Current value of register `r` (r0 is always 0).
    pub fn reg(&self, r: u8) -> u32 {
        self.regs[r as usize & 31]
    }

    /// Sets register `r` (writes to r0 are ignored).
    pub fn set_reg(&mut self, r: u8, value: u32) {
        if r != 0 {
            self.regs[r as usize & 31] = value;
        }
    }

    /// Reads a 32-bit little-endian word from memory.
    pub fn read_mem32(&self, addr: u32) -> u32 {
        let b = |i: u32| u32::from(self.read_byte(addr.wrapping_add(i)));
        b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24)
    }

    /// Writes a 32-bit little-endian word to memory.
    pub fn write_mem32(&mut self, addr: u32, value: u32) {
        for i in 0..4 {
            self.write_byte(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Whether the program has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    fn read_byte(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr / PAGE)) {
            Some(p) => p[(addr % PAGE) as usize],
            None => 0,
        }
    }

    fn write_byte(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr / PAGE)
            .or_insert_with(|| vec![0; PAGE as usize]);
        page[(addr % PAGE) as usize] = value;
    }

    fn read_sized(&self, addr: u32, size: MemSize, signed: bool) -> u32 {
        match size {
            MemSize::Byte => {
                let v = self.read_byte(addr);
                if signed {
                    v as i8 as i32 as u32
                } else {
                    u32::from(v)
                }
            }
            MemSize::Half => {
                let v = u32::from(self.read_byte(addr)) | (u32::from(self.read_byte(addr + 1)) << 8);
                if signed {
                    v as u16 as i16 as i32 as u32
                } else {
                    v
                }
            }
            _ => self.read_mem32(addr),
        }
    }

    /// Converts a mini-ISA register into a trace register name, hiding r0.
    fn treg(r: u8) -> Option<Reg> {
        (r != 0).then(|| Reg::new(r))
    }

    /// Executes one instruction; `Ok(None)` once halted.
    ///
    /// # Errors
    ///
    /// [`ExecError::PcOutOfRange`] if control flow escapes the program.
    pub fn step(&mut self) -> Result<Option<TraceRecord>, ExecError> {
        if self.halted {
            return Ok(None);
        }
        let idx = self
            .pc
            .checked_sub(TEXT_BASE)
            .map(|off| off / 4)
            .filter(|&i| (i as usize) < self.program.len())
            .ok_or(ExecError::PcOutOfRange { pc: self.pc })?;
        let inst = self.program.insts()[idx as usize];
        let pc = self.pc;
        self.steps += 1;

        let mut next_pc = pc.wrapping_add(4);
        let record = match inst {
            Inst::Halt => {
                self.halted = true;
                return Ok(None);
            }
            Inst::Nop => other(pc, OpClass::Nop, 0, 0, 0),
            Inst::Add(d, s, t) => self.alu3(pc, d, s, t, u32::wrapping_add),
            Inst::Sub(d, s, t) => self.alu3(pc, d, s, t, u32::wrapping_sub),
            Inst::And(d, s, t) => self.alu3(pc, d, s, t, |a, b| a & b),
            Inst::Or(d, s, t) => self.alu3(pc, d, s, t, |a, b| a | b),
            Inst::Xor(d, s, t) => self.alu3(pc, d, s, t, |a, b| a ^ b),
            Inst::Slt(d, s, t) => self.alu3(pc, d, s, t, |a, b| ((a as i32) < (b as i32)) as u32),
            Inst::Sllv(d, s, t) => self.alu3(pc, d, s, t, |a, b| a << (b & 31)),
            Inst::Srlv(d, s, t) => self.alu3(pc, d, s, t, |a, b| a >> (b & 31)),
            Inst::Addi(d, s, imm) => {
                self.set_reg(d, self.reg(s).wrapping_add(imm as i32 as u32));
                other(pc, OpClass::IntAlu, d, s, 0)
            }
            Inst::Andi(d, s, imm) => {
                self.set_reg(d, self.reg(s) & u32::from(imm));
                other(pc, OpClass::IntAlu, d, s, 0)
            }
            Inst::Ori(d, s, imm) => {
                self.set_reg(d, self.reg(s) | u32::from(imm));
                other(pc, OpClass::IntAlu, d, s, 0)
            }
            Inst::Xori(d, s, imm) => {
                self.set_reg(d, self.reg(s) ^ u32::from(imm));
                other(pc, OpClass::IntAlu, d, s, 0)
            }
            Inst::Slti(d, s, imm) => {
                self.set_reg(d, ((self.reg(s) as i32) < i32::from(imm)) as u32);
                other(pc, OpClass::IntAlu, d, s, 0)
            }
            Inst::Slli(d, s, sh) => {
                self.set_reg(d, self.reg(s) << (sh & 31));
                other(pc, OpClass::IntAlu, d, s, 0)
            }
            Inst::Srli(d, s, sh) => {
                self.set_reg(d, self.reg(s) >> (sh & 31));
                other(pc, OpClass::IntAlu, d, s, 0)
            }
            Inst::Srai(d, s, sh) => {
                self.set_reg(d, ((self.reg(s) as i32) >> (sh & 31)) as u32);
                other(pc, OpClass::IntAlu, d, s, 0)
            }
            Inst::Lui(d, imm) => {
                self.set_reg(d, u32::from(imm) << 16);
                other(pc, OpClass::IntAlu, d, 0, 0)
            }
            Inst::Mult(d, s, t) => {
                self.set_reg(d, self.reg(s).wrapping_mul(self.reg(t)));
                other(pc, OpClass::IntMult, d, s, t)
            }
            Inst::Div(d, s, t) => {
                let b = self.reg(t) as i32;
                let a = self.reg(s) as i32;
                self.set_reg(d, if b == 0 { 0 } else { a.wrapping_div(b) as u32 });
                other(pc, OpClass::IntDiv, d, s, t)
            }
            Inst::Rem(d, s, t) => {
                let b = self.reg(t) as i32;
                let a = self.reg(s) as i32;
                self.set_reg(d, if b == 0 { a as u32 } else { a.wrapping_rem(b) as u32 });
                other(pc, OpClass::IntDiv, d, s, t)
            }
            Inst::Lw(t, base, off) => self.load(pc, t, base, off, MemSize::Word, false),
            Inst::Lh(t, base, off) => self.load(pc, t, base, off, MemSize::Half, true),
            Inst::Lb(t, base, off) => self.load(pc, t, base, off, MemSize::Byte, true),
            Inst::Lbu(t, base, off) => self.load(pc, t, base, off, MemSize::Byte, false),
            Inst::Sw(t, base, off) => self.store(pc, t, base, off, MemSize::Word),
            Inst::Sh(t, base, off) => self.store(pc, t, base, off, MemSize::Half),
            Inst::Sb(t, base, off) => self.store(pc, t, base, off, MemSize::Byte),
            Inst::Beq(s, t, tgt) => {
                self.branch(pc, s, t, tgt, self.reg(s) == self.reg(t), &mut next_pc)
            }
            Inst::Bne(s, t, tgt) => {
                self.branch(pc, s, t, tgt, self.reg(s) != self.reg(t), &mut next_pc)
            }
            Inst::Blt(s, t, tgt) => self.branch(
                pc,
                s,
                t,
                tgt,
                (self.reg(s) as i32) < (self.reg(t) as i32),
                &mut next_pc,
            ),
            Inst::Bge(s, t, tgt) => self.branch(
                pc,
                s,
                t,
                tgt,
                (self.reg(s) as i32) >= (self.reg(t) as i32),
                &mut next_pc,
            ),
            Inst::J(tgt) => {
                let target = self.program.pc_of(tgt);
                next_pc = target;
                jump(pc, BranchKind::Jump, target, None)
            }
            Inst::Jal(tgt) => {
                let target = self.program.pc_of(tgt);
                self.set_reg(RA, pc.wrapping_add(4));
                next_pc = target;
                jump(pc, BranchKind::Call, target, None)
            }
            Inst::Jr(s) => {
                let target = self.reg(s);
                next_pc = target;
                let kind = if s == RA {
                    BranchKind::Return
                } else {
                    BranchKind::IndirectJump
                };
                jump(pc, kind, target, Self::treg(s))
            }
            Inst::Jalr(d, s) => {
                let target = self.reg(s);
                self.set_reg(d, pc.wrapping_add(4));
                next_pc = target;
                jump(pc, BranchKind::IndirectCall, target, Self::treg(s))
            }
        };
        self.pc = next_pc;
        Ok(Some(record))
    }

    fn alu3(&mut self, pc: u32, d: u8, s: u8, t: u8, f: impl Fn(u32, u32) -> u32) -> TraceRecord {
        self.set_reg(d, f(self.reg(s), self.reg(t)));
        other(pc, OpClass::IntAlu, d, s, t)
    }

    fn load(&mut self, pc: u32, t: u8, base: u8, off: i16, size: MemSize, signed: bool) -> TraceRecord {
        let addr = self.reg(base).wrapping_add(off as i32 as u32);
        let v = self.read_sized(addr, size, signed);
        self.set_reg(t, v);
        TraceRecord::Mem(MemRecord {
            pc,
            addr,
            size,
            kind: MemKind::Load,
            base: Self::treg(base),
            data: Self::treg(t),
            wrong_path: false,
        })
    }

    fn store(&mut self, pc: u32, t: u8, base: u8, off: i16, size: MemSize) -> TraceRecord {
        let addr = self.reg(base).wrapping_add(off as i32 as u32);
        let v = self.reg(t);
        match size {
            MemSize::Byte => self.write_byte(addr, v as u8),
            MemSize::Half => {
                self.write_byte(addr, v as u8);
                self.write_byte(addr.wrapping_add(1), (v >> 8) as u8);
            }
            _ => self.write_mem32(addr, v),
        }
        TraceRecord::Mem(MemRecord {
            pc,
            addr,
            size,
            kind: MemKind::Store,
            base: Self::treg(base),
            data: Self::treg(t),
            wrong_path: false,
        })
    }

    fn branch(
        &mut self,
        pc: u32,
        s: u8,
        t: u8,
        tgt: u32,
        taken: bool,
        next_pc: &mut u32,
    ) -> TraceRecord {
        let target = self.program.pc_of(tgt);
        if taken {
            *next_pc = target;
        }
        TraceRecord::Branch(BranchRecord {
            pc,
            target,
            taken,
            kind: BranchKind::Cond,
            src1: Self::treg(s),
            src2: Self::treg(t),
            wrong_path: false,
        })
    }

    /// Runs until `halt`, returning the dynamic instruction stream.
    ///
    /// # Errors
    ///
    /// [`ExecError::OutOfFuel`] if `max_steps` elapse first, or
    /// [`ExecError::PcOutOfRange`] on a control-flow escape.
    pub fn run(&mut self, max_steps: u64) -> Result<Vec<TraceRecord>, ExecError> {
        let mut out = Vec::new();
        while !self.halted {
            if self.steps >= max_steps {
                return Err(ExecError::OutOfFuel { steps: self.steps });
            }
            match self.step()? {
                Some(r) => out.push(r),
                None => break,
            }
        }
        Ok(out)
    }
}

fn other(pc: u32, class: OpClass, d: u8, s: u8, t: u8) -> TraceRecord {
    TraceRecord::Other(OtherRecord {
        pc,
        class,
        dest: FunctionalSimulator::treg(d),
        src1: FunctionalSimulator::treg(s),
        src2: FunctionalSimulator::treg(t),
        wrong_path: false,
    })
}

fn jump(pc: u32, kind: BranchKind, target: u32, src: Option<Reg>) -> TraceRecord {
    TraceRecord::Branch(BranchRecord {
        pc,
        target,
        taken: true,
        kind,
        src1: src,
        src2: None,
        wrong_path: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    #[test]
    fn arithmetic_and_halt() {
        let mut a = Assembler::new();
        a.addi(1, 0, 7);
        a.addi(2, 0, 5);
        a.add(3, 1, 2);
        a.sub(4, 1, 2);
        a.mult(5, 1, 2);
        a.div(6, 1, 2);
        a.rem(7, 1, 2);
        a.halt();
        let p = a.assemble().unwrap();
        let mut sim = FunctionalSimulator::new(&p);
        let trace = sim.run(100).unwrap();
        assert_eq!(trace.len(), 7);
        assert_eq!(sim.reg(3), 12);
        assert_eq!(sim.reg(4), 2);
        assert_eq!(sim.reg(5), 35);
        assert_eq!(sim.reg(6), 1);
        assert_eq!(sim.reg(7), 2);
        assert!(sim.is_halted());
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut a = Assembler::new();
        a.addi(0, 0, 99);
        a.add(1, 0, 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut sim = FunctionalSimulator::new(&p);
        sim.run(10).unwrap();
        assert_eq!(sim.reg(0), 0);
        assert_eq!(sim.reg(1), 0);
    }

    #[test]
    fn div_by_zero_is_defined() {
        let mut a = Assembler::new();
        a.addi(1, 0, 10);
        a.div(2, 1, 0);
        a.rem(3, 1, 0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut sim = FunctionalSimulator::new(&p);
        sim.run(10).unwrap();
        assert_eq!(sim.reg(2), 0);
        assert_eq!(sim.reg(3), 10);
    }

    #[test]
    fn memory_roundtrip_all_sizes() {
        let mut a = Assembler::new();
        a.li(1, 0x1_0000); // data base
        a.li(2, 0xDEAD_BEEF);
        a.sw(2, 1, 0);
        a.lw(3, 1, 0);
        a.lbu(4, 1, 3); // 0xDE
        a.lb(5, 1, 3); // sign-extended 0xDE
        a.lh(6, 1, 0); // sign-extended 0xBEEF
        a.sb(2, 1, 8);
        a.lbu(7, 1, 8); // 0xEF
        a.sh(2, 1, 12);
        a.lh(8, 1, 12);
        a.halt();
        let p = a.assemble().unwrap();
        let mut sim = FunctionalSimulator::new(&p);
        sim.run(100).unwrap();
        assert_eq!(sim.reg(3), 0xDEAD_BEEF);
        assert_eq!(sim.reg(4), 0xDE);
        assert_eq!(sim.reg(5), 0xDEu8 as i8 as i32 as u32);
        assert_eq!(sim.reg(6), 0xBEEFu16 as i16 as i32 as u32);
        assert_eq!(sim.reg(7), 0xEF);
        assert_eq!(sim.reg(8), 0xBEEFu16 as i16 as i32 as u32);
    }

    #[test]
    fn branch_records_carry_outcome() {
        let mut a = Assembler::new();
        a.addi(1, 0, 2);
        a.label("loop").unwrap();
        a.addi(1, 1, -1);
        a.bne(1, 0, "loop");
        a.halt();
        let p = a.assemble().unwrap();
        let mut sim = FunctionalSimulator::new(&p);
        let trace = sim.run(100).unwrap();
        let branches: Vec<_> = trace
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Branch(b) => Some(*b),
                _ => None,
            })
            .collect();
        assert_eq!(branches.len(), 2);
        assert!(branches[0].taken, "first iteration loops back");
        assert!(!branches[1].taken, "second iteration falls through");
        assert_eq!(branches[0].kind, BranchKind::Cond);
    }

    #[test]
    fn call_return_records() {
        let mut a = Assembler::new();
        a.jal("f");
        a.halt();
        a.label("f").unwrap();
        a.addi(2, 0, 1);
        a.ret();
        let p = a.assemble().unwrap();
        let mut sim = FunctionalSimulator::new(&p);
        let trace = sim.run(100).unwrap();
        let kinds: Vec<_> = trace
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Branch(b) => Some(b.kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![BranchKind::Call, BranchKind::Return]);
        assert_eq!(sim.reg(2), 1);
    }

    #[test]
    fn out_of_fuel_reported() {
        let mut a = Assembler::new();
        a.label("spin").unwrap();
        a.j("spin");
        let p = a.assemble().unwrap();
        let mut sim = FunctionalSimulator::new(&p);
        assert!(matches!(sim.run(10), Err(ExecError::OutOfFuel { .. })));
    }

    #[test]
    fn pc_escape_reported() {
        let mut a = Assembler::new();
        a.addi(1, 0, 0x100);
        a.jr(1); // jumps outside the text segment
        let p = a.assemble().unwrap();
        let mut sim = FunctionalSimulator::new(&p);
        assert!(matches!(
            sim.run(10),
            Err(ExecError::PcOutOfRange { pc: 0x100 })
        ));
    }

    #[test]
    fn step_after_halt_is_none() {
        let mut a = Assembler::new();
        a.halt();
        let p = a.assemble().unwrap();
        let mut sim = FunctionalSimulator::new(&p);
        assert_eq!(sim.step().unwrap(), None);
        assert_eq!(sim.step().unwrap(), None);
    }
}
