//! A library of small, real programs for the mini-PISA ISA.
//!
//! These exercise every engine path end-to-end — loop branches, calls and
//! returns (RAS), data-dependent control flow, long dependence chains,
//! multiplier/divider traffic and cache-hostile memory patterns — and are
//! used by the quickstart example and the integration tests. The large
//! calibrated SPECINT-like workloads live in `resim-workloads`.

use crate::asm::{Assembler, Program};

/// Data-segment base used by the array programs.
pub const DATA_BASE: u32 = 0x0001_0000;

/// Iterative Fibonacci: leaves `fib(n)` in r2.
///
/// A tight dependence-chain loop — good for measuring issue-limited IPC.
pub fn fibonacci(n: u16) -> Program {
    let mut a = Assembler::new();
    a.addi(1, 0, n as i16); // counter
    a.addi(2, 0, 0); // fib(0)
    a.addi(3, 0, 1); // fib(1)
    a.beq(1, 0, "done");
    a.label("loop").expect("unique label");
    a.add(4, 2, 3);
    a.add(2, 3, 0);
    a.add(3, 4, 0);
    a.addi(1, 1, -1);
    a.bne(1, 0, "loop");
    a.label("done").expect("unique label");
    a.halt();
    a.assemble().expect("fibonacci assembles")
}

/// Recursive Fibonacci: leaves `fib(n)` in r2.
///
/// Deep call/return chains exercise the RAS and stack traffic.
pub fn recursive_fib(n: u16) -> Program {
    let mut a = Assembler::new();
    a.addi(4, 0, n as i16);
    a.jal("fib");
    a.halt();
    a.label("fib").expect("unique label");
    a.slti(5, 4, 2);
    a.beq(5, 0, "rec");
    a.add(2, 4, 0); // base case: return n
    a.ret();
    a.label("rec").expect("unique label");
    a.addi(crate::sim::SP, crate::sim::SP, -8);
    a.sw(crate::sim::RA, crate::sim::SP, 0);
    a.sw(4, crate::sim::SP, 4);
    a.addi(4, 4, -1);
    a.jal("fib");
    a.lw(4, crate::sim::SP, 4);
    a.sw(2, crate::sim::SP, 4); // stash fib(n-1)
    a.addi(4, 4, -2);
    a.jal("fib");
    a.lw(5, crate::sim::SP, 4);
    a.add(2, 2, 5);
    a.lw(crate::sim::RA, crate::sim::SP, 0);
    a.addi(crate::sim::SP, crate::sim::SP, 8);
    a.ret();
    a.assemble().expect("recursive_fib assembles")
}

/// Bubble-sorts an `n`-element descending array ascending.
///
/// Heavy load/store traffic with data-dependent swap branches (the swap
/// is taken on every comparison for a descending input).
pub fn bubble_sort(n: u16) -> Program {
    let mut a = Assembler::new();
    a.li(1, DATA_BASE);
    a.addi(2, 0, n as i16);
    // init: a[i] = n - i
    a.addi(3, 0, 0);
    a.label("init").expect("unique label");
    a.bge(3, 2, "init_done");
    a.sub(4, 2, 3);
    a.slli(5, 3, 2);
    a.add(5, 5, 1);
    a.sw(4, 5, 0);
    a.addi(3, 3, 1);
    a.j("init");
    a.label("init_done").expect("unique label");
    // outer: i in 0..n-1
    a.addi(6, 0, 0);
    a.label("outer").expect("unique label");
    a.addi(7, 2, -1);
    a.bge(6, 7, "done");
    a.addi(8, 0, 0); // j
    a.label("inner").expect("unique label");
    a.sub(9, 2, 6);
    a.addi(9, 9, -1);
    a.bge(8, 9, "inner_done");
    a.slli(10, 8, 2);
    a.add(10, 10, 1);
    a.lw(11, 10, 0);
    a.lw(12, 10, 4);
    a.bge(12, 11, "noswap");
    a.sw(12, 10, 0);
    a.sw(11, 10, 4);
    a.label("noswap").expect("unique label");
    a.addi(8, 8, 1);
    a.j("inner");
    a.label("inner_done").expect("unique label");
    a.addi(6, 6, 1);
    a.j("outer");
    a.label("done").expect("unique label");
    a.halt();
    a.assemble().expect("bubble_sort assembles")
}

/// `n × n` integer matrix multiply with `A[i][j] = i+1`, `B[i][j] = j+1`,
/// so `C[i][j] = (i+1)(j+1)n`.
///
/// Multiplier-heavy with regular, prefetch-friendly access patterns.
pub fn matmul(n: u16) -> Program {
    let mut a = Assembler::new();
    a.li(1, DATA_BASE); // A
    a.li(2, DATA_BASE + 0x1_0000); // B
    a.li(3, DATA_BASE + 0x2_0000); // C
    a.addi(4, 0, n as i16);
    // init loops
    a.addi(5, 0, 0);
    a.label("ia").expect("unique label");
    a.bge(5, 4, "ia_done");
    a.addi(6, 0, 0);
    a.label("ja").expect("unique label");
    a.bge(6, 4, "ja_done");
    a.mult(7, 5, 4);
    a.add(7, 7, 6);
    a.slli(7, 7, 2);
    a.add(8, 7, 1);
    a.addi(9, 5, 1);
    a.sw(9, 8, 0);
    a.add(8, 7, 2);
    a.addi(9, 6, 1);
    a.sw(9, 8, 0);
    a.addi(6, 6, 1);
    a.j("ja");
    a.label("ja_done").expect("unique label");
    a.addi(5, 5, 1);
    a.j("ia");
    a.label("ia_done").expect("unique label");
    // multiply loops
    a.addi(5, 0, 0);
    a.label("mi").expect("unique label");
    a.bge(5, 4, "mdone");
    a.addi(6, 0, 0);
    a.label("mj").expect("unique label");
    a.bge(6, 4, "mj_done");
    a.addi(10, 0, 0); // acc
    a.addi(11, 0, 0); // k
    a.label("mk").expect("unique label");
    a.bge(11, 4, "mk_done");
    a.mult(7, 5, 4);
    a.add(7, 7, 11);
    a.slli(7, 7, 2);
    a.add(7, 7, 1);
    a.lw(8, 7, 0); // A[i][k]
    a.mult(7, 11, 4);
    a.add(7, 7, 6);
    a.slli(7, 7, 2);
    a.add(7, 7, 2);
    a.lw(9, 7, 0); // B[k][j]
    a.mult(12, 8, 9);
    a.add(10, 10, 12);
    a.addi(11, 11, 1);
    a.j("mk");
    a.label("mk_done").expect("unique label");
    a.mult(7, 5, 4);
    a.add(7, 7, 6);
    a.slli(7, 7, 2);
    a.add(7, 7, 3);
    a.sw(10, 7, 0); // C[i][j]
    a.addi(6, 6, 1);
    a.j("mj");
    a.label("mj_done").expect("unique label");
    a.addi(5, 5, 1);
    a.j("mi");
    a.label("mdone").expect("unique label");
    a.halt();
    a.assemble().expect("matmul assembles")
}

/// Sieve of Eratosthenes up to `n`; leaves the prime count in r2.
///
/// Byte stores with growing strides and a divider-free inner loop; the
/// flag scan at the end has hard-to-predict branches.
pub fn sieve(n: u16) -> Program {
    let mut a = Assembler::new();
    a.li(1, DATA_BASE + 0x4_0000);
    a.addi(2, 0, n as i16);
    a.addi(3, 0, 2); // p
    a.addi(8, 0, 1); // the composite marker
    a.label("outer").expect("unique label");
    a.mult(4, 3, 3);
    a.bge(4, 2, "scan");
    a.add(5, 1, 3);
    a.lbu(6, 5, 0);
    a.bne(6, 0, "next"); // already composite
    a.add(7, 4, 0); // k = p*p
    a.label("mark").expect("unique label");
    a.bge(7, 2, "next");
    a.add(5, 1, 7);
    a.sb(8, 5, 0);
    a.add(7, 7, 3);
    a.j("mark");
    a.label("next").expect("unique label");
    a.addi(3, 3, 1);
    a.j("outer");
    a.label("scan").expect("unique label");
    a.addi(9, 0, 0); // count
    a.addi(3, 0, 2);
    a.label("count").expect("unique label");
    a.bge(3, 2, "cdone");
    a.add(5, 1, 3);
    a.lbu(6, 5, 0);
    a.bne(6, 0, "notp");
    a.addi(9, 9, 1);
    a.label("notp").expect("unique label");
    a.addi(3, 3, 1);
    a.j("count");
    a.label("cdone").expect("unique label");
    a.add(2, 9, 0);
    a.halt();
    a.assemble().expect("sieve assembles")
}

/// Naive substring search: builds an `n`-byte periodic text, extracts a
/// 4-byte pattern from the middle, counts matches into r2.
///
/// Byte loads with an inner loop whose exit is data-dependent — the sort
/// of branch behaviour that dominates `parser`-like workloads.
pub fn string_search(n: u16) -> Program {
    let mut a = Assembler::new();
    a.li(1, DATA_BASE + 0x6_0000); // text
    a.addi(2, 0, n as i16);
    // text[i] = (i*7+3) & 63
    a.addi(3, 0, 0);
    a.addi(13, 0, 7);
    a.label("it").expect("unique label");
    a.bge(3, 2, "it_done");
    a.mult(4, 3, 13);
    a.addi(4, 4, 3);
    a.andi(4, 4, 63);
    a.add(5, 1, 3);
    a.sb(4, 5, 0);
    a.addi(3, 3, 1);
    a.j("it");
    a.label("it_done").expect("unique label");
    // pattern = text[n/2 .. n/2+4]
    a.li(6, DATA_BASE + 0x6_8000);
    a.srli(7, 2, 1);
    a.addi(8, 0, 4);
    a.addi(3, 0, 0);
    a.label("ip").expect("unique label");
    a.bge(3, 8, "ip_done");
    a.add(9, 7, 3);
    a.add(9, 9, 1);
    a.lbu(10, 9, 0);
    a.add(9, 6, 3);
    a.sb(10, 9, 0);
    a.addi(3, 3, 1);
    a.j("ip");
    a.label("ip_done").expect("unique label");
    // search
    a.addi(11, 0, 0); // matches
    a.addi(3, 0, 0); // i
    a.sub(12, 2, 8); // n - 4
    a.label("si").expect("unique label");
    a.bge(3, 12, "sdone");
    a.addi(4, 0, 0); // j
    a.label("sj").expect("unique label");
    a.bge(4, 8, "match");
    a.add(5, 1, 3);
    a.add(5, 5, 4);
    a.lbu(9, 5, 0);
    a.add(5, 6, 4);
    a.lbu(10, 5, 0);
    a.bne(9, 10, "nomatch");
    a.addi(4, 4, 1);
    a.j("sj");
    a.label("match").expect("unique label");
    a.addi(11, 11, 1);
    a.label("nomatch").expect("unique label");
    a.addi(3, 3, 1);
    a.j("si");
    a.label("sdone").expect("unique label");
    a.add(2, 11, 0);
    a.halt();
    a.assemble().expect("string_search assembles")
}

/// Builds a `nodes`-element linked cycle (stride-17 permutation, 64-byte
/// nodes) then chases it `steps` times.
///
/// Serialised dependent loads: latency-bound, cache-hostile once the
/// working set exceeds the L1 (each node is one cache block).
pub fn pointer_chase(nodes: u16, steps: u16) -> Program {
    assert!(nodes > 0, "pointer_chase needs at least one node");
    let mut a = Assembler::new();
    a.li(1, DATA_BASE + 0x8_0000);
    a.addi(2, 0, nodes as i16);
    // next[i] = base + ((i+17) % nodes) * 64
    a.addi(3, 0, 0);
    a.label("pi").expect("unique label");
    a.bge(3, 2, "pi_done");
    a.addi(4, 3, 17);
    a.rem(4, 4, 2);
    a.slli(5, 4, 6);
    a.add(5, 5, 1);
    a.slli(6, 3, 6);
    a.add(6, 6, 1);
    a.sw(5, 6, 0);
    a.addi(3, 3, 1);
    a.j("pi");
    a.label("pi_done").expect("unique label");
    a.addi(7, 0, steps as i16);
    a.add(8, 1, 0);
    a.label("ch").expect("unique label");
    a.beq(7, 0, "ch_done");
    a.lw(8, 8, 0);
    a.addi(7, 7, -1);
    a.j("ch");
    a.label("ch_done").expect("unique label");
    a.add(2, 8, 0);
    a.halt();
    a.assemble().expect("pointer_chase assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::FunctionalSimulator;

    const FUEL: u64 = 20_000_000;

    #[test]
    fn fibonacci_values() {
        for (n, want) in [(0u16, 0u32), (1, 1), (2, 1), (10, 55), (20, 6765)] {
            let p = fibonacci(n);
            let mut sim = FunctionalSimulator::new(&p);
            sim.run(FUEL).unwrap();
            assert_eq!(sim.reg(2), want, "fib({n})");
        }
    }

    #[test]
    fn recursive_fib_matches_iterative() {
        for n in [1u16, 5, 10, 12] {
            let pi = fibonacci(n);
            let mut si = FunctionalSimulator::new(&pi);
            si.run(FUEL).unwrap();
            let pr = recursive_fib(n);
            let mut sr = FunctionalSimulator::new(&pr);
            sr.run(FUEL).unwrap();
            assert_eq!(si.reg(2), sr.reg(2), "fib({n})");
        }
    }

    #[test]
    fn bubble_sort_sorts() {
        let n = 24u16;
        let p = bubble_sort(n);
        let mut sim = FunctionalSimulator::new(&p);
        sim.run(FUEL).unwrap();
        for i in 0..n as u32 {
            assert_eq!(
                sim.read_mem32(DATA_BASE + i * 4),
                i + 1,
                "a[{i}] after sorting"
            );
        }
    }

    #[test]
    fn matmul_product_is_correct() {
        let n = 6u16;
        let p = matmul(n);
        let mut sim = FunctionalSimulator::new(&p);
        sim.run(FUEL).unwrap();
        let c_base = DATA_BASE + 0x2_0000;
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                let want = (i + 1) * (j + 1) * n as u32;
                let got = sim.read_mem32(c_base + (i * n as u32 + j) * 4);
                assert_eq!(got, want, "C[{i}][{j}]");
            }
        }
    }

    #[test]
    fn sieve_counts_primes() {
        let p = sieve(100);
        let mut sim = FunctionalSimulator::new(&p);
        sim.run(FUEL).unwrap();
        assert_eq!(sim.reg(2), 25, "pi(99) = 25");
    }

    #[test]
    fn string_search_finds_pattern() {
        let p = string_search(512);
        let mut sim = FunctionalSimulator::new(&p);
        sim.run(FUEL).unwrap();
        // The text has period 64, so the 4-byte pattern appears ~n/64 times.
        assert!(sim.reg(2) >= 1, "pattern must be found");
        assert!(sim.reg(2) <= 16, "match count bounded by periodicity");
    }

    #[test]
    fn pointer_chase_terminates_in_cycle() {
        let p = pointer_chase(64, 128);
        let mut sim = FunctionalSimulator::new(&p);
        sim.run(FUEL).unwrap();
        // After any number of steps the pointer stays inside the node pool.
        let base = DATA_BASE + 0x8_0000;
        let end = base + 64 * 64;
        assert!(sim.reg(2) >= base && sim.reg(2) < end);
    }

    #[test]
    fn programs_emit_expected_mix() {
        // bubble_sort must be memory-heavy; matmul must be mult-heavy.
        let p = bubble_sort(16);
        let mut sim = FunctionalSimulator::new(&p);
        let trace = sim.run(FUEL).unwrap();
        let mems = trace.iter().filter(|r| r.is_load() || r.is_store()).count();
        assert!(mems * 5 > trace.len(), "sort should be >20% memory ops");

        let p = matmul(8);
        let mut sim = FunctionalSimulator::new(&p);
        let trace = sim.run(FUEL).unwrap();
        let mults = trace
            .iter()
            .filter(|r| {
                matches!(r, resim_trace::TraceRecord::Other(o)
                    if o.class == resim_trace::OpClass::IntMult)
            })
            .count();
        assert!(mults > 8 * 8 * 8, "matmul must execute n^3 multiplies");
    }
}
