//! A tiny two-pass assembler with symbolic labels.
//!
//! Programs are built programmatically (there is no textual parser — the
//! builder *is* the assembly language). Labels may be referenced before
//! they are defined; `assemble` resolves them and rejects danglers.

use crate::inst::{Inst, TEXT_BASE};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An assembled, executable program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
    entry: u32,
}

impl Program {
    /// The instructions, indexed from 0.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Entry point as an instruction index.
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// The PC of instruction index `idx` in the text segment.
    pub fn pc_of(&self, idx: u32) -> u32 {
        TEXT_BASE + idx * 4
    }
}

/// Errors reported by [`Assembler::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A register operand is out of the 0–31 range.
    BadRegister(u8),
    /// The program contains no instructions.
    Empty,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BadRegister(r) => write!(f, "register r{r} out of range 0..32"),
            AsmError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl Error for AsmError {}

/// Pending control-flow instruction awaiting label resolution.
#[derive(Debug, Clone)]
enum Pending {
    Done(Inst),
    Beq(u8, u8, String),
    Bne(u8, u8, String),
    Blt(u8, u8, String),
    Bge(u8, u8, String),
    J(String),
    Jal(String),
}

/// Two-pass builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use resim_isa::{Assembler, FunctionalSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Assembler::new();
/// a.addi(1, 0, 5);          // r1 = 5
/// a.addi(2, 0, 0);          // r2 = 0 (accumulator)
/// a.label("loop")?;
/// a.add(2, 2, 1);           // r2 += r1
/// a.addi(1, 1, -1);         // r1 -= 1
/// a.bne(1, 0, "loop");
/// a.halt();
/// let program = a.assemble()?;
///
/// let mut sim = FunctionalSimulator::new(&program);
/// sim.run(1000)?;
/// assert_eq!(sim.reg(2), 15); // 5+4+3+2+1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    pending: Vec<Pending>,
    labels: HashMap<String, u32>,
    error: Option<AsmError>,
}

macro_rules! reg3 {
    ($($(#[$doc:meta])* $method:ident => $variant:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $method(&mut self, rd: u8, rs: u8, rt: u8) -> &mut Self {
                self.check_regs(&[rd, rs, rt]);
                self.emit(Inst::$variant(rd, rs, rt))
            }
        )*
    };
}

macro_rules! mem_op {
    ($($(#[$doc:meta])* $method:ident => $variant:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $method(&mut self, rt: u8, base: u8, offset: i16) -> &mut Self {
                self.check_regs(&[rt, base]);
                self.emit(Inst::$variant(rt, base, offset))
            }
        )*
    };
}

macro_rules! branch_op {
    ($($(#[$doc:meta])* $method:ident => $variant:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $method(&mut self, rs: u8, rt: u8, label: &str) -> &mut Self {
                self.check_regs(&[rs, rt]);
                self.pending.push(Pending::$variant(rs, rt, label.to_owned()));
                self
            }
        )*
    };
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    fn emit(&mut self, inst: Inst) -> &mut Self {
        self.pending.push(Pending::Done(inst));
        self
    }

    fn check_regs(&mut self, regs: &[u8]) {
        for &r in regs {
            if r >= 32 && self.error.is_none() {
                self.error = Some(AsmError::BadRegister(r));
            }
        }
    }

    /// Defines `name` at the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateLabel`] if `name` was already defined.
    pub fn label(&mut self, name: &str) -> Result<&mut Self, AsmError> {
        if self
            .labels
            .insert(name.to_owned(), self.pending.len() as u32)
            .is_some()
        {
            return Err(AsmError::DuplicateLabel(name.to_owned()));
        }
        Ok(self)
    }

    /// Current instruction index (useful for computed jumps).
    pub fn here(&self) -> u32 {
        self.pending.len() as u32
    }

    reg3! {
        /// `rd = rs + rt`.
        add => Add,
        /// `rd = rs - rt`.
        sub => Sub,
        /// `rd = rs & rt`.
        and => And,
        /// `rd = rs | rt`.
        or => Or,
        /// `rd = rs ^ rt`.
        xor => Xor,
        /// `rd = (rs < rt)` signed.
        slt => Slt,
        /// `rd = rs << rt`.
        sllv => Sllv,
        /// `rd = rs >> rt` logical.
        srlv => Srlv,
        /// `rd = rs * rt` (multiplier class).
        mult => Mult,
        /// `rd = rs / rt` (divider class).
        div => Div,
        /// `rd = rs % rt` (divider class).
        rem => Rem,
    }

    /// `rd = rs + imm`.
    pub fn addi(&mut self, rd: u8, rs: u8, imm: i16) -> &mut Self {
        self.check_regs(&[rd, rs]);
        self.emit(Inst::Addi(rd, rs, imm))
    }

    /// `rd = rs & imm`.
    pub fn andi(&mut self, rd: u8, rs: u8, imm: u16) -> &mut Self {
        self.check_regs(&[rd, rs]);
        self.emit(Inst::Andi(rd, rs, imm))
    }

    /// `rd = rs | imm`.
    pub fn ori(&mut self, rd: u8, rs: u8, imm: u16) -> &mut Self {
        self.check_regs(&[rd, rs]);
        self.emit(Inst::Ori(rd, rs, imm))
    }

    /// `rd = rs ^ imm`.
    pub fn xori(&mut self, rd: u8, rs: u8, imm: u16) -> &mut Self {
        self.check_regs(&[rd, rs]);
        self.emit(Inst::Xori(rd, rs, imm))
    }

    /// `rd = (rs < imm)` signed.
    pub fn slti(&mut self, rd: u8, rs: u8, imm: i16) -> &mut Self {
        self.check_regs(&[rd, rs]);
        self.emit(Inst::Slti(rd, rs, imm))
    }

    /// `rd = rs << shamt`.
    pub fn slli(&mut self, rd: u8, rs: u8, shamt: u8) -> &mut Self {
        self.check_regs(&[rd, rs]);
        self.emit(Inst::Slli(rd, rs, shamt))
    }

    /// `rd = rs >> shamt` logical.
    pub fn srli(&mut self, rd: u8, rs: u8, shamt: u8) -> &mut Self {
        self.check_regs(&[rd, rs]);
        self.emit(Inst::Srli(rd, rs, shamt))
    }

    /// `rd = rs >> shamt` arithmetic.
    pub fn srai(&mut self, rd: u8, rs: u8, shamt: u8) -> &mut Self {
        self.check_regs(&[rd, rs]);
        self.emit(Inst::Srai(rd, rs, shamt))
    }

    /// `rd = imm << 16`.
    pub fn lui(&mut self, rd: u8, imm: u16) -> &mut Self {
        self.check_regs(&[rd]);
        self.emit(Inst::Lui(rd, imm))
    }

    /// Loads `imm` (full 32-bit) into `rd` via `lui`/`ori`.
    pub fn li(&mut self, rd: u8, imm: u32) -> &mut Self {
        if imm <= 0x7FFF {
            self.addi(rd, 0, imm as i16)
        } else {
            self.lui(rd, (imm >> 16) as u16);
            self.ori(rd, rd, (imm & 0xFFFF) as u16)
        }
    }

    mem_op! {
        /// `rt = mem32[base + offset]`.
        lw => Lw,
        /// `rt = sign_extend(mem8[base + offset])`.
        lb => Lb,
        /// `rt = zero_extend(mem8[base + offset])`.
        lbu => Lbu,
        /// `rt = sign_extend(mem16[base + offset])`.
        lh => Lh,
        /// `mem32[base + offset] = rt`.
        sw => Sw,
        /// `mem8[base + offset] = rt`.
        sb => Sb,
        /// `mem16[base + offset] = rt`.
        sh => Sh,
    }

    branch_op! {
        /// Branch to `label` if `rs == rt`.
        beq => Beq,
        /// Branch to `label` if `rs != rt`.
        bne => Bne,
        /// Branch to `label` if `rs < rt` signed.
        blt => Blt,
        /// Branch to `label` if `rs >= rt` signed.
        bge => Bge,
    }

    /// Unconditional jump to `label`.
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.pending.push(Pending::J(label.to_owned()));
        self
    }

    /// Call `label` (return address in r31).
    pub fn jal(&mut self, label: &str) -> &mut Self {
        self.pending.push(Pending::Jal(label.to_owned()));
        self
    }

    /// Jump through `rs` (a return when `rs` is r31).
    pub fn jr(&mut self, rs: u8) -> &mut Self {
        self.check_regs(&[rs]);
        self.emit(Inst::Jr(rs))
    }

    /// Indirect call through `rs`, return address into `rd`.
    pub fn jalr(&mut self, rd: u8, rs: u8) -> &mut Self {
        self.check_regs(&[rd, rs]);
        self.emit(Inst::Jalr(rd, rs))
    }

    /// Return (`jr r31`).
    pub fn ret(&mut self) -> &mut Self {
        self.jr(crate::sim::RA)
    }

    /// No-operation.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::Nop)
    }

    /// Stop execution.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::Halt)
    }

    /// Resolves labels and produces the executable program.
    ///
    /// # Errors
    ///
    /// Returns the first recorded operand error, an
    /// [`AsmError::UndefinedLabel`] for dangling references, or
    /// [`AsmError::Empty`] for an instruction-less program.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        if self.pending.is_empty() {
            return Err(AsmError::Empty);
        }
        let resolve = |label: &str| -> Result<u32, AsmError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_owned()))
        };
        let mut insts = Vec::with_capacity(self.pending.len());
        for p in &self.pending {
            let inst = match p {
                Pending::Done(i) => *i,
                Pending::Beq(a, b, l) => Inst::Beq(*a, *b, resolve(l)?),
                Pending::Bne(a, b, l) => Inst::Bne(*a, *b, resolve(l)?),
                Pending::Blt(a, b, l) => Inst::Blt(*a, *b, resolve(l)?),
                Pending::Bge(a, b, l) => Inst::Bge(*a, *b, resolve(l)?),
                Pending::J(l) => Inst::J(resolve(l)?),
                Pending::Jal(l) => Inst::Jal(resolve(l)?),
            };
            insts.push(inst);
        }
        Ok(Program { insts, entry: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Assembler::new();
        a.j("fwd");
        a.label("back").unwrap();
        a.nop();
        a.label("fwd").unwrap();
        a.beq(0, 0, "back");
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.insts()[0], Inst::J(2));
        assert_eq!(p.insts()[2], Inst::Beq(0, 0, 1));
    }

    #[test]
    fn undefined_label_rejected() {
        let mut a = Assembler::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut a = Assembler::new();
        a.label("x").unwrap();
        assert!(matches!(a.label("x"), Err(AsmError::DuplicateLabel(_))));
    }

    #[test]
    fn bad_register_rejected() {
        let mut a = Assembler::new();
        a.add(32, 0, 0);
        a.halt();
        assert_eq!(a.assemble(), Err(AsmError::BadRegister(32)));
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Assembler::new().assemble(), Err(AsmError::Empty));
    }

    #[test]
    fn li_small_and_large() {
        let mut a = Assembler::new();
        a.li(1, 42);
        a.li(2, 0x1234_5678);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.insts()[0], Inst::Addi(1, 0, 42));
        assert_eq!(p.insts()[1], Inst::Lui(2, 0x1234));
        assert_eq!(p.insts()[2], Inst::Ori(2, 2, 0x5678));
    }

    #[test]
    fn pc_mapping() {
        let mut a = Assembler::new();
        a.nop().nop().halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.pc_of(0), TEXT_BASE);
        assert_eq!(p.pc_of(2), TEXT_BASE + 8);
    }
}
