//! The mini-PISA instruction set.
//!
//! A register-register RISC with PISA's flavour: 32 general registers
//! (`r0` hardwired to zero), word-addressed code at [`TEXT_BASE`], and the
//! operation classes ReSim's functional-unit mix distinguishes (ALU,
//! multiply, divide, memory, control flow).

/// Base address of the text (code) segment, PISA-style.
pub const TEXT_BASE: u32 = 0x0040_0000;

/// One mini-PISA instruction.
///
/// Register operands are architectural indices 0–31. Immediate fields are
/// sign-extended 16-bit values unless noted. Branch/jump targets are
/// instruction indices resolved by the assembler (absolute word addresses
/// in the text segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    // --- ALU register-register (1-cycle class) ---
    /// `rd = rs + rt` (wrapping).
    Add(u8, u8, u8),
    /// `rd = rs - rt` (wrapping).
    Sub(u8, u8, u8),
    /// `rd = rs & rt`.
    And(u8, u8, u8),
    /// `rd = rs | rt`.
    Or(u8, u8, u8),
    /// `rd = rs ^ rt`.
    Xor(u8, u8, u8),
    /// `rd = (rs as i32) < (rt as i32)`.
    Slt(u8, u8, u8),
    /// `rd = rs << (rt & 31)`.
    Sllv(u8, u8, u8),
    /// `rd = rs >> (rt & 31)` (logical).
    Srlv(u8, u8, u8),

    // --- ALU immediate (1-cycle class) ---
    /// `rd = rs + imm` (sign-extended, wrapping).
    Addi(u8, u8, i16),
    /// `rd = rs & imm` (zero-extended).
    Andi(u8, u8, u16),
    /// `rd = rs | imm` (zero-extended).
    Ori(u8, u8, u16),
    /// `rd = rs ^ imm` (zero-extended).
    Xori(u8, u8, u16),
    /// `rd = (rs as i32) < imm`.
    Slti(u8, u8, i16),
    /// `rd = rs << shamt`.
    Slli(u8, u8, u8),
    /// `rd = rs >> shamt` (logical).
    Srli(u8, u8, u8),
    /// `rd = rs >> shamt` (arithmetic).
    Srai(u8, u8, u8),
    /// `rd = imm << 16`.
    Lui(u8, u16),

    // --- Long-latency arithmetic ---
    /// `rd = rs * rt` (low 32 bits; multiplier class, 3-cycle default).
    Mult(u8, u8, u8),
    /// `rd = rs / rt` signed (divider class, 10-cycle default; x/0 = 0).
    Div(u8, u8, u8),
    /// `rd = rs % rt` signed (divider class; x%0 = x).
    Rem(u8, u8, u8),

    // --- Memory ---
    /// `rt = mem32[rs + imm]`.
    Lw(u8, u8, i16),
    /// `rt = sign_extend(mem8[rs + imm])`.
    Lb(u8, u8, i16),
    /// `rt = zero_extend(mem8[rs + imm])`.
    Lbu(u8, u8, i16),
    /// `rt = sign_extend(mem16[rs + imm])`.
    Lh(u8, u8, i16),
    /// `mem32[rs + imm] = rt`.
    Sw(u8, u8, i16),
    /// `mem8[rs + imm] = rt & 0xFF`.
    Sb(u8, u8, i16),
    /// `mem16[rs + imm] = rt & 0xFFFF`.
    Sh(u8, u8, i16),

    // --- Control flow (targets are instruction indices) ---
    /// Branch if `rs == rt`.
    Beq(u8, u8, u32),
    /// Branch if `rs != rt`.
    Bne(u8, u8, u32),
    /// Branch if `(rs as i32) < (rt as i32)`.
    Blt(u8, u8, u32),
    /// Branch if `(rs as i32) >= (rt as i32)`.
    Bge(u8, u8, u32),
    /// Unconditional jump.
    J(u32),
    /// Call: `r31 = return address; pc = target`.
    Jal(u32),
    /// Jump through register (a return when `rs == 31`).
    Jr(u8),
    /// Indirect call: `rd = return address; pc = rs`.
    Jalr(u8, u8),

    // --- Misc ---
    /// No operation.
    Nop,
    /// Stop execution.
    Halt,
}

impl Inst {
    /// Whether this instruction ends a program path.
    pub fn is_halt(&self) -> bool {
        matches!(self, Inst::Halt)
    }

    /// Whether this instruction is a control-flow transfer.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Beq(..)
                | Inst::Bne(..)
                | Inst::Blt(..)
                | Inst::Bge(..)
                | Inst::J(..)
                | Inst::Jal(..)
                | Inst::Jr(..)
                | Inst::Jalr(..)
        )
    }

    /// Whether this instruction reads or writes memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Inst::Lw(..)
                | Inst::Lb(..)
                | Inst::Lbu(..)
                | Inst::Lh(..)
                | Inst::Sw(..)
                | Inst::Sb(..)
                | Inst::Sh(..)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Inst::Beq(1, 2, 0).is_control());
        assert!(Inst::Jal(0).is_control());
        assert!(!Inst::Add(1, 2, 3).is_control());
        assert!(Inst::Lw(1, 2, 0).is_mem());
        assert!(Inst::Sb(1, 2, 0).is_mem());
        assert!(!Inst::Mult(1, 2, 3).is_mem());
        assert!(Inst::Halt.is_halt());
        assert!(!Inst::Nop.is_halt());
    }
}
