//! # resim-isa
//!
//! A from-scratch mini-PISA instruction set, assembler and functional
//! simulator: the trace-producing substrate for ReSim
//! (Fytraki & Pnevmatikatos, DATE 2009).
//!
//! The paper generates traces with a modified SimpleScalar functional
//! simulator (`sim-bpred`) running SPEC binaries. We do not have
//! SimpleScalar or SPEC, so this crate provides the closest synthetic
//! equivalent: a small PISA-flavoured RISC (32 general registers, ALU /
//! multiply / divide, loads/stores, branches and calls), an
//! [`Assembler`] with labels, and a [`FunctionalSimulator`] that executes
//! programs and emits the *pre-decoded dynamic instruction stream*
//! ([`resim_trace::TraceRecord`]s on the correct path) that the trace
//! generator consumes. Because ReSim is trace-driven and almost
//! ISA-independent (§V.A), any ISA that projects onto the B/M/O record
//! formats exercises the same engine paths.
//!
//! A library of [`programs`] (sorting, matrix multiply, recursive calls,
//! string search, CRC, sieve) provides real — if small — workloads for
//! end-to-end tests and the quickstart example; the large calibrated
//! SPECINT-like workloads live in `resim-workloads`.
//!
//! ## Example
//!
//! ```
//! use resim_isa::{programs, FunctionalSimulator};
//!
//! let program = programs::fibonacci(10);
//! let mut sim = FunctionalSimulator::new(&program);
//! let stream = sim.run(100_000).expect("program halts");
//! assert!(stream.len() > 50);
//! assert_eq!(sim.reg(2), 55); // fib(10) left in r2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod inst;
pub mod programs;
mod sim;

pub use asm::{AsmError, Assembler, Program};
pub use inst::{Inst, TEXT_BASE};
pub use sim::{ExecError, FunctionalSimulator, RA, SP};
