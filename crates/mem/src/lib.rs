//! # resim-mem
//!
//! Tag-only cache and memory-system timing models for ReSim
//! (Fytraki & Pnevmatikatos, DATE 2009).
//!
//! ReSim is trace-driven and "does not store the actual data, \[it\] need\[s\]
//! to provide only the hit/miss indication and simulate the access latency"
//! (§V, Table 4 discussion) — so these models keep tags and replacement
//! state only, never data.
//!
//! The paper evaluates two memory configurations (§V.C):
//!
//! * a **perfect memory system** — every access hits in one cycle
//!   ([`MemorySystemConfig::Perfect`], Table 1 left / Table 3);
//! * **32 KByte L1 instruction and data caches** with associativity 8 and
//!   64-byte blocks, matching FAST's L1 for the head-to-head comparison
//!   ([`CacheConfig::l1_32k`], Table 1 right).
//!
//! ## Example
//!
//! ```
//! use resim_mem::{CacheConfig, MemorySystem, MemorySystemConfig};
//!
//! let mut mem = MemorySystem::new(MemorySystemConfig::l1_32k());
//! let first = mem.data_access(0x8000, false);   // cold miss
//! let second = mem.data_access(0x8000, false);  // hit
//! assert!(first.latency > second.latency);
//! assert!(second.hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod from_table;
mod system;

pub use cache::{
    AccessResult, Cache, CacheConfig, CacheState, CacheStats, LineState, Replacement, StateError,
};
pub use system::{MemoryState, MemorySystem, MemorySystemConfig, MemorySystemStats};
