//! Tag-only set-associative cache.

use std::error::Error;
use std::fmt;

/// Replacement policy for a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Least-recently-used (the paper's structures are LRU-managed).
    #[default]
    Lru,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random (deterministic xorshift, so simulations stay
    /// reproducible).
    Random,
}

/// Cache geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size_bytes: usize,
    /// Block (line) size in bytes (power of two).
    pub block_bytes: usize,
    /// Ways per set (power of two).
    pub associativity: usize,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Latency of a hit, in simulated cycles (≥ 1).
    pub hit_latency: u32,
    /// Additional latency of a miss (time to fill from the next level).
    pub miss_penalty: u32,
}

impl CacheConfig {
    /// The paper's Table 1 (right) configuration: 32 KB, 8-way, 64 B
    /// blocks — the same L1 geometry FAST reports.
    ///
    /// The miss penalty is not stated in the paper; 20 cycles is the
    /// conventional SimpleScalar L1-to-memory fill time and is documented
    /// as a substitution in DESIGN.md.
    pub fn l1_32k() -> Self {
        Self {
            size_bytes: 32 * 1024,
            block_bytes: 64,
            associativity: 8,
            replacement: Replacement::Lru,
            hit_latency: 1,
            miss_penalty: 20,
        }
    }

    /// The two-way variant mentioned in the paper's §V.C prose.
    pub fn l1_32k_two_way() -> Self {
        Self {
            associativity: 2,
            ..Self::l1_32k()
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / self.block_bytes / self.associativity
    }

    fn validate(&self) {
        assert!(
            self.size_bytes.is_power_of_two(),
            "cache size must be a power of two, got {}",
            self.size_bytes
        );
        assert!(
            self.block_bytes.is_power_of_two() && self.block_bytes >= 4,
            "block size must be a power of two >= 4, got {}",
            self.block_bytes
        );
        assert!(
            self.associativity.is_power_of_two(),
            "associativity must be a power of two, got {}",
            self.associativity
        );
        assert!(
            self.size_bytes >= self.block_bytes * self.associativity,
            "cache of {} bytes cannot hold {} ways of {}-byte blocks",
            self.size_bytes,
            self.associativity,
            self.block_bytes
        );
        assert!(self.hit_latency >= 1, "hit latency must be at least 1");
    }
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Total access latency in simulated cycles.
    pub latency: u32,
}

/// 64-bit cache statistics (paper §V.B).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Field-wise sum of two counter sets — composes the statistics of
    /// windowed runs.
    pub fn merge(&self, other: &CacheStats) -> CacheStats {
        CacheStats {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            read_hits: self.read_hits + other.read_hits,
            write_hits: self.write_hits + other.write_hits,
            evictions: self.evictions + other.evictions,
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Hit rate over all accesses (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }
}

/// A tag-only set-associative cache with configurable replacement.
///
/// The tag array is stored as flat, set-major **lanes** (tags, ranks,
/// valid bits) rather than per-set line structs: the tag-match probe and
/// the LRU touch — the two hottest memory-system operations in the
/// simulator — then run over packed arrays with mask arithmetic instead
/// of striding over structs and branching per way.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Block tags, line-indexed (`set * associativity + way`).
    tags: Box<[u32]>,
    /// Replacement ranks (LRU: 0 = MRU; FIFO: insertion order).
    ranks: Box<[u32]>,
    /// Valid bits.
    valid: Box<[bool]>,
    stats: CacheStats,
    fifo_counter: u32,
    rng_state: u64,
    /// `log2(block_bytes)` — address → block number.
    block_shift: u32,
    /// `sets - 1` — block number → set index (sets are a power of two).
    set_mask: u32,
    /// `log2(sets)` — block number → tag.
    tag_shift: u32,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (see [`CacheConfig`] field docs).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        let lines = config.sets() * config.associativity;
        Self {
            config,
            tags: vec![0; lines].into_boxed_slice(),
            ranks: vec![0; lines].into_boxed_slice(),
            valid: vec![false; lines].into_boxed_slice(),
            stats: CacheStats::default(),
            fifo_counter: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            block_shift: config.block_bytes.trailing_zeros(),
            set_mask: config.sets() as u32 - 1,
            tag_shift: config.sets().trailing_zeros(),
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u32) -> (usize, u32) {
        let block = addr >> self.block_shift;
        ((block & self.set_mask) as usize, block >> self.tag_shift)
    }

    /// The line index of `tag` in set `set_idx`, or `None` — the
    /// branchless tag-match probe. A set holds at most one copy of a
    /// tag, so a mask-select over the ways loses nothing to match order.
    #[inline]
    fn probe(&self, set_idx: usize, tag: u32) -> Option<usize> {
        let base = set_idx * self.config.associativity;
        let mut found = usize::MAX;
        for idx in base..base + self.config.associativity {
            let hit = (self.valid[idx] & (self.tags[idx] == tag)) as usize;
            // found = hit ? idx : found, as a mask select (no branch).
            found ^= (found ^ idx) & hit.wrapping_neg();
        }
        (found != usize::MAX).then_some(found)
    }

    /// Performs one access; allocates on miss (write-allocate).
    ///
    /// Returns the hit/miss indication and the access latency — exactly
    /// what ReSim's tag-only hardware caches provide.
    pub fn access(&mut self, addr: u32, is_write: bool) -> AccessResult {
        let (set_idx, tag) = self.set_and_tag(addr);
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        match self.probe(set_idx, tag) {
            Some(line) => {
                if is_write {
                    self.stats.write_hits += 1;
                } else {
                    self.stats.read_hits += 1;
                }
                if self.config.replacement == Replacement::Lru {
                    self.touch_lru(set_idx, line);
                }
                AccessResult {
                    hit: true,
                    latency: self.config.hit_latency,
                }
            }
            None => {
                if self.fill(set_idx, tag) {
                    self.stats.evictions += 1;
                }
                AccessResult {
                    hit: false,
                    latency: self.config.hit_latency + self.config.miss_penalty,
                }
            }
        }
    }

    /// Performs the tag-array and replacement-state effects of one access
    /// without touching any statistics counter or computing a latency —
    /// the functional-warmup entry point of sampled simulation: between
    /// detailed windows the warmer keeps the tag arrays current so a
    /// resumed window sees realistic hit rates instead of cold misses.
    pub fn warm(&mut self, addr: u32) {
        let (set_idx, tag) = self.set_and_tag(addr);
        match self.probe(set_idx, tag) {
            Some(line) => {
                if self.config.replacement == Replacement::Lru {
                    self.touch_lru(set_idx, line);
                }
            }
            None => {
                self.fill(set_idx, tag);
            }
        }
    }

    /// Whether `addr`'s block is currently resident (no state change).
    pub fn contains(&self, addr: u32) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.probe(set_idx, tag).is_some()
    }

    /// Fills `tag` into `set_idx`, returning whether a valid line was
    /// evicted (the caller decides whether that counts as a statistic).
    ///
    /// Victim selection reproduces the historical per-set scan exactly:
    /// first invalid way, else last-maximal rank for LRU (ranks are a
    /// permutation, so "last maximal" is simply *the* maximum), first
    /// minimal for FIFO, xorshift64* for Random.
    fn fill(&mut self, set_idx: usize, tag: u32) -> bool {
        let assoc = self.config.associativity;
        let base = set_idx * assoc;
        let mut evicted = false;
        let victim = {
            let set_valid = &self.valid[base..base + assoc];
            if let Some(way) = set_valid.iter().position(|v| !v) {
                way
            } else {
                evicted = true;
                let ranks = &self.ranks[base..base + assoc];
                match self.config.replacement {
                    Replacement::Lru => {
                        let mut best = 0;
                        for (w, &r) in ranks.iter().enumerate() {
                            if r >= ranks[best] {
                                best = w;
                            }
                        }
                        best
                    }
                    Replacement::Fifo => {
                        let mut best = 0;
                        for (w, &r) in ranks.iter().enumerate() {
                            if r < ranks[best] {
                                best = w;
                            }
                        }
                        best
                    }
                    Replacement::Random => {
                        // xorshift64*: deterministic but well mixed.
                        self.rng_state ^= self.rng_state << 13;
                        self.rng_state ^= self.rng_state >> 7;
                        self.rng_state ^= self.rng_state << 17;
                        (self.rng_state as usize) % assoc
                    }
                }
            }
        };
        let rank = match self.config.replacement {
            Replacement::Fifo => {
                self.fifo_counter = self.fifo_counter.wrapping_add(1);
                self.fifo_counter
            }
            _ => 0,
        };
        self.tags[base + victim] = tag;
        self.ranks[base + victim] = rank;
        self.valid[base + victim] = true;
        if self.config.replacement == Replacement::Lru {
            // A freshly filled line must age every other resident line.
            self.promote(set_idx, victim, u32::MAX);
        }
        evicted
    }

    /// Captures the tag/replacement state (statistics excluded — they
    /// describe a measurement window, not the machine state).
    pub fn state(&self) -> CacheState {
        CacheState {
            lines: (0..self.tags.len())
                .map(|i| LineState {
                    tag: self.tags[i],
                    rank: self.ranks[i],
                    valid: self.valid[i],
                })
                .collect(),
            fifo_counter: self.fifo_counter,
            rng_state: self.rng_state,
        }
    }

    /// Restores state captured from a cache of the same geometry.
    /// Statistics counters are left untouched.
    ///
    /// # Errors
    ///
    /// [`StateError`] if the snapshot's line count differs.
    pub fn restore_state(&mut self, state: &CacheState) -> Result<(), StateError> {
        let lines = self.config.sets() * self.config.associativity;
        if state.lines.len() != lines {
            return Err(StateError {
                what: "cache lines",
                expected: lines,
                got: state.lines.len(),
            });
        }
        for (i, snap) in state.lines.iter().enumerate() {
            self.tags[i] = snap.tag;
            self.ranks[i] = snap.rank;
            self.valid[i] = snap.valid;
        }
        self.fifo_counter = state.fifo_counter;
        self.rng_state = state.rng_state;
        Ok(())
    }

    fn touch_lru(&mut self, set_idx: usize, line: usize) {
        let old = self.ranks[line];
        self.promote(set_idx, line - set_idx * self.config.associativity, old);
    }

    /// Makes `way` the MRU line, aging every valid line younger than
    /// `old` — as straight-line bool arithmetic over the rank lane (an
    /// LRU touch happens on every cache hit, so this loop must not
    /// branch per way).
    fn promote(&mut self, set_idx: usize, way: usize, old: u32) {
        let base = set_idx * self.config.associativity;
        for idx in base..base + self.config.associativity {
            self.ranks[idx] += (self.valid[idx] & (self.ranks[idx] < old)) as u32;
        }
        self.ranks[base + way] = 0;
    }
}

/// One cache line's snapshot (see [`Cache::state`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineState {
    /// Block tag.
    pub tag: u32,
    /// Replacement rank (LRU: 0 = MRU; FIFO: insertion order).
    pub rank: u32,
    /// Whether the line holds a block.
    pub valid: bool,
}

/// Plain-data snapshot of a cache's tag array and replacement state,
/// set-major (all ways of set 0, then set 1, ...).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheState {
    /// `sets × associativity` line snapshots.
    pub lines: Vec<LineState>,
    /// FIFO insertion counter.
    pub fifo_counter: u32,
    /// Deterministic replacement-RNG state.
    pub rng_state: u64,
}

/// A snapshot cannot be restored into a cache of different geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateError {
    /// Which structure mismatched.
    pub what: &'static str,
    /// The size the live structure expects.
    pub expected: usize,
    /// The size the snapshot carries.
    pub got: usize,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot restore {}: geometry expects {}, snapshot has {}",
            self.what, self.expected, self.got
        )
    }
}

impl Error for StateError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: usize, replacement: Replacement) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 256,
            block_bytes: 32,
            associativity: assoc,
            replacement,
            hit_latency: 1,
            miss_penalty: 10,
        })
    }

    #[test]
    fn geometry_of_paper_l1() {
        let c = CacheConfig::l1_32k();
        assert_eq!(c.sets(), 32 * 1024 / 64 / 8); // 64 sets
        assert_eq!(CacheConfig::l1_32k_two_way().sets(), 256);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(2, Replacement::Lru);
        let a = c.access(0x100, false);
        assert!(!a.hit);
        assert_eq!(a.latency, 11);
        let b = c.access(0x100, false);
        assert!(b.hit);
        assert_eq!(b.latency, 1);
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn same_block_different_offset_hits() {
        let mut c = tiny(2, Replacement::Lru);
        c.access(0x100, false);
        assert!(c.access(0x11F, true).hit, "0x11F shares the 32-byte block");
        assert_eq!(c.stats().write_hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 4 sets, 2 ways of 32 B. Set stride is 128 B.
        let mut c = tiny(2, Replacement::Lru);
        c.access(0x000, false); // set 0
        c.access(0x080, false); // set 0 (0x80 = 128)
        c.access(0x000, false); // touch: 0x080 is now LRU
        c.access(0x100, false); // set 0 -> evicts 0x080
        assert!(c.contains(0x000));
        assert!(!c.contains(0x080));
        assert!(c.contains(0x100));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn fifo_evicts_oldest_despite_touches() {
        let mut c = tiny(2, Replacement::Fifo);
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch does not help under FIFO
        c.access(0x100, false); // evicts 0x000 (oldest insertion)
        assert!(!c.contains(0x000));
        assert!(c.contains(0x080));
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let run = || {
            let mut c = tiny(2, Replacement::Random);
            for i in 0..64u32 {
                c.access(i * 32, false);
            }
            c.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn working_set_within_capacity_never_misses_after_warmup() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        // 16 KB working set in a 32 KB cache.
        for round in 0..4 {
            for addr in (0..16 * 1024u32).step_by(64) {
                let r = c.access(addr, false);
                if round > 0 {
                    assert!(r.hit, "warm access to {addr:#x} must hit");
                }
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        // 64 KB streaming working set in a 32 KB LRU cache: every access
        // in every round misses (classic LRU streaming pathology).
        for _ in 0..3 {
            for addr in (0..64 * 1024u32).step_by(64) {
                c.access(addr, false);
            }
        }
        assert!(c.stats().hit_rate() < 0.01);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 3000,
            block_bytes: 64,
            associativity: 2,
            replacement: Replacement::Lru,
            hit_latency: 1,
            miss_penalty: 10,
        });
    }

    #[test]
    fn warm_leaves_same_tags_as_access_without_stats() {
        for repl in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
            let mut accessed = tiny(2, repl);
            let mut warmed = tiny(2, repl);
            // A mixing stream with reuse, conflict and eviction.
            let addrs: Vec<u32> = (0..200u32).map(|i| (i * 37) % 0x400).collect();
            for &a in &addrs {
                accessed.access(a, a % 3 == 0);
                warmed.warm(a);
            }
            assert_eq!(accessed.state(), warmed.state(), "{repl:?}");
            assert_eq!(warmed.stats(), CacheStats::default(), "warm is stats-silent");
            assert!(accessed.stats().accesses() > 0);
        }
    }

    #[test]
    fn state_roundtrip_restores_future_behaviour() {
        let mut warm = tiny(2, Replacement::Lru);
        for i in 0..50u32 {
            warm.warm(i * 64);
        }
        let snap = warm.state();
        let mut restored = tiny(2, Replacement::Lru);
        restored.restore_state(&snap).unwrap();
        assert_eq!(restored.state(), snap);
        for i in 0..50u32 {
            let a = warm.access(i * 48, false);
            let b = restored.access(i * 48, false);
            assert_eq!(a, b, "restored cache must hit/miss identically");
        }
    }

    #[test]
    fn restore_rejects_geometry_mismatch() {
        let snap = tiny(1, Replacement::Lru).state();
        let mut other = Cache::new(CacheConfig::l1_32k());
        let err = other.restore_state(&snap).unwrap_err();
        assert_eq!(err.what, "cache lines");
    }

    #[test]
    fn cache_stats_merge_adds() {
        let a = CacheStats {
            reads: 5,
            writes: 2,
            read_hits: 3,
            write_hits: 1,
            evictions: 1,
        };
        let m = a.merge(&a);
        assert_eq!(m.accesses(), 14);
        assert_eq!(m.hits(), 8);
        assert_eq!(m.evictions, 2);
        assert_eq!(a.merge(&CacheStats::default()), a);
    }

    #[test]
    fn stats_conservation() {
        let mut c = tiny(1, Replacement::Lru);
        for i in 0..100u32 {
            c.access(i * 8, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 100);
        assert_eq!(s.hits() + s.misses(), 100);
    }
}
