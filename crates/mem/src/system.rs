//! The memory system seen by the engine: perfect, or split L1 I/D caches.

use crate::cache::{AccessResult, Cache, CacheConfig, CacheStats};

/// Memory-system selection (paper §V.C evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySystemConfig {
    /// Every access hits with the given latency (≥ 1).
    Perfect {
        /// Uniform access latency in cycles.
        latency: u32,
    },
    /// Split level-1 instruction and data caches.
    Split {
        /// Instruction cache geometry.
        l1i: CacheConfig,
        /// Data cache geometry.
        l1d: CacheConfig,
    },
}

impl MemorySystemConfig {
    /// The paper's perfect memory system (single-cycle).
    pub fn perfect() -> Self {
        MemorySystemConfig::Perfect { latency: 1 }
    }

    /// The paper's Table 1 (right) 32 KB 8-way 64 B L1 I+D configuration.
    pub fn l1_32k() -> Self {
        MemorySystemConfig::Split {
            l1i: CacheConfig::l1_32k(),
            l1d: CacheConfig::l1_32k(),
        }
    }

    /// Whether this is the perfect system.
    pub fn is_perfect(&self) -> bool {
        matches!(self, MemorySystemConfig::Perfect { .. })
    }
}

impl Default for MemorySystemConfig {
    fn default() -> Self {
        Self::perfect()
    }
}

/// Combined statistics for the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemorySystemStats {
    /// Instruction-side cache statistics (zero for perfect memory).
    pub l1i: CacheStats,
    /// Data-side cache statistics (zero for perfect memory).
    pub l1d: CacheStats,
    /// Instruction accesses under a perfect system.
    pub perfect_inst_accesses: u64,
    /// Data accesses under a perfect system.
    pub perfect_data_accesses: u64,
}

/// The memory hierarchy the timing engine consults.
///
/// `inst_access` models Fetch's I-cache probe; `data_access` models load
/// issue and store commit on the D-cache (§III: "During Fetch Instruction
/// Cache is also accessed", loads allocate a read port at Issue, stores
/// release to memory at Commit "if a memory write port is available").
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemorySystemConfig,
    l1i: Option<Cache>,
    l1d: Option<Cache>,
    perfect_latency: u32,
    perfect_inst: u64,
    perfect_data: u64,
}

impl MemorySystem {
    /// Builds the memory system described by `config`.
    pub fn new(config: MemorySystemConfig) -> Self {
        match config {
            MemorySystemConfig::Perfect { latency } => {
                assert!(latency >= 1, "perfect-memory latency must be at least 1");
                Self {
                    config,
                    l1i: None,
                    l1d: None,
                    perfect_latency: latency,
                    perfect_inst: 0,
                    perfect_data: 0,
                }
            }
            MemorySystemConfig::Split { l1i, l1d } => Self {
                config,
                l1i: Some(Cache::new(l1i)),
                l1d: Some(Cache::new(l1d)),
                perfect_latency: 1,
                perfect_inst: 0,
                perfect_data: 0,
            },
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> MemorySystemConfig {
        self.config
    }

    /// Instruction fetch probe at `pc`.
    pub fn inst_access(&mut self, pc: u32) -> AccessResult {
        match &mut self.l1i {
            Some(c) => c.access(pc, false),
            None => {
                self.perfect_inst += 1;
                AccessResult {
                    hit: true,
                    latency: self.perfect_latency,
                }
            }
        }
    }

    /// Data access at `addr` (`write = true` for stores).
    pub fn data_access(&mut self, addr: u32, write: bool) -> AccessResult {
        match &mut self.l1d {
            Some(c) => c.access(addr, write),
            None => {
                self.perfect_data += 1;
                AccessResult {
                    hit: true,
                    latency: self.perfect_latency,
                }
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemorySystemStats {
        MemorySystemStats {
            l1i: self.l1i.as_ref().map(|c| c.stats()).unwrap_or_default(),
            l1d: self.l1d.as_ref().map(|c| c.stats()).unwrap_or_default(),
            perfect_inst_accesses: self.perfect_inst,
            perfect_data_accesses: self.perfect_data,
        }
    }
}

impl Default for MemorySystem {
    fn default() -> Self {
        Self::new(MemorySystemConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_always_hits_in_one_cycle() {
        let mut m = MemorySystem::new(MemorySystemConfig::perfect());
        for i in 0..1000u32 {
            let r = m.data_access(i * 4096, i % 2 == 0);
            assert!(r.hit);
            assert_eq!(r.latency, 1);
        }
        assert_eq!(m.stats().perfect_data_accesses, 1000);
        assert_eq!(m.stats().l1d.accesses(), 0);
    }

    #[test]
    fn split_caches_are_independent() {
        let mut m = MemorySystem::new(MemorySystemConfig::l1_32k());
        // Touch the same address as both instruction and data: the two
        // caches must miss independently.
        assert!(!m.inst_access(0x4000).hit);
        assert!(!m.data_access(0x4000, false).hit);
        assert!(m.inst_access(0x4000).hit);
        assert!(m.data_access(0x4000, false).hit);
        let s = m.stats();
        assert_eq!(s.l1i.accesses(), 2);
        assert_eq!(s.l1d.accesses(), 2);
    }

    #[test]
    fn tight_loop_instruction_stream_hits() {
        let mut m = MemorySystem::new(MemorySystemConfig::l1_32k());
        // A 256-byte loop body: after the first iteration everything hits.
        for round in 0..10 {
            for pc in (0x1000u32..0x1100).step_by(4) {
                let r = m.inst_access(pc);
                if round > 0 {
                    assert!(r.hit);
                }
            }
        }
        assert!(m.stats().l1i.hit_rate() > 0.98);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_latency_perfect_panics() {
        let _ = MemorySystem::new(MemorySystemConfig::Perfect { latency: 0 });
    }
}
