//! The memory system seen by the engine: perfect, or split L1 I/D caches.

use crate::cache::{AccessResult, Cache, CacheConfig, CacheState, CacheStats, StateError};
use resim_trace::TraceRecord;

/// Memory-system selection (paper §V.C evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySystemConfig {
    /// Every access hits with the given latency (≥ 1).
    Perfect {
        /// Uniform access latency in cycles.
        latency: u32,
    },
    /// Split level-1 instruction and data caches.
    Split {
        /// Instruction cache geometry.
        l1i: CacheConfig,
        /// Data cache geometry.
        l1d: CacheConfig,
    },
}

impl MemorySystemConfig {
    /// The paper's perfect memory system (single-cycle).
    pub fn perfect() -> Self {
        MemorySystemConfig::Perfect { latency: 1 }
    }

    /// The paper's Table 1 (right) 32 KB 8-way 64 B L1 I+D configuration.
    pub fn l1_32k() -> Self {
        MemorySystemConfig::Split {
            l1i: CacheConfig::l1_32k(),
            l1d: CacheConfig::l1_32k(),
        }
    }

    /// Whether this is the perfect system.
    pub fn is_perfect(&self) -> bool {
        matches!(self, MemorySystemConfig::Perfect { .. })
    }
}

impl Default for MemorySystemConfig {
    fn default() -> Self {
        Self::perfect()
    }
}

/// Plain-data snapshot of the warm memory-system state (tag arrays and
/// replacement state of both caches; `None` sides for perfect memory).
/// Statistics are excluded — see [`Cache::state`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryState {
    /// Instruction-cache state (absent for perfect memory).
    pub l1i: Option<CacheState>,
    /// Data-cache state (absent for perfect memory).
    pub l1d: Option<CacheState>,
}

/// Combined statistics for the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemorySystemStats {
    /// Instruction-side cache statistics (zero for perfect memory).
    pub l1i: CacheStats,
    /// Data-side cache statistics (zero for perfect memory).
    pub l1d: CacheStats,
    /// Instruction accesses under a perfect system.
    pub perfect_inst_accesses: u64,
    /// Data accesses under a perfect system.
    pub perfect_data_accesses: u64,
}

impl MemorySystemStats {
    /// Field-wise sum of two counter sets — composes the statistics of
    /// windowed runs.
    pub fn merge(&self, other: &MemorySystemStats) -> MemorySystemStats {
        MemorySystemStats {
            l1i: self.l1i.merge(&other.l1i),
            l1d: self.l1d.merge(&other.l1d),
            perfect_inst_accesses: self.perfect_inst_accesses + other.perfect_inst_accesses,
            perfect_data_accesses: self.perfect_data_accesses + other.perfect_data_accesses,
        }
    }
}

/// The memory hierarchy the timing engine consults.
///
/// `inst_access` models Fetch's I-cache probe; `data_access` models load
/// issue and store commit on the D-cache (§III: "During Fetch Instruction
/// Cache is also accessed", loads allocate a read port at Issue, stores
/// release to memory at Commit "if a memory write port is available").
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemorySystemConfig,
    l1i: Option<Cache>,
    l1d: Option<Cache>,
    perfect_latency: u32,
    perfect_inst: u64,
    perfect_data: u64,
}

impl MemorySystem {
    /// Builds the memory system described by `config`.
    pub fn new(config: MemorySystemConfig) -> Self {
        match config {
            MemorySystemConfig::Perfect { latency } => {
                assert!(latency >= 1, "perfect-memory latency must be at least 1");
                Self {
                    config,
                    l1i: None,
                    l1d: None,
                    perfect_latency: latency,
                    perfect_inst: 0,
                    perfect_data: 0,
                }
            }
            MemorySystemConfig::Split { l1i, l1d } => Self {
                config,
                l1i: Some(Cache::new(l1i)),
                l1d: Some(Cache::new(l1d)),
                perfect_latency: 1,
                perfect_inst: 0,
                perfect_data: 0,
            },
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> MemorySystemConfig {
        self.config
    }

    /// Instruction fetch probe at `pc`.
    pub fn inst_access(&mut self, pc: u32) -> AccessResult {
        match &mut self.l1i {
            Some(c) => c.access(pc, false),
            None => {
                self.perfect_inst += 1;
                AccessResult {
                    hit: true,
                    latency: self.perfect_latency,
                }
            }
        }
    }

    /// Data access at `addr` (`write = true` for stores).
    pub fn data_access(&mut self, addr: u32, write: bool) -> AccessResult {
        match &mut self.l1d {
            Some(c) => c.access(addr, write),
            None => {
                self.perfect_data += 1;
                AccessResult {
                    hit: true,
                    latency: self.perfect_latency,
                }
            }
        }
    }

    /// Applies one trace record's cache-warming effects without touching
    /// any statistics counter or computing latency — the functional-warmup
    /// entry point of sampled simulation.
    ///
    /// Every record warms the I-cache at its fetch PC; memory records
    /// additionally warm the D-cache at their effective address. Perfect
    /// memory keeps no state, so this is a no-op there.
    pub fn warm_record(&mut self, record: &TraceRecord) {
        self.warm_inst(record.pc());
        if let TraceRecord::Mem(m) = record {
            self.warm_data(m.addr);
        }
    }

    /// Warms the instruction cache at `pc` (no statistics, no latency).
    pub fn warm_inst(&mut self, pc: u32) {
        if let Some(c) = &mut self.l1i {
            c.warm(pc);
        }
    }

    /// Warms the data cache at `addr` (no statistics, no latency).
    pub fn warm_data(&mut self, addr: u32) {
        if let Some(c) = &mut self.l1d {
            c.warm(addr);
        }
    }

    /// Captures the warm tag-array state of both caches.
    pub fn state(&self) -> MemoryState {
        MemoryState {
            l1i: self.l1i.as_ref().map(|c| c.state()),
            l1d: self.l1d.as_ref().map(|c| c.state()),
        }
    }

    /// Restores state captured from a memory system of identical
    /// configuration. Statistics counters are left untouched.
    ///
    /// # Errors
    ///
    /// [`StateError`] if the snapshot and this system disagree about the
    /// presence or geometry of either cache.
    pub fn restore_state(&mut self, state: &MemoryState) -> Result<(), StateError> {
        let restore_side = |cache: &mut Option<Cache>,
                            snap: &Option<CacheState>,
                            what: &'static str|
         -> Result<(), StateError> {
            match (cache, snap) {
                (Some(c), Some(s)) => c.restore_state(s),
                (None, None) => Ok(()),
                (Some(c), None) => Err(StateError {
                    what,
                    expected: c.config().sets() * c.config().associativity,
                    got: 0,
                }),
                (None, Some(s)) => Err(StateError {
                    what,
                    expected: 0,
                    got: s.lines.len(),
                }),
            }
        };
        restore_side(&mut self.l1i, &state.l1i, "L1I presence")?;
        restore_side(&mut self.l1d, &state.l1d, "L1D presence")
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemorySystemStats {
        MemorySystemStats {
            l1i: self.l1i.as_ref().map(|c| c.stats()).unwrap_or_default(),
            l1d: self.l1d.as_ref().map(|c| c.stats()).unwrap_or_default(),
            perfect_inst_accesses: self.perfect_inst,
            perfect_data_accesses: self.perfect_data,
        }
    }
}

impl Default for MemorySystem {
    fn default() -> Self {
        Self::new(MemorySystemConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_always_hits_in_one_cycle() {
        let mut m = MemorySystem::new(MemorySystemConfig::perfect());
        for i in 0..1000u32 {
            let r = m.data_access(i * 4096, i % 2 == 0);
            assert!(r.hit);
            assert_eq!(r.latency, 1);
        }
        assert_eq!(m.stats().perfect_data_accesses, 1000);
        assert_eq!(m.stats().l1d.accesses(), 0);
    }

    #[test]
    fn split_caches_are_independent() {
        let mut m = MemorySystem::new(MemorySystemConfig::l1_32k());
        // Touch the same address as both instruction and data: the two
        // caches must miss independently.
        assert!(!m.inst_access(0x4000).hit);
        assert!(!m.data_access(0x4000, false).hit);
        assert!(m.inst_access(0x4000).hit);
        assert!(m.data_access(0x4000, false).hit);
        let s = m.stats();
        assert_eq!(s.l1i.accesses(), 2);
        assert_eq!(s.l1d.accesses(), 2);
    }

    #[test]
    fn tight_loop_instruction_stream_hits() {
        let mut m = MemorySystem::new(MemorySystemConfig::l1_32k());
        // A 256-byte loop body: after the first iteration everything hits.
        for round in 0..10 {
            for pc in (0x1000u32..0x1100).step_by(4) {
                let r = m.inst_access(pc);
                if round > 0 {
                    assert!(r.hit);
                }
            }
        }
        assert!(m.stats().l1i.hit_rate() > 0.98);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_latency_perfect_panics() {
        let _ = MemorySystem::new(MemorySystemConfig::Perfect { latency: 0 });
    }

    #[test]
    fn warm_record_fills_both_sides_silently() {
        use resim_trace::{MemKind, MemRecord, MemSize, TraceRecord};
        let mut m = MemorySystem::new(MemorySystemConfig::l1_32k());
        m.warm_record(&TraceRecord::Mem(MemRecord {
            pc: 0x1000,
            addr: 0x8000,
            size: MemSize::Word,
            kind: MemKind::Load,
            base: None,
            data: None,
            wrong_path: false,
        }));
        assert_eq!(m.stats(), MemorySystemStats::default(), "warm is stats-silent");
        assert!(m.inst_access(0x1000).hit, "I-side was warmed");
        assert!(m.data_access(0x8000, false).hit, "D-side was warmed");
    }

    #[test]
    fn state_roundtrip_between_systems() {
        let mut warm = MemorySystem::new(MemorySystemConfig::l1_32k());
        for i in 0..100u32 {
            warm.warm_inst(0x1000 + i * 64);
            warm.warm_data(0x9000 + i * 32);
        }
        let snap = warm.state();
        let mut restored = MemorySystem::new(MemorySystemConfig::l1_32k());
        restored.restore_state(&snap).unwrap();
        assert_eq!(restored.state(), snap);
        for i in 0..100u32 {
            assert_eq!(
                warm.data_access(0x9000 + i * 48, false),
                restored.data_access(0x9000 + i * 48, false)
            );
        }
    }

    #[test]
    fn perfect_state_is_empty_and_restores() {
        let mut p = MemorySystem::new(MemorySystemConfig::perfect());
        let s = p.state();
        assert_eq!(s, MemoryState::default());
        p.restore_state(&s).unwrap();
        // Mixing perfect and cached states is rejected both ways.
        let cached = MemorySystem::new(MemorySystemConfig::l1_32k()).state();
        assert!(p.restore_state(&cached).is_err());
        let mut c = MemorySystem::new(MemorySystemConfig::l1_32k());
        assert!(c.restore_state(&MemoryState::default()).is_err());
    }

    #[test]
    fn system_stats_merge_adds_both_sides() {
        let mut a = MemorySystem::new(MemorySystemConfig::l1_32k());
        a.inst_access(0x0);
        a.data_access(0x0, true);
        let s = a.stats();
        let m = s.merge(&s);
        assert_eq!(m.l1i.accesses(), 2);
        assert_eq!(m.l1d.writes, 2);
        assert_eq!(s.merge(&MemorySystemStats::default()), s);
    }
}
