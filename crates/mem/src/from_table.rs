//! TOML scenario-file construction of memory-system configurations.
//!
//! Maps an `[engine.memory]` table from a `resim` scenario file onto
//! [`MemorySystemConfig`], with geometry problems reported as
//! line-numbered [`resim_toml::Error`]s instead of panics inside the
//! cache constructors. See `docs/guide.md` for the key reference.

use crate::cache::{CacheConfig, Replacement};
use crate::system::MemorySystemConfig;
use resim_toml::{Error, Table};

impl CacheConfig {
    /// Builds one cache geometry from a scenario-file table
    /// (`[engine.memory.l1i]` / `[engine.memory.l1d]`).
    ///
    /// Keys: `size_bytes`, `block_bytes`, `associativity`,
    /// `replacement` (`"lru"`, `"fifo"` or `"random"`), `hit_latency`,
    /// `miss_penalty`. Omitted keys keep the paper's 32 KB 8-way 64 B
    /// values ([`CacheConfig::l1_32k`]).
    ///
    /// ```
    /// use resim_mem::CacheConfig;
    ///
    /// let t = resim_toml::parse("size_bytes = 16384\nassociativity = 2").unwrap();
    /// let c = CacheConfig::from_table(&t).unwrap();
    /// assert_eq!((c.size_bytes, c.associativity, c.block_bytes), (16384, 2, 64));
    /// ```
    ///
    /// # Errors
    ///
    /// A line-numbered [`Error`] for unknown keys or invalid geometry
    /// (non-power-of-two sizes, blocks under 4 bytes, a capacity that
    /// cannot hold one set, a zero hit latency).
    pub fn from_table(t: &Table) -> Result<Self, Error> {
        t.ensure_only(&[
            "size_bytes",
            "block_bytes",
            "associativity",
            "replacement",
            "hit_latency",
            "miss_penalty",
        ])?;
        let base = CacheConfig::l1_32k();
        let config = CacheConfig {
            size_bytes: t.opt_usize("size_bytes")?.unwrap_or(base.size_bytes),
            block_bytes: t.opt_usize("block_bytes")?.unwrap_or(base.block_bytes),
            associativity: t.opt_usize("associativity")?.unwrap_or(base.associativity),
            replacement: match t.opt_str("replacement")? {
                None => base.replacement,
                Some("lru") => Replacement::Lru,
                Some("fifo") => Replacement::Fifo,
                Some("random") => Replacement::Random,
                Some(other) => {
                    return Err(Error::new(
                        t.key_line("replacement"),
                        format!("unknown replacement policy {other:?} (expected lru, fifo or random)"),
                    ))
                }
            },
            hit_latency: t.opt_u32("hit_latency")?.unwrap_or(base.hit_latency),
            miss_penalty: t.opt_u32("miss_penalty")?.unwrap_or(base.miss_penalty),
        };
        let pow2 = |key: &str, v: usize| -> Result<(), Error> {
            if v == 0 || !v.is_power_of_two() {
                return Err(Error::new(
                    t.key_line(key),
                    format!("key {key:?}: {v} must be a power of two"),
                ));
            }
            Ok(())
        };
        pow2("size_bytes", config.size_bytes)?;
        pow2("block_bytes", config.block_bytes)?;
        pow2("associativity", config.associativity)?;
        if config.block_bytes < 4 {
            return Err(Error::new(
                t.key_line("block_bytes"),
                "block_bytes must be at least 4",
            ));
        }
        if config.size_bytes < config.block_bytes * config.associativity {
            return Err(Error::new(
                t.key_line("size_bytes"),
                format!(
                    "cache of {} bytes cannot hold {} ways of {}-byte blocks",
                    config.size_bytes, config.associativity, config.block_bytes
                ),
            ));
        }
        if config.hit_latency == 0 {
            return Err(Error::new(
                t.key_line("hit_latency"),
                "hit_latency must be at least 1",
            ));
        }
        Ok(config)
    }
}

impl MemorySystemConfig {
    /// Builds a memory system from a scenario-file table
    /// (`[engine.memory]`).
    ///
    /// `kind` selects `"perfect"` (key `latency`, default 1) or
    /// `"split"` (sub-tables `l1i` / `l1d`, each a
    /// [`CacheConfig::from_table`] with the paper's 32 KB geometry as
    /// default). An absent table means perfect single-cycle memory.
    ///
    /// ```
    /// use resim_mem::MemorySystemConfig;
    ///
    /// let t = resim_toml::parse(r#"
    /// kind = "split"
    /// [l1d]
    /// size_bytes = 8192
    /// "#).unwrap();
    /// let m = MemorySystemConfig::from_table(&t).unwrap();
    /// assert!(matches!(m, MemorySystemConfig::Split { l1d, .. } if l1d.size_bytes == 8192));
    /// ```
    ///
    /// # Errors
    ///
    /// A line-numbered [`Error`] for unknown keys, an unknown `kind`,
    /// cache keys under `kind = "perfect"`, or invalid cache geometry.
    pub fn from_table(t: &Table) -> Result<Self, Error> {
        let kind = t.opt_str("kind")?.unwrap_or("perfect");
        match kind {
            "perfect" => {
                t.ensure_only(&["kind", "latency"])?;
                let latency = t.opt_u32("latency")?.unwrap_or(1);
                if latency == 0 {
                    return Err(Error::new(
                        t.key_line("latency"),
                        "latency must be at least 1",
                    ));
                }
                Ok(MemorySystemConfig::Perfect { latency })
            }
            "split" => {
                t.ensure_only(&["kind", "l1i", "l1d"])?;
                let cache = |key: &str| -> Result<CacheConfig, Error> {
                    match t.opt_table(key)? {
                        Some(sub) => CacheConfig::from_table(sub),
                        None => Ok(CacheConfig::l1_32k()),
                    }
                };
                Ok(MemorySystemConfig::Split {
                    l1i: cache("l1i")?,
                    l1d: cache("l1d")?,
                })
            }
            other => Err(Error::new(
                t.key_line("kind"),
                format!("unknown memory kind {other:?} (expected perfect or split)"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<MemorySystemConfig, Error> {
        MemorySystemConfig::from_table(&resim_toml::parse(s).unwrap())
    }

    #[test]
    fn empty_table_is_perfect_single_cycle() {
        assert_eq!(parse("").unwrap(), MemorySystemConfig::perfect());
    }

    #[test]
    fn perfect_with_latency() {
        assert_eq!(
            parse("kind = \"perfect\"\nlatency = 3").unwrap(),
            MemorySystemConfig::Perfect { latency: 3 }
        );
        assert!(parse("latency = 0").unwrap_err().to_string().contains("at least 1"));
    }

    #[test]
    fn split_defaults_to_paper_l1() {
        assert_eq!(parse("kind = \"split\"").unwrap(), MemorySystemConfig::l1_32k());
    }

    #[test]
    fn split_with_custom_geometry() {
        let m = parse(
            "kind = \"split\"\n[l1i]\nsize_bytes = 16384\n[l1d]\nassociativity = 2\nreplacement = \"fifo\"",
        )
        .unwrap();
        let MemorySystemConfig::Split { l1i, l1d } = m else {
            panic!("expected split");
        };
        assert_eq!(l1i.size_bytes, 16384);
        assert_eq!(l1d.associativity, 2);
        assert_eq!(l1d.replacement, Replacement::Fifo);
        assert_eq!(l1d.size_bytes, 32 * 1024, "unset keys keep the paper geometry");
    }

    #[test]
    fn cache_keys_under_perfect_are_rejected() {
        let err = parse("kind = \"perfect\"\n[l1i]\nsize_bytes = 1024").unwrap_err();
        assert!(err.to_string().contains("unknown key"), "{err}");
    }

    #[test]
    fn geometry_errors_carry_lines() {
        let err = parse("kind = \"split\"\n[l1d]\nsize_bytes = 1000").unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("power of two"));
        assert!(parse("kind = \"split\"\n[l1d]\nblock_bytes = 2").is_err());
        assert!(parse("kind = \"split\"\n[l1d]\nhit_latency = 0").is_err());
        assert!(parse("kind = \"split\"\n[l1d]\nsize_bytes = 64\nblock_bytes = 64\nassociativity = 2")
            .unwrap_err()
            .to_string()
            .contains("cannot hold"));
        assert!(parse("kind = \"split\"\n[l1d]\nreplacement = \"plru\"").is_err());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let err = parse("kind = \"numa\"").unwrap_err();
        assert!(err.to_string().contains("numa"));
    }

    #[test]
    fn parsed_configs_instantiate() {
        for s in [
            "",
            "kind = \"split\"",
            "kind = \"split\"\n[l1i]\nsize_bytes = 4096\nassociativity = 1",
        ] {
            let _ = crate::MemorySystem::new(parse(s).unwrap());
        }
    }
}
