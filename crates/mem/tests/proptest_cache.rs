//! Property tests for the tag-only cache model.

use proptest::prelude::*;
use resim_mem::{Cache, CacheConfig, Replacement};
use std::collections::VecDeque;

fn tiny(assoc: usize) -> CacheConfig {
    CacheConfig {
        size_bytes: 512,
        block_bytes: 32,
        associativity: assoc,
        replacement: Replacement::Lru,
        hit_latency: 1,
        miss_penalty: 10,
    }
}

proptest! {
    /// Accesses partition into hits and misses; latency is hit or miss
    /// latency, nothing else.
    #[test]
    fn accounting(addrs in prop::collection::vec((any::<u16>(), any::<bool>()), 1..500)) {
        let mut c = Cache::new(tiny(2));
        for (a, w) in &addrs {
            let r = c.access(u32::from(*a), *w);
            prop_assert!(r.latency == 1 || r.latency == 11);
            prop_assert_eq!(r.hit, r.latency == 1);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert_eq!(s.hits() + s.misses(), s.accesses());
    }

    /// The LRU cache agrees with a per-set reference model (a recency
    /// list of block tags truncated to the associativity).
    #[test]
    fn lru_matches_reference(addrs in prop::collection::vec(any::<u16>(), 1..600)) {
        let cfg = tiny(4);
        let sets = cfg.sets();
        let mut c = Cache::new(cfg);
        let mut model: Vec<VecDeque<u32>> = vec![VecDeque::new(); sets];
        for a in addrs {
            let addr = u32::from(a);
            let block = addr / 32;
            let set = (block as usize) % sets;
            let hit_model = model[set].contains(&block);
            let r = c.access(addr, false);
            prop_assert_eq!(r.hit, hit_model, "addr {:#x}", addr);
            // Update recency.
            model[set].retain(|&b| b != block);
            model[set].push_front(block);
            model[set].truncate(4);
        }
    }
}
