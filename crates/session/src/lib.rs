//! # resim-session
//!
//! **RSSN session records**: one-file record/replay artifacts for the
//! ReSim trace-driven ILP simulator (Fytraki & Pnevmatikatos, DATE
//! 2009).
//!
//! A simulation run is a pure function of its scenario: the engine and
//! trace-generator configurations, the workload name/seed/budget, the
//! optional sampling plan, and (for file-frontend runs) the trace
//! container bytes. A [`SessionRecord`] captures all of those inputs
//! *plus* the run's resulting [`SimStats`] — serialized as the 42-word
//! vector of [`SIM_STATS_FIELDS`] with an FNV-1a digest — in a single
//! versioned little-endian file, so `resim replay` can re-execute the
//! run months later and diff the statistics field for field.
//!
//! ## The RSSN container (version 1)
//!
//! All integers little-endian; strings are UTF-8 with a length prefix.
//!
//! | field                  | size      | notes                                  |
//! |------------------------|-----------|----------------------------------------|
//! | magic                  | 4         | `"RSSN"`                               |
//! | version                | u16       | [`SESSION_VERSION`]                    |
//! | flags                  | u16       | bit 0 sampled, bit 1 embedded trace, bit 2 sweep cell |
//! | trace container version| u16       | wire versions in effect at record time |
//! | trace layout version   | u16       |                                        |
//! | engine fingerprint     | u64       | [`EngineConfig::fingerprint`] result   |
//! | tracegen fingerprint   | u64       | generator fingerprint                  |
//! | seed                   | u64       | workload seed                          |
//! | budget                 | u64       | correct-path instruction budget        |
//! | workload               | u16 + n   | workload name                          |
//! | tool version           | u16 + n   | recording binary's version string      |
//! | cell index             | u64       | only when flag bit 2 set               |
//! | sample plan            | 4×u64 + u8 [+ u64] | only when flag bit 0 set      |
//! | scenario TOML          | u32 + n   | the scenario file text, verbatim       |
//! | embedded trace         | u64 + n   | only when flag bit 1 set: a whole RSTR container |
//! | stats words            | u16 + 42×u64 | [`SimStats::to_words`] order        |
//! | stats digest           | u64       | [`SimStats::digest`], cross-checked on read |
//!
//! The digest makes silent corruption of the statistics impossible;
//! the flags field makes every optional section self-describing; and
//! unknown flag bits are an error, not a skip, so a v1 reader never
//! mis-frames a future file.
//!
//! [`EngineConfig::fingerprint`]: resim_core::EngineConfig::fingerprint

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use resim_core::{SimStats, SIM_STATS_FIELDS};
use resim_sample::{SamplePlan, WarmupMode};
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// The four magic bytes opening every session record.
pub const SESSION_MAGIC: [u8; 4] = *b"RSSN";

/// Newest session-record version this build reads and writes.
pub const SESSION_VERSION: u16 = 1;

/// Flag bit 0: the run was sampled; a serialized plan follows.
const FLAG_SAMPLED: u16 = 1 << 0;
/// Flag bit 1: a whole RSTR trace container is embedded.
const FLAG_EMBEDDED_TRACE: u16 = 1 << 1;
/// Flag bit 2: the run was one sweep-grid cell; its index follows.
const FLAG_CELL: u16 = 1 << 2;
const KNOWN_FLAGS: u16 = FLAG_SAMPLED | FLAG_EMBEDDED_TRACE | FLAG_CELL;

/// Everything nondeterministic about one simulation run, plus its
/// resulting statistics.
///
/// ```
/// use resim_core::SimStats;
/// use resim_session::SessionRecord;
///
/// let rec = SessionRecord {
///     engine_fingerprint: 0xABCD,
///     tracegen_fingerprint: 0x1234,
///     workload: "gzip".to_string(),
///     seed: 7,
///     budget: 2000,
///     scenario_toml: "[workload]\nname = \"gzip\"\n".to_string(),
///     stats: SimStats::default(),
///     ..SessionRecord::default()
/// };
/// let bytes = rec.to_bytes();
/// assert_eq!(SessionRecord::from_bytes(&bytes).unwrap(), rec);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionRecord {
    /// [`EngineConfig::fingerprint`](resim_core::EngineConfig::fingerprint)
    /// of the engine configuration the run used.
    pub engine_fingerprint: u64,
    /// Fingerprint of the trace-generator configuration.
    pub tracegen_fingerprint: u64,
    /// Workload name (one of the SPECINT models or `"generic"`).
    pub workload: String,
    /// Workload seed.
    pub seed: u64,
    /// Correct-path instruction budget.
    pub budget: u64,
    /// Version string of the binary that recorded the session.
    pub tool_version: String,
    /// Trace container version in effect at record time.
    pub trace_container_version: u16,
    /// Trace body layout version the run's trace used.
    pub trace_layout_version: u16,
    /// Sweep-grid cell index, when the run was one cell of a `[sweep]`.
    pub cell_index: Option<u64>,
    /// Sampling plan, when the run was sampled.
    pub sample: Option<SamplePlan>,
    /// The scenario file text, verbatim — replay re-parses it, so the
    /// session is self-contained even if the original file changes.
    pub scenario_toml: String,
    /// A whole RSTR trace container, when the run replayed a file
    /// (rather than regenerating the trace from seeds).
    pub embedded_trace: Option<Vec<u8>>,
    /// The run's resulting statistics.
    pub stats: SimStats,
}

impl SessionRecord {
    /// The flags word this record serializes with.
    pub fn flags(&self) -> u16 {
        let mut f = 0;
        if self.sample.is_some() {
            f |= FLAG_SAMPLED;
        }
        if self.embedded_trace.is_some() {
            f |= FLAG_EMBEDDED_TRACE;
        }
        if self.cell_index.is_some() {
            f |= FLAG_CELL;
        }
        f
    }

    /// Serializes the record.
    ///
    /// # Errors
    ///
    /// Only the writer's own I/O errors.
    pub fn write_to(&self, w: &mut dyn Write) -> io::Result<()> {
        w.write_all(&SESSION_MAGIC)?;
        w.write_all(&SESSION_VERSION.to_le_bytes())?;
        w.write_all(&self.flags().to_le_bytes())?;
        w.write_all(&self.trace_container_version.to_le_bytes())?;
        w.write_all(&self.trace_layout_version.to_le_bytes())?;
        w.write_all(&self.engine_fingerprint.to_le_bytes())?;
        w.write_all(&self.tracegen_fingerprint.to_le_bytes())?;
        w.write_all(&self.seed.to_le_bytes())?;
        w.write_all(&self.budget.to_le_bytes())?;
        write_str16(w, &self.workload)?;
        write_str16(w, &self.tool_version)?;
        if let Some(cell) = self.cell_index {
            w.write_all(&cell.to_le_bytes())?;
        }
        if let Some(plan) = &self.sample {
            w.write_all(&plan.interval_records.to_le_bytes())?;
            w.write_all(&plan.detailed_records.to_le_bytes())?;
            w.write_all(&plan.period.to_le_bytes())?;
            w.write_all(&plan.offset.to_le_bytes())?;
            match plan.warmup {
                WarmupMode::Functional => w.write_all(&[0u8])?,
                WarmupMode::Bounded(n) => {
                    w.write_all(&[1u8])?;
                    w.write_all(&n.to_le_bytes())?;
                }
            }
        }
        let toml = self.scenario_toml.as_bytes();
        w.write_all(&(toml.len() as u32).to_le_bytes())?;
        w.write_all(toml)?;
        if let Some(trace) = &self.embedded_trace {
            w.write_all(&(trace.len() as u64).to_le_bytes())?;
            w.write_all(trace)?;
        }
        let words = self.stats.to_words();
        w.write_all(&(words.len() as u16).to_le_bytes())?;
        for word in &words {
            w.write_all(&word.to_le_bytes())?;
        }
        w.write_all(&self.stats.digest().to_le_bytes())?;
        Ok(())
    }

    /// Serializes to an owned byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        self.write_to(&mut bytes)
            .expect("Vec<u8> writes are infallible");
        bytes
    }

    /// Deserializes and validates a record: magic, version, flags,
    /// stats arity and digest are all checked.
    ///
    /// # Errors
    ///
    /// The first [`SessionError`] found.
    pub fn read_from(r: &mut dyn Read) -> Result<Self, SessionError> {
        let magic: [u8; 4] = read_array(r)?;
        if magic != SESSION_MAGIC {
            return Err(SessionError::BadMagic(magic));
        }
        let version = read_u16(r)?;
        if version == 0 || version > SESSION_VERSION {
            return Err(SessionError::UnsupportedVersion {
                found: version,
                newest_supported: SESSION_VERSION,
            });
        }
        let flags = read_u16(r)?;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(SessionError::UnknownFlags(flags & !KNOWN_FLAGS));
        }
        let trace_container_version = read_u16(r)?;
        let trace_layout_version = read_u16(r)?;
        let engine_fingerprint = read_u64(r)?;
        let tracegen_fingerprint = read_u64(r)?;
        let seed = read_u64(r)?;
        let budget = read_u64(r)?;
        let workload = read_str16(r)?;
        let tool_version = read_str16(r)?;
        let cell_index = if flags & FLAG_CELL != 0 {
            Some(read_u64(r)?)
        } else {
            None
        };
        let sample = if flags & FLAG_SAMPLED != 0 {
            let interval_records = read_u64(r)?;
            let detailed_records = read_u64(r)?;
            let period = read_u64(r)?;
            let offset = read_u64(r)?;
            let warmup = match read_u8(r)? {
                0 => WarmupMode::Functional,
                1 => WarmupMode::Bounded(read_u64(r)?),
                tag => return Err(SessionError::BadWarmupTag(tag)),
            };
            Some(SamplePlan {
                interval_records,
                detailed_records,
                period,
                offset,
                warmup,
            })
        } else {
            None
        };
        let toml_len = read_u32(r)? as usize;
        let scenario_toml = read_string(r, toml_len)?;
        let embedded_trace = if flags & FLAG_EMBEDDED_TRACE != 0 {
            let len = read_u64(r)?;
            let len = usize::try_from(len).map_err(|_| SessionError::Truncated)?;
            Some(read_vec(r, len)?)
        } else {
            None
        };
        let n_words = read_u16(r)? as usize;
        if n_words != SIM_STATS_FIELDS.len() {
            return Err(SessionError::BadStatsArity {
                found: n_words,
                expected: SIM_STATS_FIELDS.len(),
            });
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(read_u64(r)?);
        }
        let stored_digest = read_u64(r)?;
        let stats = SimStats::from_words(&words).expect("arity checked above");
        let computed = stats.digest();
        if computed != stored_digest {
            return Err(SessionError::DigestMismatch {
                stored: stored_digest,
                computed,
            });
        }
        Ok(Self {
            engine_fingerprint,
            tracegen_fingerprint,
            workload,
            seed,
            budget,
            tool_version,
            trace_container_version,
            trace_layout_version,
            cell_index,
            sample,
            scenario_toml,
            embedded_trace,
            stats,
        })
    }

    /// Deserializes from a byte slice.
    ///
    /// # Errors
    ///
    /// Everything [`SessionRecord::read_from`] rejects.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, SessionError> {
        Self::read_from(&mut bytes)
    }

    /// Writes the record to `path`.
    ///
    /// # Errors
    ///
    /// A [`SessionFileError`] naming the path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SessionFileError> {
        let path = path.as_ref();
        let wrap = |e: io::Error| SessionFileError::new(path, SessionError::Io(e.kind()));
        let file = fs::File::create(path).map_err(wrap)?;
        let mut w = io::BufWriter::new(file);
        self.write_to(&mut w).map_err(wrap)?;
        w.flush().map_err(wrap)
    }

    /// Reads and validates the record at `path`.
    ///
    /// # Errors
    ///
    /// A [`SessionFileError`] naming the path, wrapping everything
    /// [`SessionRecord::read_from`] rejects.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SessionFileError> {
        let path = path.as_ref();
        let bytes = fs::read(path)
            .map_err(|e| SessionFileError::new(path, SessionError::Io(e.kind())))?;
        Self::from_bytes(&bytes).map_err(|e| SessionFileError::new(path, e))
    }

    /// Field-for-field comparison of the recorded statistics against a
    /// replayed run's, in [`SIM_STATS_FIELDS`] order. Empty exactly
    /// when the two are bit-identical.
    pub fn diff_stats(&self, replayed: &SimStats) -> Vec<StatsDiff> {
        let recorded = self.stats.to_words();
        let words = replayed.to_words();
        SIM_STATS_FIELDS
            .iter()
            .zip(recorded.iter().zip(words.iter()))
            .filter(|(_, (a, b))| a != b)
            .map(|(field, (a, b))| StatsDiff {
                field,
                recorded: *a,
                replayed: *b,
            })
            .collect()
    }
}

/// One statistics field that replayed differently than recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsDiff {
    /// Field name from [`SIM_STATS_FIELDS`].
    pub field: &'static str,
    /// Value in the session record.
    pub recorded: u64,
    /// Value the replay produced.
    pub replayed: u64,
}

impl fmt::Display for StatsDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: recorded {} != replayed {}",
            self.field, self.recorded, self.replayed
        )
    }
}

/// Reasons a byte stream is not a valid session record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// An underlying I/O failure.
    Io(io::ErrorKind),
    /// The stream ended inside a field.
    Truncated,
    /// The first four bytes are not [`SESSION_MAGIC`].
    BadMagic([u8; 4]),
    /// The file's version is zero or newer than this build supports.
    UnsupportedVersion {
        /// Version the file claims.
        found: u16,
        /// Newest version this build reads.
        newest_supported: u16,
    },
    /// The flags word carries bits this build does not know — the
    /// optional sections cannot be framed.
    UnknownFlags(u16),
    /// A string field is not UTF-8.
    BadUtf8,
    /// The sample plan's warmup tag is neither functional nor bounded.
    BadWarmupTag(u8),
    /// The stats vector is not [`SIM_STATS_FIELDS`] long.
    BadStatsArity {
        /// Word count the file claims.
        found: usize,
        /// Word count this build expects.
        expected: usize,
    },
    /// The stored digest does not match the stored words: the
    /// statistics were corrupted in flight.
    DigestMismatch {
        /// Digest the file claims.
        stored: u64,
        /// Digest recomputed from the stored words.
        computed: u64,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Io(kind) => write!(f, "I/O error: {kind}"),
            SessionError::Truncated => write!(f, "session record ends mid-field (truncated file?)"),
            SessionError::BadMagic(m) => {
                write!(f, "not a session record (magic {m:02x?}, expected \"RSSN\")")
            }
            SessionError::UnsupportedVersion {
                found,
                newest_supported,
            } => write!(
                f,
                "unsupported session version {found} (newest supported: {newest_supported})"
            ),
            SessionError::UnknownFlags(bits) => write!(
                f,
                "unknown session flags {bits:#06x} (written by a newer tool?)"
            ),
            SessionError::BadUtf8 => write!(f, "session string field is not UTF-8"),
            SessionError::BadWarmupTag(tag) => {
                write!(f, "unknown warmup-mode tag {tag} in sample plan")
            }
            SessionError::BadStatsArity { found, expected } => write!(
                f,
                "session stores {found} stats words, this build expects {expected}"
            ),
            SessionError::DigestMismatch { stored, computed } => write!(
                f,
                "stats digest mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
        }
    }
}

impl Error for SessionError {}

/// A [`SessionError`] carrying the offending file path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionFileError {
    path: PathBuf,
    error: SessionError,
}

impl SessionFileError {
    fn new(path: impl Into<PathBuf>, error: SessionError) -> Self {
        Self {
            path: path.into(),
            error,
        }
    }

    /// The file that failed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The underlying session error.
    pub fn error(&self) -> &SessionError {
        &self.error
    }
}

impl fmt::Display for SessionFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.error)
    }
}

impl Error for SessionFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

fn write_str16(w: &mut dyn Write, s: &str) -> io::Result<()> {
    let bytes = s.as_bytes();
    w.write_all(&(bytes.len() as u16).to_le_bytes())?;
    w.write_all(bytes)
}

fn read_array<const N: usize>(r: &mut dyn Read) -> Result<[u8; N], SessionError> {
    let mut buf = [0u8; N];
    read_exact(r, &mut buf)?;
    Ok(buf)
}

fn read_exact(r: &mut dyn Read, buf: &mut [u8]) -> Result<(), SessionError> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => SessionError::Truncated,
        kind => SessionError::Io(kind),
    })
}

fn read_u8(r: &mut dyn Read) -> Result<u8, SessionError> {
    Ok(read_array::<1>(r)?[0])
}

fn read_u16(r: &mut dyn Read) -> Result<u16, SessionError> {
    Ok(u16::from_le_bytes(read_array(r)?))
}

fn read_u32(r: &mut dyn Read) -> Result<u32, SessionError> {
    Ok(u32::from_le_bytes(read_array(r)?))
}

fn read_u64(r: &mut dyn Read) -> Result<u64, SessionError> {
    Ok(u64::from_le_bytes(read_array(r)?))
}

fn read_vec(r: &mut dyn Read, len: usize) -> Result<Vec<u8>, SessionError> {
    // Read through a bounded loop rather than one `with_capacity(len)`
    // so a corrupt length field cannot trigger a huge allocation before
    // the (truncated) stream runs dry.
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut left = len;
    while left > 0 {
        let n = left.min(chunk.len());
        read_exact(r, &mut chunk[..n])?;
        out.extend_from_slice(&chunk[..n]);
        left -= n;
    }
    Ok(out)
}

fn read_string(r: &mut dyn Read, len: usize) -> Result<String, SessionError> {
    String::from_utf8(read_vec(r, len)?).map_err(|_| SessionError::BadUtf8)
}

fn read_str16(r: &mut dyn Read) -> Result<String, SessionError> {
    let len = read_u16(r)? as usize;
    read_string(r, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(cycles: u64) -> SimStats {
        let mut words = vec![0u64; SIM_STATS_FIELDS.len()];
        words[0] = cycles;
        words[1] = cycles.wrapping_mul(3);
        SimStats::from_words(&words).unwrap()
    }

    fn full_record() -> SessionRecord {
        SessionRecord {
            engine_fingerprint: 0xDEAD_BEEF_0000_0001,
            tracegen_fingerprint: 0xCAFE_F00D_0000_0002,
            workload: "vpr".to_string(),
            seed: 2009,
            budget: 5000,
            tool_version: "resim 0.1.0".to_string(),
            trace_container_version: 1,
            trace_layout_version: 2,
            cell_index: Some(7),
            sample: Some(SamplePlan::systematic(1000, 100, 10).with_warmup(WarmupMode::Bounded(64))),
            scenario_toml: "[workload]\nname = \"vpr\"\nseed = 2009\nbudget = 5000\n".to_string(),
            embedded_trace: Some(vec![0x52, 0x53, 0x54, 0x52, 1, 0, 0xAA, 0xBB]),
            stats: stats_with(123_456),
        }
    }

    #[test]
    fn full_record_roundtrips() {
        let rec = full_record();
        let bytes = rec.to_bytes();
        assert_eq!(&bytes[..4], b"RSSN");
        let back = SessionRecord::from_bytes(&bytes).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.flags(), 0b111);
    }

    #[test]
    fn minimal_record_roundtrips() {
        let rec = SessionRecord {
            workload: "gzip".to_string(),
            scenario_toml: String::new(),
            stats: stats_with(42),
            ..SessionRecord::default()
        };
        assert_eq!(rec.flags(), 0);
        let back = SessionRecord::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(back, rec);
        assert!(back.sample.is_none());
        assert!(back.embedded_trace.is_none());
        assert!(back.cell_index.is_none());
    }

    #[test]
    fn functional_warmup_roundtrips() {
        let rec = SessionRecord {
            sample: Some(SamplePlan::systematic(100, 10, 4).with_offset(2)),
            stats: stats_with(1),
            ..SessionRecord::default()
        };
        let back = SessionRecord::from_bytes(&rec.to_bytes()).unwrap();
        assert_eq!(back.sample, rec.sample);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = full_record().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SessionRecord::from_bytes(&bytes),
            Err(SessionError::BadMagic(_))
        ));
    }

    #[test]
    fn newer_version_is_rejected_with_both_numbers() {
        let mut bytes = full_record().to_bytes();
        bytes[4] = 0x7B; // version 123
        bytes[5] = 0;
        assert_eq!(
            SessionRecord::from_bytes(&bytes),
            Err(SessionError::UnsupportedVersion {
                found: 123,
                newest_supported: SESSION_VERSION,
            })
        );
        bytes[4] = 0; // version 0 is reserved
        assert!(matches!(
            SessionRecord::from_bytes(&bytes),
            Err(SessionError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let mut bytes = full_record().to_bytes();
        bytes[6] |= 1 << 5;
        assert_eq!(
            SessionRecord::from_bytes(&bytes),
            Err(SessionError::UnknownFlags(1 << 5))
        );
    }

    #[test]
    fn truncation_at_every_byte_errors_cleanly() {
        let bytes = full_record().to_bytes();
        for cut in 0..bytes.len() {
            let err = SessionRecord::from_bytes(&bytes[..cut])
                .expect_err("every prefix is incomplete");
            assert!(
                matches!(err, SessionError::Truncated | SessionError::BadMagic(_)),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_stats_word_trips_the_digest() {
        let rec = full_record();
        let bytes = rec.to_bytes();
        // The stats words sit between the digest (last 8 bytes) and the
        // embedded trace; flip a bit in the first word.
        let first_word = bytes.len() - 8 - 8 * SIM_STATS_FIELDS.len();
        let mut corrupt = bytes.clone();
        corrupt[first_word] ^= 1;
        assert!(matches!(
            SessionRecord::from_bytes(&corrupt),
            Err(SessionError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn bad_warmup_tag_is_rejected() {
        let rec = SessionRecord {
            sample: Some(SamplePlan::systematic(100, 10, 1)),
            stats: stats_with(1),
            ..SessionRecord::default()
        };
        let mut bytes = rec.to_bytes();
        // The warmup tag is the byte right after the four plan words;
        // the plan starts after the fixed header + two empty strings.
        let plan_start = 4 + 2 + 2 + 2 + 2 + 8 * 4 + 2 + 2;
        let tag = plan_start + 8 * 4;
        assert_eq!(bytes[tag], 0, "located the functional warmup tag");
        bytes[tag] = 9;
        assert_eq!(
            SessionRecord::from_bytes(&bytes),
            Err(SessionError::BadWarmupTag(9))
        );
    }

    #[test]
    fn stats_diff_names_mismatched_fields() {
        let rec = SessionRecord {
            stats: stats_with(100),
            ..SessionRecord::default()
        };
        assert!(rec.diff_stats(&stats_with(100)).is_empty());
        let diffs = rec.diff_stats(&stats_with(101));
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[0].field, SIM_STATS_FIELDS[0]);
        assert_eq!(diffs[0].recorded, 100);
        assert_eq!(diffs[0].replayed, 101);
        assert_eq!(
            diffs[0].to_string(),
            format!("{}: recorded 100 != replayed 101", SIM_STATS_FIELDS[0])
        );
    }

    #[test]
    fn save_and_load_name_the_path() {
        let dir = std::env::temp_dir().join("resim-session-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.rssn");
        let rec = full_record();
        rec.save(&path).unwrap();
        assert_eq!(SessionRecord::load(&path).unwrap(), rec);

        let missing = dir.join("no-such-file.rssn");
        let err = SessionRecord::load(&missing).unwrap_err();
        assert_eq!(err.path(), missing.as_path());
        assert_eq!(err.error(), &SessionError::Io(io::ErrorKind::NotFound));
        assert!(err.to_string().contains("no-such-file.rssn"));

        // A corrupted file reports the path *and* the session error.
        let garbled = dir.join("garbled.rssn");
        fs::write(&garbled, b"RSSNgarbage").unwrap();
        let err = SessionRecord::load(&garbled).unwrap_err();
        assert!(matches!(
            err.error(),
            SessionError::Truncated | SessionError::UnsupportedVersion { .. }
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_display() {
        let cases: Vec<(SessionError, &str)> = vec![
            (SessionError::Truncated, "mid-field"),
            (SessionError::BadMagic(*b"XXXX"), "RSSN"),
            (
                SessionError::UnsupportedVersion {
                    found: 9,
                    newest_supported: 1,
                },
                "newest supported: 1",
            ),
            (SessionError::UnknownFlags(0x20), "0x0020"),
            (SessionError::BadUtf8, "UTF-8"),
            (SessionError::BadWarmupTag(3), "tag 3"),
            (
                SessionError::BadStatsArity {
                    found: 7,
                    expected: 42,
                },
                "expects 42",
            ),
            (
                SessionError::DigestMismatch {
                    stored: 1,
                    computed: 2,
                },
                "digest mismatch",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
