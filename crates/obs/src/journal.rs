//! The bounded, ring-buffered event journal.

use crate::recorder::EventKind;

/// One journaled event: a structured payload at a simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated (major) cycle the event occurred in.
    pub cycle: u64,
    /// The event payload.
    pub kind: EventKind,
}

/// Default journal capacity (events). At one occupancy sample per
/// cycle this holds the trailing ~64 K cycles of a run.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// A bounded ring buffer of [`Event`]s: pushes never allocate after
/// construction and never fail — once full, the oldest event is
/// overwritten, and [`EventJournal::dropped`] counts the loss.
#[derive(Debug, Clone)]
pub struct EventJournal {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Total events ever pushed.
    recorded: u64,
}

impl EventJournal {
    /// An empty journal holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been journaled yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to the bound (oldest-first).
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Appends an event, overwriting the oldest once full.
    pub fn push(&mut self, event: Event) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Iterates the retained events oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (wrapped, start) = self.buf.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> Event {
        Event {
            cycle,
            kind: EventKind::Misfetch { pc: cycle as u32 },
        }
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut j = EventJournal::new(8);
        for c in 0..5 {
            j.push(ev(c));
        }
        assert_eq!(j.len(), 5);
        assert_eq!(j.recorded(), 5);
        assert_eq!(j.dropped(), 0);
        let cycles: Vec<u64> = j.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_drops_oldest_first() {
        let mut j = EventJournal::new(4);
        for c in 0..10 {
            j.push(ev(c));
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.recorded(), 10);
        assert_eq!(j.dropped(), 6);
        let cycles: Vec<u64> = j.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9], "ring keeps the newest events");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut j = EventJournal::new(0);
        j.push(ev(1));
        j.push(ev(2));
        assert_eq!(j.capacity(), 1);
        assert_eq!(j.iter().map(|e| e.cycle).collect::<Vec<_>>(), vec![2]);
    }
}
