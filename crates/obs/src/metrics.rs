//! The collecting recorder: fixed-index instrument arrays, the bounded
//! event journal, and the streaming occupancy track.

use crate::journal::{Event, EventJournal, DEFAULT_JOURNAL_CAPACITY};
use crate::recorder::{Counter, EventKind, Gauge, Hist, Recorder, SpanId};
use std::time::Instant;

/// Power-of-two bucket count: bucket 0 holds the value 0, bucket `k`
/// holds `2^(k-1) <= v < 2^k`, and the last bucket saturates.
pub const POW2_BUCKETS: usize = 17;

/// A histogram with power-of-two buckets — constant-time insert, fixed
/// memory, and a faithful shape for the long-tailed distributions the
/// engine produces (squash depths, per-cycle throughput).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pow2Histogram {
    buckets: [u64; POW2_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Pow2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; POW2_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index for `value`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(POW2_BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; POW2_BUCKETS] {
        &self.buckets
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }
}

impl Default for Pow2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Min/max/mean summary of a sampled gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSummary {
    /// Smallest observation (0 when never sampled).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub avg: f64,
    /// Observations recorded.
    pub samples: u64,
}

#[derive(Debug, Clone, Copy)]
struct GaugeAgg {
    min: u64,
    max: u64,
    sum: u64,
    samples: u64,
}

impl GaugeAgg {
    const EMPTY: GaugeAgg = GaugeAgg {
        min: u64::MAX,
        max: 0,
        sum: 0,
        samples: 0,
    };

    fn record(&mut self, v: u64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.samples += 1;
    }

    fn summary(&self) -> GaugeSummary {
        GaugeSummary {
            min: if self.samples == 0 { 0 } else { self.min },
            max: self.max,
            avg: if self.samples == 0 {
                0.0
            } else {
                self.sum as f64 / self.samples as f64
            },
            samples: self.samples,
        }
    }
}

/// Accumulated wall time of one span id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSummary {
    /// Completed enter/exit pairs.
    pub calls: u64,
    /// Total wall time across calls, in nanoseconds.
    pub wall_ns: u64,
}

#[derive(Debug, Clone, Copy)]
struct SpanAgg {
    calls: u64,
    wall_ns: u64,
    open: Option<Instant>,
}

impl SpanAgg {
    const EMPTY: SpanAgg = SpanAgg {
        calls: 0,
        wall_ns: 0,
        open: None,
    };
}

/// A streaming, bounded-memory record of pipeline occupancy over
/// simulated cycles, for the text heatmap.
///
/// Cycles are folded into up to [`OccupancyTrack::MAX_BINS`] equal-width
/// time bins; when the run outgrows the bins, adjacent pairs merge and
/// the bin width doubles — deterministic, allocation-free after
/// construction, and O(1) amortized per cycle.
#[derive(Debug, Clone)]
pub struct OccupancyTrack {
    /// Per-bin sums: ifq, rb, lsq, cycles.
    bins: Vec<[u64; 4]>,
    /// Cycles each completed bin covers.
    cycles_per_bin: u64,
}

impl OccupancyTrack {
    /// Maximum time bins retained (also the heatmap column budget).
    pub const MAX_BINS: usize = 96;

    /// An empty track.
    pub fn new() -> Self {
        Self {
            bins: Vec::with_capacity(Self::MAX_BINS),
            cycles_per_bin: 1,
        }
    }

    /// Folds one cycle's occupancy sample into the track.
    pub fn record(&mut self, ifq: u64, rb: u64, lsq: u64) {
        match self.bins.last_mut() {
            Some(last) if last[3] < self.cycles_per_bin => {
                last[0] += ifq;
                last[1] += rb;
                last[2] += lsq;
                last[3] += 1;
            }
            _ => {
                if self.bins.len() == Self::MAX_BINS {
                    // Merge adjacent pairs: half the bins, double the width.
                    for i in 0..Self::MAX_BINS / 2 {
                        let a = self.bins[2 * i];
                        let b = self.bins[2 * i + 1];
                        self.bins[i] = [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]];
                    }
                    self.bins.truncate(Self::MAX_BINS / 2);
                    self.cycles_per_bin *= 2;
                }
                self.bins.push([ifq, rb, lsq, 1]);
            }
        }
    }

    /// Cycles recorded so far.
    pub fn cycles(&self) -> u64 {
        self.bins.iter().map(|b| b[3]).sum()
    }

    /// Cycles each full bin (heatmap column) covers.
    pub fn cycles_per_bin(&self) -> u64 {
        self.cycles_per_bin
    }

    /// Current bin count.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether no cycle has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Mean occupancy per bin for one series (0 = IFQ, 1 = RB, 2 = LSQ).
    fn series(&self, idx: usize) -> Vec<f64> {
        self.bins
            .iter()
            .map(|b| if b[3] == 0 { 0.0 } else { b[idx] as f64 / b[3] as f64 })
            .collect()
    }

    /// Renders the three-row ASCII heatmap (darker = fuller), each row
    /// shaded against its own capacity.
    ///
    /// `capacities` are the structure sizes (IFQ, RB, LSQ) the shading
    /// normalizes to; pass the configured sizes so a full structure is
    /// always the darkest glyph.
    pub fn render(&self, capacities: [u64; 3]) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        if self.bins.is_empty() {
            return "occupancy heatmap: no cycles recorded\n".to_string();
        }
        let mut out = format!(
            "occupancy heatmap over {} cycles ({} cycles/column, left to right):\n",
            self.cycles(),
            self.cycles_per_bin,
        );
        for (row, label) in ["IFQ", "RB", "LSQ"].iter().enumerate() {
            let series = self.series(row);
            let cap = capacities[row].max(1) as f64;
            let mut line = format!("  {label:<4}|");
            for v in &series {
                let norm = (v / cap).clamp(0.0, 1.0);
                let idx = ((norm * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                line.push(RAMP[idx] as char);
            }
            let avg = series.iter().sum::<f64>() / series.len() as f64;
            out.push_str(&format!("{line}|  avg {avg:.2} of {}\n", capacities[row]));
        }
        out
    }
}

impl Default for OccupancyTrack {
    fn default() -> Self {
        Self::new()
    }
}

/// The collecting [`Recorder`]: counters, gauges, histograms and spans
/// in fixed-index arrays, events in a bounded ring journal, and the
/// occupancy track for the heatmap.
#[derive(Debug)]
pub struct MetricsRecorder {
    counters: [u64; Counter::ALL.len()],
    gauges: [GaugeAgg; Gauge::ALL.len()],
    hists: [Pow2Histogram; Hist::ALL.len()],
    spans: [SpanAgg; SpanId::ALL.len()],
    journal: EventJournal,
    track: OccupancyTrack,
}

impl MetricsRecorder {
    /// A recorder with the default journal capacity.
    pub fn new() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A recorder whose event journal retains at most `capacity` events.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Self {
            counters: [0; Counter::ALL.len()],
            gauges: [GaugeAgg::EMPTY; Gauge::ALL.len()],
            hists: [Pow2Histogram::new(); Hist::ALL.len()],
            spans: [SpanAgg::EMPTY; SpanId::ALL.len()],
            journal: EventJournal::new(capacity),
            track: OccupancyTrack::new(),
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Summary of a gauge's observations.
    pub fn gauge_summary(&self, g: Gauge) -> GaugeSummary {
        self.gauges[g as usize].summary()
    }

    /// A histogram's current contents.
    pub fn histogram_of(&self, h: Hist) -> &Pow2Histogram {
        &self.hists[h as usize]
    }

    /// Accumulated wall time of a span.
    pub fn span_summary(&self, s: SpanId) -> SpanSummary {
        let agg = &self.spans[s as usize];
        SpanSummary {
            calls: agg.calls,
            wall_ns: agg.wall_ns,
        }
    }

    /// The event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The occupancy track (heatmap source).
    pub fn occupancy(&self) -> &OccupancyTrack {
        &self.track
    }

    /// Renders the per-stage wall-time breakdown table from the span
    /// aggregates, widest consumer first.
    pub fn render_span_table(&self) -> String {
        let mut rows: Vec<(&'static str, SpanSummary)> = SpanId::ALL
            .iter()
            .map(|s| (s.name(), self.span_summary(*s)))
            .collect();
        let total_ns: u64 = rows.iter().map(|(_, s)| s.wall_ns).sum();
        rows.sort_by(|a, b| b.1.wall_ns.cmp(&a.1.wall_ns).then(a.0.cmp(b.0)));
        let mut out = String::from("stage wall time (engine-side, per stage evaluation):\n");
        out.push_str("  stage         calls        wall_ms    share\n");
        for (name, s) in rows {
            let share = if total_ns == 0 {
                0.0
            } else {
                100.0 * s.wall_ns as f64 / total_ns as f64
            };
            out.push_str(&format!(
                "  {name:<12} {calls:>8} {ms:>13.3} {share:>7.1}%\n",
                calls = s.calls,
                ms = s.wall_ns as f64 / 1e6,
            ));
        }
        out.push_str(&format!(
            "  total                   {:>13.3} {:>7.1}%\n",
            total_ns as f64 / 1e6,
            if total_ns == 0 { 0.0 } else { 100.0 },
        ));
        out
    }
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for MetricsRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn counter(&mut self, c: Counter, delta: u64) {
        self.counters[c as usize] += delta;
    }

    #[inline]
    fn gauge(&mut self, g: Gauge, value: u64) {
        self.gauges[g as usize].record(value);
    }

    #[inline]
    fn histogram(&mut self, h: Hist, value: u64) {
        self.hists[h as usize].record(value);
    }

    #[inline]
    fn span_enter(&mut self, s: SpanId) {
        self.spans[s as usize].open = Some(Instant::now());
    }

    #[inline]
    fn span_exit(&mut self, s: SpanId) {
        let agg = &mut self.spans[s as usize];
        if let Some(t0) = agg.open.take() {
            agg.calls += 1;
            agg.wall_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    #[inline]
    fn event(&mut self, cycle: u64, kind: EventKind) {
        if let EventKind::Occupancy { ifq, rb, lsq } = kind {
            self.track.record(u64::from(ifq), u64::from(rb), u64::from(lsq));
        }
        self.journal.push(Event { cycle, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::CacheKind;

    #[test]
    fn pow2_bucket_boundaries() {
        assert_eq!(Pow2Histogram::bucket_of(0), 0);
        assert_eq!(Pow2Histogram::bucket_of(1), 1);
        assert_eq!(Pow2Histogram::bucket_of(2), 2);
        assert_eq!(Pow2Histogram::bucket_of(3), 2);
        assert_eq!(Pow2Histogram::bucket_of(4), 3);
        assert_eq!(Pow2Histogram::bucket_of(1 << 15), 16);
        assert_eq!(Pow2Histogram::bucket_of(u64::MAX), POW2_BUCKETS - 1);
        let mut h = Pow2Histogram::new();
        for v in [0, 1, 3, 4, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 4);
        assert!((h.mean() - 2.4).abs() < 1e-12);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[3], 2);
    }

    #[test]
    fn gauge_summary_tracks_min_max_avg() {
        let mut r = MetricsRecorder::new();
        for v in [4, 2, 9] {
            r.gauge(Gauge::RbOccupancy, v);
        }
        let s = r.gauge_summary(Gauge::RbOccupancy);
        assert_eq!((s.min, s.max, s.samples), (2, 9, 3));
        assert!((s.avg - 5.0).abs() < 1e-12);
        let empty = r.gauge_summary(Gauge::IfqOccupancy);
        assert_eq!((empty.min, empty.max, empty.samples), (0, 0, 0));
        assert_eq!(empty.avg, 0.0);
    }

    #[test]
    fn occupancy_track_merges_bins_deterministically() {
        let mut t = OccupancyTrack::new();
        let cycles = (OccupancyTrack::MAX_BINS as u64) * 3 + 7;
        for c in 0..cycles {
            t.record(c % 8, c % 16, c % 4);
        }
        assert_eq!(t.cycles(), cycles);
        assert!(t.len() <= OccupancyTrack::MAX_BINS);
        assert!(t.cycles_per_bin() >= 2, "bins must have merged");
        let render = t.render([8, 16, 4]);
        assert!(render.contains("IFQ"));
        assert!(render.contains("LSQ"));
        assert!(render.contains(&format!("over {cycles} cycles")));
    }

    #[test]
    fn events_feed_journal_and_track() {
        let mut r = MetricsRecorder::with_journal_capacity(4);
        r.event(
            1,
            EventKind::Occupancy {
                ifq: 2,
                rb: 5,
                lsq: 1,
            },
        );
        r.event(
            2,
            EventKind::CacheMiss {
                cache: CacheKind::L1d,
                addr: 0x80,
            },
        );
        assert_eq!(r.journal().recorded(), 2);
        assert_eq!(r.occupancy().cycles(), 1);
    }

    #[test]
    fn spans_accumulate_and_tolerate_unbalanced_exit() {
        let mut r = MetricsRecorder::new();
        r.span_exit(SpanId::Fetch); // exit without enter: ignored
        r.span_enter(SpanId::Fetch);
        r.span_exit(SpanId::Fetch);
        let s = r.span_summary(SpanId::Fetch);
        assert_eq!(s.calls, 1);
        let table = r.render_span_table();
        assert!(table.starts_with("stage wall time"));
        assert!(table.contains("Fetch"));
        assert!(table.contains("Lsq_refresh"));
    }
}
