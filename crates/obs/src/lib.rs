//! # resim-obs
//!
//! The observability layer of ReSim: a zero-overhead-when-off
//! instrumentation seam the timing engine is threaded through.
//!
//! The simulator's job is explaining where cycles go, yet without this
//! crate the simulator itself is a black box at runtime: the only
//! introspection is the scheduler's per-stage activity totals. This
//! crate adds the reporting discipline of the simulator-evaluation
//! literature (per-configuration speed *and* accuracy, machine-readable
//! statistics) to ReSim's own runtime:
//!
//! * [`Recorder`] — the trait the engine emits into: counters, gauges,
//!   power-of-two-bucket histograms, per-stage timed spans, and
//!   structured events. Every hook is monomorphized, so with the
//!   default [`NullRecorder`] (whose methods are inherent `#[inline]`
//!   no-ops) the hot loop pays **nothing** — the calls compile away.
//! * [`MetricsRecorder`] — the collecting implementation: fixed-index
//!   counter/gauge/histogram arrays (no hashing on the hot path), a
//!   bounded ring-buffered [`EventJournal`] of per-cycle pipeline
//!   occupancy and speculation/cache events, and a streaming
//!   [`OccupancyTrack`] that renders a text heatmap over simulated
//!   cycles in bounded memory.
//! * [`MetricsDoc`] — the versioned, golden-pinned machine-readable
//!   export schema ([`METRICS_SCHEMA`] JSON, [`EVENTS_SCHEMA`] JSONL)
//!   that `resim profile` writes and a future `resim-serve` streams.
//!
//! The crate is dependency-free and knows nothing about the engine; the
//! engine (`resim-core`) is generic over `R: Recorder` and defaults to
//! [`NullRecorder`], which is what keeps the bit-identity contract
//! trivial: a recorder only ever *observes*, it never feeds back into
//! simulated state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod doc;
mod journal;
mod json;
mod metrics;
mod recorder;

pub use doc::{
    write_events_jsonl, GaugeDoc, HistogramDoc, JournalDoc, MetricsDoc, SpanDoc, TraceDoc,
    EVENTS_SCHEMA, METRICS_SCHEMA,
};
pub use journal::{Event, EventJournal, DEFAULT_JOURNAL_CAPACITY};
pub use json::{json_escape, JsonObject};
pub use metrics::{GaugeSummary, MetricsRecorder, OccupancyTrack, Pow2Histogram, SpanSummary};
pub use recorder::{CacheKind, Counter, EventKind, Gauge, Hist, NullRecorder, Recorder, SpanId};
