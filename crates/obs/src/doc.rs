//! The versioned, machine-readable export documents.
//!
//! Two formats, both golden-pinned byte for byte:
//!
//! * [`METRICS_SCHEMA`] — one pretty-printed JSON document summarizing a
//!   profiled run (counters, gauge summaries, histograms, per-stage
//!   wall-time spans, derived rates, trace-frontend counters, journal
//!   accounting).
//! * [`EVENTS_SCHEMA`] — JSONL: a header line followed by one compact
//!   JSON object per retained journal event, oldest first.

use crate::journal::EventJournal;
use crate::json::JsonObject;
use crate::metrics::{MetricsRecorder, Pow2Histogram};
use crate::recorder::{Counter, EventKind, Gauge, Hist, SpanId};
use std::fmt::Write as _;

/// Schema identifier of the metrics JSON document.
pub const METRICS_SCHEMA: &str = "resim.metrics/1";

/// Schema identifier of the events JSONL stream.
pub const EVENTS_SCHEMA: &str = "resim.events/1";

/// One per-stage wall-time span in the export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanDoc {
    /// Stage name (roster spelling).
    pub name: String,
    /// Completed evaluations timed.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub wall_ns: u64,
}

/// One gauge summary in the export.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeDoc {
    /// Gauge name.
    pub name: String,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub avg: f64,
    /// Observations recorded.
    pub samples: u64,
}

/// One histogram in the export.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDoc {
    /// Histogram name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Mean observation.
    pub mean: f64,
    /// Largest observation.
    pub max: u64,
    /// Power-of-two bucket counts (bucket 0 = value 0).
    pub buckets: Vec<u64>,
}

/// Trace-frontend counters in the export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDoc {
    /// Human-readable source description.
    pub source: String,
    /// Trace records consumed by the engine.
    pub records: u64,
    /// Trace-cache hits (generated workloads).
    pub cache_hits: u64,
    /// Trace-cache misses (generated workloads).
    pub cache_misses: u64,
    /// Records decoded by the file codec (file sources).
    pub decoded: u64,
    /// Batch fills served by the file codec (file sources).
    pub fills: u64,
}

/// Event-journal accounting in the export.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalDoc {
    /// Maximum events retained.
    pub capacity: u64,
    /// Total events ever pushed.
    pub recorded: u64,
    /// Events currently retained.
    pub retained: u64,
    /// Events lost to the bound.
    pub dropped: u64,
}

/// The complete `resim.metrics/1` document.
///
/// Built by the profiling front end from a [`MetricsRecorder`] plus the
/// run's engine statistics; [`MetricsDoc::to_json`] renders it
/// deterministically (field order fixed, floats at six decimals) so the
/// schema can be golden-pinned.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDoc {
    /// Scenario path or built-in name.
    pub scenario: String,
    /// Pipeline organization the engine ran.
    pub organization: String,
    /// Simulated (major) cycles.
    pub cycles: u64,
    /// Total wall time of the run, nanoseconds.
    pub wall_ns: u64,
    /// Derived rates, name → value (insertion order preserved).
    pub rates: Vec<(String, f64)>,
    /// Counter values in [`Counter::ALL`] order.
    pub counters: Vec<(String, u64)>,
    /// Gauge summaries in [`Gauge::ALL`] order.
    pub gauges: Vec<GaugeDoc>,
    /// Histograms in [`Hist::ALL`] order.
    pub histograms: Vec<HistogramDoc>,
    /// Per-stage spans in [`SpanId::ALL`] order.
    pub spans: Vec<SpanDoc>,
    /// Trace-frontend counters.
    pub trace: TraceDoc,
    /// Event-journal accounting.
    pub journal: JournalDoc,
}

impl MetricsDoc {
    /// An empty document for `scenario` running `organization`.
    pub fn new(scenario: &str, organization: &str) -> Self {
        Self {
            scenario: scenario.to_string(),
            organization: organization.to_string(),
            cycles: 0,
            wall_ns: 0,
            rates: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            trace: TraceDoc::default(),
            journal: JournalDoc::default(),
        }
    }

    /// Adds a derived rate (exported in insertion order).
    pub fn rate(&mut self, name: &str, value: f64) -> &mut Self {
        self.rates.push((name.to_string(), value));
        self
    }

    /// Fills counters, gauges, histograms, spans and journal accounting
    /// from a recorder's collected state.
    pub fn populate(&mut self, recorder: &MetricsRecorder) -> &mut Self {
        self.counters = Counter::ALL
            .iter()
            .map(|c| (c.name().to_string(), recorder.counter_value(*c)))
            .collect();
        self.gauges = Gauge::ALL
            .iter()
            .map(|g| {
                let s = recorder.gauge_summary(*g);
                GaugeDoc {
                    name: g.name().to_string(),
                    min: s.min,
                    max: s.max,
                    avg: s.avg,
                    samples: s.samples,
                }
            })
            .collect();
        self.histograms = Hist::ALL
            .iter()
            .map(|h| Self::histogram_doc(h.name(), recorder.histogram_of(*h)))
            .collect();
        self.spans = SpanId::ALL
            .iter()
            .map(|s| {
                let sum = recorder.span_summary(*s);
                SpanDoc {
                    name: s.name().to_string(),
                    calls: sum.calls,
                    wall_ns: sum.wall_ns,
                }
            })
            .collect();
        let j = recorder.journal();
        self.journal = JournalDoc {
            capacity: j.capacity() as u64,
            recorded: j.recorded(),
            retained: j.len() as u64,
            dropped: j.dropped(),
        };
        self
    }

    fn histogram_doc(name: &str, h: &Pow2Histogram) -> HistogramDoc {
        // Trim trailing empty buckets so the export stays compact.
        let mut buckets: Vec<u64> = h.buckets().to_vec();
        while buckets.len() > 1 && buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramDoc {
            name: name.to_string(),
            count: h.count(),
            mean: h.mean(),
            max: h.max(),
            buckets,
        }
    }

    /// Renders the document as deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut j = JsonObject::new();
        j.string("schema", METRICS_SCHEMA)
            .string("scenario", &self.scenario)
            .string("organization", &self.organization)
            .u64("cycles", self.cycles)
            .u64("wall_ns", self.wall_ns);
        j.open_object("rates");
        for (name, value) in &self.rates {
            j.f64(name, *value);
        }
        j.close_object();
        j.open_object("counters");
        for (name, value) in &self.counters {
            j.u64(name, *value);
        }
        j.close_object();
        j.open_object("gauges");
        for g in &self.gauges {
            j.open_object(&g.name)
                .u64("min", g.min)
                .u64("max", g.max)
                .f64("avg", g.avg)
                .u64("samples", g.samples)
                .close_object();
        }
        j.close_object();
        j.open_object("histograms");
        for h in &self.histograms {
            j.open_object(&h.name)
                .u64("count", h.count)
                .f64("mean", h.mean)
                .u64("max", h.max);
            j.open_array("buckets");
            for b in &h.buckets {
                j.element_u64(*b);
            }
            j.close_array();
            j.close_object();
        }
        j.close_object();
        j.open_array("spans");
        for s in &self.spans {
            j.open_element()
                .string("name", &s.name)
                .u64("calls", s.calls)
                .u64("wall_ns", s.wall_ns)
                .close_object();
        }
        j.close_array();
        j.open_object("trace");
        j.string("source", &self.trace.source)
            .u64("records", self.trace.records)
            .u64("cache_hits", self.trace.cache_hits)
            .u64("cache_misses", self.trace.cache_misses)
            .u64("decoded", self.trace.decoded)
            .u64("fills", self.trace.fills);
        j.close_object();
        j.open_object("journal");
        j.u64("capacity", self.journal.capacity)
            .u64("recorded", self.journal.recorded)
            .u64("retained", self.journal.retained)
            .u64("dropped", self.journal.dropped);
        j.close_object();
        j.finish()
    }
}

/// Renders the `resim.events/1` JSONL stream: a header line with the
/// schema and journal accounting, then one compact object per retained
/// event, oldest first. Ends with a newline.
pub fn write_events_jsonl(journal: &EventJournal) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"{}\",\"recorded\":{},\"retained\":{},\"dropped\":{}}}",
        EVENTS_SCHEMA,
        journal.recorded(),
        journal.len(),
        journal.dropped(),
    );
    for event in journal.iter() {
        let _ = match event.kind {
            EventKind::Occupancy { ifq, rb, lsq } => writeln!(
                out,
                "{{\"cycle\":{},\"kind\":\"occupancy\",\"ifq\":{ifq},\"rb\":{rb},\"lsq\":{lsq}}}",
                event.cycle,
            ),
            EventKind::MispredictRecovery { seq, squashed } => writeln!(
                out,
                "{{\"cycle\":{},\"kind\":\"mispredict_recovery\",\"seq\":{seq},\"squashed\":{squashed}}}",
                event.cycle,
            ),
            EventKind::Misfetch { pc } => writeln!(
                out,
                "{{\"cycle\":{},\"kind\":\"misfetch\",\"pc\":{pc}}}",
                event.cycle,
            ),
            EventKind::CacheMiss { cache, addr } => writeln!(
                out,
                "{{\"cycle\":{},\"kind\":\"cache_miss\",\"cache\":\"{}\",\"addr\":{addr}}}",
                event.cycle,
                cache.name(),
            ),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Event;
    use crate::recorder::{CacheKind, Recorder};

    fn synthetic_doc() -> MetricsDoc {
        let mut r = MetricsRecorder::with_journal_capacity(8);
        r.counter(Counter::Fetched, 10);
        r.counter(Counter::Committed, 7);
        r.gauge(Gauge::RbOccupancy, 3);
        r.gauge(Gauge::RbOccupancy, 5);
        r.histogram(Hist::CommittedPerCycle, 2);
        r.histogram(Hist::CommittedPerCycle, 4);
        r.event(
            1,
            EventKind::Occupancy {
                ifq: 1,
                rb: 4,
                lsq: 2,
            },
        );
        let mut doc = MetricsDoc::new("demo.toml", "paper-2n3");
        doc.cycles = 5;
        doc.wall_ns = 1_000;
        doc.rate("ipc", 1.4).rate("mispredict_rate", 0.125);
        doc.populate(&r);
        doc.trace = TraceDoc {
            source: "generated gzip".to_string(),
            records: 12,
            cache_hits: 1,
            cache_misses: 0,
            decoded: 0,
            fills: 0,
        };
        doc
    }

    #[test]
    fn metrics_json_is_golden() {
        let json = synthetic_doc().to_json();
        let expected = concat!(
            "{\n",
            "  \"schema\": \"resim.metrics/1\",\n",
            "  \"scenario\": \"demo.toml\",\n",
            "  \"organization\": \"paper-2n3\",\n",
            "  \"cycles\": 5,\n",
            "  \"wall_ns\": 1000,\n",
            "  \"rates\": {\n",
            "    \"ipc\": 1.400000,\n",
            "    \"mispredict_rate\": 0.125000\n",
            "  },\n",
            "  \"counters\": {\n",
            "    \"fetched\": 10,\n",
            "    \"dispatched\": 0,\n",
            "    \"issued\": 0,\n",
            "    \"written_back\": 0,\n",
            "    \"lsq_refreshed\": 0,\n",
            "    \"committed\": 7,\n",
            "    \"mispredict_recoveries\": 0,\n",
            "    \"squashed\": 0,\n",
            "    \"misfetches\": 0,\n",
            "    \"icache_misses\": 0,\n",
            "    \"dcache_misses\": 0,\n",
            "    \"serve_requests\": 0,\n",
            "    \"serve_errors\": 0,\n",
            "    \"serve_jobs_submitted\": 0,\n",
            "    \"serve_jobs_completed\": 0,\n",
            "    \"serve_cells_simulated\": 0,\n",
            "    \"serve_cells_served_mem\": 0,\n",
            "    \"serve_cells_served_disk\": 0,\n",
            "    \"serve_cache_rejected\": 0\n",
            "  },\n",
            "  \"gauges\": {\n",
            "    \"ifq_occupancy\": {\n",
            "      \"min\": 0,\n",
            "      \"max\": 0,\n",
            "      \"avg\": 0.000000,\n",
            "      \"samples\": 0\n",
            "    },\n",
            "    \"rb_occupancy\": {\n",
            "      \"min\": 3,\n",
            "      \"max\": 5,\n",
            "      \"avg\": 4.000000,\n",
            "      \"samples\": 2\n",
            "    },\n",
            "    \"lsq_occupancy\": {\n",
            "      \"min\": 0,\n",
            "      \"max\": 0,\n",
            "      \"avg\": 0.000000,\n",
            "      \"samples\": 0\n",
            "    }\n",
            "  },\n",
            "  \"histograms\": {\n",
            "    \"fetched_per_cycle\": {\n",
            "      \"count\": 0,\n",
            "      \"mean\": 0.000000,\n",
            "      \"max\": 0,\n",
            "      \"buckets\": [\n",
            "        0\n",
            "      ]\n",
            "    },\n",
            "    \"issued_per_cycle\": {\n",
            "      \"count\": 0,\n",
            "      \"mean\": 0.000000,\n",
            "      \"max\": 0,\n",
            "      \"buckets\": [\n",
            "        0\n",
            "      ]\n",
            "    },\n",
            "    \"committed_per_cycle\": {\n",
            "      \"count\": 2,\n",
            "      \"mean\": 3.000000,\n",
            "      \"max\": 4,\n",
            "      \"buckets\": [\n",
            "        0,\n",
            "        0,\n",
            "        1,\n",
            "        1\n",
            "      ]\n",
            "    },\n",
            "    \"squash_depth\": {\n",
            "      \"count\": 0,\n",
            "      \"mean\": 0.000000,\n",
            "      \"max\": 0,\n",
            "      \"buckets\": [\n",
            "        0\n",
            "      ]\n",
            "    }\n",
            "  },\n",
            "  \"spans\": [\n",
            "    {\n",
            "      \"name\": \"Commit\",\n",
            "      \"calls\": 0,\n",
            "      \"wall_ns\": 0\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"Writeback\",\n",
            "      \"calls\": 0,\n",
            "      \"wall_ns\": 0\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"Lsq_refresh\",\n",
            "      \"calls\": 0,\n",
            "      \"wall_ns\": 0\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"Issue\",\n",
            "      \"calls\": 0,\n",
            "      \"wall_ns\": 0\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"Dispatch\",\n",
            "      \"calls\": 0,\n",
            "      \"wall_ns\": 0\n",
            "    },\n",
            "    {\n",
            "      \"name\": \"Fetch\",\n",
            "      \"calls\": 0,\n",
            "      \"wall_ns\": 0\n",
            "    }\n",
            "  ],\n",
            "  \"trace\": {\n",
            "    \"source\": \"generated gzip\",\n",
            "    \"records\": 12,\n",
            "    \"cache_hits\": 1,\n",
            "    \"cache_misses\": 0,\n",
            "    \"decoded\": 0,\n",
            "    \"fills\": 0\n",
            "  },\n",
            "  \"journal\": {\n",
            "    \"capacity\": 8,\n",
            "    \"recorded\": 1,\n",
            "    \"retained\": 1,\n",
            "    \"dropped\": 0\n",
            "  }\n",
            "}\n",
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn events_jsonl_is_golden() {
        let mut j = EventJournal::new(8);
        j.push(Event {
            cycle: 1,
            kind: EventKind::Occupancy {
                ifq: 2,
                rb: 5,
                lsq: 1,
            },
        });
        j.push(Event {
            cycle: 3,
            kind: EventKind::MispredictRecovery {
                seq: 42,
                squashed: 7,
            },
        });
        j.push(Event {
            cycle: 4,
            kind: EventKind::Misfetch { pc: 64 },
        });
        j.push(Event {
            cycle: 5,
            kind: EventKind::CacheMiss {
                cache: CacheKind::L1d,
                addr: 128,
            },
        });
        let text = write_events_jsonl(&j);
        let expected = concat!(
            "{\"schema\":\"resim.events/1\",\"recorded\":4,\"retained\":4,\"dropped\":0}\n",
            "{\"cycle\":1,\"kind\":\"occupancy\",\"ifq\":2,\"rb\":5,\"lsq\":1}\n",
            "{\"cycle\":3,\"kind\":\"mispredict_recovery\",\"seq\":42,\"squashed\":7}\n",
            "{\"cycle\":4,\"kind\":\"misfetch\",\"pc\":64}\n",
            "{\"cycle\":5,\"kind\":\"cache_miss\",\"cache\":\"l1d\",\"addr\":128}\n",
        );
        assert_eq!(text, expected);
    }

    #[test]
    fn journal_header_accounts_for_drops() {
        let mut j = EventJournal::new(2);
        for c in 0..5 {
            j.push(Event {
                cycle: c,
                kind: EventKind::Misfetch { pc: 0 },
            });
        }
        let text = write_events_jsonl(&j);
        assert!(text.starts_with(
            "{\"schema\":\"resim.events/1\",\"recorded\":5,\"retained\":2,\"dropped\":3}\n"
        ));
        assert_eq!(text.lines().count(), 3);
    }
}
