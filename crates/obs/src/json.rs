//! A minimal, dependency-free JSON writer.
//!
//! The workspace has no serde (no crates.io access), and the metrics
//! schema is small and fixed, so a push-style writer is all the
//! exporters need. Emission order is exactly call order — which is what
//! makes the output golden-pinnable byte for byte.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` deterministically for the metrics schema: six
/// decimal places, non-finite values clamped to `0.0`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_string()
    }
}

/// A push-style JSON object/array builder producing pretty-printed,
/// deterministic output.
#[derive(Debug)]
pub struct JsonObject {
    out: String,
    /// Whether the current container already holds a member (needs a
    /// comma), one level per open container.
    needs_comma: Vec<bool>,
    indent: usize,
}

impl JsonObject {
    /// Starts a fresh top-level object (`{`).
    pub fn new() -> Self {
        Self {
            out: String::from("{"),
            needs_comma: vec![false],
            indent: 1,
        }
    }

    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn member(&mut self, key: Option<&str>) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
        self.newline();
        if let Some(key) = key {
            let _ = write!(self.out, "\"{}\": ", json_escape(key));
        }
    }

    /// Adds `"key": "value"`.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.member(Some(key));
        let _ = write!(self.out, "\"{}\"", json_escape(value));
        self
    }

    /// Adds `"key": <integer>`.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.member(Some(key));
        let _ = write!(self.out, "{value}");
        self
    }

    /// Adds `"key": <float>` (six decimals, deterministic).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.member(Some(key));
        self.out.push_str(&json_f64(value));
        self
    }

    /// Adds `"key": true|false`.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.member(Some(key));
        let _ = write!(self.out, "{value}");
        self
    }

    /// Opens `"key": {`.
    pub fn open_object(&mut self, key: &str) -> &mut Self {
        self.member(Some(key));
        self.out.push('{');
        self.needs_comma.push(false);
        self.indent += 1;
        self
    }

    /// Opens `"key": [`.
    pub fn open_array(&mut self, key: &str) -> &mut Self {
        self.member(Some(key));
        self.out.push('[');
        self.needs_comma.push(false);
        self.indent += 1;
        self
    }

    /// Opens `{` as an array element.
    pub fn open_element(&mut self) -> &mut Self {
        self.member(None);
        self.out.push('{');
        self.needs_comma.push(false);
        self.indent += 1;
        self
    }

    /// Adds a bare integer array element.
    pub fn element_u64(&mut self, value: u64) -> &mut Self {
        self.member(None);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Closes the innermost `{`.
    pub fn close_object(&mut self) -> &mut Self {
        self.close('}')
    }

    /// Closes the innermost `[`.
    pub fn close_array(&mut self) -> &mut Self {
        self.close(']')
    }

    fn close(&mut self, bracket: char) -> &mut Self {
        let had_members = self.needs_comma.pop().unwrap_or(false);
        self.indent = self.indent.saturating_sub(1);
        if had_members {
            self.newline();
        }
        self.out.push(bracket);
        self
    }

    /// Closes the top level and returns the document (trailing newline
    /// included).
    pub fn finish(mut self) -> String {
        while self.needs_comma.len() > 1 {
            self.close('}');
        }
        self.needs_comma.pop();
        self.indent = 0;
        self.out.push_str("\n}");
        self.out.push('\n');
        self.out
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn nested_document_renders_deterministically() {
        let mut j = JsonObject::new();
        j.string("schema", "demo/1").u64("n", 3).f64("rate", 0.5);
        j.open_object("inner").u64("x", 1).close_object();
        j.open_array("items");
        j.open_element().string("name", "a").close_object();
        j.element_u64(9);
        j.close_array();
        let text = j.finish();
        assert_eq!(
            text,
            "{\n  \"schema\": \"demo/1\",\n  \"n\": 3,\n  \"rate\": 0.500000,\n  \"inner\": {\n    \"x\": 1\n  },\n  \"items\": [\n    {\n      \"name\": \"a\"\n    },\n    9\n  ]\n}\n"
        );
    }

    #[test]
    fn empty_containers_close_tight() {
        let mut j = JsonObject::new();
        j.open_object("empty").close_object();
        j.open_array("none").close_array();
        assert_eq!(j.finish(), "{\n  \"empty\": {},\n  \"none\": []\n}\n");
    }

    #[test]
    fn non_finite_floats_are_clamped() {
        assert_eq!(json_f64(f64::NAN), "0.000000");
        assert_eq!(json_f64(f64::INFINITY), "0.000000");
        assert_eq!(json_f64(1.25), "1.250000");
    }
}
